#ifndef BIGDANSING_RULES_DETECT_KERNEL_H_
#define BIGDANSING_RULES_DETECT_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/dictionary.h"
#include "data/schema.h"
#include "rules/predicate.h"
#include "rules/rule.h"

namespace bigdansing {

/// One data unit as the kernel sees it: a contiguous code array per kernel
/// slot plus the unit's index into those arrays. Built by the engine per
/// enumeration site; reading a cell is two pointer hops and no branch.
struct CodeTuple {
  const uint32_t* const* cols;  ///< Per-slot code arrays.
  size_t row;

  uint32_t code(uint16_t slot) const { return cols[slot][row]; }
};

/// One DC conjunct compiled to dictionary-code compares. Cross-column
/// predicates require both slots to share a pool (the compiler groups such
/// columns); constant predicates carry the constant's position in the left
/// slot's pool, resolved at Bind time:
///   value == c  ⟺  code == const_eq   (kAbsentCode never matches)
///   value <  c  ⟺  code <  const_lo
///   value <= c  ⟺  code <  const_hi
struct CodePredicate {
  CmpOp op = CmpOp::kEq;
  bool left_is_t1 = true;
  uint16_t left_slot = 0;
  bool right_is_constant = false;
  bool right_is_t1 = false;
  uint16_t right_slot = 0;
  uint32_t const_eq = ValuePool::kAbsentCode;
  uint32_t const_lo = 0;
  uint32_t const_hi = 0;
  /// A predicate that can never hold (null constant): the whole
  /// conjunction is statically false.
  bool never = false;

  bool Eval(const CodeTuple& t1, const CodeTuple& t2) const {
    if (never) return false;
    const uint32_t a = (left_is_t1 ? t1 : t2).code(left_slot);
    if (a == ValuePool::kNullCode) return false;
    if (right_is_constant) {
      switch (op) {
        case CmpOp::kEq:  return a == const_eq;
        case CmpOp::kNeq: return a != const_eq;
        case CmpOp::kLt:  return a < const_lo;
        case CmpOp::kLeq: return a < const_hi;
        case CmpOp::kGt:  return a >= const_hi;
        case CmpOp::kGeq: return a >= const_lo;
        case CmpOp::kSimilar: return false;  // never compiled
      }
      return false;
    }
    const uint32_t b = (right_is_t1 ? t1 : t2).code(right_slot);
    if (b == ValuePool::kNullCode) return false;
    switch (op) {
      case CmpOp::kEq:  return a == b;
      case CmpOp::kNeq: return a != b;
      case CmpOp::kLt:  return a < b;
      case CmpOp::kLeq: return a <= b;
      case CmpOp::kGt:  return a > b;
      case CmpOp::kGeq: return a >= b;
      case CmpOp::kSimilar: return false;
    }
    return false;
  }
};

/// A compiled Detect decision kernel. `Matches` must be EXACT for the
/// compiled rule: true iff Rule::Detect on the same ordered pair would emit
/// at least one violation. That contract is what lets the engine evaluate
/// candidate batches over code vectors and call the interpreted Detect only
/// on matches, keeping the violation stream bit-identical to the
/// interpreted path.
class DetectKernel {
 public:
  virtual ~DetectKernel() = default;
  /// Arity-2 decision over an ordered candidate pair.
  virtual bool Matches(const CodeTuple& t1, const CodeTuple& t2) const = 0;
  /// Arity-1 decision; false for pair rules.
  virtual bool MatchesSingle(const CodeTuple& t) const;
  /// Batched upper-triangle decision over a block of `n` tuples: appends
  /// (i, j) to `matches` for every i < j with Matches(tuples[i], tuples[j]),
  /// in i-outer j-inner order — the engine's per-pair enumeration order for
  /// symmetric rules, so consuming `matches` in sequence preserves the
  /// interpreted violation order. The default delegates to Matches; hot
  /// kernels (FD) override with a branch-light loop that hoists the outer
  /// tuple's codes and skips per-pair virtual dispatch.
  virtual void MatchUpper(
      const CodeTuple* tuples, size_t n,
      std::vector<std::pair<uint32_t, uint32_t>>* matches) const;
};

/// A schema-bound but pool-free kernel for one rule: names the columns to
/// dictionary-encode (and which of them must share a pool), then binds to
/// the pools once encoding has run.
class KernelTemplate {
 public:
  virtual ~KernelTemplate() = default;

  /// Detect-schema columns the kernel reads; slot s reads columns()[s].
  const std::vector<size_t>& columns() const { return columns_; }
  /// Detect-schema column sets whose codes are compared across columns and
  /// therefore must share one pool. Singleton groups are omitted.
  const std::vector<std::vector<size_t>>& shared_groups() const {
    return shared_groups_;
  }

  /// Binds rule constants against the slots' pools; `pools[s]` is the pool
  /// of `columns()[s]`.
  virtual std::unique_ptr<DetectKernel> Bind(
      const std::vector<const ValuePool*>& pools) const = 0;

 protected:
  /// Interns a detect-schema column, returning its slot.
  uint16_t SlotFor(size_t column);
  /// Records that two columns' codes are compared against each other.
  void ShareGroup(size_t a, size_t b);

  std::vector<size_t> columns_;
  std::vector<std::vector<size_t>> shared_groups_;
};

/// Registry of rule-class kernel compilers — the dispatch point behind
/// RuleEngine's kernel routing. A compiler pattern-matches a rule (via
/// dynamic_cast) and returns an analyzed template, or null when it does not
/// apply. Compile returns null when no compiler accepts the rule (UDF
/// rules, similarity predicates, unresolvable attributes), which sends the
/// rule down the interpreted path.
class KernelRegistry {
 public:
  using Compiler = std::function<std::shared_ptr<const KernelTemplate>(
      const Rule&, const Schema&)>;

  static KernelRegistry& Instance();

  void Register(std::string name, Compiler compiler);

  /// First registered compiler that accepts `rule` wins. `schema` is the
  /// detect schema (post-Scope) the rule was bound against.
  std::shared_ptr<const KernelTemplate> Compile(const Rule& rule,
                                                const Schema& schema) const;

 private:
  KernelRegistry();  // registers the built-in FD/DC/CFD/CHECK compilers

  std::vector<std::pair<std::string, Compiler>> compilers_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_DETECT_KERNEL_H_
