#include "rules/check_rule.h"

#include <algorithm>

namespace bigdansing {

CheckRule::CheckRule(std::string name, std::vector<Predicate> predicates)
    : Rule(std::move(name)), predicates_(std::move(predicates)) {}

std::vector<std::string> CheckRule::RelevantAttributes() const {
  std::vector<std::string> attrs;
  auto add = [&](const std::string& a) {
    if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
      attrs.push_back(a);
    }
  };
  for (const auto& p : predicates_) {
    add(p.left_attr);
    if (!p.right_is_constant) add(p.right_attr);
  }
  return attrs;
}

Status CheckRule::Bind(const Schema& schema) {
  bound_.clear();
  for (const auto& p : predicates_) {
    if (p.left_tuple != 1 || (!p.right_is_constant && p.right_tuple != 1)) {
      return Status::InvalidArgument(
          "CheckRule predicates must reference t1 only: " + p.ToString());
    }
    auto bp = BoundPredicate::Bind(p, schema);
    if (!bp.ok()) return bp.status();
    bound_.push_back(std::move(*bp));
  }
  bound_schema_ = schema;
  return Status::OK();
}

void CheckRule::DetectSingle(const Row& t, std::vector<Violation>* out) const {
  for (const auto& bp : bound_) {
    if (!bp.Eval(t, t)) return;
  }
  Violation v;
  v.rule_name = name();
  for (const auto& bp : bound_) {
    v.cells.push_back(MakeCell(t, bp.left_column(), bound_schema_));
    if (!bp.pred().right_is_constant) {
      v.cells.push_back(MakeCell(t, bp.right_column(), bound_schema_));
    }
  }
  out->push_back(std::move(v));
}

void CheckRule::GenFix(const Violation& violation,
                       std::vector<Fix>* out) const {
  size_t cell_index = 0;
  for (const auto& bp : bound_) {
    const Predicate& p = bp.pred();
    if (cell_index >= violation.cells.size()) return;
    Fix fix;
    fix.left = violation.cells[cell_index++];
    switch (NegateOp(p.op)) {
      case CmpOp::kEq:
        fix.op = FixOp::kEq;
        break;
      case CmpOp::kNeq:
        fix.op = FixOp::kNeq;
        break;
      case CmpOp::kLt:
        fix.op = FixOp::kLt;
        break;
      case CmpOp::kGt:
        fix.op = FixOp::kGt;
        break;
      case CmpOp::kLeq:
        fix.op = FixOp::kLeq;
        break;
      case CmpOp::kGeq:
        fix.op = FixOp::kGeq;
        break;
      case CmpOp::kSimilar:
        fix.op = FixOp::kEq;
        break;
    }
    if (p.right_is_constant) {
      fix.right = FixTerm::MakeConstant(p.constant);
    } else {
      if (cell_index >= violation.cells.size()) return;
      fix.right = FixTerm::MakeCell(violation.cells[cell_index++]);
    }
    out->push_back(std::move(fix));
  }
}

}  // namespace bigdansing
