#ifndef BIGDANSING_RULES_PARSER_H_
#define BIGDANSING_RULES_PARSER_H_

#include <string>

#include "common/status.h"
#include "rules/predicate.h"
#include "rules/rule.h"

namespace bigdansing {

/// Parses a declarative quality rule from text into a Rule object — the
/// entry point that lets users avoid writing any operator code (paper §2.2,
/// "declarative rule"). Supported forms:
///
///   FD: zipcode -> city                 (multi-attribute: "a, b -> c, d")
///   DC: t1.salary > t2.salary & t1.rate < t2.rate
///   DC: t1.city = t2.city & t1.state != t2.state
///   DC: t1.name ~0.8 t2.name & t1.county = t2.county     (similarity)
///   DC: t1.role = "M" & t1.city != t2.city               (constants)
///   CHECK: t1.rate > 0 & t1.salary < 0                   (single tuple)
///
/// Comparison operators: = != < > <= >= and ~<threshold> (similarity).
/// Conjuncts are separated by '&'. String constants are double-quoted;
/// bare numerics parse as numbers. An optional leading "name:" before the
/// kind labels the rule ("myrule: FD: a -> b"); otherwise the rule is named
/// after its text.
Result<RulePtr> ParseRule(const std::string& text);

/// Parses a '&'-separated predicate conjunction ("t1.a > t2.b & t3.c = 5")
/// using the DC grammar, allowing tuple references t1/t2/t3. Exposed for
/// rule forms beyond the two-tuple DCs ParseRule builds (e.g. the
/// three-tuple DCs of Appendix E).
Result<std::vector<Predicate>> ParsePredicateConjunction(
    const std::string& body);

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_PARSER_H_
