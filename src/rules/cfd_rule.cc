#include "rules/cfd_rule.h"

namespace bigdansing {

CfdRule::CfdRule(std::string name, std::vector<CfdPatternAttr> lhs,
                 CfdPatternAttr rhs)
    : Rule(std::move(name)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

std::vector<std::string> CfdRule::RelevantAttributes() const {
  std::vector<std::string> attrs;
  for (const auto& a : lhs_) attrs.push_back(a.attribute);
  attrs.push_back(rhs_.attribute);
  return attrs;
}

std::vector<std::string> CfdRule::BlockingAttributes() const {
  if (is_constant_cfd()) return {};
  std::vector<std::string> attrs;
  for (const auto& a : lhs_) {
    if (!a.constant.has_value()) attrs.push_back(a.attribute);
  }
  // All-constant LHS: every matching tuple is in one block; block on the
  // first LHS attribute (its value equals the pattern constant anyway).
  if (attrs.empty() && !lhs_.empty()) attrs.push_back(lhs_[0].attribute);
  return attrs;
}

Status CfdRule::Bind(const Schema& schema) {
  lhs_columns_.clear();
  for (const auto& a : lhs_) {
    auto idx = schema.IndexOf(a.attribute);
    if (!idx.ok()) return idx.status();
    lhs_columns_.push_back(*idx);
  }
  auto rhs_idx = schema.IndexOf(rhs_.attribute);
  if (!rhs_idx.ok()) return rhs_idx.status();
  rhs_column_ = *rhs_idx;
  bound_schema_ = schema;
  return Status::OK();
}

bool CfdRule::MatchesPattern(const Row& row) const {
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (!lhs_[i].constant.has_value()) continue;
    const Value& v = row.value(lhs_columns_[i]);
    if (v.is_null() || v != *lhs_[i].constant) return false;
  }
  return true;
}

void CfdRule::Detect(const Row& t1, const Row& t2,
                     std::vector<Violation>* out) const {
  if (is_constant_cfd()) return;  // Constant CFDs are arity-1.
  if (!MatchesPattern(t1) || !MatchesPattern(t2)) return;
  for (size_t c : lhs_columns_) {
    const Value& a = t1.value(c);
    const Value& b = t2.value(c);
    if (a.is_null() || b.is_null() || a != b) return;
  }
  if (t1.value(rhs_column_) == t2.value(rhs_column_)) return;
  // Violation layout (consumed by GenFix): t1.lhs*, t2.lhs*, t1.A, t2.A.
  Violation v;
  v.rule_name = name();
  for (size_t c : lhs_columns_) {
    v.cells.push_back(MakeCell(t1, c, bound_schema_));
    v.cells.push_back(MakeCell(t2, c, bound_schema_));
  }
  v.cells.push_back(MakeCell(t1, rhs_column_, bound_schema_));
  v.cells.push_back(MakeCell(t2, rhs_column_, bound_schema_));
  out->push_back(std::move(v));
}

void CfdRule::DetectSingle(const Row& t, std::vector<Violation>* out) const {
  if (!is_constant_cfd()) return;
  if (!MatchesPattern(t)) return;
  const Value& v = t.value(rhs_column_);
  if (!v.is_null() && v == *rhs_.constant) return;
  Violation violation;
  violation.rule_name = name();
  violation.cells.push_back(MakeCell(t, rhs_column_, bound_schema_));
  out->push_back(std::move(violation));
}

void CfdRule::GenFix(const Violation& violation,
                     std::vector<Fix>* out) const {
  if (is_constant_cfd()) {
    if (violation.cells.empty()) return;
    Fix fix;
    fix.left = violation.cells[0];
    fix.op = FixOp::kEq;
    fix.right = FixTerm::MakeConstant(*rhs_.constant);
    out->push_back(std::move(fix));
    return;
  }
  // The last two cells are the differing RHS pair.
  if (violation.cells.size() < 2) return;
  Fix fix;
  fix.left = violation.cells[violation.cells.size() - 2];
  fix.op = FixOp::kEq;
  fix.right = FixTerm::MakeCell(violation.cells.back());
  out->push_back(std::move(fix));
}

}  // namespace bigdansing
