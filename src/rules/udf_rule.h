#ifndef BIGDANSING_RULES_UDF_RULE_H_
#define BIGDANSING_RULES_UDF_RULE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "rules/rule.h"

namespace bigdansing {

/// A procedural rule supplied by the user (paper §2.1: "BigDansing adopts
/// UDFs as the basis to define quality rules"). Detect/GenFix are arbitrary
/// closures; the optional hints unlock Scope/Block/Iterate optimizations
/// exactly as for declarative rules (e.g. the paper's φU blocks on county).
///
/// Closures receive the bound schema so they can resolve attributes once.
class UdfRule : public Rule {
 public:
  /// Pair detection callback: append violations for the ordered pair.
  using DetectFn = std::function<void(const Schema&, const Row&, const Row&,
                                      std::vector<Violation>*)>;
  /// Single-unit detection callback (arity-1 rules).
  using DetectSingleFn =
      std::function<void(const Schema&, const Row&, std::vector<Violation>*)>;
  /// Fix generation callback.
  using GenFixFn =
      std::function<void(const Schema&, const Violation&, std::vector<Fix>*)>;
  /// Custom blocking key (overrides blocking attributes when set); return a
  /// null Value to exclude the unit from every block.
  using BlockKeyFn = std::function<Value(const Schema&, const Row&)>;

  explicit UdfRule(std::string name) : Rule(std::move(name)) {}

  UdfRule& set_detect(DetectFn fn) {
    detect_ = std::move(fn);
    return *this;
  }
  UdfRule& set_detect_single(DetectSingleFn fn) {
    detect_single_ = std::move(fn);
    arity_ = 1;
    return *this;
  }
  UdfRule& set_gen_fix(GenFixFn fn) {
    gen_fix_ = std::move(fn);
    return *this;
  }
  UdfRule& set_relevant_attributes(std::vector<std::string> attrs) {
    relevant_attributes_ = std::move(attrs);
    return *this;
  }
  UdfRule& set_blocking_attributes(std::vector<std::string> attrs) {
    blocking_attributes_ = std::move(attrs);
    return *this;
  }
  UdfRule& set_block_key(BlockKeyFn fn) {
    block_key_ = std::move(fn);
    return *this;
  }
  UdfRule& set_symmetric(bool symmetric) {
    symmetric_ = symmetric;
    return *this;
  }

  int arity() const override { return arity_; }
  std::vector<std::string> RelevantAttributes() const override {
    return relevant_attributes_;
  }
  std::vector<std::string> BlockingAttributes() const override {
    return blocking_attributes_;
  }
  bool IsSymmetric() const override { return symmetric_; }

  /// Non-null when the user supplied a procedural blocking key.
  const BlockKeyFn& block_key() const { return block_key_; }
  const Schema& bound_schema() const { return bound_schema_; }

  Status Bind(const Schema& schema) override {
    bound_schema_ = schema;
    return Status::OK();
  }

  void Detect(const Row& t1, const Row& t2,
              std::vector<Violation>* out) const override {
    if (detect_) detect_(bound_schema_, t1, t2, out);
  }

  void DetectSingle(const Row& t, std::vector<Violation>* out) const override {
    if (detect_single_) detect_single_(bound_schema_, t, out);
  }

  void GenFix(const Violation& violation,
              std::vector<Fix>* out) const override {
    if (gen_fix_) gen_fix_(bound_schema_, violation, out);
  }

 protected:
  /// Exposed so UDF closures can build cells with source-column mapping.
  using Rule::MakeCell;

 public:
  /// Public helper mirroring Rule::MakeCell for use inside UDF closures.
  static Cell MakeUdfCell(const Row& row, size_t column,
                          const Schema& schema) {
    return MakeCell(row, column, schema);
  }

 private:
  DetectFn detect_;
  DetectSingleFn detect_single_;
  GenFixFn gen_fix_;
  BlockKeyFn block_key_;
  std::vector<std::string> relevant_attributes_;
  std::vector<std::string> blocking_attributes_;
  bool symmetric_ = true;
  int arity_ = 2;
  Schema bound_schema_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_UDF_RULE_H_
