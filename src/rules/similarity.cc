#include "rules/similarity.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/hash.h"

namespace bigdansing {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // `a` is now the shorter string; dp row has |a|+1 entries.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t prev_row = row[i];
      size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i - 1] + 1, row[i] + 1, subst});
      prev_diag = prev_row;
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaccardTrigramSimilarity(std::string_view a, std::string_view b) {
  auto trigrams = [](std::string_view s) {
    std::unordered_set<uint64_t> grams;
    if (s.size() < 3) {
      if (!s.empty()) grams.insert(StableHashBytes(s));
      return grams;
    }
    for (size_t i = 0; i + 3 <= s.size(); ++i) {
      grams.insert(StableHashBytes(s.substr(i, 3)));
    }
    return grams;
  };
  auto ga = trigrams(a);
  auto gb = trigrams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0;
  for (uint64_t g : ga) inter += gb.count(g);
  size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

bool IsSimilar(std::string_view a, std::string_view b, double threshold) {
  // Cheap length pre-filter: similarity can't reach the threshold when the
  // length gap alone exceeds the allowed edits.
  size_t longest = std::max(a.size(), b.size());
  size_t shortest = std::min(a.size(), b.size());
  if (longest > 0) {
    double best_possible =
        1.0 - static_cast<double>(longest - shortest) / static_cast<double>(longest);
    if (best_possible < threshold) return false;
  }
  return LevenshteinSimilarity(a, b) >= threshold;
}

}  // namespace bigdansing
