#ifndef BIGDANSING_RULES_RULE_H_
#define BIGDANSING_RULES_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/row.h"
#include "data/schema.h"
#include "rules/predicate.h"
#include "rules/violation.h"

namespace bigdansing {

/// An inequality self-join condition `t1.left_attr op t2.right_attr`
/// extracted from a rule; a non-empty set of these lets the planner use the
/// OCJoin enhancer (§4.3) instead of a cross product.
struct OrderingCondition {
  std::string left_attr;
  CmpOp op = CmpOp::kLt;
  std::string right_attr;
  /// Column indices, resolved by Rule::Bind against the Detect-time schema.
  size_t left_column = 0;
  size_t right_column = 0;
};

/// A data quality rule in BigDansing's UDF-based model (§2.1): the two
/// fundamental functions Detect and GenFix, plus the logical hints (relevant
/// attributes, blocking key, symmetry, ordering conditions) that let the
/// planner build Scope / Block / Iterate operators around them (§3).
///
/// Lifecycle: the planner calls Bind() once with the schema the Detect
/// operator will see (the scoped schema), then Detect/GenFix many times,
/// possibly concurrently — implementations must be immutable after Bind.
class Rule {
 public:
  explicit Rule(std::string name) : name_(std::move(name)) {}
  virtual ~Rule() = default;

  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  const std::string& name() const { return name_; }

  /// Number of data units Detect consumes: 1 (single-unit rules such as
  /// check constraints) or 2 (pair rules: FDs, DCs, deduplication).
  virtual int arity() const { return 2; }

  /// Attributes the rule reads; the Scope operator projects to these.
  /// Empty means "all attributes" (no scoping possible).
  virtual std::vector<std::string> RelevantAttributes() const { return {}; }

  /// Attributes forming the blocking key; violations can only occur between
  /// units sharing the key. Empty means no blocking (one global block).
  virtual std::vector<std::string> BlockingAttributes() const { return {}; }

  /// True when Detect(a, b) finding nothing implies Detect(b, a) finds
  /// nothing (and their violations are equivalent). Lets Iterate enumerate
  /// unordered pairs (the UCrossProduct enhancer). Non-symmetric rules are
  /// probed in both orientations.
  virtual bool IsSymmetric() const { return false; }

  /// Inequality self-join conditions, enabling the OCJoin enhancer.
  virtual std::vector<OrderingCondition> OrderingConditions() const {
    return {};
  }

  /// Resolves attribute names against the schema Detect will see. Must be
  /// called before Detect/GenFix.
  virtual Status Bind(const Schema& schema) = 0;

  /// Pair detection (arity() == 2). Appends violations found in the ordered
  /// pair (t1, t2).
  virtual void Detect(const Row& t1, const Row& t2,
                      std::vector<Violation>* out) const {}

  /// Single-unit detection (arity() == 1).
  virtual void DetectSingle(const Row& t,
                            std::vector<Violation>* out) const {}

  /// Computes possible fixes for `violation` (paper §2.1,
  /// `GenFix(violation) -> possible fixes`).
  virtual void GenFix(const Violation& violation,
                      std::vector<Fix>* out) const {}

 protected:
  /// Builds a Cell for bound column `column` of `row`, mapping back to the
  /// original (pre-Scope) column index so repairs land on the base table.
  static Cell MakeCell(const Row& row, size_t column, const Schema& schema) {
    Cell c;
    c.ref.row_id = row.id();
    c.ref.column = row.source_column(column);
    c.attribute = schema.attribute(column);
    c.value = row.value(column);
    return c;
  }

 private:
  std::string name_;
};

using RulePtr = std::shared_ptr<Rule>;

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_RULE_H_
