#ifndef BIGDANSING_RULES_VIOLATION_IO_H_
#define BIGDANSING_RULES_VIOLATION_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rules/violation.h"

namespace bigdansing {

/// Serializes detection output as CSV with one line per violation:
///   rule,rows,cells,fixes
/// where `rows` is a ';'-joined row-id list, `cells` renders each cell as
/// "t<row>[<attr>]=<value>" and `fixes` joins Fix::ToString() with ';'.
/// This is the "Detect output written to disk" sink of §3.2 for plans
/// without a GenFix (fixes column empty then) and the report format of the
/// clean_csv example tool.
std::string WriteViolationsCsv(const std::vector<ViolationWithFixes>& violations);

/// Writes WriteViolationsCsv output to a file.
Status WriteViolationsCsvFile(const std::vector<ViolationWithFixes>& violations,
                              const std::string& path);

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_VIOLATION_IO_H_
