#ifndef BIGDANSING_RULES_VIOLATION_H_
#define BIGDANSING_RULES_VIOLATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "data/row.h"
#include "data/value.h"

namespace bigdansing {

/// Identity of an element (a cell) in the input dataset: which row and which
/// original column. Cells are the nodes of the violation hypergraph (§5.1).
struct CellRef {
  RowId row_id = -1;
  size_t column = 0;

  bool operator==(const CellRef& other) const = default;
  bool operator<(const CellRef& other) const {
    if (row_id != other.row_id) return row_id < other.row_id;
    return column < other.column;
  }

  /// "t<row>[<col>]" for debugging.
  std::string ToString() const {
    return "t" + std::to_string(row_id) + "[" + std::to_string(column) + "]";
  }
};

struct CellRefHash {
  size_t operator()(const CellRef& c) const {
    size_t seed = static_cast<size_t>(
        StableHashUint64(static_cast<uint64_t>(c.row_id)));
    HashCombine(&seed, c.column);
    return seed;
  }
};

/// A cell with its (dirty) value at detection time.
struct Cell {
  CellRef ref;
  std::string attribute;  ///< Original attribute name, for reporting.
  Value value;

  bool operator==(const Cell& other) const {
    return ref == other.ref && value == other.value;
  }
};

/// A violation: the elements that together break a rule (paper §2.1,
/// `Detect(data units) -> violation`).
struct Violation {
  std::string rule_name;
  std::vector<Cell> cells;

  /// Row ids involved (deduplicated, order of first appearance).
  std::vector<RowId> RowIds() const {
    std::vector<RowId> ids;
    for (const auto& c : cells) {
      bool seen = false;
      for (RowId id : ids) seen = seen || id == c.ref.row_id;
      if (!seen) ids.push_back(c.ref.row_id);
    }
    return ids;
  }
};

/// Comparison operator in a possible fix `x op y` (paper §2.1).
enum class FixOp { kEq, kNeq, kLt, kGt, kLeq, kGeq };

/// Returns "=", "!=", "<", ">", "<=", ">=".
const char* FixOpName(FixOp op);

/// Right-hand side of a possible fix: another cell or a constant.
struct FixTerm {
  bool is_cell = false;
  Cell cell;       ///< Valid when is_cell.
  Value constant;  ///< Valid when !is_cell.

  static FixTerm MakeCell(Cell c) {
    FixTerm t;
    t.is_cell = true;
    t.cell = std::move(c);
    return t;
  }
  static FixTerm MakeConstant(Value v) {
    FixTerm t;
    t.is_cell = false;
    t.constant = std::move(v);
    return t;
  }
};

/// A possible fix `left op right` proposed by GenFix for one violation.
struct Fix {
  Cell left;
  FixOp op = FixOp::kEq;
  FixTerm right;

  /// "t1[city] = t4[city]" style rendering.
  std::string ToString() const;
};

/// The unit shipped from the RuleEngine to the repair stage: one violation
/// together with its possible fixes (a hyperedge of the violation graph).
struct ViolationWithFixes {
  Violation violation;
  std::vector<Fix> fixes;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_VIOLATION_H_
