#include "rules/predicate.h"

#include "common/logging.h"
#include "rules/similarity.h"

namespace bigdansing {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNeq:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kLeq:
      return "<=";
    case CmpOp::kGeq:
      return ">=";
    case CmpOp::kSimilar:
      return "~";
  }
  return "?";
}

bool IsEqualityOp(CmpOp op) {
  return op == CmpOp::kEq || op == CmpOp::kNeq || op == CmpOp::kSimilar;
}

bool IsOrderingOp(CmpOp op) {
  return op == CmpOp::kLt || op == CmpOp::kGt || op == CmpOp::kLeq ||
         op == CmpOp::kGeq;
}

CmpOp FlipOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kLeq:
      return CmpOp::kGeq;
    case CmpOp::kGeq:
      return CmpOp::kLeq;
    default:
      return op;  // =, !=, ~ are symmetric.
  }
}

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNeq;
    case CmpOp::kNeq:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGeq;
    case CmpOp::kGt:
      return CmpOp::kLeq;
    case CmpOp::kLeq:
      return CmpOp::kGt;
    case CmpOp::kGeq:
      return CmpOp::kLt;
    case CmpOp::kSimilar:
      return CmpOp::kNeq;
  }
  return CmpOp::kNeq;
}

std::string Predicate::ToString() const {
  std::string out =
      "t" + std::to_string(left_tuple) + "." + left_attr + " ";
  out += CmpOpName(op);
  out += " ";
  if (right_is_constant) {
    out += constant.ToString();
  } else {
    out += "t" + std::to_string(right_tuple) + "." + right_attr;
  }
  return out;
}

Result<BoundPredicate> BoundPredicate::Bind(const Predicate& pred,
                                            const Schema& schema) {
  BoundPredicate bound;
  bound.pred_ = pred;
  auto left = schema.IndexOf(pred.left_attr);
  if (!left.ok()) return left.status();
  bound.left_column_ = *left;
  if (!pred.right_is_constant) {
    auto right = schema.IndexOf(pred.right_attr);
    if (!right.ok()) return right.status();
    bound.right_column_ = *right;
  }
  return bound;
}

Result<BoundPredicate> BoundPredicate::BindAcross(const Predicate& pred,
                                                  const Schema& left_schema,
                                                  const Schema& right_schema) {
  BoundPredicate bound;
  bound.pred_ = pred;
  const Schema& lschema = pred.left_tuple == 1 ? left_schema : right_schema;
  auto left = lschema.IndexOf(pred.left_attr);
  if (!left.ok()) return left.status();
  bound.left_column_ = *left;
  if (!pred.right_is_constant) {
    const Schema& rschema = pred.right_tuple == 1 ? left_schema : right_schema;
    auto right = rschema.IndexOf(pred.right_attr);
    if (!right.ok()) return right.status();
    bound.right_column_ = *right;
  }
  return bound;
}

bool BoundPredicate::Eval(const Row& t1, const Row& t2) const {
  const Row& left_row = pred_.left_tuple == 1 ? t1 : t2;
  const Value& left = left_row.value(left_column_);
  const Value* right;
  if (pred_.right_is_constant) {
    right = &pred_.constant;
  } else {
    const Row& right_row = pred_.right_tuple == 1 ? t1 : t2;
    right = &right_row.value(right_column_);
  }
  if (left.is_null() || right->is_null()) return false;
  switch (pred_.op) {
    case CmpOp::kEq:
      return left == *right;
    case CmpOp::kNeq:
      return left != *right;
    case CmpOp::kLt:
      return left < *right;
    case CmpOp::kGt:
      return left > *right;
    case CmpOp::kLeq:
      return left <= *right;
    case CmpOp::kGeq:
      return left >= *right;
    case CmpOp::kSimilar:
      return IsSimilar(left.ToString(), right->ToString(),
                       pred_.similarity_threshold);
  }
  return false;
}

}  // namespace bigdansing
