#ifndef BIGDANSING_RULES_CHECK_RULE_H_
#define BIGDANSING_RULES_CHECK_RULE_H_

#include <string>
#include <vector>

#include "rules/rule.h"

namespace bigdansing {

/// A single-tuple denial constraint ∀t ¬(p1(t) ∧ ... ∧ pk(t)), e.g.
/// "no row may have rate > 0 and salary < 0". Exercises the arity-1
/// Detect path (the paper's Detect signature accepts a single data unit).
/// Every predicate must reference t1 only (or a constant).
class CheckRule : public Rule {
 public:
  CheckRule(std::string name, std::vector<Predicate> predicates);

  const std::vector<Predicate>& predicates() const { return predicates_; }

  int arity() const override { return 1; }
  std::vector<std::string> RelevantAttributes() const override;

  Status Bind(const Schema& schema) override;
  void DetectSingle(const Row& t, std::vector<Violation>* out) const override;
  void GenFix(const Violation& violation,
              std::vector<Fix>* out) const override;

 private:
  std::vector<Predicate> predicates_;
  std::vector<BoundPredicate> bound_;
  Schema bound_schema_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_CHECK_RULE_H_
