#include "rules/violation.h"

namespace bigdansing {

const char* FixOpName(FixOp op) {
  switch (op) {
    case FixOp::kEq:
      return "=";
    case FixOp::kNeq:
      return "!=";
    case FixOp::kLt:
      return "<";
    case FixOp::kGt:
      return ">";
    case FixOp::kLeq:
      return "<=";
    case FixOp::kGeq:
      return ">=";
  }
  return "?";
}

std::string Fix::ToString() const {
  std::string out = "t" + std::to_string(left.ref.row_id) + "[" +
                    left.attribute + "] ";
  out += FixOpName(op);
  out += " ";
  if (right.is_cell) {
    out += "t" + std::to_string(right.cell.ref.row_id) + "[" +
           right.cell.attribute + "]";
  } else {
    out += right.constant.ToString();
  }
  return out;
}

}  // namespace bigdansing
