#ifndef BIGDANSING_RULES_PREDICATE_H_
#define BIGDANSING_RULES_PREDICATE_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "data/row.h"
#include "data/schema.h"
#include "data/value.h"

namespace bigdansing {

/// Comparison operator of a denial-constraint predicate.
enum class CmpOp { kEq, kNeq, kLt, kGt, kLeq, kGeq, kSimilar };

/// Returns "=", "!=", "<", ">", "<=", ">=", "~".
const char* CmpOpName(CmpOp op);

/// True for operators whose truth is unchanged when both sides are swapped
/// together with the operator flip applied (used for symmetry analysis).
bool IsEqualityOp(CmpOp op);

/// True for ordering comparisons (<, >, <=, >=) — the OCJoin triggers.
bool IsOrderingOp(CmpOp op);

/// The operator `op` such that `a op b == b Flip(op) a`.
CmpOp FlipOp(CmpOp op);

/// The negation of `op` (e.g. < becomes >=). kSimilar has no negation in the
/// fix language and maps to kNeq of the compared cells.
CmpOp NegateOp(CmpOp op);

/// One conjunct of a denial constraint over a tuple pair (t1, t2):
///   t<left_tuple>.left_attr  op  t<right_tuple>.right_attr | constant
/// A unary predicate (single-tuple rule) references t1 on both sides or a
/// constant on the right.
struct Predicate {
  int left_tuple = 1;  ///< 1 or 2.
  std::string left_attr;
  CmpOp op = CmpOp::kEq;
  bool right_is_constant = false;
  int right_tuple = 2;  ///< 1 or 2; meaningful when !right_is_constant.
  std::string right_attr;
  Value constant;
  /// Threshold for kSimilar (normalized Levenshtein similarity).
  double similarity_threshold = 0.8;

  /// "t1.salary > t2.salary" rendering.
  std::string ToString() const;
};

/// A predicate with attribute names resolved to column indices of the schema
/// the Detect operator will see. Binding happens once per plan, evaluation
/// once per candidate pair.
class BoundPredicate {
 public:
  /// Resolves `pred` against `schema`; fails if an attribute is missing.
  static Result<BoundPredicate> Bind(const Predicate& pred,
                                     const Schema& schema);

  /// Resolves `pred` for a two-table rule: attributes of t1 resolve against
  /// `left_schema`, attributes of t2 against `right_schema`.
  static Result<BoundPredicate> BindAcross(const Predicate& pred,
                                           const Schema& left_schema,
                                           const Schema& right_schema);

  /// Evaluates over (t1, t2). Null operands make every comparison false
  /// (SQL-like three-valued logic collapsed to false).
  bool Eval(const Row& t1, const Row& t2) const;

  const Predicate& pred() const { return pred_; }
  size_t left_column() const { return left_column_; }
  size_t right_column() const { return right_column_; }

 private:
  Predicate pred_;
  size_t left_column_ = 0;
  size_t right_column_ = 0;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_PREDICATE_H_
