#include "rules/detect_kernel.h"

#include <algorithm>
#include <optional>

#include "rules/cfd_rule.h"
#include "rules/check_rule.h"
#include "rules/dc_rule.h"
#include "rules/fd_rule.h"

namespace bigdansing {

namespace {

/// FD LHS -> RHS: both tuples non-null and code-equal on every LHS slot,
/// code-differing on some RHS slot. Code equality is Value equality within
/// one pool (null==null included), so this is exactly FdRule::Detect's
/// emission condition.
class FdKernel : public DetectKernel {
 public:
  FdKernel(std::vector<uint16_t> lhs, std::vector<uint16_t> rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  bool Matches(const CodeTuple& t1, const CodeTuple& t2) const override {
    for (uint16_t s : lhs_) {
      const uint32_t a = t1.code(s);
      const uint32_t b = t2.code(s);
      if (a == ValuePool::kNullCode || b == ValuePool::kNullCode || a != b) {
        return false;
      }
    }
    for (uint16_t s : rhs_) {
      if (t1.code(s) != t2.code(s)) return true;
    }
    return false;
  }

  void MatchUpper(const CodeTuple* tuples, size_t n,
                  std::vector<std::pair<uint32_t, uint32_t>>* matches)
      const override {
    if (lhs_.size() == 1 && rhs_.size() == 1) {
      // The canonical A -> B shape: hoist the outer tuple's two codes, so
      // the inner loop is two loads and two compares per pair.
      const uint16_t ls = lhs_[0];
      const uint16_t rs = rhs_[0];
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t a_lhs = tuples[i].code(ls);
        if (a_lhs == ValuePool::kNullCode) continue;
        const uint32_t a_rhs = tuples[i].code(rs);
        for (uint32_t j = i + 1; j < n; ++j) {
          if (tuples[j].code(ls) == a_lhs && tuples[j].code(rs) != a_rhs) {
            matches->emplace_back(i, j);
          }
        }
      }
      return;
    }
    DetectKernel::MatchUpper(tuples, n, matches);
  }

 private:
  std::vector<uint16_t> lhs_;
  std::vector<uint16_t> rhs_;
};

/// Variable CFD (X -> A, tp): FD semantics restricted to tuples whose
/// pattern-constant attributes carry the constant's code.
class CfdPairKernel : public DetectKernel {
 public:
  struct PatternCheck {
    uint16_t slot;
    uint32_t const_eq;  // kAbsentCode when the constant is not in the data
  };

  CfdPairKernel(std::vector<PatternCheck> pattern, std::vector<uint16_t> lhs,
                uint16_t rhs)
      : pattern_(std::move(pattern)), lhs_(std::move(lhs)), rhs_(rhs) {}

  bool Matches(const CodeTuple& t1, const CodeTuple& t2) const override {
    for (const PatternCheck& pc : pattern_) {
      if (t1.code(pc.slot) != pc.const_eq ||
          t2.code(pc.slot) != pc.const_eq) {
        return false;
      }
      // A null pattern constant never matches (MatchesPattern rejects it
      // even for null cells) — its const_eq is kNullCode, which also
      // equals a null cell's code, so reject that case explicitly.
      if (pc.const_eq >= ValuePool::kAbsentCode) return false;
    }
    for (uint16_t s : lhs_) {
      const uint32_t a = t1.code(s);
      const uint32_t b = t2.code(s);
      if (a == ValuePool::kNullCode || b == ValuePool::kNullCode || a != b) {
        return false;
      }
    }
    return t1.code(rhs_) != t2.code(rhs_);
  }

 private:
  std::vector<PatternCheck> pattern_;
  std::vector<uint16_t> lhs_;
  uint16_t rhs_;
};

/// Constant CFD: pattern matches and the RHS cell is null or differs from
/// the RHS constant.
class ConstantCfdKernel : public DetectKernel {
 public:
  ConstantCfdKernel(std::vector<CfdPairKernel::PatternCheck> pattern,
                    uint16_t rhs, uint32_t rhs_const)
      : pattern_(std::move(pattern)), rhs_(rhs), rhs_const_(rhs_const) {}

  bool Matches(const CodeTuple&, const CodeTuple&) const override {
    return false;
  }

  bool MatchesSingle(const CodeTuple& t) const override {
    for (const auto& pc : pattern_) {
      if (t.code(pc.slot) != pc.const_eq) return false;
      if (pc.const_eq >= ValuePool::kAbsentCode) return false;
    }
    const uint32_t v = t.code(rhs_);
    return v == ValuePool::kNullCode || v != rhs_const_;
  }

 private:
  std::vector<CfdPairKernel::PatternCheck> pattern_;
  uint16_t rhs_;
  uint32_t rhs_const_;
};

/// DC over a tuple pair: conjunction of compiled predicates.
class DcKernel : public DetectKernel {
 public:
  explicit DcKernel(std::vector<CodePredicate> preds)
      : preds_(std::move(preds)) {}

  bool Matches(const CodeTuple& t1, const CodeTuple& t2) const override {
    for (const CodePredicate& p : preds_) {
      if (!p.Eval(t1, t2)) return false;
    }
    return true;
  }

 private:
  std::vector<CodePredicate> preds_;
};

/// Single-tuple DC (CheckRule): same conjunction with both sides on t1.
class CheckKernel : public DetectKernel {
 public:
  explicit CheckKernel(std::vector<CodePredicate> preds)
      : preds_(std::move(preds)) {}

  bool Matches(const CodeTuple&, const CodeTuple&) const override {
    return false;
  }

  bool MatchesSingle(const CodeTuple& t) const override {
    for (const CodePredicate& p : preds_) {
      if (!p.Eval(t, t)) return false;
    }
    return true;
  }

 private:
  std::vector<CodePredicate> preds_;
};

// ---------------------------------------------------------------------------
// Templates (analyzed rules, bound to pools per dataset)

class FdTemplate : public KernelTemplate {
 public:
  FdTemplate(std::vector<size_t> lhs_cols, std::vector<size_t> rhs_cols) {
    for (size_t c : lhs_cols) lhs_.push_back(SlotFor(c));
    for (size_t c : rhs_cols) rhs_.push_back(SlotFor(c));
  }

  std::unique_ptr<DetectKernel> Bind(
      const std::vector<const ValuePool*>&) const override {
    return std::make_unique<FdKernel>(lhs_, rhs_);
  }

 private:
  std::vector<uint16_t> lhs_;
  std::vector<uint16_t> rhs_;
};

class CfdTemplate : public KernelTemplate {
 public:
  struct PatternSlot {
    uint16_t slot;
    Value constant;
  };

  CfdTemplate(std::vector<size_t> cols, std::vector<PatternSlot> pattern,
              std::vector<uint16_t> lhs, uint16_t rhs, bool constant_cfd,
              std::optional<Value> rhs_constant)
      : pattern_(std::move(pattern)),
        lhs_(std::move(lhs)),
        rhs_(rhs),
        constant_cfd_(constant_cfd),
        rhs_constant_(std::move(rhs_constant)) {
    columns_ = std::move(cols);
  }

  std::unique_ptr<DetectKernel> Bind(
      const std::vector<const ValuePool*>& pools) const override {
    std::vector<CfdPairKernel::PatternCheck> checks;
    checks.reserve(pattern_.size());
    for (const auto& p : pattern_) {
      checks.push_back({p.slot, pools[p.slot]->CodeOf(p.constant)});
    }
    if (constant_cfd_) {
      return std::make_unique<ConstantCfdKernel>(
          std::move(checks), rhs_, pools[rhs_]->CodeOf(*rhs_constant_));
    }
    return std::make_unique<CfdPairKernel>(std::move(checks), lhs_, rhs_);
  }

 private:
  std::vector<PatternSlot> pattern_;
  std::vector<uint16_t> lhs_;
  uint16_t rhs_;
  bool constant_cfd_;
  std::optional<Value> rhs_constant_;
};

/// Shared by DcRule and CheckRule: a conjunction of predicates compiled to
/// CodePredicates, with constants positioned in the pools at Bind time.
class ConjunctionTemplate : public KernelTemplate {
 public:
  struct Analyzed {
    CodePredicate compiled;  // constant bounds filled at Bind
    std::optional<Value> constant;
  };

  ConjunctionTemplate(std::vector<Analyzed> preds, bool single)
      : preds_(std::move(preds)), single_(single) {}

  static std::shared_ptr<const KernelTemplate> Analyze(
      const std::vector<Predicate>& predicates, const Schema& schema,
      bool single) {
    auto tmpl = std::make_shared<ConjunctionTemplate>(
        std::vector<Analyzed>{}, single);
    for (const Predicate& p : predicates) {
      if (p.op == CmpOp::kSimilar) return nullptr;  // interpreted only
      auto left = schema.IndexOf(p.left_attr);
      if (!left.ok()) return nullptr;
      Analyzed a;
      a.compiled.op = p.op;
      a.compiled.left_is_t1 = p.left_tuple == 1;
      a.compiled.left_slot = tmpl->SlotFor(*left);
      a.compiled.right_is_constant = p.right_is_constant;
      if (p.right_is_constant) {
        if (p.constant.is_null()) a.compiled.never = true;
        a.constant = p.constant;
      } else {
        auto right = schema.IndexOf(p.right_attr);
        if (!right.ok()) return nullptr;
        a.compiled.right_is_t1 = p.right_tuple == 1;
        a.compiled.right_slot = tmpl->SlotFor(*right);
        // Codes of the two sides are compared directly, so the columns
        // must intern into one pool.
        if (*left != *right) tmpl->ShareGroup(*left, *right);
      }
      tmpl->preds_.push_back(std::move(a));
    }
    return tmpl;
  }

  std::unique_ptr<DetectKernel> Bind(
      const std::vector<const ValuePool*>& pools) const override {
    std::vector<CodePredicate> compiled;
    compiled.reserve(preds_.size());
    for (const Analyzed& a : preds_) {
      CodePredicate p = a.compiled;
      if (p.right_is_constant && !p.never) {
        const ValuePool& pool = *pools[p.left_slot];
        p.const_eq = pool.CodeOf(*a.constant);
        p.const_lo = pool.LowerBound(*a.constant);
        p.const_hi = pool.UpperBound(*a.constant);
      }
      compiled.push_back(p);
    }
    if (single_) return std::make_unique<CheckKernel>(std::move(compiled));
    return std::make_unique<DcKernel>(std::move(compiled));
  }

 private:
  std::vector<Analyzed> preds_;
  bool single_;
};

std::shared_ptr<const KernelTemplate> CompileFd(const Rule& rule,
                                                const Schema& schema) {
  const auto* fd = dynamic_cast<const FdRule*>(&rule);
  if (fd == nullptr) return nullptr;
  std::vector<size_t> lhs_cols;
  std::vector<size_t> rhs_cols;
  for (const auto& a : fd->lhs()) {
    auto idx = schema.IndexOf(a);
    if (!idx.ok()) return nullptr;
    lhs_cols.push_back(*idx);
  }
  for (const auto& a : fd->rhs()) {
    auto idx = schema.IndexOf(a);
    if (!idx.ok()) return nullptr;
    rhs_cols.push_back(*idx);
  }
  return std::make_shared<FdTemplate>(std::move(lhs_cols),
                                      std::move(rhs_cols));
}

std::shared_ptr<const KernelTemplate> CompileCfd(const Rule& rule,
                                                 const Schema& schema) {
  const auto* cfd = dynamic_cast<const CfdRule*>(&rule);
  if (cfd == nullptr) return nullptr;
  auto rhs_idx = schema.IndexOf(cfd->rhs().attribute);
  if (!rhs_idx.ok()) return nullptr;

  std::vector<size_t> cols;
  auto slot_for = [&cols](size_t column) -> uint16_t {
    for (size_t s = 0; s < cols.size(); ++s) {
      if (cols[s] == column) return static_cast<uint16_t>(s);
    }
    cols.push_back(column);
    return static_cast<uint16_t>(cols.size() - 1);
  };
  std::vector<CfdTemplate::PatternSlot> pattern;
  std::vector<uint16_t> lhs;
  for (const auto& attr : cfd->lhs()) {
    auto idx = schema.IndexOf(attr.attribute);
    if (!idx.ok()) return nullptr;
    const uint16_t slot = slot_for(*idx);
    if (attr.constant.has_value()) {
      pattern.push_back({slot, *attr.constant});
    }
    // Detect requires non-null equality on every LHS column, constant-
    // patterned ones included.
    lhs.push_back(slot);
  }
  const uint16_t rhs_slot = slot_for(*rhs_idx);
  std::optional<Value> rhs_constant;
  if (cfd->is_constant_cfd()) rhs_constant = *cfd->rhs().constant;
  return std::make_shared<CfdTemplate>(std::move(cols), std::move(pattern),
                                       std::move(lhs), rhs_slot,
                                       cfd->is_constant_cfd(),
                                       std::move(rhs_constant));
}

std::shared_ptr<const KernelTemplate> CompileDc(const Rule& rule,
                                                const Schema& schema) {
  const auto* dc = dynamic_cast<const DcRule*>(&rule);
  if (dc == nullptr) return nullptr;
  return ConjunctionTemplate::Analyze(dc->predicates(), schema,
                                      /*single=*/false);
}

std::shared_ptr<const KernelTemplate> CompileCheck(const Rule& rule,
                                                   const Schema& schema) {
  const auto* check = dynamic_cast<const CheckRule*>(&rule);
  if (check == nullptr) return nullptr;
  return ConjunctionTemplate::Analyze(check->predicates(), schema,
                                      /*single=*/true);
}

}  // namespace

bool DetectKernel::MatchesSingle(const CodeTuple&) const { return false; }

void DetectKernel::MatchUpper(
    const CodeTuple* tuples, size_t n,
    std::vector<std::pair<uint32_t, uint32_t>>* matches) const {
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (Matches(tuples[i], tuples[j])) matches->emplace_back(i, j);
    }
  }
}

uint16_t KernelTemplate::SlotFor(size_t column) {
  for (size_t s = 0; s < columns_.size(); ++s) {
    if (columns_[s] == column) return static_cast<uint16_t>(s);
  }
  columns_.push_back(column);
  return static_cast<uint16_t>(columns_.size() - 1);
}

void KernelTemplate::ShareGroup(size_t a, size_t b) {
  // Union the groups containing a and b (creating singletons as needed).
  auto find = [&](size_t col) -> size_t {
    for (size_t g = 0; g < shared_groups_.size(); ++g) {
      for (size_t c : shared_groups_[g]) {
        if (c == col) return g;
      }
    }
    shared_groups_.push_back({col});
    return shared_groups_.size() - 1;
  };
  const size_t ga = find(a);
  const size_t gb = find(b);
  if (ga == gb) return;
  auto& dst = shared_groups_[ga];
  auto& src = shared_groups_[gb];
  dst.insert(dst.end(), src.begin(), src.end());
  shared_groups_.erase(shared_groups_.begin() + gb);
}

KernelRegistry& KernelRegistry::Instance() {
  static KernelRegistry* instance = new KernelRegistry();
  return *instance;
}

KernelRegistry::KernelRegistry() {
  Register("fd", CompileFd);
  Register("cfd", CompileCfd);
  Register("dc", CompileDc);
  Register("check", CompileCheck);
}

void KernelRegistry::Register(std::string name, Compiler compiler) {
  compilers_.emplace_back(std::move(name), std::move(compiler));
}

std::shared_ptr<const KernelTemplate> KernelRegistry::Compile(
    const Rule& rule, const Schema& schema) const {
  for (const auto& [name, compiler] : compilers_) {
    if (auto tmpl = compiler(rule, schema)) return tmpl;
  }
  return nullptr;
}

}  // namespace bigdansing
