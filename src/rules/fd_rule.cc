#include "rules/fd_rule.h"

namespace bigdansing {

FdRule::FdRule(std::string name, std::vector<std::string> lhs,
               std::vector<std::string> rhs)
    : Rule(std::move(name)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

std::vector<std::string> FdRule::RelevantAttributes() const {
  std::vector<std::string> attrs = lhs_;
  attrs.insert(attrs.end(), rhs_.begin(), rhs_.end());
  return attrs;
}

Status FdRule::Bind(const Schema& schema) {
  lhs_columns_.clear();
  rhs_columns_.clear();
  for (const auto& a : lhs_) {
    auto idx = schema.IndexOf(a);
    if (!idx.ok()) return idx.status();
    lhs_columns_.push_back(*idx);
  }
  for (const auto& a : rhs_) {
    auto idx = schema.IndexOf(a);
    if (!idx.ok()) return idx.status();
    rhs_columns_.push_back(*idx);
  }
  bound_schema_ = schema;
  return Status::OK();
}

void FdRule::Detect(const Row& t1, const Row& t2,
                    std::vector<Violation>* out) const {
  // LHS must agree on non-null values; a null LHS cell cannot witness a
  // violation.
  for (size_t c : lhs_columns_) {
    const Value& a = t1.value(c);
    const Value& b = t2.value(c);
    if (a.is_null() || b.is_null() || a != b) return;
  }
  // Violation layout (consumed by GenFix): t1.lhs*, t2.lhs*, then one
  // (t1.rhs_k, t2.rhs_k) pair per differing RHS attribute.
  Violation v;
  bool any_diff = false;
  for (size_t c : lhs_columns_) {
    v.cells.push_back(MakeCell(t1, c, bound_schema_));
    v.cells.push_back(MakeCell(t2, c, bound_schema_));
  }
  for (size_t c : rhs_columns_) {
    if (t1.value(c) != t2.value(c)) {
      any_diff = true;
      v.cells.push_back(MakeCell(t1, c, bound_schema_));
      v.cells.push_back(MakeCell(t2, c, bound_schema_));
    }
  }
  if (!any_diff) return;
  v.rule_name = name();
  out->push_back(std::move(v));
}

void FdRule::GenFix(const Violation& violation, std::vector<Fix>* out) const {
  size_t lhs_cells = 2 * lhs_columns_.size();
  // Equate each differing RHS pair.
  for (size_t i = lhs_cells; i + 1 < violation.cells.size(); i += 2) {
    Fix fix;
    fix.left = violation.cells[i];
    fix.op = FixOp::kEq;
    fix.right = FixTerm::MakeCell(violation.cells[i + 1]);
    out->push_back(std::move(fix));
  }
  if (generate_lhs_fixes_) {
    // Alternative resolution: break the LHS agreement (paper §2.1, "at
    // least one element between t2[zipcode] and t4[zipcode] differs").
    for (size_t i = 0; i + 1 < lhs_cells; i += 2) {
      Fix fix;
      fix.left = violation.cells[i];
      fix.op = FixOp::kNeq;
      fix.right = FixTerm::MakeCell(violation.cells[i + 1]);
      out->push_back(std::move(fix));
    }
  }
}

}  // namespace bigdansing
