#include "rules/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"
#include "rules/cfd_rule.h"
#include "rules/check_rule.h"
#include "rules/dc_rule.h"
#include "rules/fd_rule.h"

namespace bigdansing {

namespace {

/// Parses one side of a predicate: "t1.attr", "t2.attr", "attr" (implies
/// t1), a quoted string constant, or a numeric constant.
struct Operand {
  bool is_constant = false;
  int tuple = 1;
  std::string attr;
  Value constant;
};

Result<Operand> ParseOperand(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return Status::ParseError("empty operand");
  Operand op;
  if (text.front() == '"') {
    if (text.size() < 2 || text.back() != '"') {
      return Status::ParseError("unterminated string constant: " +
                                std::string(text));
    }
    op.is_constant = true;
    op.constant = Value(std::string(text.substr(1, text.size() - 2)));
    return op;
  }
  if (LooksLikeInt(text) || LooksLikeDouble(text)) {
    op.is_constant = true;
    op.constant = Value::Parse(text);
    return op;
  }
  if (StartsWith(text, "t1.") || StartsWith(text, "t2.") ||
      StartsWith(text, "t3.")) {
    op.tuple = text[1] - '0';
    op.attr = std::string(Trim(text.substr(3)));
  } else {
    op.tuple = 1;
    op.attr = std::string(text);
  }
  if (op.attr.empty()) {
    return Status::ParseError("empty attribute in operand: " +
                              std::string(text));
  }
  return op;
}

/// Finds the comparison operator in `conjunct`, returning its position,
/// length, op code and similarity threshold (for ~).
struct OpMatch {
  size_t pos = std::string_view::npos;
  size_t len = 0;
  CmpOp op = CmpOp::kEq;
  double threshold = 0.8;
};

Result<OpMatch> FindOperator(std::string_view conjunct) {
  // Scan left to right; match two-character operators first at each
  // position so "<=" is not read as "<".
  for (size_t i = 0; i < conjunct.size(); ++i) {
    char c = conjunct[i];
    char next = i + 1 < conjunct.size() ? conjunct[i + 1] : '\0';
    OpMatch m;
    m.pos = i;
    if (c == '!' && next == '=') {
      m.op = CmpOp::kNeq;
      m.len = 2;
      return m;
    }
    if (c == '<' && next == '=') {
      m.op = CmpOp::kLeq;
      m.len = 2;
      return m;
    }
    if (c == '>' && next == '=') {
      m.op = CmpOp::kGeq;
      m.len = 2;
      return m;
    }
    if (c == '<' && next == '>') {
      m.op = CmpOp::kNeq;
      m.len = 2;
      return m;
    }
    if (c == '=') {
      m.op = CmpOp::kEq;
      m.len = (next == '=') ? 2 : 1;
      return m;
    }
    if (c == '<') {
      m.op = CmpOp::kLt;
      m.len = 1;
      return m;
    }
    if (c == '>') {
      m.op = CmpOp::kGt;
      m.len = 1;
      return m;
    }
    if (c == '~') {
      m.op = CmpOp::kSimilar;
      m.len = 1;
      // Optional inline threshold: "~0.8".
      size_t j = i + 1;
      size_t start = j;
      while (j < conjunct.size() &&
             (std::isdigit(static_cast<unsigned char>(conjunct[j])) ||
              conjunct[j] == '.')) {
        ++j;
      }
      if (j > start) {
        m.threshold = std::strtod(std::string(conjunct.substr(start, j - start)).c_str(),
                                  nullptr);
        m.len = 1 + (j - start);
      }
      return m;
    }
  }
  return Status::ParseError("no comparison operator in: " +
                            std::string(conjunct));
}

Result<Predicate> ParsePredicate(std::string_view conjunct) {
  auto match = FindOperator(conjunct);
  if (!match.ok()) return match.status();
  auto left = ParseOperand(conjunct.substr(0, match->pos));
  if (!left.ok()) return left.status();
  auto right = ParseOperand(conjunct.substr(match->pos + match->len));
  if (!right.ok()) return right.status();
  if (left->is_constant) {
    return Status::ParseError("left side of a predicate must be an attribute: " +
                              std::string(conjunct));
  }
  Predicate p;
  p.left_tuple = left->tuple;
  p.left_attr = left->attr;
  p.op = match->op;
  p.similarity_threshold = match->threshold;
  if (right->is_constant) {
    p.right_is_constant = true;
    p.constant = right->constant;
  } else {
    p.right_is_constant = false;
    p.right_tuple = right->tuple;
    p.right_attr = right->attr;
  }
  return p;
}

Result<std::vector<Predicate>> ParseConjunction(std::string_view body) {
  std::vector<Predicate> preds;
  for (const auto& conj : Split(body, '&')) {
    if (Trim(conj).empty()) {
      return Status::ParseError("empty conjunct in rule body");
    }
    auto p = ParsePredicate(conj);
    if (!p.ok()) return p.status();
    preds.push_back(std::move(*p));
  }
  if (preds.empty()) return Status::ParseError("rule body has no predicates");
  return preds;
}

Result<RulePtr> ParseFd(const std::string& name, std::string_view body) {
  size_t arrow = body.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("FD requires '->': " + std::string(body));
  }
  auto parse_attrs = [](std::string_view part) {
    std::vector<std::string> attrs;
    for (const auto& a : Split(part, ',')) {
      auto trimmed = Trim(a);
      if (!trimmed.empty()) attrs.emplace_back(trimmed);
    }
    return attrs;
  };
  auto lhs = parse_attrs(body.substr(0, arrow));
  auto rhs = parse_attrs(body.substr(arrow + 2));
  if (lhs.empty() || rhs.empty()) {
    return Status::ParseError("FD needs attributes on both sides: " +
                              std::string(body));
  }
  return RulePtr(new FdRule(name, std::move(lhs), std::move(rhs)));
}

/// Parses one CFD tableau item: "attr" (wildcard) or "attr=constant".
Result<CfdPatternAttr> ParsePatternAttr(std::string_view item) {
  item = Trim(item);
  if (item.empty()) return Status::ParseError("empty CFD attribute");
  CfdPatternAttr out;
  size_t eq = item.find('=');
  if (eq == std::string_view::npos) {
    out.attribute = std::string(item);
    return out;
  }
  out.attribute = std::string(Trim(item.substr(0, eq)));
  auto constant = ParseOperand(item.substr(eq + 1));
  if (!constant.ok()) return constant.status();
  if (!constant->is_constant) {
    return Status::ParseError("CFD pattern value must be a constant: " +
                              std::string(item));
  }
  if (out.attribute.empty()) {
    return Status::ParseError("empty attribute in CFD pattern: " +
                              std::string(item));
  }
  out.constant = constant->constant;
  return out;
}

/// "CFD: country=\"UK\", zipcode -> city" (variable) or
/// "CFD: zipcode=90210 -> city=\"LA\"" (constant).
Result<RulePtr> ParseCfd(const std::string& name, std::string_view body) {
  size_t arrow = body.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("CFD requires '->': " + std::string(body));
  }
  std::vector<CfdPatternAttr> lhs;
  for (const auto& item : Split(body.substr(0, arrow), ',')) {
    auto attr = ParsePatternAttr(item);
    if (!attr.ok()) return attr.status();
    lhs.push_back(std::move(*attr));
  }
  auto rhs_items = Split(body.substr(arrow + 2), ',');
  if (lhs.empty() || rhs_items.size() != 1) {
    return Status::ParseError(
        "CFD needs LHS attributes and exactly one RHS attribute: " +
        std::string(body));
  }
  auto rhs = ParsePatternAttr(rhs_items[0]);
  if (!rhs.ok()) return rhs.status();
  return RulePtr(new CfdRule(name, std::move(lhs), std::move(*rhs)));
}

}  // namespace

Result<std::vector<Predicate>> ParsePredicateConjunction(
    const std::string& body) {
  return ParseConjunction(body);
}

Result<RulePtr> ParseRule(const std::string& text) {
  std::string_view rest = Trim(text);
  // Optional "name:" prefix before the kind keyword.
  std::string name(rest);
  auto starts_kind = [&](std::string_view s) {
    auto lower = ToLower(s);
    return StartsWith(lower, "fd:") || StartsWith(lower, "dc:") ||
           StartsWith(lower, "cfd:") || StartsWith(lower, "check:");
  };
  if (!starts_kind(rest)) {
    size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("rule must start with FD:, DC: or CHECK:");
    }
    name = std::string(Trim(rest.substr(0, colon)));
    rest = Trim(rest.substr(colon + 1));
    if (!starts_kind(rest)) {
      return Status::ParseError("expected FD:, DC: or CHECK: after name in: " +
                                text);
    }
  } else {
    // A leading token that is itself a kind keyword (a rule named "fd")
    // is a name when another kind keyword follows it.
    size_t colon = rest.find(':');
    auto after = Trim(rest.substr(colon + 1));
    if (starts_kind(after)) {
      name = std::string(Trim(rest.substr(0, colon)));
      rest = after;
    }
  }
  std::string lower = ToLower(rest);
  if (StartsWith(lower, "cfd:")) {
    return ParseCfd(name, Trim(rest.substr(4)));
  }
  if (StartsWith(lower, "fd:")) {
    return ParseFd(name, Trim(rest.substr(3)));
  }
  if (StartsWith(lower, "dc:")) {
    auto preds = ParseConjunction(Trim(rest.substr(3)));
    if (!preds.ok()) return preds.status();
    bool any_pair = false;
    for (const auto& p : *preds) {
      if (p.left_tuple > 2 || (!p.right_is_constant && p.right_tuple > 2)) {
        return Status::ParseError(
            "DC supports t1/t2 only; use a three-tuple DC (DC3 / "
            "ParseThreeTupleDc) for t3");
      }
      any_pair = any_pair || p.left_tuple == 2 ||
                 (!p.right_is_constant && p.right_tuple == 2);
    }
    if (!any_pair) {
      return Status::ParseError(
          "DC references only t1; use CHECK: for single-tuple rules");
    }
    return RulePtr(new DcRule(name, std::move(*preds)));
  }
  if (StartsWith(lower, "check:")) {
    auto preds = ParseConjunction(Trim(rest.substr(6)));
    if (!preds.ok()) return preds.status();
    return RulePtr(new CheckRule(name, std::move(*preds)));
  }
  return Status::ParseError("unknown rule kind in: " + text);
}

}  // namespace bigdansing
