#ifndef BIGDANSING_RULES_SIMILARITY_H_
#define BIGDANSING_RULES_SIMILARITY_H_

#include <string>
#include <string_view>

namespace bigdansing {

/// Levenshtein edit distance between `a` and `b` (insert/delete/substitute,
/// unit costs). O(|a|*|b|) time, O(min) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized Levenshtein similarity in [0, 1]: 1 - dist / max(|a|, |b|).
/// Two empty strings are fully similar (1.0).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the character-trigram sets of `a` and `b`;
/// strings shorter than 3 characters are compared as whole tokens.
double JaccardTrigramSimilarity(std::string_view a, std::string_view b);

/// The `simF` of the paper's rule φU: true when the normalized Levenshtein
/// similarity reaches `threshold`.
bool IsSimilar(std::string_view a, std::string_view b, double threshold);

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_SIMILARITY_H_
