#ifndef BIGDANSING_RULES_DC_RULE_H_
#define BIGDANSING_RULES_DC_RULE_H_

#include <string>
#include <vector>

#include "rules/rule.h"

namespace bigdansing {

/// A denial constraint over a tuple pair: ∀ t1, t2 ¬(p1 ∧ ... ∧ pk)
/// (e.g. the paper's φD: ¬(t1.rate > t2.rate ∧ t1.salary < t2.salary)).
/// A violation is an ordered pair satisfying every predicate; GenFix
/// proposes the negation of each predicate as a possible fix.
class DcRule : public Rule {
 public:
  DcRule(std::string name, std::vector<Predicate> predicates);

  const std::vector<Predicate>& predicates() const { return predicates_; }

  std::vector<std::string> RelevantAttributes() const override;

  /// Blocking key from equality predicates of the form t1.A = t2.A.
  std::vector<std::string> BlockingAttributes() const override;

  /// True when the predicate set is invariant under swapping t1 and t2.
  bool IsSymmetric() const override;

  /// Ordering predicates between t1 and t2, enabling OCJoin.
  std::vector<OrderingCondition> OrderingConditions() const override;

  Status Bind(const Schema& schema) override;

  /// Binds a two-table DC: t1 attributes resolve against `left_schema`,
  /// t2 attributes against `right_schema` (the CoBlock case, Figure 6).
  Status BindAcross(const Schema& left_schema, const Schema& right_schema);

  /// Equality predicates t1.X = t2.Y usable as a cross-table blocking key:
  /// pairs of (left-table attribute, right-table attribute).
  std::vector<std::pair<std::string, std::string>> BlockingAttributePairs()
      const;

  void Detect(const Row& t1, const Row& t2,
              std::vector<Violation>* out) const override;
  void GenFix(const Violation& violation,
              std::vector<Fix>* out) const override;

 private:
  std::vector<Predicate> predicates_;
  std::vector<BoundPredicate> bound_;
  Schema bound_schema_;        ///< Schema for t1 cells.
  Schema bound_right_schema_;  ///< Schema for t2 cells (== bound_schema_ unless bound across).
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_DC_RULE_H_
