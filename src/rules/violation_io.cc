#include "rules/violation_io.h"

#include <fstream>

namespace bigdansing {

namespace {

/// CSV-quotes a field when needed (commas, quotes, newlines).
std::string QuoteIfNeeded(const std::string& field) {
  bool needs = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs = true;
      break;
    }
  }
  if (!needs) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

std::string WriteViolationsCsv(
    const std::vector<ViolationWithFixes>& violations) {
  std::string out = "rule,rows,cells,fixes\n";
  for (const auto& vf : violations) {
    std::string rows;
    for (RowId id : vf.violation.RowIds()) {
      if (!rows.empty()) rows.push_back(';');
      rows += std::to_string(id);
    }
    std::string cells;
    for (const auto& c : vf.violation.cells) {
      if (!cells.empty()) cells.push_back(';');
      cells += "t" + std::to_string(c.ref.row_id) + "[" + c.attribute +
               "]=" + c.value.ToString();
    }
    std::string fixes;
    for (const auto& f : vf.fixes) {
      if (!fixes.empty()) fixes.push_back(';');
      fixes += f.ToString();
    }
    out += QuoteIfNeeded(vf.violation.rule_name) + "," + QuoteIfNeeded(rows) +
           "," + QuoteIfNeeded(cells) + "," + QuoteIfNeeded(fixes) + "\n";
  }
  return out;
}

Status WriteViolationsCsvFile(
    const std::vector<ViolationWithFixes>& violations,
    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteViolationsCsv(violations);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace bigdansing
