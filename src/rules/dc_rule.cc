#include "rules/dc_rule.h"

#include <algorithm>
#include <set>

namespace bigdansing {

namespace {

/// Canonical text form of a predicate with tuple indices optionally swapped;
/// two-tuple predicates are normalized so t1 appears on the left. Used for
/// the symmetry check.
std::string CanonicalForm(const Predicate& p, bool swap) {
  auto tup = [&](int t) { return swap ? 3 - t : t; };
  int lt = tup(p.left_tuple);
  if (p.right_is_constant) {
    return "t" + std::to_string(lt) + "." + p.left_attr + CmpOpName(p.op) +
           "#" + p.constant.ToString();
  }
  int rt = tup(p.right_tuple);
  std::string la = p.left_attr;
  std::string ra = p.right_attr;
  CmpOp op = p.op;
  if (lt > rt || (lt == rt && la > ra)) {
    std::swap(lt, rt);
    std::swap(la, ra);
    op = FlipOp(op);
  }
  return "t" + std::to_string(lt) + "." + la + CmpOpName(op) + "t" +
         std::to_string(rt) + "." + ra;
}

}  // namespace

DcRule::DcRule(std::string name, std::vector<Predicate> predicates)
    : Rule(std::move(name)), predicates_(std::move(predicates)) {}

std::vector<std::string> DcRule::RelevantAttributes() const {
  std::vector<std::string> attrs;
  auto add = [&](const std::string& a) {
    if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
      attrs.push_back(a);
    }
  };
  for (const auto& p : predicates_) {
    add(p.left_attr);
    if (!p.right_is_constant) add(p.right_attr);
  }
  return attrs;
}

std::vector<std::string> DcRule::BlockingAttributes() const {
  std::vector<std::string> attrs;
  for (const auto& p : predicates_) {
    if (p.op == CmpOp::kEq && !p.right_is_constant &&
        p.left_tuple != p.right_tuple && p.left_attr == p.right_attr) {
      attrs.push_back(p.left_attr);
    }
  }
  return attrs;
}

bool DcRule::IsSymmetric() const {
  std::multiset<std::string> original;
  std::multiset<std::string> swapped;
  for (const auto& p : predicates_) {
    original.insert(CanonicalForm(p, /*swap=*/false));
    swapped.insert(CanonicalForm(p, /*swap=*/true));
  }
  return original == swapped;
}

std::vector<OrderingCondition> DcRule::OrderingConditions() const {
  std::vector<OrderingCondition> conds;
  for (const auto& p : predicates_) {
    if (!IsOrderingOp(p.op) || p.right_is_constant) continue;
    if (p.left_tuple == p.right_tuple) continue;
    OrderingCondition c;
    if (p.left_tuple == 1) {
      c.left_attr = p.left_attr;
      c.op = p.op;
      c.right_attr = p.right_attr;
    } else {
      // Normalize to t1 on the left.
      c.left_attr = p.right_attr;
      c.op = FlipOp(p.op);
      c.right_attr = p.left_attr;
    }
    conds.push_back(std::move(c));
  }
  return conds;
}

Status DcRule::Bind(const Schema& schema) {
  bound_.clear();
  for (const auto& p : predicates_) {
    auto bp = BoundPredicate::Bind(p, schema);
    if (!bp.ok()) return bp.status();
    bound_.push_back(std::move(*bp));
  }
  bound_schema_ = schema;
  bound_right_schema_ = schema;
  return Status::OK();
}

Status DcRule::BindAcross(const Schema& left_schema,
                          const Schema& right_schema) {
  bound_.clear();
  for (const auto& p : predicates_) {
    auto bp = BoundPredicate::BindAcross(p, left_schema, right_schema);
    if (!bp.ok()) return bp.status();
    bound_.push_back(std::move(*bp));
  }
  bound_schema_ = left_schema;
  bound_right_schema_ = right_schema;
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>>
DcRule::BlockingAttributePairs() const {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& p : predicates_) {
    if (p.op != CmpOp::kEq || p.right_is_constant ||
        p.left_tuple == p.right_tuple) {
      continue;
    }
    if (p.left_tuple == 1) {
      pairs.emplace_back(p.left_attr, p.right_attr);
    } else {
      pairs.emplace_back(p.right_attr, p.left_attr);
    }
  }
  return pairs;
}

void DcRule::Detect(const Row& t1, const Row& t2,
                    std::vector<Violation>* out) const {
  // Pair enumeration (Iterate / OCJoin / CoBlock) guarantees t1 and t2 are
  // distinct units, so no self-pair check is needed here.
  for (const auto& bp : bound_) {
    if (!bp.Eval(t1, t2)) return;
  }
  // Violation layout (consumed by GenFix): per predicate, the left cell
  // followed by the right cell when the right side is a cell.
  Violation v;
  v.rule_name = name();
  for (const auto& bp : bound_) {
    const Predicate& p = bp.pred();
    const Row& lrow = p.left_tuple == 1 ? t1 : t2;
    const Schema& lschema = p.left_tuple == 1 ? bound_schema_ : bound_right_schema_;
    v.cells.push_back(MakeCell(lrow, bp.left_column(), lschema));
    if (!p.right_is_constant) {
      const Row& rrow = p.right_tuple == 1 ? t1 : t2;
      const Schema& rschema =
          p.right_tuple == 1 ? bound_schema_ : bound_right_schema_;
      v.cells.push_back(MakeCell(rrow, bp.right_column(), rschema));
    }
  }
  out->push_back(std::move(v));
}

void DcRule::GenFix(const Violation& violation, std::vector<Fix>* out) const {
  // Each predicate held; negating any one of them resolves the violation.
  size_t cell_index = 0;
  for (const auto& bp : bound_) {
    const Predicate& p = bp.pred();
    if (cell_index >= violation.cells.size()) return;  // Malformed violation.
    Fix fix;
    fix.left = violation.cells[cell_index++];
    CmpOp negated = NegateOp(p.op);
    switch (negated) {
      case CmpOp::kEq:
        fix.op = FixOp::kEq;
        break;
      case CmpOp::kNeq:
        fix.op = FixOp::kNeq;
        break;
      case CmpOp::kLt:
        fix.op = FixOp::kLt;
        break;
      case CmpOp::kGt:
        fix.op = FixOp::kGt;
        break;
      case CmpOp::kLeq:
        fix.op = FixOp::kLeq;
        break;
      case CmpOp::kGeq:
        fix.op = FixOp::kGeq;
        break;
      case CmpOp::kSimilar:
        fix.op = FixOp::kEq;
        break;
    }
    if (p.right_is_constant) {
      fix.right = FixTerm::MakeConstant(p.constant);
    } else {
      if (cell_index >= violation.cells.size()) return;
      fix.right = FixTerm::MakeCell(violation.cells[cell_index++]);
    }
    out->push_back(std::move(fix));
  }
}

}  // namespace bigdansing
