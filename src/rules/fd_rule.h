#ifndef BIGDANSING_RULES_FD_RULE_H_
#define BIGDANSING_RULES_FD_RULE_H_

#include <string>
#include <vector>

#include "rules/rule.h"

namespace bigdansing {

/// A functional dependency LHS -> RHS (e.g. the paper's φF:
/// zipcode -> city). Two units violate the FD when they agree on every LHS
/// attribute but differ on some RHS attribute. GenFix proposes equating the
/// differing RHS cells (and optionally breaking the LHS agreement).
class FdRule : public Rule {
 public:
  FdRule(std::string name, std::vector<std::string> lhs,
         std::vector<std::string> rhs);

  /// When true, GenFix additionally proposes making an LHS cell differ
  /// (the paper's alternative fix for φF). Off by default because the
  /// equivalence-class repair consumes equality fixes only.
  void set_generate_lhs_fixes(bool value) { generate_lhs_fixes_ = value; }

  const std::vector<std::string>& lhs() const { return lhs_; }
  const std::vector<std::string>& rhs() const { return rhs_; }

  std::vector<std::string> RelevantAttributes() const override;
  std::vector<std::string> BlockingAttributes() const override { return lhs_; }
  bool IsSymmetric() const override { return true; }

  Status Bind(const Schema& schema) override;
  void Detect(const Row& t1, const Row& t2,
              std::vector<Violation>* out) const override;
  void GenFix(const Violation& violation,
              std::vector<Fix>* out) const override;

 private:
  std::vector<std::string> lhs_;
  std::vector<std::string> rhs_;
  std::vector<size_t> lhs_columns_;
  std::vector<size_t> rhs_columns_;
  Schema bound_schema_;
  bool generate_lhs_fixes_ = false;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_FD_RULE_H_
