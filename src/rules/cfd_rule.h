#ifndef BIGDANSING_RULES_CFD_RULE_H_
#define BIGDANSING_RULES_CFD_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "rules/rule.h"

namespace bigdansing {

/// One attribute of a CFD's pattern tableau: the attribute name plus an
/// optional constant. Without a constant the attribute is a wildcard '_'
/// (plain FD semantics on that attribute).
struct CfdPatternAttr {
  std::string attribute;
  std::optional<Value> constant;
};

/// A conditional functional dependency [Fan et al., TODS'08] with a
/// single-tuple pattern: (X -> A, tp). Two forms:
///
///  - **variable CFD** (the RHS pattern is a wildcard): among tuples whose
///    X attributes match the pattern constants, X-equality implies
///    A-equality. A pair rule, like an FD restricted to the matching
///    subset — the Scope operator implements the restriction.
///  - **constant CFD** (the RHS pattern is a constant): every tuple whose
///    X attributes match must have A equal to that constant. A single-unit
///    rule (arity 1).
///
/// GenFix proposes equating the RHS cells (variable form) or assigning the
/// RHS constant (constant form) — both consumable by the equivalence-class
/// repair.
class CfdRule : public Rule {
 public:
  CfdRule(std::string name, std::vector<CfdPatternAttr> lhs,
          CfdPatternAttr rhs);

  const std::vector<CfdPatternAttr>& lhs() const { return lhs_; }
  const CfdPatternAttr& rhs() const { return rhs_; }
  bool is_constant_cfd() const { return rhs_.constant.has_value(); }

  int arity() const override { return is_constant_cfd() ? 1 : 2; }
  std::vector<std::string> RelevantAttributes() const override;
  /// Variable CFDs block on the wildcard LHS attributes (pattern-constant
  /// attributes are equal by construction within the scoped subset).
  std::vector<std::string> BlockingAttributes() const override;
  bool IsSymmetric() const override { return true; }

  Status Bind(const Schema& schema) override;
  void Detect(const Row& t1, const Row& t2,
              std::vector<Violation>* out) const override;
  void DetectSingle(const Row& t, std::vector<Violation>* out) const override;
  void GenFix(const Violation& violation,
              std::vector<Fix>* out) const override;

 private:
  /// True when `row`'s LHS attributes match every pattern constant.
  bool MatchesPattern(const Row& row) const;

  std::vector<CfdPatternAttr> lhs_;
  CfdPatternAttr rhs_;
  std::vector<size_t> lhs_columns_;
  size_t rhs_column_ = 0;
  Schema bound_schema_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_RULES_CFD_RULE_H_
