#ifndef BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_
#define BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_

#include <functional>
#include <optional>
#include <string>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "dataflow/context.h"

namespace bigdansing {

/// The single task-scheduling point of the dataflow engine. Every unit of
/// parallel work — map-side fused pipelines, reduce-side merges, join
/// probes, repair components — runs through Run(), so it is uniformly:
///
///  - counted (stages/tasks totals in Metrics),
///  - timed (per-task CPU time accrued to logical worker `task % workers`,
///    feeding Metrics::SimulatedWallSeconds()), and
///  - attributed to a named stage (a StageReport carrying task count,
///    records in/out, shuffled records and busy/wall seconds).
///
/// StageExecutor is a cheap value type: construct one on the spot wherever
/// a stage needs to run.
class StageExecutor {
 public:
  using TaskBody = std::function<void(size_t task, TaskContext& tc)>;

  explicit StageExecutor(ExecutionContext* ctx) : ctx_(ctx) {}

  /// Runs `body(t, tc)` for every task index t in [0, num_tasks) on the
  /// context's worker pool and blocks until all tasks finish. `body` must be
  /// safe to invoke concurrently for distinct indices.
  ///
  /// When tracing is enabled, the stage gets a span (parented to the calling
  /// thread's innermost scope — rule/operator/phase) and every task a child
  /// span on its logical-worker lane; after the stage finishes, the stage
  /// span is annotated with the StageReport's measured counters so the
  /// runtime EXPLAIN reconciles exactly with Metrics::StageReports().
  void Run(const std::string& stage_name, size_t num_tasks,
           const TaskBody& body) const {
    Metrics& metrics = ctx_->metrics();
    TraceRecorder& trace = TraceRecorder::Instance();
    std::optional<ScopedSpan> stage_span;
    if (trace.enabled()) stage_span.emplace(stage_name, "stage");
    if (LogEnabled(LogLevel::kDebug)) {
      BD_LOG(Debug) << "stage begin: " << stage_name
                    << " tasks=" << num_tasks;
    }
    const size_t handle = metrics.BeginStage(stage_name, num_tasks);
    const size_t workers = ctx_->num_workers();
    const uint64_t stage_span_id = stage_span ? stage_span->id() : 0;
    Histogram& task_seconds =
        MetricsRegistry::Instance().GetHistogram("stage.task_seconds");
    Stopwatch wall;
    ctx_->pool().ParallelFor(num_tasks, [&](size_t t) {
      std::optional<ScopedSpan> task_span;
      if (stage_span_id != 0) {
        task_span.emplace(stage_name + "#" + std::to_string(t), "task",
                          stage_span_id,
                          static_cast<int64_t>(t % workers));
      }
      ThreadCpuStopwatch timer;
      TaskContext tc;
      body(t, tc);
      const double busy = timer.ElapsedSeconds();
      // Observed after the CPU timer stopped, so the histogram update does
      // not inflate the simulated-wall accounting.
      task_seconds.Observe(busy);
      metrics.RecordTaskTime(t % workers, busy);
      metrics.AccumulateTask(handle, tc, busy);
      if (task_span) {
        task_span->Annotate("records_in", tc.records_in);
        task_span->Annotate("records_out", tc.records_out);
        task_span->Annotate("busy_seconds", busy);
      }
    });
    metrics.FinishStage(handle, wall.ElapsedSeconds());
    if (stage_span) {
      AnnotateFromReport(*stage_span, metrics.StageReportFor(handle));
    }
    if (LogEnabled(LogLevel::kDebug)) {
      BD_LOG(Debug) << "stage end: " << stage_name
                    << " wall=" << wall.ElapsedSeconds() << "s";
    }
  }

  /// Convenience overload for bodies that do not report record counts.
  void Run(const std::string& stage_name, size_t num_tasks,
           const std::function<void(size_t)>& body) const {
    Run(stage_name, num_tasks,
        [&body](size_t t, TaskContext& /*tc*/) { body(t); });
  }

 private:
  /// Copies the finished stage's measured counters onto its span. Record
  /// counts use exact integers and times the same %.6f formatting as
  /// Metrics::StageReportsJson(), so EXPLAIN output reconciles with the
  /// stage reports without rounding drift.
  static void AnnotateFromReport(ScopedSpan& span, const StageReport& r) {
    span.Annotate("tasks", r.tasks);
    span.Annotate("records_in", r.records_in);
    span.Annotate("records_out", r.records_out);
    if (r.records_in > 0) {
      span.Annotate("selectivity", static_cast<double>(r.records_out) /
                                       static_cast<double>(r.records_in));
    }
    span.Annotate("shuffled_records", r.shuffled_records);
    span.Annotate("busy_seconds", r.busy_seconds);
    span.Annotate("task_seconds_min", r.TaskMinSeconds());
    span.Annotate("task_seconds_p50", r.TaskP50Seconds());
    span.Annotate("task_seconds_max", r.TaskMaxSeconds());
    span.Annotate("straggler_ratio", r.StragglerRatio());
  }

  ExecutionContext* ctx_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_
