#ifndef BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_
#define BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_

#include <functional>
#include <string>

#include "common/stopwatch.h"
#include "dataflow/context.h"

namespace bigdansing {

/// The single task-scheduling point of the dataflow engine. Every unit of
/// parallel work — map-side fused pipelines, reduce-side merges, join
/// probes, repair components — runs through Run(), so it is uniformly:
///
///  - counted (stages/tasks totals in Metrics),
///  - timed (per-task CPU time accrued to logical worker `task % workers`,
///    feeding Metrics::SimulatedWallSeconds()), and
///  - attributed to a named stage (a StageReport carrying task count,
///    records in/out, shuffled records and busy/wall seconds).
///
/// StageExecutor is a cheap value type: construct one on the spot wherever
/// a stage needs to run.
class StageExecutor {
 public:
  using TaskBody = std::function<void(size_t task, TaskContext& tc)>;

  explicit StageExecutor(ExecutionContext* ctx) : ctx_(ctx) {}

  /// Runs `body(t, tc)` for every task index t in [0, num_tasks) on the
  /// context's worker pool and blocks until all tasks finish. `body` must be
  /// safe to invoke concurrently for distinct indices.
  void Run(const std::string& stage_name, size_t num_tasks,
           const TaskBody& body) const {
    Metrics& metrics = ctx_->metrics();
    const size_t handle = metrics.BeginStage(stage_name, num_tasks);
    const size_t workers = ctx_->num_workers();
    Stopwatch wall;
    ctx_->pool().ParallelFor(num_tasks, [&](size_t t) {
      ThreadCpuStopwatch timer;
      TaskContext tc;
      body(t, tc);
      const double busy = timer.ElapsedSeconds();
      metrics.RecordTaskTime(t % workers, busy);
      metrics.AccumulateTask(handle, tc, busy);
    });
    metrics.FinishStage(handle, wall.ElapsedSeconds());
  }

  /// Convenience overload for bodies that do not report record counts.
  void Run(const std::string& stage_name, size_t num_tasks,
           const std::function<void(size_t)>& body) const {
    Run(stage_name, num_tasks,
        [&body](size_t t, TaskContext& /*tc*/) { body(t); });
  }

 private:
  ExecutionContext* ctx_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_
