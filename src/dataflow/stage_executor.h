#ifndef BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_
#define BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "dataflow/context.h"
#include "obs/profiler.h"
#include "obs/resource_accounting.h"

namespace bigdansing {

/// The single task-scheduling point of the dataflow engine. Every unit of
/// parallel work — map-side fused pipelines, reduce-side merges, join
/// probes, repair components — runs through Run()/RunProducing()/
/// RunMorsels(), so it is uniformly:
///
///  - counted (stages/tasks totals in Metrics),
///  - timed (per-task CPU time accrued to logical worker `task % workers`,
///    feeding Metrics::SimulatedWallSeconds()),
///  - attributed to a named stage (a StageReport carrying task count,
///    records in/out, shuffled records and busy/wall seconds), and
///  - recovered: each task attempt probes the FaultInjector site named
///    after the stage, a body that throws TaskFailure is retried with
///    capped exponential backoff under the context's FaultPolicy, and
///    straggler tasks of producing stages can be speculatively duplicated.
///
/// Recovery semantics (the substrate services Spark/Hadoop provided the
/// paper's system for free, §3):
///
///  - Retry: task bodies are deterministic per index, so a re-executed
///    attempt reproduces the original result bit-identically — the same
///    argument that makes lineage re-execution sound in Spark. A task is
///    retried up to FaultPolicy::max_attempts times; a shared per-stage
///    retry budget bounds total re-execution. Exhaustion fails the stage
///    with a non-OK Status (never abort); any exception other than
///    TaskFailure is non-retryable and fails the stage immediately.
///  - Speculation (RunProducing only): once at least half the tasks have
///    committed, a task running longer than `multiplier x median committed
///    task wall time` is duplicated. Attempts write into per-attempt
///    buffers (the body's return value); the first attempt to win the
///    per-task commit race publishes its buffer, the loser's writes are
///    discarded, so records are never double-counted in the StageReport.
///    In-place stages (Run) never speculate: their bodies write caller
///    memory directly, so duplicate attempts could race.
///
/// Retry/speculation activity is folded into the StageReport and annotated
/// onto the stage's trace span, so EXPLAIN shows recovery per stage.
///
/// StageExecutor is a cheap value type: construct one on the spot wherever
/// a stage needs to run.
class StageExecutor {
 public:
  using TaskBody = std::function<void(size_t task, TaskContext& tc)>;

  explicit StageExecutor(ExecutionContext* ctx) : ctx_(ctx) {}

  /// Runs `body(t, tc)` for every task index t in [0, num_tasks) on the
  /// context's worker pool and blocks until all tasks finish (or the stage
  /// fails). `body` must be safe to invoke concurrently for distinct
  /// indices, and is retried on TaskFailure — injected faults fire before
  /// the body runs, so an injected failure never leaves partial writes; a
  /// body that throws TaskFailure itself mid-write must be idempotent.
  ///
  /// When tracing is enabled, the stage gets a span (parented to the calling
  /// thread's innermost scope — rule/operator/phase) and every task attempt
  /// a child span on its logical-worker lane; after the stage finishes, the
  /// stage span is annotated with the StageReport's measured counters so the
  /// runtime EXPLAIN reconciles exactly with Metrics::StageReports().
  [[nodiscard]] Status Run(const std::string& stage_name, size_t num_tasks,
                           const TaskBody& body) const {
    struct Unit {};
    auto result = Execute<Unit>(
        stage_name, num_tasks,
        [&body](size_t t, TaskContext& tc) {
          body(t, tc);
          return Unit{};
        },
        /*allow_speculation=*/false);
    return result.ok() ? Status::OK() : result.status();
  }

  /// Convenience overload for bodies that do not report record counts.
  [[nodiscard]] Status Run(const std::string& stage_name, size_t num_tasks,
                           const std::function<void(size_t)>& body) const {
    return Run(stage_name, num_tasks,
               [&body](size_t t, TaskContext& /*tc*/) { body(t); });
  }

  /// Like Run(), but each task *returns* its output instead of writing it
  /// into caller memory; the engine publishes exactly one committed attempt
  /// per task into slot t of the result. Because attempts are buffered,
  /// producing stages are both retryable and speculation-capable. Prefer
  /// this form for any stage that fills a per-task output slot.
  template <typename T>
  [[nodiscard]] Result<std::vector<T>> RunProducing(
      const std::string& stage_name, size_t num_tasks,
      const std::function<T(size_t, TaskContext&)>& body) const {
    return Execute<T>(stage_name, num_tasks, body, /*allow_speculation=*/true);
  }

  /// Morsel-driven form of RunProducing for splittable stages: task t's
  /// work is `task_units(t)` independent units (rows, blocks, pairs) and
  /// `body(t, begin, end, tc)` processes the half-open unit range,
  /// returning a partial result. The engine splits each task into
  /// ctx->morsel_rows()-sized morsels, schedules every morsel as its own
  /// pool task (so a skewed partition no longer serializes the stage — idle
  /// workers steal its morsels), and the driver folds task t's partials in
  /// ascending unit order with `merge(t, pieces)` — which makes the result
  /// bit-identical to running body(t, 0, task_units(t), tc) whenever merge
  /// is the natural concatenation of range outputs.
  ///
  /// Contracts relative to Execute():
  ///  - retry-with-backoff moves to morsel granularity: the FaultInjector
  ///    site (named after the stage) indexes by *global morsel number*, and
  ///    max_attempts / the shared stage retry budget apply per morsel;
  ///  - each morsel's CPU time lands in the StageReport's task_seconds (so
  ///    quantiles/straggler ratio describe the real scheduling units) and
  ///    accrues to logical worker `morsel % workers`, which is what moves
  ///    SimulatedWallSeconds() from max-partition to balanced;
  ///  - no speculation: morsels are small enough that re-execution is
  ///    cheaper than duplicate-and-race (speculation stays available to
  ///    non-splittable stages via RunProducing).
  ///
  /// When morsels are disabled (ctx->morsel_rows() == 0) the stage runs as
  /// one body call per task through the Execute() engine — the pre-morsel
  /// partition-granularity path, with speculation.
  template <typename T>
  [[nodiscard]] Result<std::vector<T>> RunMorsels(
      const std::string& stage_name, size_t num_tasks,
      const std::function<size_t(size_t)>& task_units,
      const std::function<T(size_t, size_t, size_t, TaskContext&)>& body,
      const std::function<T(size_t, std::vector<T>&&)>& merge) const {
    const size_t morsel_rows = ctx_->morsel_rows();
    if (morsel_rows == 0) {
      return Execute<T>(
          stage_name, num_tasks,
          [&](size_t t, TaskContext& tc) {
            std::vector<T> piece;
            piece.push_back(body(t, 0, task_units(t), tc));
            return merge(t, std::move(piece));
          },
          /*allow_speculation=*/true);
    }

    Metrics& metrics = ctx_->metrics();
    TraceRecorder& trace = TraceRecorder::Instance();
    std::optional<ScopedSpan> stage_span;
    if (trace.enabled()) stage_span.emplace(stage_name, "stage");
    const size_t handle = metrics.BeginStage(stage_name, num_tasks);
    // Resource accounting brackets the stage: RSS and steal-counter deltas
    // between here and FinishStage land in the StageReport.
    StageResourceProbe resource_probe;
    const ActivityDesc* activity =
        Profiler::Instance().Intern(stage_name, "morsel");
    Stopwatch wall;
    std::vector<T> out(num_tasks);

    // Static split: the morsel list is fixed up front so every morsel has
    // a stable global index — the coordinate used for fault-injection
    // sites, worker-slot accounting and trace lanes, independent of which
    // thread happens to run it.
    struct MorselDef {
      uint32_t task;
      uint32_t piece;
      size_t begin;
      size_t end;
    };
    std::vector<MorselDef> defs;
    std::vector<std::vector<T>> pieces(num_tasks);
    for (size_t t = 0; t < num_tasks; ++t) {
      const size_t units = task_units(t);
      const size_t num_pieces = (units + morsel_rows - 1) / morsel_rows;
      pieces[t].resize(num_pieces);
      for (size_t p = 0; p < num_pieces; ++p) {
        const size_t begin = p * morsel_rows;
        defs.push_back(MorselDef{static_cast<uint32_t>(t),
                                 static_cast<uint32_t>(p), begin,
                                 std::min(units, begin + morsel_rows)});
      }
    }
    const size_t total = defs.size();

    struct Shared {
      explicit Shared(int64_t budget) : retry_budget(budget) {}
      std::atomic<size_t> done{0};
      std::atomic<bool> failed{false};
      std::atomic<int64_t> retry_budget;
      std::atomic<uint64_t> retries{0};
      std::atomic<uint64_t> failed_attempts{0};
      std::mutex mu;
      Status status = Status::OK();  // first failure (mu)
    };
    const FaultPolicy policy = ctx_->fault_policy();
    auto shared = std::make_shared<Shared>(
        static_cast<int64_t>(policy.stage_retry_budget));

    struct Engine {
      Shared& sh;
      const std::string& stage_name;
      const std::vector<MorselDef>& defs;
      std::vector<std::vector<T>>& pieces;
      const std::function<T(size_t, size_t, size_t, TaskContext&)>& body;
      Metrics& metrics;
      size_t handle;
      size_t workers;
      uint64_t stage_span_id;
      Histogram& task_seconds_hist;
      const FaultPolicy& policy;
      size_t max_attempts;
      FaultInjector& injector;
      const ActivityDesc* activity;

      void Fail(Status st) {
        std::lock_guard<std::mutex> lock(sh.mu);
        if (!sh.failed.load(std::memory_order_relaxed)) {
          sh.status = std::move(st);
          sh.failed.store(true, std::memory_order_release);
        }
      }

      /// Executes morsel m to completion (commit, fatal error, or stage
      /// already failed), with the same retry-with-backoff loop Execute()
      /// runs per task.
      void RunMorsel(size_t m) {
        const MorselDef& def = defs[m];
        size_t attempt = 0;
        double backoff_ms = policy.backoff_initial_ms;
        for (;;) {
          if (sh.failed.load(std::memory_order_acquire)) return;
          std::optional<ScopedSpan> span;
          if (stage_span_id != 0) {
            span.emplace(stage_name + "#" + std::to_string(def.task) + "." +
                             std::to_string(def.piece),
                         "morsel", stage_span_id,
                         static_cast<int64_t>(m % workers));
            if (attempt > 0) {
              span->Annotate("attempt", static_cast<uint64_t>(attempt));
            }
          }
          // Publish what this worker is doing for the sampling profiler;
          // nested on top of the pool's generic "run" activity.
          ScopedActivity act(activity, def.begin, def.end);
          ThreadCpuStopwatch timer;
          const ThreadAllocCounters alloc_before = ThreadAllocations();
          TaskContext tc;
          tc.attempt = attempt;
          try {
            // The injection site fires before the body, so a failed
            // attempt performed no work and the retry starts clean.
            injector.OnSite(stage_name, m, attempt);
            T value = body(def.task, def.begin, def.end, tc);
            const ThreadAllocCounters alloc_after = ThreadAllocations();
            tc.alloc_bytes = alloc_after.bytes - alloc_before.bytes;
            tc.allocs = alloc_after.count - alloc_before.count;
            const double busy = timer.ElapsedSeconds();
            task_seconds_hist.Observe(busy);
            metrics.RecordTaskTime(m % workers, busy);
            pieces[def.task][def.piece] = std::move(value);
            metrics.AccumulateMorsel(handle, tc, busy);
            if (span) {
              span->Annotate("records_in", tc.records_in);
              span->Annotate("records_out", tc.records_out);
              span->Annotate("busy_seconds", busy);
            }
            return;
          } catch (const TaskFailure& failure) {
            metrics.RecordTaskTime(m % workers, timer.ElapsedSeconds());
            sh.failed_attempts.fetch_add(1, std::memory_order_relaxed);
            if (span) span->Annotate("failed", std::string(failure.what()));
            ++attempt;
            if (attempt >= max_attempts) {
              Fail(Status::Internal(
                  "stage '" + stage_name + "': morsel " + std::to_string(m) +
                  " failed after " + std::to_string(attempt) +
                  " attempt(s)"));
              return;
            }
            if (sh.retry_budget.fetch_sub(1, std::memory_order_acq_rel) <=
                0) {
              Fail(Status::Internal(
                  "stage '" + stage_name + "': retry budget exhausted (" +
                  std::to_string(policy.stage_retry_budget) + ")"));
              return;
            }
            sh.retries.fetch_add(1, std::memory_order_relaxed);
            span.reset();  // the backoff sleep is not part of the attempt
            SleepForMs(std::min(backoff_ms, policy.backoff_max_ms));
            backoff_ms *= 2.0;
          } catch (const std::exception& e) {
            sh.failed_attempts.fetch_add(1, std::memory_order_relaxed);
            if (span) span->Annotate("failed", std::string(e.what()));
            Fail(Status::Internal(
                "stage '" + stage_name + "' morsel " + std::to_string(m) +
                " threw non-retryable exception: " + e.what()));
            return;
          }
        }
      }
    };

    Engine engine{*shared,
                  stage_name,
                  defs,
                  pieces,
                  body,
                  metrics,
                  handle,
                  ctx_->num_workers(),
                  stage_span ? stage_span->id() : 0,
                  MetricsRegistry::Instance().GetHistogram("stage.task_seconds"),
                  policy,
                  std::max<size_t>(1, policy.max_attempts),
                  FaultInjector::Instance(),
                  activity};

    // One pool task per morsel: cheap enough at L2-sized granularity, and
    // it is what lets idle workers steal a skewed partition's tail. The
    // closure's very last action is the `done` increment, and the driver
    // cannot leave this frame before done == total, so dereferencing the
    // stack-held engine inside the closure is safe.
    Engine* engine_ptr = &engine;
    for (size_t m = 0; m < total; ++m) {
      ctx_->pool().Submit([shared, engine_ptr, m]() {
        engine_ptr->RunMorsel(m);
        shared->done.fetch_add(1, std::memory_order_release);
      });
    }
    // The driver participates by draining the pool (its own morsels or,
    // when nested, whatever else is queued ahead of them).
    while (shared->done.load(std::memory_order_acquire) < total) {
      if (!ctx_->pool().TryRunOneTask()) std::this_thread::yield();
    }

    const uint64_t retries = shared->retries.load(std::memory_order_relaxed);
    const uint64_t failed_attempts =
        shared->failed_attempts.load(std::memory_order_relaxed);
    metrics.RecordStageRecovery(handle, retries, failed_attempts, 0, 0);

    if (!shared->failed.load(std::memory_order_acquire)) {
      // Deterministic commit: partials fold in (task, unit-range) order on
      // the driver, so the output is independent of execution interleaving.
      for (size_t t = 0; t < num_tasks; ++t) {
        out[t] = merge(t, std::move(pieces[t]));
      }
    }

    metrics.RecordStageResources(handle, resource_probe.RssDeltaBytes(),
                                 resource_probe.StealsDelta());
    metrics.FinishStage(handle, wall.ElapsedSeconds());
    StageReport final_report = metrics.StageReportFor(handle);
    if (stage_span) AnnotateFromReport(*stage_span, final_report);
    MetricsRegistry& registry = MetricsRegistry::Instance();
    registry.GetCounter("stage.morsels").Add(total);
    if (final_report.alloc_bytes > 0) {
      registry.GetCounter("stage.alloc_bytes").Add(final_report.alloc_bytes);
    }
    if (retries > 0) registry.GetCounter("stage.retries").Add(retries);
    if (failed_attempts > 0) {
      registry.GetCounter("stage.failed_attempts").Add(failed_attempts);
    }
    if (LogEnabled(LogLevel::kDebug)) {
      BD_LOG(Debug) << "stage end: " << stage_name << " morsels=" << total
                    << " wall=" << wall.ElapsedSeconds()
                    << "s retries=" << retries;
    }
    if (shared->failed.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(shared->mu);
      BD_LOG(Warning) << "stage failed: " << stage_name << " — "
                      << shared->status.ToString();
      return shared->status;
    }
    return out;
  }

 private:
  /// Scheduling engine shared by Run and RunProducing. Claims task indices
  /// with an atomic counter (the driver participates alongside pool
  /// helpers, so nested stages cannot deadlock a busy pool), runs the
  /// retry loop per task, then the driver monitors for stragglers until
  /// every task has settled and no attempt is still in flight.
  template <typename T>
  Result<std::vector<T>> Execute(const std::string& stage_name,
                                 size_t num_tasks,
                                 const std::function<T(size_t, TaskContext&)>& body,
                                 bool allow_speculation) const {
    Metrics& metrics = ctx_->metrics();
    TraceRecorder& trace = TraceRecorder::Instance();
    std::optional<ScopedSpan> stage_span;
    if (trace.enabled()) stage_span.emplace(stage_name, "stage");
    if (LogEnabled(LogLevel::kDebug)) {
      BD_LOG(Debug) << "stage begin: " << stage_name
                    << " tasks=" << num_tasks;
    }
    const size_t handle = metrics.BeginStage(stage_name, num_tasks);
    // Resource accounting brackets the stage: RSS and steal-counter deltas
    // between here and FinishStage land in the StageReport.
    StageResourceProbe resource_probe;
    const ActivityDesc* activity =
        Profiler::Instance().Intern(stage_name, "task");
    Stopwatch wall;
    std::vector<T> out(num_tasks);

    // Heap-held shared state: a pool helper that wakes up after the stage
    // already finished must be able to observe "nothing left to claim"
    // without touching driver-stack memory, so its closure captures this
    // by shared_ptr and dereferences the stack-held Engine only after a
    // successful claim (an unclaimed task pins the driver in Execute).
    struct Shared {
      explicit Shared(size_t n, int64_t budget)
          : retry_budget(budget),
            committed(n),
            settled_flag(n),
            spec_state(n),
            started_at(n) {
        for (auto& s : started_at) s.store(-1.0, std::memory_order_relaxed);
      }
      std::atomic<size_t> next{0};
      std::atomic<size_t> settled{0};
      std::atomic<size_t> inflight{0};
      std::atomic<bool> failed{false};
      std::atomic<int64_t> retry_budget;
      std::atomic<uint64_t> retries{0};
      std::atomic<uint64_t> failed_attempts{0};
      std::atomic<uint64_t> spec_launched{0};
      std::atomic<uint64_t> spec_committed{0};
      std::vector<std::atomic<uint8_t>> committed;     // attempt won the race
      std::vector<std::atomic<uint8_t>> settled_flag;  // task is accounted for
      std::vector<std::atomic<uint8_t>> spec_state;    // duplicate launched
      std::vector<std::atomic<double>> started_at;     // -1 until claimed
      std::mutex mu;
      Status status = Status::OK();          // first failure (mu)
      std::vector<double> committed_wall;    // per-task wall durations (mu)
    };

    const FaultPolicy policy = ctx_->fault_policy();
    auto shared = std::make_shared<Shared>(
        num_tasks, static_cast<int64_t>(policy.stage_retry_budget));

    struct Engine {
      Shared& sh;
      const std::string& stage_name;
      size_t num_tasks;
      const std::function<T(size_t, TaskContext&)>& body;
      std::vector<T>& out;
      Metrics& metrics;
      size_t handle;
      size_t workers;
      uint64_t stage_span_id;
      Histogram& task_seconds_hist;
      const FaultPolicy& policy;
      size_t max_attempts;
      FaultInjector& injector;
      Stopwatch& wall;
      const ActivityDesc* activity;

      void Fail(Status st) {
        std::lock_guard<std::mutex> lock(sh.mu);
        if (!sh.failed.load(std::memory_order_relaxed)) {
          sh.status = std::move(st);
          sh.failed.store(true, std::memory_order_release);
        }
      }

      /// Marks task t as accounted for exactly once (whether it committed
      /// a result or the stage gave up on it).
      void Settle(size_t t) {
        uint8_t expected = 0;
        if (sh.settled_flag[t].compare_exchange_strong(expected, 1)) {
          sh.settled.fetch_add(1, std::memory_order_acq_rel);
        }
      }

      enum Outcome { kCommitted, kLost, kRetryable, kFatal };

      Outcome AttemptOnce(size_t t, size_t attempt, bool speculative) {
        std::optional<ScopedSpan> task_span;
        if (stage_span_id != 0) {
          task_span.emplace(stage_name + "#" + std::to_string(t), "task",
                            stage_span_id, static_cast<int64_t>(t % workers));
          if (attempt > 0) {
            task_span->Annotate("attempt", static_cast<uint64_t>(attempt));
          }
          if (speculative) task_span->Annotate("speculative", uint64_t{1});
        }
        // Publish what this worker is doing for the sampling profiler;
        // nested on top of the pool's generic "run" activity.
        ScopedActivity act(activity, t, t + 1);
        ThreadCpuStopwatch timer;
        const ThreadAllocCounters alloc_before = ThreadAllocations();
        TaskContext tc;
        tc.attempt = attempt;
        tc.speculative = speculative;
        try {
          // The injection site fires before the body, so a failed attempt
          // has performed no work and a retry starts from a clean slate.
          injector.OnSite(stage_name, t, attempt);
          T value = body(t, tc);
          const ThreadAllocCounters alloc_after = ThreadAllocations();
          tc.alloc_bytes = alloc_after.bytes - alloc_before.bytes;
          tc.allocs = alloc_after.count - alloc_before.count;
          const double busy = timer.ElapsedSeconds();
          // Observed after the CPU timer stopped, so the histogram update
          // does not inflate the simulated-wall accounting.
          task_seconds_hist.Observe(busy);
          // Losers still burned a worker: their time counts toward the
          // simulated cluster wall, just never into the stage's records.
          metrics.RecordTaskTime(t % workers, busy);
          uint8_t expected = 0;
          if (!sh.committed[t].compare_exchange_strong(expected, 1)) {
            if (task_span) task_span->Annotate("discarded", uint64_t{1});
            return kLost;
          }
          out[t] = std::move(value);
          metrics.AccumulateTask(handle, tc, busy);
          if (speculative) {
            sh.spec_committed.fetch_add(1, std::memory_order_relaxed);
          }
          {
            std::lock_guard<std::mutex> lock(sh.mu);
            const double started =
                sh.started_at[t].load(std::memory_order_relaxed);
            if (started >= 0.0) {
              sh.committed_wall.push_back(wall.ElapsedSeconds() - started);
            }
          }
          if (task_span) {
            task_span->Annotate("records_in", tc.records_in);
            task_span->Annotate("records_out", tc.records_out);
            task_span->Annotate("busy_seconds", busy);
          }
          Settle(t);
          return kCommitted;
        } catch (const TaskFailure& failure) {
          const double busy = timer.ElapsedSeconds();
          metrics.RecordTaskTime(t % workers, busy);
          sh.failed_attempts.fetch_add(1, std::memory_order_relaxed);
          if (task_span) {
            task_span->Annotate("failed", std::string(failure.what()));
          }
          return kRetryable;
        } catch (const std::exception& e) {
          sh.failed_attempts.fetch_add(1, std::memory_order_relaxed);
          if (task_span) task_span->Annotate("failed", std::string(e.what()));
          Fail(Status::Internal("stage '" + stage_name + "' task " +
                                std::to_string(t) +
                                " threw non-retryable exception: " + e.what()));
          return kFatal;
        }
      }

      /// First (non-speculative) execution of task t: retry loop with
      /// capped exponential backoff under the stage's FaultPolicy.
      void RunPrimary(size_t t) {
        sh.started_at[t].store(wall.ElapsedSeconds(),
                               std::memory_order_relaxed);
        size_t attempt = 0;
        double backoff_ms = policy.backoff_initial_ms;
        for (;;) {
          if (sh.failed.load(std::memory_order_acquire)) {
            Settle(t);
            return;
          }
          const Outcome outcome = AttemptOnce(t, attempt, false);
          if (outcome == kCommitted || outcome == kLost) return;
          if (outcome == kFatal) {
            Settle(t);
            return;
          }
          ++attempt;
          if (attempt >= max_attempts) {
            Fail(Status::Internal(
                "stage '" + stage_name + "': task " + std::to_string(t) +
                " failed after " + std::to_string(attempt) + " attempt(s)"));
            Settle(t);
            return;
          }
          if (sh.retry_budget.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
            Fail(Status::Internal(
                "stage '" + stage_name + "': retry budget exhausted (" +
                std::to_string(policy.stage_retry_budget) + ")"));
            Settle(t);
            return;
          }
          sh.retries.fetch_add(1, std::memory_order_relaxed);
          SleepForMs(std::min(backoff_ms, policy.backoff_max_ms));
          backoff_ms *= 2.0;
        }
      }

      /// Driver-side straggler monitor pass: duplicates at most one task
      /// whose elapsed wall time exceeds the speculation threshold. The
      /// duplicate runs inline on the driver — submitting it to the pool
      /// could queue it behind the very straggler it is meant to bypass.
      void TrySpeculate() {
        double median = 0.0;
        {
          std::lock_guard<std::mutex> lock(sh.mu);
          if (sh.committed_wall.size() < std::max<size_t>(2, num_tasks / 2)) {
            return;
          }
          std::vector<double> sorted = sh.committed_wall;
          std::sort(sorted.begin(), sorted.end());
          median = sorted[(sorted.size() - 1) / 2];
        }
        const double now = wall.ElapsedSeconds();
        const double threshold =
            std::max(policy.speculation_min_seconds,
                     policy.speculation_multiplier * median);
        for (size_t t = 0; t < num_tasks; ++t) {
          if (sh.settled_flag[t].load(std::memory_order_acquire) != 0) continue;
          if (sh.committed[t].load(std::memory_order_acquire) != 0) continue;
          const double started =
              sh.started_at[t].load(std::memory_order_relaxed);
          if (started < 0.0) continue;  // not yet claimed
          if (now - started < threshold) continue;
          uint8_t expected = 0;
          if (!sh.spec_state[t].compare_exchange_strong(expected, 1)) continue;
          sh.spec_launched.fetch_add(1, std::memory_order_relaxed);
          sh.inflight.fetch_add(1, std::memory_order_acq_rel);
          // The duplicate gets an attempt number past the retry range so
          // its injector draws are independent of the primary's.
          AttemptOnce(t, max_attempts, true);
          sh.inflight.fetch_sub(1, std::memory_order_acq_rel);
          return;
        }
      }
    };

    Engine engine{*shared,
                  stage_name,
                  num_tasks,
                  body,
                  out,
                  metrics,
                  handle,
                  ctx_->num_workers(),
                  stage_span ? stage_span->id() : 0,
                  MetricsRegistry::Instance().GetHistogram("stage.task_seconds"),
                  policy,
                  std::max<size_t>(1, policy.max_attempts),
                  FaultInjector::Instance(),
                  wall,
                  activity};

    // Pool helpers claim tasks exactly like the driver. A helper touches
    // only `shared` until a claim succeeds; a successful claim proves the
    // driver is still inside Execute (an unclaimed task cannot settle), so
    // dereferencing `engine` is safe from then on.
    Engine* engine_ptr = &engine;
    const size_t helper_count =
        num_tasks == 0 ? 0 : std::min(ctx_->pool().num_threads(), num_tasks - 1);
    for (size_t h = 0; h < helper_count; ++h) {
      ctx_->pool().Submit([shared, engine_ptr, num_tasks]() {
        for (;;) {
          const size_t t =
              shared->next.fetch_add(1, std::memory_order_relaxed);
          if (t >= num_tasks) return;
          shared->inflight.fetch_add(1, std::memory_order_acq_rel);
          engine_ptr->RunPrimary(t);
          shared->inflight.fetch_sub(1, std::memory_order_acq_rel);
        }
      });
    }
    // Driver participates in the claim loop, then monitors stragglers.
    for (;;) {
      const size_t t = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (t >= num_tasks) break;
      shared->inflight.fetch_add(1, std::memory_order_acq_rel);
      engine.RunPrimary(t);
      shared->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    const bool speculate =
        allow_speculation && policy.speculation && num_tasks >= 2;
    while (shared->settled.load(std::memory_order_acquire) < num_tasks ||
           shared->inflight.load(std::memory_order_acquire) > 0) {
      if (speculate && !shared->failed.load(std::memory_order_relaxed)) {
        engine.TrySpeculate();
      }
      if (speculate) {
        SleepForMs(0.2);
      } else {
        std::this_thread::yield();
      }
    }

    const uint64_t retries = shared->retries.load(std::memory_order_relaxed);
    const uint64_t failed_attempts =
        shared->failed_attempts.load(std::memory_order_relaxed);
    const uint64_t spec_launched =
        shared->spec_launched.load(std::memory_order_relaxed);
    const uint64_t spec_committed =
        shared->spec_committed.load(std::memory_order_relaxed);
    metrics.RecordStageRecovery(handle, retries, failed_attempts,
                                spec_launched, spec_committed);
    metrics.RecordStageResources(handle, resource_probe.RssDeltaBytes(),
                                 resource_probe.StealsDelta());
    metrics.FinishStage(handle, wall.ElapsedSeconds());
    StageReport final_report = metrics.StageReportFor(handle);
    if (stage_span) AnnotateFromReport(*stage_span, final_report);
    MetricsRegistry& registry = MetricsRegistry::Instance();
    if (final_report.alloc_bytes > 0) {
      registry.GetCounter("stage.alloc_bytes").Add(final_report.alloc_bytes);
    }
    if (retries > 0) registry.GetCounter("stage.retries").Add(retries);
    if (failed_attempts > 0) {
      registry.GetCounter("stage.failed_attempts").Add(failed_attempts);
    }
    if (spec_launched > 0) {
      registry.GetCounter("stage.speculative_launched").Add(spec_launched);
    }
    if (spec_committed > 0) {
      registry.GetCounter("stage.speculative_committed").Add(spec_committed);
    }
    if (LogEnabled(LogLevel::kDebug)) {
      BD_LOG(Debug) << "stage end: " << stage_name
                    << " wall=" << wall.ElapsedSeconds()
                    << "s retries=" << retries;
    }
    if (shared->failed.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(shared->mu);
      BD_LOG(Warning) << "stage failed: " << stage_name << " — "
                      << shared->status.ToString();
      return shared->status;
    }
    return out;
  }

  /// Copies the finished stage's measured counters onto its span. Record
  /// counts use exact integers and times the same %.6f formatting as
  /// Metrics::StageReportsJson(), so EXPLAIN output reconciles with the
  /// stage reports without rounding drift.
  static void AnnotateFromReport(ScopedSpan& span, const StageReport& r) {
    span.Annotate("tasks", r.tasks);
    span.Annotate("records_in", r.records_in);
    span.Annotate("records_out", r.records_out);
    if (r.records_in > 0) {
      span.Annotate("selectivity", static_cast<double>(r.records_out) /
                                       static_cast<double>(r.records_in));
    }
    span.Annotate("shuffled_records", r.shuffled_records);
    span.Annotate("busy_seconds", r.busy_seconds);
    if (r.morsels > 0) span.Annotate("morsels", r.morsels);
    // Resource accounting annotations only when they measured something,
    // so platforms without the hooks keep their EXPLAIN output unchanged.
    if (r.alloc_bytes > 0) span.Annotate("alloc_bytes", r.alloc_bytes);
    if (r.allocs > 0) span.Annotate("allocs", r.allocs);
    if (r.rss_delta_bytes != 0) {
      span.Annotate("rss_delta_bytes", std::to_string(r.rss_delta_bytes));
    }
    if (r.steals > 0) span.Annotate("steals", r.steals);
    span.Annotate("task_seconds_min", r.TaskMinSeconds());
    span.Annotate("task_seconds_p50", r.TaskP50Seconds());
    span.Annotate("task_seconds_max", r.TaskMaxSeconds());
    span.Annotate("straggler_ratio", r.StragglerRatio());
    // Recovery annotations only when the stage actually saw recovery
    // activity, so fault-free EXPLAIN output stays unchanged.
    if (r.retries > 0) span.Annotate("retries", r.retries);
    if (r.failed_attempts > 0) {
      span.Annotate("failed_attempts", r.failed_attempts);
    }
    if (r.speculative_launched > 0) {
      span.Annotate("speculative_launched", r.speculative_launched);
    }
    if (r.speculative_committed > 0) {
      span.Annotate("speculative_committed", r.speculative_committed);
    }
  }

  ExecutionContext* ctx_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_STAGE_EXECUTOR_H_
