#include "dataflow/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <map>

#include "common/fault.h"
#include "common/hash.h"
#include "data/storage.h"
#include "dataflow/stage_executor.h"

namespace bigdansing {

namespace {

/// Appends one length-prefixed record to a spill blob.
void SpillRecord(std::string* blob, const std::string& key,
                 const std::string& value) {
  uint64_t klen = key.size();
  uint64_t vlen = value.size();
  blob->append(reinterpret_cast<const char*>(&klen), sizeof(klen));
  blob->append(key);
  blob->append(reinterpret_cast<const char*>(&vlen), sizeof(vlen));
  blob->append(value);
}

/// Parses a spill blob back into (key, value) records.
bool ParseSpill(const std::string& blob,
                std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos < blob.size()) {
    uint64_t klen = 0;
    if (pos + sizeof(klen) > blob.size()) return false;
    std::memcpy(&klen, blob.data() + pos, sizeof(klen));
    pos += sizeof(klen);
    if (pos + klen > blob.size()) return false;
    std::string key(blob.data() + pos, klen);
    pos += klen;
    uint64_t vlen = 0;
    if (pos + sizeof(vlen) > blob.size()) return false;
    std::memcpy(&vlen, blob.data() + pos, sizeof(vlen));
    pos += sizeof(vlen);
    if (pos + vlen > blob.size()) return false;
    out->emplace_back(std::move(key), std::string(blob.data() + pos, vlen));
    pos += vlen;
  }
  return true;
}

}  // namespace

MapReduceJob::MapReduceJob(ExecutionContext* ctx, MapFn map_fn,
                           ReduceFn reduce_fn, size_t num_reducers,
                           bool spill_to_disk)
    : ctx_(ctx),
      map_fn_(std::move(map_fn)),
      reduce_fn_(std::move(reduce_fn)),
      num_reducers_(num_reducers == 0 ? ctx->num_workers() : num_reducers),
      spill_to_disk_(spill_to_disk) {}

std::vector<std::string> MapReduceJob::Run(
    const std::vector<std::string>& input_records) {
  const size_t num_maps =
      std::min(std::max<size_t>(1, ctx_->num_workers() * 2),
               std::max<size_t>(1, input_records.size()));
  const size_t split = (input_records.size() + num_maps - 1) / num_maps;

  // --- Map phase: each task produces one serialized spill blob per reducer
  // (Hadoop's partitioned spill files). Under the morsel scheduler the
  // task's input split is further cut into record subranges, each emitting
  // per-reducer partial blobs; in-order concatenation of the partials
  // reproduces the sequential spill blobs byte-identically. The blobs are
  // the attempt's output buffer, so a retried map attempt re-reads its
  // immutable input subrange and the executor commits exactly one blob
  // row per task. ---
  StageExecutor executor(ctx_);
  auto spills_result = executor.RunMorsels<std::vector<std::string>>(
      "mr:map", num_maps,
      [&](size_t m) -> size_t {
        size_t base = m * split;
        return std::min(input_records.size(), base + split) - base;
      },
      [&](size_t m, size_t begin, size_t end, TaskContext& tc) {
        std::vector<std::string> row(num_reducers_);
        size_t base = m * split;
        std::vector<std::pair<std::string, std::string>> emitted;
        for (size_t i = base + begin; i < base + end; ++i) {
          emitted.clear();
          map_fn_(input_records[i], &emitted);
          for (const auto& [key, value] : emitted) {
            size_t r =
                static_cast<size_t>(StableHashBytes(key)) % num_reducers_;
            SpillRecord(&row[r], key, value);
            ++tc.records_out;
          }
        }
        tc.records_in = end - begin;
        return row;
      },
      [this](size_t, std::vector<std::vector<std::string>>&& pieces) {
        std::vector<std::string> row(num_reducers_);
        for (auto& piece : pieces) {
          for (size_t r = 0; r < num_reducers_; ++r) row[r] += piece[r];
        }
        return row;
      });
  if (!spills_result.ok()) throw StageError(spills_result.status());
  std::vector<std::vector<std::string>> spills = std::move(*spills_result);

  // --- Optional disk materialization: every non-empty spill blob becomes
  // a real temp file (Hadoop writes map output to local disk; reducers
  // fetch it from there), freed from memory in between. ---
  size_t shuffle_bytes = 0;
  for (const auto& task_spills : spills) {
    for (const auto& blob : task_spills) shuffle_bytes += blob.size();
  }
  shuffle_bytes_ = shuffle_bytes;
  std::vector<std::vector<std::string>> spill_paths;
  if (spill_to_disk_) {
    static std::atomic<uint64_t> spill_counter{0};
    const std::string dir = std::filesystem::temp_directory_path().string();
    const uint64_t job_id = spill_counter.fetch_add(1);
    spill_paths.assign(num_maps, std::vector<std::string>(num_reducers_));
    // Spill writes are side effects on the filesystem, so this stage runs
    // in place (no speculation: duplicate attempts would race on the same
    // paths). A retried attempt truncate-rewrites its files — idempotent,
    // as the in-memory blobs are only dropped driver-side after the stage.
    Status spill_status =
        executor.Run("mr:spill", num_maps, [&](size_t m) {
          for (size_t r = 0; r < num_reducers_; ++r) {
            if (spills[m][r].empty()) continue;
            std::string path = dir + "/bd_mr_" + std::to_string(job_id) +
                               "_" + std::to_string(m) + "_" +
                               std::to_string(r) + ".spill";
            std::ofstream out(path, std::ios::binary);
            out.write(spills[m][r].data(),
                      static_cast<std::streamsize>(spills[m][r].size()));
            out.close();
            spill_paths[m][r] = std::move(path);
          }
        });
    if (!spill_status.ok()) throw StageError(std::move(spill_status));
    for (auto& task_spills : spills) {
      for (auto& blob : task_spills) std::string().swap(blob);
    }
  }

  // Reduce attempts only read spill files/blobs (cleanup happens
  // driver-side below), so they are freely re-executable.
  auto outputs_result = executor.RunProducing<std::vector<std::string>>(
      "mr:reduce", num_reducers_, [&](size_t r, TaskContext& tc) {
        std::vector<std::string> output;
        std::vector<std::pair<std::string, std::string>> records;
        for (size_t m = 0; m < num_maps; ++m) {
          if (spill_to_disk_) {
            if (spill_paths[m][r].empty()) continue;
            std::ifstream in(spill_paths[m][r], std::ios::binary);
            std::ostringstream buffer;
            buffer << in.rdbuf();
            ParseSpill(buffer.str(), &records);
          } else {
            ParseSpill(spills[m][r], &records);
          }
        }
        tc.records_in = records.size();
        tc.shuffled_records = records.size();
        std::sort(records.begin(), records.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        std::vector<std::string> group;
        size_t i = 0;
        while (i < records.size()) {
          size_t j = i;
          group.clear();
          while (j < records.size() && records[j].first == records[i].first) {
            group.push_back(std::move(records[j].second));
            ++j;
          }
          reduce_fn_(records[i].first, group, &output);
          i = j;
        }
        tc.records_out = output.size();
        return output;
      });
  for (const auto& task_paths : spill_paths) {
    for (const auto& path : task_paths) {
      if (!path.empty()) std::filesystem::remove(path);
    }
  }
  if (!outputs_result.ok()) throw StageError(outputs_result.status());

  std::vector<std::string> result;
  for (auto& out : *outputs_result) {
    for (auto& record : out) result.push_back(std::move(record));
  }
  return result;
}

Result<MapReduceDetectionResult> MapReduceDetect(ExecutionContext* ctx,
                                                 const Table& table,
                                                 const RulePtr& rule) {
  BIGDANSING_RETURN_NOT_OK(rule->Bind(table.schema()));
  std::vector<std::string> blocking = rule->BlockingAttributes();
  if (rule->arity() != 2 || blocking.empty()) {
    return Status::Unimplemented(
        "the MapReduce backend requires a pair rule with a blocking key");
  }
  std::vector<size_t> blocking_columns;
  for (const auto& a : blocking) {
    auto idx = table.schema().IndexOf(a);
    if (!idx.ok()) return idx.status();
    blocking_columns.push_back(*idx);
  }

  // Input "splits": every row as a serialized record (Hadoop reads bytes).
  std::vector<std::string> input;
  input.reserve(table.num_rows());
  for (const Row& row : table.rows()) input.push_back(SerializeRow(row));
  ctx->metrics().AddRecordsRead(table.num_rows());

  const bool symmetric = rule->IsSymmetric();
  MapReduceJob job(
      ctx,
      // MR-PBlock: deserialize, key by the blocking attributes.
      [&blocking_columns](const std::string& record,
                          std::vector<std::pair<std::string, std::string>>* out) {
        auto row = DeserializeRow(record);
        if (!row.ok()) return;
        uint64_t h = 0x42D;
        for (size_t c : blocking_columns) {
          const Value& v = row->value(c);
          if (v.is_null()) return;  // Null keys join no block.
          h = StableHashUint64(h ^ v.Hash());
        }
        out->emplace_back(std::string(reinterpret_cast<const char*>(&h),
                                      sizeof(h)),
                          record);
      },
      // MR-PIterate + MR-PDetect + MR-PGenFix: pair within the group.
      [&rule, symmetric](const std::string& /*key*/,
                         const std::vector<std::string>& values,
                         std::vector<std::string>* out) {
        std::vector<Row> block;
        block.reserve(values.size());
        for (const auto& v : values) {
          auto row = DeserializeRow(v);
          if (row.ok()) block.push_back(std::move(*row));
        }
        // Hadoop guarantees key order but not value order within a group;
        // sort by row id so the output is deterministic regardless of the
        // map-task split.
        std::sort(block.begin(), block.end(),
                  [](const Row& a, const Row& b) { return a.id() < b.id(); });
        std::vector<Violation> found;
        for (size_t i = 0; i < block.size(); ++i) {
          for (size_t j = i + 1; j < block.size(); ++j) {
            found.clear();
            rule->Detect(block[i], block[j], &found);
            if (!symmetric) rule->Detect(block[j], block[i], &found);
            for (auto& violation : found) {
              std::vector<Fix> fixes;
              rule->GenFix(violation, &fixes);
              std::string rendered = violation.rule_name + ":";
              for (RowId id : violation.RowIds()) {
                rendered += " t" + std::to_string(id);
              }
              rendered += " |";
              for (const auto& fix : fixes) {
                rendered += " " + fix.ToString() + ";";
              }
              out->push_back(std::move(rendered));
            }
          }
        }
      });

  MapReduceDetectionResult result;
  try {
    result.rendered = job.Run(input);
  } catch (const StageError& e) {
    return e.status();
  }
  result.violations = result.rendered.size();
  result.shuffle_bytes = job.shuffle_bytes();
  return result;
}

}  // namespace bigdansing
