#ifndef BIGDANSING_DATAFLOW_METRICS_H_
#define BIGDANSING_DATAFLOW_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bigdansing {

/// Execution counters gathered by the dataflow engine. Because this
/// reproduction runs on one machine, scaling behaviour is evidenced both by
/// wall time and by these work measures (records shuffled across partitions,
/// stages executed, tasks launched, pairs enumerated).
class Metrics {
 public:
  void AddShuffledRecords(uint64_t n) { shuffled_records_ += n; }
  void AddStage() { ++stages_; }
  void AddTasks(uint64_t n) { tasks_ += n; }
  void AddPairsEnumerated(uint64_t n) { pairs_enumerated_ += n; }
  void AddRecordsRead(uint64_t n) { records_read_ += n; }

  uint64_t shuffled_records() const { return shuffled_records_; }
  uint64_t stages() const { return stages_; }
  uint64_t tasks() const { return tasks_; }
  uint64_t pairs_enumerated() const { return pairs_enumerated_; }
  uint64_t records_read() const { return records_read_; }

  /// Accumulates the busy time of one task onto logical worker `slot`.
  /// Tasks are bound to workers by partition index, so the maximum busy sum
  /// over slots is the wall-clock a real cluster with that many executors
  /// would have needed — the scale-out measure reported by the Fig 11(a)
  /// bench (this host may have fewer physical cores than workers).
  void RecordTaskTime(size_t slot, double seconds) {
    std::lock_guard<std::mutex> lock(task_time_mutex_);
    if (slot >= worker_busy_seconds_.size()) {
      worker_busy_seconds_.resize(slot + 1, 0.0);
    }
    worker_busy_seconds_[slot] += seconds;
  }

  /// Simulated cluster wall-clock: the busiest worker's total task time.
  double SimulatedWallSeconds() const {
    std::lock_guard<std::mutex> lock(task_time_mutex_);
    double max_busy = 0.0;
    for (double b : worker_busy_seconds_) max_busy = std::max(max_busy, b);
    return max_busy;
  }

  void Reset() {
    shuffled_records_ = 0;
    stages_ = 0;
    tasks_ = 0;
    pairs_enumerated_ = 0;
    records_read_ = 0;
    std::lock_guard<std::mutex> lock(task_time_mutex_);
    worker_busy_seconds_.clear();
  }

  /// One-line summary for bench output.
  std::string ToString() const {
    return "stages=" + std::to_string(stages_.load()) +
           " tasks=" + std::to_string(tasks_.load()) +
           " shuffled=" + std::to_string(shuffled_records_.load()) +
           " pairs=" + std::to_string(pairs_enumerated_.load()) +
           " read=" + std::to_string(records_read_.load());
  }

 private:
  std::atomic<uint64_t> shuffled_records_{0};
  std::atomic<uint64_t> stages_{0};
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> pairs_enumerated_{0};
  std::atomic<uint64_t> records_read_{0};
  mutable std::mutex task_time_mutex_;
  std::vector<double> worker_busy_seconds_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_METRICS_H_
