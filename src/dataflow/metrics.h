#ifndef BIGDANSING_DATAFLOW_METRICS_H_
#define BIGDANSING_DATAFLOW_METRICS_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace bigdansing {

class Metrics;

/// Wall-clock milliseconds since the Unix epoch — the timebase stage
/// reports stamp their open/close moments with so /stages entries line up
/// with Chrome-trace spans and external logs.
inline uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Live-metrics directory hooks (defined in obs/stage_directory.cc): every
/// Metrics instance announces itself for the observability endpoints'
/// /stages snapshot. Free functions so this header stays obs-agnostic.
void RegisterLiveMetrics(const Metrics* metrics);
void UnregisterLiveMetrics(const Metrics* metrics);

/// Per-task counters filled in by stage task bodies and folded into the
/// owning stage's StageReport by the StageExecutor. Each task gets its own
/// instance, so bodies update it without synchronization.
struct TaskContext {
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  /// Records this task pushed across a shuffle boundary.
  uint64_t shuffled_records = 0;
  /// Which attempt of the task this is (0 = first). Retried attempts see
  /// increasing values; a speculative duplicate gets a distinct attempt
  /// number. Set by the StageExecutor before the body runs.
  uint64_t attempt = 0;
  /// True when this attempt is a speculative duplicate of a straggler.
  bool speculative = false;
  /// Heap traffic of the committed attempt (bytes requested / allocation
  /// count), measured by the counting allocator on the executing thread.
  uint64_t alloc_bytes = 0;
  uint64_t allocs = 0;
};

/// Structured record of one executed stage — the EXPLAIN-style breakdown
/// the benches export as JSON. `busy_seconds` is the sum of per-task CPU
/// time; `wall_seconds` is the driver-observed duration of the stage.
/// `task_seconds` holds each finished task's CPU time (sorted ascending
/// once the stage is finished), from which the skew accessors derive the
/// min/p50/max quantiles and the straggler ratio.
struct StageReport {
  std::string name;
  uint64_t tasks = 0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t shuffled_records = 0;
  double busy_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Recovery activity (see StageExecutor): how many task attempts were
  /// re-executed after a TaskFailure, how many attempts failed, and how
  /// many speculative duplicates were launched / won their race. Exactly
  /// one attempt per task is folded into the record counts above, so these
  /// never inflate records_in/out.
  uint64_t retries = 0;
  uint64_t failed_attempts = 0;
  uint64_t speculative_launched = 0;
  uint64_t speculative_committed = 0;
  /// Row-range morsels executed when the stage ran on the morsel-driven
  /// scheduler (0 for partition-granularity stages). When non-zero, each
  /// entry of `task_seconds` is one morsel's CPU time, so the quantiles
  /// and straggler ratio measure the scheduler's actual work units.
  uint64_t morsels = 0;
  /// Resource accounting (see obs/resource_accounting.h): heap traffic of
  /// the stage's committed attempts, the process RSS delta and the number
  /// of cross-worker steals observed between stage open and close. The RSS
  /// delta is process-wide, so concurrent stages each see the shared
  /// movement — useful for trend, not attribution.
  uint64_t alloc_bytes = 0;
  uint64_t allocs = 0;
  int64_t rss_delta_bytes = 0;
  uint64_t steals = 0;
  /// Wall-clock stamps of stage open and close (Unix epoch milliseconds)
  /// for correlating /stages entries with Chrome-trace spans. `end_ms` is
  /// 0 while the stage is still in flight.
  uint64_t start_ms = 0;
  uint64_t end_ms = 0;
  /// False while the stage is still executing (the live /stages endpoint
  /// reports such partial, in-flight reports); FinishStage sets it.
  bool finished = false;
  std::vector<double> task_seconds;

  /// Fastest task's CPU seconds (0 when no task finished).
  double TaskMinSeconds() const {
    if (task_seconds.empty()) return 0.0;
    return *std::min_element(task_seconds.begin(), task_seconds.end());
  }

  /// Median task CPU seconds (lower median; 0 when no task finished).
  double TaskP50Seconds() const {
    if (task_seconds.empty()) return 0.0;
    std::vector<double> sorted = task_seconds;
    std::sort(sorted.begin(), sorted.end());
    return sorted[(sorted.size() - 1) / 2];
  }

  /// Slowest task's CPU seconds (0 when no task finished).
  double TaskMaxSeconds() const {
    if (task_seconds.empty()) return 0.0;
    return *std::max_element(task_seconds.begin(), task_seconds.end());
  }

  /// Slowest task over mean task time — 1.0 is perfectly balanced, large
  /// values mean one straggler dominated the stage. 0 when no task
  /// finished; 1.0 when all tasks took (near) zero time.
  double StragglerRatio() const {
    if (task_seconds.empty()) return 0.0;
    double sum = 0.0;
    for (double t : task_seconds) sum += t;
    const double mean = sum / static_cast<double>(task_seconds.size());
    if (mean <= 0.0) return 1.0;
    return TaskMaxSeconds() / mean;
  }
};

/// Execution counters gathered by the dataflow engine. Because this
/// reproduction runs on one machine, scaling behaviour is evidenced both by
/// wall time and by these work measures (records shuffled across partitions,
/// stages executed, tasks launched, pairs enumerated). Stages launched via
/// the StageExecutor additionally contribute a named StageReport each.
class Metrics {
 public:
  /// Instances register with the live-metrics directory so the /stages
  /// observability endpoint can snapshot in-flight runs; the destructor
  /// blocks until any concurrent snapshot completes before unregistering.
  Metrics() { RegisterLiveMetrics(this); }
  ~Metrics() { UnregisterLiveMetrics(this); }

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void AddShuffledRecords(uint64_t n) { shuffled_records_ += n; }
  void AddStage() { ++stages_; }
  void AddTasks(uint64_t n) { tasks_ += n; }
  void AddPairsEnumerated(uint64_t n) { pairs_enumerated_ += n; }
  void AddRecordsRead(uint64_t n) { records_read_ += n; }

  /// Observability label for this context's owner, rendered by the /stages
  /// endpoint so multi-context processes (e.g. one ExecutionContext per
  /// stream session) are tellable apart. Empty for anonymous contexts.
  /// Guarded by the stage mutex: the snapshot thread reads it concurrently.
  void set_label(std::string label) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    label_ = std::move(label);
  }
  std::string label() const {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    return label_;
  }

  uint64_t shuffled_records() const { return shuffled_records_; }
  uint64_t stages() const { return stages_; }
  uint64_t tasks() const { return tasks_; }
  uint64_t pairs_enumerated() const { return pairs_enumerated_; }
  uint64_t records_read() const { return records_read_; }
  /// Total row-range morsels executed across all stages.
  uint64_t morsels() const { return morsels_; }

  /// Opens a StageReport for a stage named `name` with `num_tasks` tasks and
  /// returns its handle. Counted into stages()/tasks() immediately.
  ///
  /// Handle lifecycle: handles are tagged with a generation that Reset()
  /// advances, so AccumulateTask/FinishStage with a handle issued before a
  /// Reset() are safe no-ops instead of corrupting the new epoch's reports.
  size_t BeginStage(const std::string& name, uint64_t num_tasks) {
    ++stages_;
    tasks_ += num_tasks;
    std::lock_guard<std::mutex> lock(stage_mutex_);
    StageReport report;
    report.name = name;
    report.tasks = num_tasks;
    report.start_ms = UnixMillisNow();
    stage_reports_.push_back(std::move(report));
    return (generation_ << kHandleGenShift) | (stage_reports_.size() - 1);
  }

  /// Folds one finished task's counters and CPU time into stage `handle`.
  /// The task's shuffled records also count toward the global total.
  /// No-op (including the global total) when `handle` is stale.
  void AccumulateTask(size_t handle, const TaskContext& tc,
                      double busy_seconds) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    StageReport* report = LookupLocked(handle);
    if (report == nullptr) return;
    if (tc.shuffled_records > 0) shuffled_records_ += tc.shuffled_records;
    report->records_in += tc.records_in;
    report->records_out += tc.records_out;
    report->shuffled_records += tc.shuffled_records;
    report->busy_seconds += busy_seconds;
    report->alloc_bytes += tc.alloc_bytes;
    report->allocs += tc.allocs;
    report->task_seconds.push_back(busy_seconds);
  }

  /// Folds one finished morsel's counters into stage `handle`, exactly like
  /// AccumulateTask but also counting the morsel (per-stage and globally).
  /// No-op when `handle` is stale.
  void AccumulateMorsel(size_t handle, const TaskContext& tc,
                        double busy_seconds) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    StageReport* report = LookupLocked(handle);
    if (report == nullptr) return;
    if (tc.shuffled_records > 0) shuffled_records_ += tc.shuffled_records;
    report->records_in += tc.records_in;
    report->records_out += tc.records_out;
    report->shuffled_records += tc.shuffled_records;
    report->busy_seconds += busy_seconds;
    report->alloc_bytes += tc.alloc_bytes;
    report->allocs += tc.allocs;
    report->task_seconds.push_back(busy_seconds);
    ++report->morsels;
    ++morsels_;
  }

  /// Folds one stage's resource deltas (process RSS movement and steal
  /// count between stage open and close) into its open report. No-op when
  /// `handle` is stale.
  void RecordStageResources(size_t handle, int64_t rss_delta_bytes,
                            uint64_t steals) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    StageReport* report = LookupLocked(handle);
    if (report == nullptr) return;
    report->rss_delta_bytes += rss_delta_bytes;
    report->steals += steals;
  }

  /// Folds one stage's recovery counters (retries, failed attempts,
  /// speculative launches/wins) into its open report. No-op when `handle`
  /// is stale.
  void RecordStageRecovery(size_t handle, uint64_t retries,
                           uint64_t failed_attempts,
                           uint64_t speculative_launched,
                           uint64_t speculative_committed) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    StageReport* report = LookupLocked(handle);
    if (report == nullptr) return;
    report->retries += retries;
    report->failed_attempts += failed_attempts;
    report->speculative_launched += speculative_launched;
    report->speculative_committed += speculative_committed;
  }

  /// Closes stage `handle` with its driver-observed wall time and sorts the
  /// per-task times for quantile reads. No-op when `handle` is stale.
  void FinishStage(size_t handle, double wall_seconds) {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    StageReport* report = LookupLocked(handle);
    if (report == nullptr) return;
    report->wall_seconds = wall_seconds;
    report->end_ms = UnixMillisNow();
    report->finished = true;
    std::sort(report->task_seconds.begin(), report->task_seconds.end());
  }

  /// Copy of stage `handle`'s report; a default StageReport when stale.
  StageReport StageReportFor(size_t handle) const {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    const StageReport* report = LookupLocked(handle);
    return report == nullptr ? StageReport{} : *report;
  }

  /// Snapshot of all stage reports recorded so far, in execution order.
  std::vector<StageReport> StageReports() const {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    return stage_reports_;
  }

  /// Accumulates the busy time of one task onto logical worker `slot`.
  /// Tasks are bound to workers by partition index, so the maximum busy sum
  /// over slots is the wall-clock a real cluster with that many executors
  /// would have needed — the scale-out measure reported by the Fig 11(a)
  /// bench (this host may have fewer physical cores than workers).
  void RecordTaskTime(size_t slot, double seconds) {
    std::lock_guard<std::mutex> lock(task_time_mutex_);
    if (slot >= worker_busy_seconds_.size()) {
      worker_busy_seconds_.resize(slot + 1, 0.0);
    }
    worker_busy_seconds_[slot] += seconds;
  }

  /// Simulated cluster wall-clock: the busiest worker's total task time.
  double SimulatedWallSeconds() const {
    std::lock_guard<std::mutex> lock(task_time_mutex_);
    double max_busy = 0.0;
    for (double b : worker_busy_seconds_) max_busy = std::max(max_busy, b);
    return max_busy;
  }

  /// Zeroes every counter and drops all stage reports. Safe while stages
  /// are still open: outstanding handles become stale (their generation no
  /// longer matches) and later AccumulateTask/FinishStage calls on them do
  /// nothing.
  void Reset() {
    shuffled_records_ = 0;
    stages_ = 0;
    tasks_ = 0;
    pairs_enumerated_ = 0;
    records_read_ = 0;
    morsels_ = 0;
    {
      std::lock_guard<std::mutex> lock(stage_mutex_);
      stage_reports_.clear();
      ++generation_;
    }
    std::lock_guard<std::mutex> lock(task_time_mutex_);
    worker_busy_seconds_.clear();
  }

  /// One-line summary for bench output.
  std::string ToString() const {
    return "stages=" + std::to_string(stages_.load()) +
           " tasks=" + std::to_string(tasks_.load()) +
           " morsels=" + std::to_string(morsels_.load()) +
           " shuffled=" + std::to_string(shuffled_records_.load()) +
           " pairs=" + std::to_string(pairs_enumerated_.load()) +
           " read=" + std::to_string(records_read_.load());
  }

  /// Stage reports as a JSON array (execution order).
  std::string StageReportsJson() const {
    std::string out = "[";
    bool first = true;
    for (const StageReport& r : StageReports()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + JsonEscape(r.name) + "\"";
      out += ",\"tasks\":" + std::to_string(r.tasks);
      out += ",\"records_in\":" + std::to_string(r.records_in);
      out += ",\"records_out\":" + std::to_string(r.records_out);
      out += ",\"shuffled_records\":" + std::to_string(r.shuffled_records);
      out += ",\"busy_seconds\":" + JsonDouble(r.busy_seconds);
      out += ",\"wall_seconds\":" + JsonDouble(r.wall_seconds);
      out += ",\"start_ms\":" + std::to_string(r.start_ms);
      out += ",\"end_ms\":" + std::to_string(r.end_ms);
      out += ",\"retries\":" + std::to_string(r.retries);
      out += ",\"failed_attempts\":" + std::to_string(r.failed_attempts);
      out += ",\"speculative_launched\":" +
             std::to_string(r.speculative_launched);
      out += ",\"speculative_committed\":" +
             std::to_string(r.speculative_committed);
      out += ",\"morsels\":" + std::to_string(r.morsels);
      out += ",\"alloc_bytes\":" + std::to_string(r.alloc_bytes);
      out += ",\"allocs\":" + std::to_string(r.allocs);
      out += ",\"rss_delta_bytes\":" + std::to_string(r.rss_delta_bytes);
      out += ",\"steals\":" + std::to_string(r.steals);
      out += std::string(",\"in_flight\":") +
             (r.finished ? "false" : "true");
      out += ",\"task_seconds_min\":" + JsonDouble(r.TaskMinSeconds());
      out += ",\"task_seconds_p50\":" + JsonDouble(r.TaskP50Seconds());
      out += ",\"task_seconds_max\":" + JsonDouble(r.TaskMaxSeconds());
      out += ",\"straggler_ratio\":" + JsonDouble(r.StragglerRatio());
      out += "}";
    }
    out += "]";
    return out;
  }

  /// Full metrics snapshot as one JSON object: the totals plus the
  /// per-stage breakdown. This is what the benches emit.
  std::string ToJson() const {
    std::string out = "{";
    out += "\"stages\":" + std::to_string(stages_.load());
    out += ",\"tasks\":" + std::to_string(tasks_.load());
    out += ",\"morsels\":" + std::to_string(morsels_.load());
    out += ",\"shuffled_records\":" + std::to_string(shuffled_records_.load());
    out += ",\"pairs_enumerated\":" + std::to_string(pairs_enumerated_.load());
    out += ",\"records_read\":" + std::to_string(records_read_.load());
    out += ",\"simulated_wall_seconds\":" + JsonDouble(SimulatedWallSeconds());
    out += ",\"stage_reports\":" + StageReportsJson();
    out += "}";
    return out;
  }

 private:
  /// Stage handles carry the generation in their upper bits so handles
  /// issued before a Reset() can be recognized as stale.
  static constexpr size_t kHandleGenShift = 32;
  static constexpr size_t kHandleIndexMask =
      (size_t{1} << kHandleGenShift) - 1;

  /// Report addressed by `handle`, or null when the handle predates the
  /// last Reset() (or is otherwise out of range). Requires stage_mutex_.
  const StageReport* LookupLocked(size_t handle) const {
    if ((handle >> kHandleGenShift) != generation_) return nullptr;
    const size_t index = handle & kHandleIndexMask;
    if (index >= stage_reports_.size()) return nullptr;
    return &stage_reports_[index];
  }
  StageReport* LookupLocked(size_t handle) {
    return const_cast<StageReport*>(
        static_cast<const Metrics*>(this)->LookupLocked(handle));
  }

  std::atomic<uint64_t> shuffled_records_{0};
  std::atomic<uint64_t> stages_{0};
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> pairs_enumerated_{0};
  std::atomic<uint64_t> records_read_{0};
  std::atomic<uint64_t> morsels_{0};
  mutable std::mutex stage_mutex_;
  std::vector<StageReport> stage_reports_;
  /// Owner label for /stages; guarded by stage_mutex_.
  std::string label_;
  /// Advanced by Reset(); guarded by stage_mutex_.
  size_t generation_ = 0;
  mutable std::mutex task_time_mutex_;
  std::vector<double> worker_busy_seconds_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_METRICS_H_
