#ifndef BIGDANSING_DATAFLOW_DATASET_H_
#define BIGDANSING_DATAFLOW_DATASET_H_

#include <algorithm>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "dataflow/context.h"

namespace bigdansing {

/// A partitioned, immutable, eagerly evaluated collection — the RDD analogue
/// of this reproduction's embedded dataflow engine. Transformations schedule
/// one task per partition on the ExecutionContext's worker pool; key-based
/// operations (GroupByKey, ReduceByKey, Join, CoGroup — free functions below)
/// perform a hash shuffle and record the moved-record count in Metrics.
///
/// Unlike Spark the evaluation is eager: each transformation runs when
/// called. This keeps behaviour easy to reason about while preserving the
/// partitioned execution structure that the paper's experiments vary.
template <typename T>
class Dataset {
 public:
  Dataset() : ctx_(nullptr) {}
  Dataset(ExecutionContext* ctx, std::vector<std::vector<T>> partitions)
      : ctx_(ctx), partitions_(std::move(partitions)) {}

  /// Distributes `items` round-robin over `num_partitions` partitions
  /// (defaults to ctx->default_partitions()).
  static Dataset FromVector(ExecutionContext* ctx, std::vector<T> items,
                            size_t num_partitions = 0) {
    if (num_partitions == 0) num_partitions = ctx->default_partitions();
    if (num_partitions == 0) num_partitions = 1;
    std::vector<std::vector<T>> parts(num_partitions);
    size_t per = (items.size() + num_partitions - 1) / num_partitions;
    if (per == 0) per = 1;
    for (auto& p : parts) p.reserve(per);
    for (size_t i = 0; i < items.size(); ++i) {
      parts[i / per].push_back(std::move(items[i]));
    }
    ctx->metrics().AddRecordsRead(items.size());
    return Dataset(ctx, std::move(parts));
  }

  ExecutionContext* context() const { return ctx_; }
  size_t num_partitions() const { return partitions_.size(); }
  const std::vector<std::vector<T>>& partitions() const { return partitions_; }

  /// Total number of records.
  size_t Count() const {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  /// Gathers all records into one vector (driver-side collect).
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(Count());
    for (const auto& p : partitions_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  /// Element-wise transform. `fn`: const T& -> U.
  template <typename F>
  auto Map(F fn) const -> Dataset<std::decay_t<decltype(fn(std::declval<const T&>()))>> {
    using U = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    std::vector<std::vector<U>> out(partitions_.size());
    RunStage([&](size_t p) {
      const auto& in = partitions_[p];
      out[p].reserve(in.size());
      for (const auto& x : in) out[p].push_back(fn(x));
      ctx_->ChargeMaterialization(in.size());
    });
    return Dataset<U>(ctx_, std::move(out));
  }

  /// One-to-many transform. `fn`: const T& -> std::vector<U>.
  template <typename F>
  auto FlatMap(F fn) const
      -> Dataset<typename std::decay_t<decltype(fn(std::declval<const T&>()))>::value_type> {
    using U = typename std::decay_t<decltype(fn(std::declval<const T&>()))>::value_type;
    std::vector<std::vector<U>> out(partitions_.size());
    RunStage([&](size_t p) {
      for (const auto& x : partitions_[p]) {
        auto produced = fn(x);
        for (auto& u : produced) out[p].push_back(std::move(u));
      }
      ctx_->ChargeMaterialization(out[p].size());
    });
    return Dataset<U>(ctx_, std::move(out));
  }

  /// Keeps records satisfying `pred`.
  template <typename F>
  Dataset<T> Filter(F pred) const {
    std::vector<std::vector<T>> out(partitions_.size());
    RunStage([&](size_t p) {
      for (const auto& x : partitions_[p]) {
        if (pred(x)) out[p].push_back(x);
      }
      ctx_->ChargeMaterialization(partitions_[p].size());
    });
    return Dataset<T>(ctx_, std::move(out));
  }

  /// Whole-partition transform. `fn`: const std::vector<T>& -> std::vector<U>.
  template <typename U, typename F>
  Dataset<U> MapPartitions(F fn) const {
    std::vector<std::vector<U>> out(partitions_.size());
    RunStage([&](size_t p) {
      out[p] = fn(partitions_[p]);
      ctx_->ChargeMaterialization(partitions_[p].size());
    });
    return Dataset<U>(ctx_, std::move(out));
  }

  /// Redistributes records round-robin into `n` partitions (full shuffle).
  Dataset<T> Repartition(size_t n) const {
    if (n == 0) n = 1;
    std::vector<T> all = Collect();
    ctx_->metrics().AddShuffledRecords(all.size());
    ctx_->metrics().AddStage();
    std::vector<std::vector<T>> parts(n);
    for (size_t i = 0; i < all.size(); ++i) {
      parts[i % n].push_back(std::move(all[i]));
    }
    return Dataset<T>(ctx_, std::move(parts));
  }

  /// Concatenation (no shuffle; partitions are appended).
  Dataset<T> Union(const Dataset<T>& other) const {
    std::vector<std::vector<T>> parts = partitions_;
    parts.insert(parts.end(), other.partitions_.begin(),
                 other.partitions_.end());
    return Dataset<T>(ctx_, std::move(parts));
  }

  /// Full cross product with `other`. Quadratic: use only on inputs known to
  /// be small (the paper's baselines pay exactly this cost).
  template <typename U>
  Dataset<std::pair<T, U>> Cartesian(const Dataset<U>& other) const {
    std::vector<U> right = other.Collect();
    ctx_->metrics().AddShuffledRecords(right.size() * partitions_.size());
    std::vector<std::vector<std::pair<T, U>>> out(partitions_.size());
    RunStage([&](size_t p) {
      uint64_t pairs = 0;
      for (const auto& a : partitions_[p]) {
        for (const auto& b : right) {
          out[p].emplace_back(a, b);
          ++pairs;
        }
      }
      ctx_->metrics().AddPairsEnumerated(pairs);
    });
    return Dataset<std::pair<T, U>>(ctx_, std::move(out));
  }

  /// Schedules `body(p)` for every partition index and waits; records
  /// stage/task metrics and per-worker busy time (partition p runs on
  /// logical worker p % num_workers). Exposed for operators built on top of
  /// the engine (e.g. OCJoin) that need custom per-partition logic.
  template <typename F>
  void RunStage(F body) const {
    ctx_->metrics().AddStage();
    ctx_->metrics().AddTasks(partitions_.size());
    const size_t workers = ctx_->num_workers();
    ctx_->pool().ParallelFor(partitions_.size(), [&](size_t p) {
      ThreadCpuStopwatch task_timer;
      body(p);
      ctx_->metrics().RecordTaskTime(p % workers, task_timer.ElapsedSeconds());
    });
  }

 private:
  ExecutionContext* ctx_;
  std::vector<std::vector<T>> partitions_;
};

namespace dataflow_internal {

/// Hash-shuffles key-value records into `num_out` buckets, in parallel over
/// input partitions. Returns per-output-partition record vectors.
template <typename K, typename V, typename Hash>
std::vector<std::vector<std::pair<K, V>>> ShuffleByKey(
    const Dataset<std::pair<K, V>>& ds, size_t num_out, const Hash& hash) {
  ExecutionContext* ctx = ds.context();
  const auto& parts = ds.partitions();
  // buckets[input_partition][output_partition]
  std::vector<std::vector<std::vector<std::pair<K, V>>>> buckets(
      parts.size(),
      std::vector<std::vector<std::pair<K, V>>>(num_out));
  ds.RunStage([&](size_t p) {
    for (const auto& kv : parts[p]) {
      size_t target = hash(kv.first) % num_out;
      buckets[p][target].push_back(kv);
    }
    ctx->metrics().AddShuffledRecords(parts[p].size());
    ctx->ChargeMaterialization(parts[p].size());
  });
  std::vector<std::vector<std::pair<K, V>>> out(num_out);
  ctx->pool().ParallelFor(num_out, [&](size_t q) {
    size_t total = 0;
    for (size_t p = 0; p < parts.size(); ++p) total += buckets[p][q].size();
    out[q].reserve(total);
    for (size_t p = 0; p < parts.size(); ++p) {
      auto& b = buckets[p][q];
      out[q].insert(out[q].end(), std::make_move_iterator(b.begin()),
                    std::make_move_iterator(b.end()));
    }
  });
  return out;
}

}  // namespace dataflow_internal

/// Groups values by key with a hash shuffle: Spark's groupByKey.
template <typename K, typename V, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds, size_t num_partitions = 0,
    const Hash& hash = Hash()) {
  ExecutionContext* ctx = ds.context();
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, ds.num_partitions());
  auto shuffled = dataflow_internal::ShuffleByKey(ds, num_partitions, hash);
  std::vector<std::vector<std::pair<K, std::vector<V>>>> out(num_partitions);
  ctx->pool().ParallelFor(num_partitions, [&](size_t q) {
    std::unordered_map<K, std::vector<V>, Hash> groups(16, hash);
    for (auto& kv : shuffled[q]) {
      groups[kv.first].push_back(std::move(kv.second));
    }
    out[q].reserve(groups.size());
    for (auto& g : groups) {
      out[q].emplace_back(g.first, std::move(g.second));
    }
  });
  return Dataset<std::pair<K, std::vector<V>>>(ctx, std::move(out));
}

/// Combines values per key with `reduce`: Spark's reduceByKey. `reduce`
/// must be associative and commutative; it is applied map-side first so the
/// shuffle moves at most one record per key per partition.
template <typename K, typename V, typename F, typename Hash = std::hash<K>>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     F reduce, size_t num_partitions = 0,
                                     const Hash& hash = Hash()) {
  ExecutionContext* ctx = ds.context();
  // Map-side combine.
  auto combined = ds.template MapPartitions<std::pair<K, V>>(
      [&](const std::vector<std::pair<K, V>>& part) {
        std::unordered_map<K, V, Hash> acc(16, hash);
        for (const auto& kv : part) {
          auto it = acc.find(kv.first);
          if (it == acc.end()) {
            acc.emplace(kv.first, kv.second);
          } else {
            it->second = reduce(it->second, kv.second);
          }
        }
        std::vector<std::pair<K, V>> out;
        out.reserve(acc.size());
        for (auto& kv : acc) out.emplace_back(kv.first, std::move(kv.second));
        return out;
      });
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, ds.num_partitions());
  auto shuffled =
      dataflow_internal::ShuffleByKey(combined, num_partitions, hash);
  std::vector<std::vector<std::pair<K, V>>> out(num_partitions);
  ctx->pool().ParallelFor(num_partitions, [&](size_t q) {
    std::unordered_map<K, V, Hash> acc(16, hash);
    for (auto& kv : shuffled[q]) {
      auto it = acc.find(kv.first);
      if (it == acc.end()) {
        acc.emplace(std::move(kv.first), std::move(kv.second));
      } else {
        it->second = reduce(it->second, kv.second);
      }
    }
    out[q].reserve(acc.size());
    for (auto& kv : acc) out[q].emplace_back(kv.first, std::move(kv.second));
  });
  return Dataset<std::pair<K, V>>(ctx, std::move(out));
}

/// Inner hash join on key: Spark's join.
template <typename K, typename V, typename W, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::pair<V, W>>> Join(const Dataset<std::pair<K, V>>& a,
                                            const Dataset<std::pair<K, W>>& b,
                                            size_t num_partitions = 0,
                                            const Hash& hash = Hash()) {
  ExecutionContext* ctx = a.context();
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, a.num_partitions());
  auto left = dataflow_internal::ShuffleByKey(a, num_partitions, hash);
  auto right = dataflow_internal::ShuffleByKey(b, num_partitions, hash);
  std::vector<std::vector<std::pair<K, std::pair<V, W>>>> out(num_partitions);
  ctx->pool().ParallelFor(num_partitions, [&](size_t q) {
    std::unordered_map<K, std::vector<V>, Hash> build(16, hash);
    for (auto& kv : left[q]) build[kv.first].push_back(std::move(kv.second));
    for (auto& kw : right[q]) {
      auto it = build.find(kw.first);
      if (it == build.end()) continue;
      for (const auto& v : it->second) {
        out[q].emplace_back(kw.first, std::make_pair(v, kw.second));
      }
    }
  });
  return Dataset<std::pair<K, std::pair<V, W>>>(ctx, std::move(out));
}

/// Groups two keyed datasets on the same key — the paper's CoBlock enhancer
/// maps onto this (Spark's cogroup). Keys absent from one side produce an
/// empty bag on that side.
template <typename K, typename V, typename W, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> CoGroup(
    const Dataset<std::pair<K, V>>& a, const Dataset<std::pair<K, W>>& b,
    size_t num_partitions = 0, const Hash& hash = Hash()) {
  ExecutionContext* ctx = a.context();
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, a.num_partitions());
  auto left = dataflow_internal::ShuffleByKey(a, num_partitions, hash);
  auto right = dataflow_internal::ShuffleByKey(b, num_partitions, hash);
  using Bags = std::pair<std::vector<V>, std::vector<W>>;
  std::vector<std::vector<std::pair<K, Bags>>> out(num_partitions);
  ctx->pool().ParallelFor(num_partitions, [&](size_t q) {
    std::unordered_map<K, Bags, Hash> groups(16, hash);
    for (auto& kv : left[q]) groups[kv.first].first.push_back(std::move(kv.second));
    for (auto& kw : right[q]) groups[kw.first].second.push_back(std::move(kw.second));
    out[q].reserve(groups.size());
    for (auto& g : groups) out[q].emplace_back(g.first, std::move(g.second));
  });
  return Dataset<std::pair<K, Bags>>(ctx, std::move(out));
}

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_DATASET_H_
