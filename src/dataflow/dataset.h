#ifndef BIGDANSING_DATAFLOW_DATASET_H_
#define BIGDANSING_DATAFLOW_DATASET_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "dataflow/context.h"
#include "dataflow/stage_executor.h"

namespace bigdansing {

/// A partitioned, immutable, *lazily* evaluated collection — the RDD
/// analogue of this reproduction's embedded dataflow engine.
///
/// Element-wise transformations (Map, FlatMap, Filter, MapPartitions) do not
/// run when called: they append a step to a deferred per-partition pipeline.
/// The pipeline executes — fused into a single pass per partition with no
/// intermediate partition vectors — when the dataset is *forced* by an
/// action (Collect, Count, partitions()) or by a shuffle boundary
/// (GroupByKey, ReduceByKey, Join, CoGroup, Repartition, Cartesian — free
/// functions and methods below). A forced dataset caches its partitions, so
/// repeated actions do not re-execute the pipeline and results are identical
/// per partition to the former eager engine.
///
/// Every fused pipeline runs as one named stage through the StageExecutor,
/// so a Map→Filter→Map chain costs one stage (and one materialization
/// charge in Hadoop mode) instead of three.
///
/// Lifetime rule: functors passed to transformations are copied into the
/// pipeline, but anything they capture *by reference* must stay alive until
/// the dataset is forced. All engine call-sites force within the scope that
/// owns the captures.
template <typename T>
class Dataset {
  template <typename>
  friend class Dataset;

 public:
  /// Streams one record to the consumer of a pipeline step.
  using Sink = std::function<void(T&&)>;
  /// Produces all records of one partition by invoking the sink per record.
  using Producer = std::function<void(size_t, const Sink&)>;
  /// Range form of a fused pipeline: streams the output of rows
  /// [begin, end) of the pipeline *root's* partition `p` — the coordinates
  /// SplitRows(p) counts in. Element-wise chains (Map/FlatMap/Filter) are
  /// range-splittable because each root row's output is independent of the
  /// others, so concatenating range outputs in row order reproduces the
  /// whole-partition stream bit-identically; whole-partition steps
  /// (MapPartitions) are not, and datasets containing one have no
  /// RangeProducer.
  using RangeProducer =
      std::function<void(size_t, size_t, size_t, const Sink&)>;

  Dataset() : state_(nullptr) {}
  /// Wraps already-materialized partitions (no stage runs).
  Dataset(ExecutionContext* ctx, std::vector<std::vector<T>> partitions)
      : state_(std::make_shared<State>()) {
    state_->ctx = ctx;
    state_->num_partitions = partitions.size();
    state_->parts = std::move(partitions);
    state_->materialized = true;
  }

  /// Distributes `items` round-robin over `num_partitions` partitions
  /// (defaults to ctx->default_partitions()).
  static Dataset FromVector(ExecutionContext* ctx, std::vector<T> items,
                            size_t num_partitions = 0) {
    if (num_partitions == 0) num_partitions = ctx->default_partitions();
    if (num_partitions == 0) num_partitions = 1;
    std::vector<std::vector<T>> parts(num_partitions);
    size_t per = (items.size() + num_partitions - 1) / num_partitions;
    if (per == 0) per = 1;
    for (auto& p : parts) p.reserve(per);
    for (size_t i = 0; i < items.size(); ++i) {
      parts[i / per].push_back(std::move(items[i]));
    }
    ctx->metrics().AddRecordsRead(items.size());
    return Dataset(ctx, std::move(parts));
  }

  ExecutionContext* context() const { return state_ ? state_->ctx : nullptr; }
  size_t num_partitions() const {
    return state_ ? state_->num_partitions : 0;
  }

  /// True when the deferred pipeline (if any) has already executed.
  bool materialized() const { return !state_ || state_->materialized; }

  /// Name of the pending fused pipeline ("scope|filter|map"); empty when
  /// materialized.
  const std::string& pipeline_label() const {
    static const std::string kEmpty;
    return state_ && !state_->materialized ? state_->label : kEmpty;
  }

  /// Partition storage. Forces the pipeline.
  const std::vector<std::vector<T>>& partitions() const {
    static const std::vector<std::vector<T>> kEmpty;
    if (!state_) return kEmpty;
    Force();
    return state_->parts;
  }

  /// Total number of records. Forces the pipeline.
  size_t Count() const {
    size_t n = 0;
    for (const auto& p : partitions()) n += p.size();
    return n;
  }

  /// Gathers all records into one vector (driver-side collect). Forces.
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(Count());
    for (const auto& p : partitions()) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  /// Streams partition `p` through the fused pipeline into `sink` on the
  /// calling thread, without materializing this dataset. Exposed for
  /// shuffle implementations that consume the pipeline directly; most
  /// callers want partitions().
  void StreamPartition(size_t p, const Sink& sink) const {
    StreamFrom(state_, p, sink);
  }

  /// True when partition streams can be produced per root-row range —
  /// materialized data, or a deferred pipeline of element-wise steps only.
  /// The morsel scheduler requires this; non-splittable datasets force at
  /// partition granularity.
  bool RangeStreamable() const {
    if (!state_) return false;
    return state_->materialized ||
           (state_->produce_range && state_->split_rows);
  }

  /// Rows of partition `p` in the coordinates StreamPartitionRange splits
  /// on: the root partition size captured when this node was built (stable
  /// even if an ancestor materializes later), or the partition size when
  /// materialized. Only meaningful when RangeStreamable().
  size_t SplitRows(size_t p) const {
    if (!state_) return 0;
    if (state_->materialized) return state_->parts[p].size();
    return state_->split_rows ? state_->split_rows(p) : 0;
  }

  /// Streams the pipeline output of root rows [begin, end) of partition
  /// `p` into `sink`. Requires RangeStreamable(). Concatenating the
  /// streams of consecutive ranges covering [0, SplitRows(p)) yields
  /// exactly StreamPartition(p)'s stream.
  void StreamPartitionRange(size_t p, size_t begin, size_t end,
                            const Sink& sink) const {
    if (!state_) return;
    if (state_->materialized) {
      const auto& part = state_->parts[p];
      if (end > part.size()) end = part.size();
      for (size_t i = begin; i < end; ++i) sink(T(part[i]));
      return;
    }
    state_->produce_range(p, begin, end, sink);
  }

  /// Records entering partition `p`'s fused pipeline (the pipeline root's
  /// partition size). Equals the partition size when materialized.
  size_t InputSize(size_t p) const {
    if (!state_) return 0;
    if (state_->materialized) return state_->parts[p].size();
    return state_->input_size(p);
  }

  /// Element-wise transform. `fn`: const T& -> U. Deferred.
  template <typename F>
  auto Map(F fn, const std::string& name = "map") const
      -> Dataset<std::decay_t<decltype(fn(std::declval<const T&>()))>> {
    using U = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    auto parent = state_;
    RangeProducer parent_range = RangeProducerFn();
    typename Dataset<U>::RangeProducer range;
    if (parent_range) {
      range = [parent_range, fn](size_t p, size_t begin, size_t end,
                                 const typename Dataset<U>::Sink& sink) {
        parent_range(p, begin, end, [&](T&& x) { sink(fn(x)); });
      };
    }
    return Dataset<U>::Deferred(
        context(), num_partitions(), ChainLabel(name),
        [parent, fn](size_t p, const typename Dataset<U>::Sink& sink) {
          StreamFrom(parent, p, [&](T&& x) { sink(fn(x)); });
        },
        InputSizeFn(), std::move(range), SplitRowsFn());
  }

  /// One-to-many transform. `fn`: const T& -> std::vector<U>. Deferred.
  template <typename F>
  auto FlatMap(F fn, const std::string& name = "flatMap") const
      -> Dataset<
          typename std::decay_t<decltype(fn(std::declval<const T&>()))>::value_type> {
    using U =
        typename std::decay_t<decltype(fn(std::declval<const T&>()))>::value_type;
    auto parent = state_;
    RangeProducer parent_range = RangeProducerFn();
    typename Dataset<U>::RangeProducer range;
    if (parent_range) {
      range = [parent_range, fn](size_t p, size_t begin, size_t end,
                                 const typename Dataset<U>::Sink& sink) {
        parent_range(p, begin, end, [&](T&& x) {
          auto produced = fn(x);
          for (auto& u : produced) sink(std::move(u));
        });
      };
    }
    return Dataset<U>::Deferred(
        context(), num_partitions(), ChainLabel(name),
        [parent, fn](size_t p, const typename Dataset<U>::Sink& sink) {
          StreamFrom(parent, p, [&](T&& x) {
            auto produced = fn(x);
            for (auto& u : produced) sink(std::move(u));
          });
        },
        InputSizeFn(), std::move(range), SplitRowsFn());
  }

  /// Keeps records satisfying `pred`. Deferred.
  template <typename F>
  Dataset<T> Filter(F pred, const std::string& name = "filter") const {
    auto parent = state_;
    RangeProducer parent_range = RangeProducerFn();
    RangeProducer range;
    if (parent_range) {
      range = [parent_range, pred](size_t p, size_t begin, size_t end,
                                   const Sink& sink) {
        parent_range(p, begin, end, [&](T&& x) {
          if (pred(x)) sink(std::move(x));
        });
      };
    }
    return Dataset<T>::Deferred(
        context(), num_partitions(), ChainLabel(name),
        [parent, pred](size_t p, const Sink& sink) {
          StreamFrom(parent, p, [&](T&& x) {
            if (pred(x)) sink(std::move(x));
          });
        },
        InputSizeFn(), std::move(range), SplitRowsFn());
  }

  /// Whole-partition transform. `fn`: const std::vector<T>& ->
  /// std::vector<U>. Deferred; fuses into the stage (the partition is
  /// buffered locally when the upstream is itself deferred).
  template <typename U, typename F>
  Dataset<U> MapPartitions(F fn,
                           const std::string& name = "mapPartitions") const {
    auto parent = state_;
    return Dataset<U>::Deferred(
        context(), num_partitions(), ChainLabel(name),
        [parent, fn](size_t p, const typename Dataset<U>::Sink& sink) {
          std::vector<U> out;
          if (parent && parent->materialized) {
            out = fn(parent->parts[p]);
          } else {
            std::vector<T> buffer;
            StreamFrom(parent, p,
                       [&](T&& x) { buffer.push_back(std::move(x)); });
            out = fn(buffer);
          }
          for (auto& u : out) sink(std::move(u));
        },
        InputSizeFn());
  }

  /// Redistributes records round-robin into `n` partitions (full shuffle).
  /// Forces the pipeline, then moves records in parallel: a map-side pass
  /// buckets each input partition (record g of the collect order lands in
  /// bucket g % n) and a reduce-side pass concatenates the buckets, so the
  /// result is identical to a driver-side collect + round-robin loop.
  Dataset<T> Repartition(size_t n) const {
    if (n == 0) n = 1;
    ExecutionContext* ctx = context();
    const auto& parts = partitions();
    // Global start offset of each input partition in collect order.
    std::vector<size_t> offset(parts.size() + 1, 0);
    for (size_t p = 0; p < parts.size(); ++p) {
      offset[p + 1] = offset[p] + parts[p].size();
    }
    StageExecutor executor(ctx);
    Counter& shuffle_bytes =
        MetricsRegistry::Instance().GetCounter("dataflow.shuffle_bytes");
    Gauge& peak_partition_bytes = MetricsRegistry::Instance().GetGauge(
        "dataflow.peak_partition_bytes");
    // buckets[input_partition][output_partition]; map tasks produce their
    // bucket row as the attempt's output buffer, so retries and speculative
    // duplicates never interleave writes.
    auto buckets_result = executor.RunProducing<std::vector<std::vector<T>>>(
        "repartition:map", parts.size(), [&](size_t p, TaskContext& tc) {
          std::vector<std::vector<T>> row(n);
          for (size_t i = 0; i < parts[p].size(); ++i) {
            row[(offset[p] + i) % n].push_back(parts[p][i]);
          }
          tc.records_in = parts[p].size();
          tc.records_out = parts[p].size();
          tc.shuffled_records = parts[p].size();
          shuffle_bytes.Add(parts[p].size() * sizeof(T));
          return row;
        });
    if (!buckets_result.ok()) throw StageError(buckets_result.status());
    auto& buckets = *buckets_result;
    auto merged = executor.RunProducing<std::vector<T>>(
        "repartition:merge", n, [&](size_t q, TaskContext& tc) {
          size_t total = 0;
          for (size_t p = 0; p < parts.size(); ++p) {
            total += buckets[p][q].size();
          }
          std::vector<T> slot;
          slot.reserve(total);
          for (size_t p = 0; p < parts.size(); ++p) {
            const auto& b = buckets[p][q];
            slot.insert(slot.end(), b.begin(), b.end());
          }
          tc.records_in = total;
          tc.records_out = total;
          peak_partition_bytes.UpdateMax(static_cast<int64_t>(total * sizeof(T)));
          return slot;
        });
    if (!merged.ok()) throw StageError(merged.status());
    return Dataset<T>(ctx, std::move(*merged));
  }

  /// Concatenation (no shuffle; partitions are appended). Deferred when
  /// either side still has a pending pipeline.
  Dataset<T> Union(const Dataset<T>& other) const {
    if (materialized() && other.materialized()) {
      std::vector<std::vector<T>> parts =
          state_ ? state_->parts : std::vector<std::vector<T>>{};
      if (other.state_) {
        parts.insert(parts.end(), other.state_->parts.begin(),
                     other.state_->parts.end());
      }
      return Dataset<T>(context() ? context() : other.context(),
                        std::move(parts));
    }
    auto left = state_;
    auto right = other.state_;
    const size_t left_np = num_partitions();
    // The union is range-splittable iff both sides are; each side's range
    // producer and root sizes are captured by value here, so a side that
    // materializes later keeps the coordinates of construction time.
    RangeProducer left_range = RangeProducerFn();
    RangeProducer right_range = other.RangeProducerFn();
    std::function<size_t(size_t)> left_rows = SplitRowsFn();
    std::function<size_t(size_t)> right_rows = other.SplitRowsFn();
    RangeProducer range;
    std::function<size_t(size_t)> split_rows;
    if (left_range && right_range && left_rows && right_rows) {
      range = [left_range, right_range, left_np](size_t p, size_t begin,
                                                 size_t end, const Sink& sink) {
        if (p < left_np) {
          left_range(p, begin, end, sink);
        } else {
          right_range(p - left_np, begin, end, sink);
        }
      };
      split_rows = [left_rows, right_rows, left_np](size_t p) {
        return p < left_np ? left_rows(p) : right_rows(p - left_np);
      };
    }
    return Dataset<T>::Deferred(
        context() ? context() : other.context(),
        left_np + other.num_partitions(), "union",
        [left, right, left_np](size_t p, const Sink& sink) {
          if (p < left_np) {
            StreamFrom(left, p, sink);
          } else {
            StreamFrom(right, p - left_np, sink);
          }
        },
        [left, right, left_np](size_t p) {
          const auto& s = p < left_np ? left : right;
          const size_t q = p < left_np ? p : p - left_np;
          if (!s) return size_t{0};
          return s->materialized ? s->parts[q].size() : s->input_size(q);
        },
        std::move(range), std::move(split_rows));
  }

  /// Full cross product with `other`. Quadratic: use only on inputs known to
  /// be small (the paper's baselines pay exactly this cost). Forces both
  /// sides (a shuffle boundary).
  template <typename U>
  Dataset<std::pair<T, U>> Cartesian(const Dataset<U>& other) const {
    ExecutionContext* ctx = context();
    std::vector<U> right = other.Collect();
    const auto& parts = partitions();
    ctx->metrics().AddShuffledRecords(right.size() * parts.size());
    auto out = StageExecutor(ctx).RunProducing<std::vector<std::pair<T, U>>>(
        "cartesian", parts.size(), [&](size_t p, TaskContext& tc) {
          std::vector<std::pair<T, U>> slot;
          slot.reserve(parts[p].size() * right.size());
          uint64_t pairs = 0;
          for (const auto& a : parts[p]) {
            for (const auto& b : right) {
              slot.emplace_back(a, b);
              ++pairs;
            }
          }
          tc.records_in = parts[p].size();
          tc.records_out = pairs;
          ctx->metrics().AddPairsEnumerated(pairs);
          return slot;
        });
    if (!out.ok()) throw StageError(out.status());
    return Dataset<std::pair<T, U>>(ctx, std::move(*out));
  }

  /// Schedules `body(p)` for every partition index and waits, as one named
  /// stage on the StageExecutor. Forces the pipeline first. Exposed for
  /// operators built on top of the engine (e.g. OCJoin) that need custom
  /// per-partition logic. The body writes caller memory in place, so this
  /// form never speculates; a stage failure surfaces as a StageError
  /// (caught at the public API boundaries and returned as a Status).
  template <typename F>
  void RunStage(const std::string& name, F body) const {
    const auto& parts = partitions();
    ExecutionContext* ctx = context();
    if (ctx == nullptr) return;
    Status st = StageExecutor(ctx).Run(
        name, parts.size(), [&](size_t p, TaskContext& tc) {
          body(p);
          tc.records_in = parts[p].size();
        });
    if (!st.ok()) throw StageError(std::move(st));
  }

  /// Back-compat overload: unnamed stage.
  template <typename F>
  void RunStage(F body) const {
    RunStage("stage", std::move(body));
  }

  /// Like RunStage, but each task returns its result (`body`: size_t ->
  /// U, or (size_t, TaskContext&) -> U via the executor's buffering), and
  /// the per-partition results come back as a vector indexed by partition.
  /// Buffered outputs make the stage retryable and speculation-capable.
  /// Throws StageError when the stage fails (caught at public boundaries).
  template <typename U, typename F>
  std::vector<U> RunStageProducing(const std::string& name, F body) const {
    const auto& parts = partitions();
    ExecutionContext* ctx = context();
    if (ctx == nullptr) return {};
    auto result = StageExecutor(ctx).RunProducing<U>(
        name, parts.size(), [&](size_t p, TaskContext& tc) {
          tc.records_in = parts[p].size();
          return body(p, tc);
        });
    if (!result.ok()) throw StageError(result.status());
    return std::move(*result);
  }

  /// Morsel-capable RunStageProducing for stages whose per-partition work
  /// decomposes into `units_of(p)` independent units (rows, blocks,
  /// pairs): `body(p, begin, end, tc)` processes units [begin, end) of
  /// partition p and returns a partial U; `merge(p, pieces)` folds the
  /// partials in ascending unit order into partition p's result. With
  /// morsels disabled (ctx->morsel_rows() == 0) the stage runs one body
  /// call per partition — identical results, partition granularity.
  /// Forces the pipeline first. Throws StageError when the stage fails.
  template <typename U, typename RowsF, typename F, typename M>
  std::vector<U> RunStageMorsels(const std::string& name, RowsF units_of,
                                 F body, M merge) const {
    const auto& parts = partitions();
    (void)parts;
    ExecutionContext* ctx = context();
    if (ctx == nullptr) return {};
    auto result = StageExecutor(ctx).RunMorsels<U>(
        name, num_partitions(),
        [&](size_t p) -> size_t { return units_of(p); },
        [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
          return body(p, begin, end, tc);
        },
        [&](size_t p, std::vector<U>&& pieces) {
          return merge(p, std::move(pieces));
        });
    if (!result.ok()) throw StageError(result.status());
    return std::move(*result);
  }

 private:
  /// Shared, cached evaluation state. Copies of a Dataset share one State,
  /// so forcing through any copy materializes for all of them.
  struct State {
    ExecutionContext* ctx = nullptr;
    size_t num_partitions = 0;
    /// Deferred fused pipeline; null once materialized.
    Producer produce;
    /// Range form of `produce` for element-wise chains; null when the
    /// chain contains a whole-partition step (not range-splittable).
    RangeProducer produce_range;
    /// Record count entering the pipeline for a partition (pipeline root's
    /// partition size); only meaningful while deferred.
    std::function<size_t(size_t)> input_size;
    /// Root partition size in produce_range's coordinates, captured by
    /// value at node construction — unlike input_size it cannot shift when
    /// an ancestor materializes, which is what keeps range splitting
    /// exhaustive. Null iff produce_range is.
    std::function<size_t(size_t)> split_rows;
    /// Stage name for the fused pipeline, e.g. "scope|filter".
    std::string label;
    std::vector<std::vector<T>> parts;
    bool materialized = false;
  };

  /// Builds a deferred dataset node (internal; used across Dataset<T> and
  /// Dataset<U> via friendship). `produce_range`/`split_rows` may be null:
  /// the node is then not range-splittable and forces at partition
  /// granularity.
  static Dataset Deferred(ExecutionContext* ctx, size_t num_partitions,
                          std::string label, Producer produce,
                          std::function<size_t(size_t)> input_size,
                          RangeProducer produce_range = nullptr,
                          std::function<size_t(size_t)> split_rows = nullptr) {
    Dataset ds;
    ds.state_ = std::make_shared<State>();
    ds.state_->ctx = ctx;
    ds.state_->num_partitions = num_partitions;
    ds.state_->produce = std::move(produce);
    ds.state_->produce_range = std::move(produce_range);
    ds.state_->input_size = std::move(input_size);
    ds.state_->split_rows = std::move(split_rows);
    ds.state_->label = std::move(label);
    return ds;
  }

  /// Range producer a child node chains onto: replays rows [begin, end) of
  /// the cached partition when this dataset is materialized, else this
  /// dataset's own range pipeline (copied by value — stable even if this
  /// node materializes before the child forces). Null when not splittable.
  RangeProducer RangeProducerFn() const {
    auto parent = state_;
    if (!parent) return nullptr;
    if (parent->materialized) {
      return [parent](size_t p, size_t begin, size_t end, const Sink& sink) {
        const auto& part = parent->parts[p];
        if (end > part.size()) end = part.size();
        for (size_t i = begin; i < end; ++i) sink(T(part[i]));
      };
    }
    return parent->produce_range;
  }

  /// Root row count a child node's range producer splits on; null when
  /// this dataset is not range-splittable.
  std::function<size_t(size_t)> SplitRowsFn() const {
    auto parent = state_;
    if (!parent) return nullptr;
    if (parent->materialized) {
      return [parent](size_t p) { return parent->parts[p].size(); };
    }
    return parent->split_rows;
  }

  /// Streams partition `p` of `state` into `sink`: replays the cache when
  /// materialized (copying, as the cache stays valid), otherwise runs the
  /// deferred pipeline.
  static void StreamFrom(const std::shared_ptr<State>& state, size_t p,
                         const Sink& sink) {
    if (!state) return;
    if (state->materialized) {
      for (const T& x : state->parts[p]) sink(T(x));
      return;
    }
    state->produce(p, sink);
  }

  /// Label of the pipeline extended by step `name`.
  std::string ChainLabel(const std::string& name) const {
    if (!state_ || state_->materialized || state_->label.empty()) return name;
    if (state_->label.size() > 160) return state_->label;  // Cap runaway chains.
    return state_->label + "|" + name;
  }

  /// Root-partition-size function for a node chained onto this dataset.
  std::function<size_t(size_t)> InputSizeFn() const {
    auto parent = state_;
    return [parent](size_t p) {
      if (!parent) return size_t{0};
      return parent->materialized ? parent->parts[p].size()
                                  : parent->input_size(p);
    };
  }

  /// Executes the fused pipeline as one stage and caches the result.
  /// Pipelines are pure (functors over immutable parents), so attempts are
  /// re-runnable: each buffers into its own output vector and the executor
  /// publishes exactly one per partition. Throws StageError on stage
  /// failure (caught at the public API boundaries).
  ///
  /// Range-splittable pipelines run on the morsel scheduler: every
  /// BD_MORSEL_ROWS root rows of a partition become one independently
  /// scheduled morsel, and the partition's cache is the concatenation of
  /// its morsel outputs in row order — bit-identical to one streaming pass
  /// (element-wise steps preserve per-row output order). Non-splittable
  /// pipelines, and all pipelines when morsels are disabled, run one task
  /// per partition exactly as before.
  void Force() const {
    State& s = *state_;
    if (s.materialized) return;
    const std::string stage_name = s.label.empty() ? "stage" : s.label;
    const size_t morsel_rows = s.ctx ? s.ctx->morsel_rows() : 0;
    Result<std::vector<std::vector<T>>> produced = Status::OK();
    if (morsel_rows > 0 && s.produce_range && s.split_rows) {
      produced = StageExecutor(s.ctx).RunMorsels<std::vector<T>>(
          stage_name, s.num_partitions,
          [&](size_t p) { return s.split_rows(p); },
          [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
            std::vector<T> piece;
            s.produce_range(p, begin, end,
                            [&](T&& x) { piece.push_back(std::move(x)); });
            tc.records_in = end - begin;
            tc.records_out = piece.size();
            s.ctx->ChargeMaterialization(piece.size());
            return piece;
          },
          [](size_t, std::vector<std::vector<T>>&& pieces) {
            size_t total = 0;
            for (const auto& piece : pieces) total += piece.size();
            std::vector<T> slot;
            slot.reserve(total);
            for (auto& piece : pieces) {
              slot.insert(slot.end(), std::make_move_iterator(piece.begin()),
                          std::make_move_iterator(piece.end()));
            }
            return slot;
          });
    } else {
      produced = StageExecutor(s.ctx).RunProducing<std::vector<T>>(
          stage_name, s.num_partitions, [&](size_t p, TaskContext& tc) {
            std::vector<T> slot;
            s.produce(p, [&](T&& x) { slot.push_back(std::move(x)); });
            tc.records_in = s.input_size ? s.input_size(p) : 0;
            tc.records_out = slot.size();
            // One stage boundary per fused pipeline: Hadoop mode charges
            // the materialization once, however many steps were fused.
            s.ctx->ChargeMaterialization(slot.size());
            return slot;
          });
    }
    if (!produced.ok()) throw StageError(produced.status());
    s.parts = std::move(*produced);
    s.produce = nullptr;
    s.produce_range = nullptr;
    s.input_size = nullptr;
    s.split_rows = nullptr;
    s.materialized = true;
  }

  std::shared_ptr<State> state_;
};

namespace dataflow_internal {

/// Hash-shuffles key-value records into `num_out` buckets. The map side
/// consumes `ds`'s fused pipeline directly (no materialization of the
/// upstream dataset); the merge side concatenates buckets per output
/// partition. Both sides run as named stages. Returns per-output-partition
/// record vectors.
template <typename K, typename V, typename Hash>
std::vector<std::vector<std::pair<K, V>>> ShuffleByKey(
    const Dataset<std::pair<K, V>>& ds, size_t num_out, const Hash& hash,
    const std::string& stage_prefix) {
  ExecutionContext* ctx = ds.context();
  const size_t num_in = ds.num_partitions();
  StageExecutor executor(ctx);
  // Registry handles resolved driver-side; the per-task cost below is one
  // relaxed atomic on the map side and one CAS on the merge side.
  Counter& shuffle_bytes =
      MetricsRegistry::Instance().GetCounter("dataflow.shuffle_bytes");
  Gauge& peak_partition_bytes =
      MetricsRegistry::Instance().GetGauge("dataflow.peak_partition_bytes");
  // buckets[input_partition][output_partition]; each map task returns its
  // bucket row as the attempt's private buffer (pipelines are pure, so a
  // retried or duplicated attempt re-streams the same records).
  const std::string map_label =
      ds.materialized() || ds.pipeline_label().empty()
          ? stage_prefix + ":map"
          : ds.pipeline_label() + "|" + stage_prefix + ":map";
  using BucketRow = std::vector<std::vector<std::pair<K, V>>>;
  Result<std::vector<BucketRow>> buckets_result = Status::OK();
  if (ds.RangeStreamable() && ctx->morsel_rows() > 0) {
    // Morsel-driven map side: each morsel hashes its root-row range into a
    // private bucket row; the driver concatenates bucket rows in row-range
    // order, so every bucket's record order equals the whole-partition
    // streaming pass and the shuffle output is bit-identical.
    buckets_result = executor.RunMorsels<BucketRow>(
        map_label, num_in, [&](size_t p) { return ds.SplitRows(p); },
        [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
          BucketRow row(num_out);
          ds.StreamPartitionRange(p, begin, end, [&](std::pair<K, V>&& kv) {
            size_t target = hash(kv.first) % num_out;
            row[target].push_back(std::move(kv));
            ++tc.records_out;
          });
          tc.records_in = end - begin;
          tc.shuffled_records = tc.records_out;
          shuffle_bytes.Add(tc.records_out * sizeof(std::pair<K, V>));
          ctx->ChargeMaterialization(tc.records_out);
          return row;
        },
        [&](size_t, std::vector<BucketRow>&& pieces) {
          BucketRow row(num_out);
          for (auto& piece : pieces) {
            for (size_t q = 0; q < num_out; ++q) {
              row[q].insert(row[q].end(),
                            std::make_move_iterator(piece[q].begin()),
                            std::make_move_iterator(piece[q].end()));
            }
          }
          return row;
        });
  } else {
    buckets_result = executor.RunProducing<BucketRow>(
        map_label, num_in, [&](size_t p, TaskContext& tc) {
          BucketRow row(num_out);
          ds.StreamPartition(p, [&](std::pair<K, V>&& kv) {
            size_t target = hash(kv.first) % num_out;
            row[target].push_back(std::move(kv));
            ++tc.records_out;
          });
          tc.records_in = ds.InputSize(p);
          tc.shuffled_records = tc.records_out;
          shuffle_bytes.Add(tc.records_out * sizeof(std::pair<K, V>));
          ctx->ChargeMaterialization(tc.records_out);
          return row;
        });
  }
  if (!buckets_result.ok()) throw StageError(buckets_result.status());
  auto& buckets = *buckets_result;
  auto merged = executor.RunProducing<std::vector<std::pair<K, V>>>(
      stage_prefix + ":merge", num_out, [&](size_t q, TaskContext& tc) {
        size_t total = 0;
        for (size_t p = 0; p < num_in; ++p) total += buckets[p][q].size();
        std::vector<std::pair<K, V>> slot;
        slot.reserve(total);
        for (size_t p = 0; p < num_in; ++p) {
          const auto& b = buckets[p][q];
          slot.insert(slot.end(), b.begin(), b.end());
        }
        tc.records_in = total;
        tc.records_out = total;
        peak_partition_bytes.UpdateMax(static_cast<int64_t>(
            total * sizeof(std::pair<K, V>)));
        return slot;
      });
  if (!merged.ok()) throw StageError(merged.status());
  return std::move(*merged);
}

}  // namespace dataflow_internal

/// Groups values by key with a hash shuffle: Spark's groupByKey. A shuffle
/// boundary: forces (and fuses with) the upstream pipeline's map side.
template <typename K, typename V, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds, size_t num_partitions = 0,
    const Hash& hash = Hash()) {
  ExecutionContext* ctx = ds.context();
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, ds.num_partitions());
  auto shuffled =
      dataflow_internal::ShuffleByKey(ds, num_partitions, hash, "groupByKey");
  // Shuffle outputs are treated as immutable blocks (read-only below), so
  // a retried or speculative attempt re-reads the same input.
  auto out = StageExecutor(ctx).RunProducing<
      std::vector<std::pair<K, std::vector<V>>>>(
      "groupByKey:reduce", num_partitions, [&](size_t q, TaskContext& tc) {
        std::unordered_map<K, std::vector<V>, Hash> groups(16, hash);
        tc.records_in = shuffled[q].size();
        for (const auto& kv : shuffled[q]) {
          groups[kv.first].push_back(kv.second);
        }
        std::vector<std::pair<K, std::vector<V>>> slot;
        slot.reserve(groups.size());
        for (auto& g : groups) {
          slot.emplace_back(g.first, std::move(g.second));
        }
        tc.records_out = slot.size();
        return slot;
      });
  if (!out.ok()) throw StageError(out.status());
  return Dataset<std::pair<K, std::vector<V>>>(ctx, std::move(*out));
}

/// Combines values per key with `reduce`: Spark's reduceByKey. `reduce`
/// must be associative and commutative; it is applied map-side first so the
/// shuffle moves at most one record per key per partition. A shuffle
/// boundary.
template <typename K, typename V, typename F, typename Hash = std::hash<K>>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     F reduce, size_t num_partitions = 0,
                                     const Hash& hash = Hash()) {
  ExecutionContext* ctx = ds.context();
  // Map-side combine, fused into the shuffle's map stage.
  auto combined = ds.template MapPartitions<std::pair<K, V>>(
      [reduce, hash](const std::vector<std::pair<K, V>>& part) {
        std::unordered_map<K, V, Hash> acc(16, hash);
        for (const auto& kv : part) {
          auto it = acc.find(kv.first);
          if (it == acc.end()) {
            acc.emplace(kv.first, kv.second);
          } else {
            it->second = reduce(it->second, kv.second);
          }
        }
        std::vector<std::pair<K, V>> out;
        out.reserve(acc.size());
        for (auto& kv : acc) out.emplace_back(kv.first, std::move(kv.second));
        return out;
      },
      "combine");
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, ds.num_partitions());
  auto shuffled = dataflow_internal::ShuffleByKey(combined, num_partitions,
                                                  hash, "reduceByKey");
  auto out = StageExecutor(ctx).RunProducing<std::vector<std::pair<K, V>>>(
      "reduceByKey:reduce", num_partitions, [&](size_t q, TaskContext& tc) {
        std::unordered_map<K, V, Hash> acc(16, hash);
        tc.records_in = shuffled[q].size();
        for (const auto& kv : shuffled[q]) {
          auto it = acc.find(kv.first);
          if (it == acc.end()) {
            acc.emplace(kv.first, kv.second);
          } else {
            it->second = reduce(it->second, kv.second);
          }
        }
        std::vector<std::pair<K, V>> slot;
        slot.reserve(acc.size());
        for (auto& kv : acc) slot.emplace_back(kv.first, std::move(kv.second));
        tc.records_out = slot.size();
        return slot;
      });
  if (!out.ok()) throw StageError(out.status());
  return Dataset<std::pair<K, V>>(ctx, std::move(*out));
}

/// Inner hash join on key: Spark's join. A shuffle boundary on both inputs.
template <typename K, typename V, typename W, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::pair<V, W>>> Join(const Dataset<std::pair<K, V>>& a,
                                            const Dataset<std::pair<K, W>>& b,
                                            size_t num_partitions = 0,
                                            const Hash& hash = Hash()) {
  ExecutionContext* ctx = a.context();
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, a.num_partitions());
  auto left = dataflow_internal::ShuffleByKey(a, num_partitions, hash, "join");
  auto right = dataflow_internal::ShuffleByKey(b, num_partitions, hash, "join");
  auto out = StageExecutor(ctx).RunProducing<
      std::vector<std::pair<K, std::pair<V, W>>>>(
      "join:probe", num_partitions, [&](size_t q, TaskContext& tc) {
        std::unordered_map<K, std::vector<V>, Hash> build(16, hash);
        tc.records_in = left[q].size() + right[q].size();
        for (const auto& kv : left[q]) build[kv.first].push_back(kv.second);
        std::vector<std::pair<K, std::pair<V, W>>> slot;
        for (const auto& kw : right[q]) {
          auto it = build.find(kw.first);
          if (it == build.end()) continue;
          for (const auto& v : it->second) {
            slot.emplace_back(kw.first, std::make_pair(v, kw.second));
          }
        }
        tc.records_out = slot.size();
        return slot;
      });
  if (!out.ok()) throw StageError(out.status());
  return Dataset<std::pair<K, std::pair<V, W>>>(ctx, std::move(*out));
}

/// Groups two keyed datasets on the same key — the paper's CoBlock enhancer
/// maps onto this (Spark's cogroup). Keys absent from one side produce an
/// empty bag on that side. A shuffle boundary on both inputs.
template <typename K, typename V, typename W, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> CoGroup(
    const Dataset<std::pair<K, V>>& a, const Dataset<std::pair<K, W>>& b,
    size_t num_partitions = 0, const Hash& hash = Hash()) {
  ExecutionContext* ctx = a.context();
  if (num_partitions == 0) num_partitions = std::max<size_t>(1, a.num_partitions());
  auto left = dataflow_internal::ShuffleByKey(a, num_partitions, hash, "cogroup");
  auto right = dataflow_internal::ShuffleByKey(b, num_partitions, hash, "cogroup");
  using Bags = std::pair<std::vector<V>, std::vector<W>>;
  auto out = StageExecutor(ctx).RunProducing<std::vector<std::pair<K, Bags>>>(
      "cogroup:merge", num_partitions, [&](size_t q, TaskContext& tc) {
        std::unordered_map<K, Bags, Hash> groups(16, hash);
        tc.records_in = left[q].size() + right[q].size();
        for (const auto& kv : left[q]) {
          groups[kv.first].first.push_back(kv.second);
        }
        for (const auto& kw : right[q]) {
          groups[kw.first].second.push_back(kw.second);
        }
        std::vector<std::pair<K, Bags>> slot;
        slot.reserve(groups.size());
        for (auto& g : groups) slot.emplace_back(g.first, std::move(g.second));
        tc.records_out = slot.size();
        return slot;
      });
  if (!out.ok()) throw StageError(out.status());
  return Dataset<std::pair<K, Bags>>(ctx, std::move(*out));
}

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_DATASET_H_
