#ifndef BIGDANSING_DATAFLOW_CONTEXT_H_
#define BIGDANSING_DATAFLOW_CONTEXT_H_

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "common/fault.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "dataflow/metrics.h"

namespace bigdansing {

/// Emulated execution backend. kSpark keeps stage outputs in memory; kHadoop
/// models a disk-based MapReduce engine by charging a per-record
/// materialization cost at every stage boundary (the paper's
/// BigDansing-Hadoop is 16-22x slower than BigDansing-Spark on large inputs
/// for this reason, §6.3).
enum class Backend { kSpark, kHadoop };

/// The "cluster": worker count, task scheduler and metrics for one dataflow
/// job graph. Stands in for a SparkContext. Worker count is the scale-out
/// knob for the multi-node experiments; each partition task is scheduled on
/// the pool, so work distribution matches a cluster topologically even when
/// the host has few cores.
class ExecutionContext {
 public:
  explicit ExecutionContext(size_t num_workers, Backend backend = Backend::kSpark)
      : num_workers_(num_workers == 0 ? 1 : num_workers),
        backend_(backend),
        // BD_THREADS overrides the physical thread count without changing
        // the logical cluster size used for partitioning and accounting.
        pool_(std::make_unique<ThreadPool>(
            ThreadPool::EnvThreadsOr(num_workers_))) {}

  size_t num_workers() const { return num_workers_; }
  Backend backend() const { return backend_; }
  ThreadPool& pool() { return *pool_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Default partition count for new datasets (2 waves per worker).
  size_t default_partitions() const { return num_workers_ * 2; }

  /// Rows per morsel for splittable stages; 0 disables morsel-driven
  /// execution and every stage runs at partition granularity (the
  /// pre-morsel engine, also the speculation-capable path). Defaults from
  /// BD_MORSEL_ROWS; override per context for tests and ablations.
  size_t morsel_rows() const { return morsel_rows_; }
  void set_morsel_rows(size_t rows) { morsel_rows_ = rows; }

  /// BD_MORSEL_ROWS when set (0 allowed: disables morsels), else 2048 —
  /// sized so one morsel's rows plus its output stay inside a typical
  /// 256KB–1MB L2 slice for the ~100-byte records of the bundled datasets.
  static size_t DefaultMorselRows() {
    if (const char* env = std::getenv("BD_MORSEL_ROWS")) {
      char* end = nullptr;
      long value = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && value >= 0) {
        return static_cast<size_t>(value);
      }
    }
    return 2048;
  }

  /// Whether declarative rules route through the columnar detect kernels
  /// (dictionary-encoded keys + compiled predicate kernels). Off, every
  /// rule takes the interpreted path — the bit-identical oracle. Defaults
  /// from BD_KERNELS; override per context for tests and ablations.
  bool kernels_enabled() const { return kernels_enabled_; }
  void set_kernels_enabled(bool enabled) { kernels_enabled_ = enabled; }

  /// BD_KERNELS unset or any value but "0" enables the kernel path; "0"
  /// restores the exact interpreted engine.
  static bool DefaultKernelsEnabled() {
    if (const char* env = std::getenv("BD_KERNELS")) {
      return std::string_view(env) != "0";
    }
    return true;
  }

  /// Recovery policy every stage launched on this context runs under
  /// (retry attempts, backoff, speculation). Defaults from the environment
  /// (BD_SPECULATION); override per request via DetectRequest::fault_policy
  /// or CleanOptions::fault_policy (see ScopedFaultPolicy).
  const FaultPolicy& fault_policy() const { return fault_policy_; }
  void set_fault_policy(const FaultPolicy& policy) { fault_policy_ = policy; }

  /// Per-record cost charged at stage boundaries in Hadoop mode; emulates
  /// serializing each stage's output to a distributed file system and
  /// re-reading it (MapReduce materializes between jobs; Spark keeps RDDs
  /// in memory). The mix count is calibrated so a multi-stage pipeline runs
  /// a single-digit factor slower in Hadoop mode — milder than the paper's
  /// 16-22x (their jobs also paid HDFS replication and JVM startup).
  void ChargeMaterialization(size_t num_records) {
    if (backend_ != Backend::kHadoop) return;
    volatile uint64_t sink = 0;
    for (size_t i = 0; i < num_records; ++i) {
      uint64_t h = i;
      for (int k = 0; k < 400; ++k) h = StableHashUint64(h + k);
      sink = sink + h;
    }
    (void)sink;
  }

 private:
  size_t num_workers_;
  Backend backend_;
  std::unique_ptr<ThreadPool> pool_;
  Metrics metrics_;
  FaultPolicy fault_policy_ = FaultPolicy::FromEnv();
  size_t morsel_rows_ = DefaultMorselRows();
  bool kernels_enabled_ = DefaultKernelsEnabled();
};

/// RAII override of a context's fault policy for the extent of one request
/// (a DetectRequest or a whole Clean). Restores the previous policy on
/// scope exit, so nested overrides compose.
class ScopedFaultPolicy {
 public:
  ScopedFaultPolicy(ExecutionContext* ctx, const FaultPolicy& policy)
      : ctx_(ctx), saved_(ctx->fault_policy()) {
    ctx_->set_fault_policy(policy);
  }
  ~ScopedFaultPolicy() { ctx_->set_fault_policy(saved_); }
  ScopedFaultPolicy(const ScopedFaultPolicy&) = delete;
  ScopedFaultPolicy& operator=(const ScopedFaultPolicy&) = delete;

 private:
  ExecutionContext* ctx_;
  FaultPolicy saved_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_CONTEXT_H_
