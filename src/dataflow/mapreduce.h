#ifndef BIGDANSING_DATAFLOW_MAPREDUCE_H_
#define BIGDANSING_DATAFLOW_MAPREDUCE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "rules/rule.h"
#include "rules/violation.h"

namespace bigdansing {

/// A miniature MapReduce runtime — the second execution backend of
/// Appendix G, which translates BigDansing's physical operators to Hadoop
/// jobs. Unlike the in-memory Dataset engine, every boundary here is paid
/// for the way Hadoop pays it: records cross the map/shuffle/reduce
/// boundaries as *serialized byte strings* (length-prefixed spill blobs),
/// and each reduce partition merge-sorts its records by key before
/// grouping, exactly like Hadoop's sort-based shuffle. This is what makes
/// the BigDansing-Hadoop bars of Fig 10 honest: the slowdown is real
/// serialization and sorting work, not a synthetic charge.
class MapReduceJob {
 public:
  /// Emits zero or more (key, value) byte-string pairs per input record.
  using MapFn = std::function<void(
      const std::string& record,
      std::vector<std::pair<std::string, std::string>>* out)>;
  /// Consumes one key's value group, emitting output records.
  using ReduceFn = std::function<void(const std::string& key,
                                      const std::vector<std::string>& values,
                                      std::vector<std::string>* out)>;

  /// `spill_to_disk` materializes every map task's partitioned spill blob
  /// as a real temporary file that the reduce phase reads back — Hadoop's
  /// disk-based shuffle. Disable for in-memory unit tests.
  MapReduceJob(ExecutionContext* ctx, MapFn map_fn, ReduceFn reduce_fn,
               size_t num_reducers = 0, bool spill_to_disk = true);

  /// Runs the job over `input_records` and returns the concatenated reducer
  /// outputs. Deterministic: reducer outputs are concatenated in partition
  /// order, and within a partition keys are processed in sorted order.
  /// Throws StageError when a stage exhausts its retry budget (caught at
  /// the MapReduceDetect boundary and returned as a Status).
  std::vector<std::string> Run(const std::vector<std::string>& input_records);

  /// Bytes that crossed the map -> reduce boundary in the last Run.
  size_t shuffle_bytes() const { return shuffle_bytes_; }

 private:
  ExecutionContext* ctx_;
  MapFn map_fn_;
  ReduceFn reduce_fn_;
  size_t num_reducers_;
  bool spill_to_disk_;
  size_t shuffle_bytes_ = 0;
};

/// Outcome of a MapReduce-backed detection pass.
struct MapReduceDetectionResult {
  size_t violations = 0;
  /// Violations rendered as text (rule + row ids + fixes) — the form they
  /// leave the reducers in.
  std::vector<std::string> rendered;
  size_t shuffle_bytes = 0;
};

/// Violation detection executed as one MapReduce job (Appendix G's
/// MR-PBlock / MR-PIterate / MR-PDetect / MR-PGenFix chain): map keys each
/// serialized row by the rule's blocking key, the sort-based shuffle groups
/// blocks, and reducers iterate pairs and run Detect + GenFix. Requires a
/// rule with a blocking key (FDs, CFDs, blocked DCs/UDFs); rules without
/// one would need the cross-product translation, which this backend
/// intentionally does not provide (the paper ran inequality DCs on Spark).
Result<MapReduceDetectionResult> MapReduceDetect(ExecutionContext* ctx,
                                                 const Table& table,
                                                 const RulePtr& rule);

}  // namespace bigdansing

#endif  // BIGDANSING_DATAFLOW_MAPREDUCE_H_
