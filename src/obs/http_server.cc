#include "obs/http_server.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/stage_directory.h"
#include "obs/stream_stats.h"

namespace bigdansing {

namespace {

/// Steady-clock seconds since the server started (0 before Start).
std::atomic<double>& StartEpoch() {
  static std::atomic<double> epoch{0.0};
  return epoch;
}

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

}  // namespace

ObsServer& ObsServer::Instance() {
  static ObsServer* instance = new ObsServer();  // Leaked: safe at exit.
  return *instance;
}

ObsResponse ObsServer::Dispatch(const std::string& raw_path) {
  MetricsRegistry::Instance().GetCounter("obs.requests").Add(1);
  // Query strings are accepted and ignored: every endpoint is a snapshot.
  const std::string path = raw_path.substr(0, raw_path.find('?'));

  ObsResponse resp;
  if (path == "/healthz" || path == "/") {
    const double epoch = StartEpoch().load(std::memory_order_acquire);
    JsonObjectBuilder body;
    body.Add("status", "ok");
    body.Add("uptime_seconds",
             epoch > 0.0 ? SteadyNowSeconds() - epoch : 0.0);
    body.Add("profiler_running", Profiler::Instance().running());
    body.Add("trace_enabled", TraceRecorder::Instance().enabled());
    body.Add("live_contexts",
             static_cast<uint64_t>(StageDirectory::Instance().LiveCount()));
    resp.body = body.Build();
    return resp;
  }
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = MetricsRegistry::Instance().ToPrometheusText();
    return resp;
  }
  if (path == "/stages") {
    resp.body = StageDirectory::Instance().StagesJson();
    return resp;
  }
  if (path == "/explain") {
    TraceRecorder& recorder = TraceRecorder::Instance();
    JsonObjectBuilder body;
    body.Add("enabled", recorder.enabled());
    body.Add("spans", static_cast<uint64_t>(recorder.SpanCount()));
    body.Add("explain", recorder.ExplainTree());
    resp.body = body.Build();
    return resp;
  }
  if (path == "/quality") {
    resp.body = QualityRecorder::Instance().SnapshotJson();
    return resp;
  }
  if (path == "/streams") {
    resp.body = StreamDirectory::Instance().StreamsJson();
    return resp;
  }
  if (path == "/profile") {
    resp.body = QualityRecorder::Instance().LatestProfileJson();
    return resp;
  }
  if (path == "/profilez") {
    Profiler& profiler = Profiler::Instance();
    resp.content_type = "text/plain";
    resp.body = "# sampling profiler: running=" +
                std::string(profiler.running() ? "true" : "false") +
                " total_samples=" + std::to_string(profiler.TotalSamples()) +
                "\n" + profiler.FoldedStacks();
    return resp;
  }

  resp.status = 404;
  JsonObjectBuilder body;
  body.Add("error", "not found");
  body.Add("path", path);
  resp.body = body.Build();
  return resp;
}

bool ObsServer::Start(uint16_t port) {
#ifdef _WIN32
  (void)port;
  return false;
#else
  std::lock_guard<std::mutex> lock(control_mu_);
  if (running_.load(std::memory_order_acquire)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    BD_LOG(Warning) << "obs server: socket() failed: "
                    << std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    BD_LOG(Warning) << "obs server: cannot bind port " << port << ": "
                    << std::strerror(errno);
    ::close(fd);
    return false;
  }

  // Recover the bound port (meaningful when port == 0 picked an ephemeral
  // one, e.g. in tests).
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  uint16_t actual = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    actual = ntohs(bound.sin_port);
  }

  listen_fd_.store(fd, std::memory_order_release);
  port_.store(actual, std::memory_order_release);
  StartEpoch().store(SteadyNowSeconds(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  server_thread_ = std::thread([this] { AcceptLoop(); });
  MetricsRegistry::Instance().GetGauge("obs.server_running").Set(1);
  BD_LOG(Info) << "obs server listening on port " << actual;
  return true;
#endif
}

void ObsServer::Stop() {
#ifndef _WIN32
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    running_.store(false, std::memory_order_release);
    // shutdown() wakes a blocking accept(); close alone may not on Linux.
    const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    to_join = std::move(server_thread_);
  }
  if (to_join.joinable()) to_join.join();
  port_.store(0, std::memory_order_release);
  MetricsRegistry::Instance().GetGauge("obs.server_running").Set(0);
#endif
}

void ObsServer::AcceptLoop() {
#ifndef _WIN32
  while (running_.load(std::memory_order_acquire)) {
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0) return;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (EBADF/EINVAL) or it broke; exit.
      return;
    }
    HandleConnection(conn);
  }
#endif
}

void ObsServer::HandleConnection(int fd) {
#ifndef _WIN32
  // Bound the read so a stalled client cannot wedge the accept loop.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[1024];
  // Headers only (no request bodies served here); 8 KiB cap.
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  // Parse "<METHOD> <path> HTTP/1.x".
  ObsResponse resp;
  const size_t method_end = request.find(' ');
  const size_t path_end = request.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    resp.status = 405;
    resp.body = "{\"error\":\"bad request\"}";
  } else {
    const std::string method = request.substr(0, method_end);
    const std::string path =
        request.substr(method_end + 1, path_end - method_end - 1);
    if (method != "GET" && method != "HEAD") {
      resp.status = 405;
      resp.body = "{\"error\":\"method not allowed\"}";
    } else {
      resp = Dispatch(path);
      if (method == "HEAD") resp.body.clear();
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::close(fd);
#else
  (void)fd;
#endif
}

bool ObsServer::StartFromEnv() {
  const char* env = std::getenv("BD_OBS_PORT");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const long port = std::strtol(env, &end, 10);
  if (end == env || port < 0 || port > 65535) {
    BD_LOG(Warning) << "BD_OBS_PORT ignored (not a port): " << env;
    return false;
  }
  if (!Instance().Start(static_cast<uint16_t>(port))) return false;
  // A live endpoint without spans or samples answers /explain and
  // /profilez with empty shells; light both planes up alongside it. Same
  // for the data-quality plane: /quality and /profile only have content
  // when the QualityRecorder observes the Clean() runs.
  TraceRecorder::Instance().set_enabled(true);
  QualityRecorder::Instance().set_enabled(true);
  if (!Profiler::Instance().running()) {
    Profiler::Instance().Start(Profiler::DefaultHz());
  }
  return true;
}

}  // namespace bigdansing
