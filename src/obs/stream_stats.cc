#include "obs/stream_stats.h"

#include "common/json_writer.h"
#include "common/metrics_registry.h"

namespace bigdansing {

StreamDirectory& StreamDirectory::Instance() {
  static StreamDirectory* instance = new StreamDirectory();  // Leaked: safe.
  return *instance;
}

uint64_t StreamDirectory::Register(const std::string& name) {
  MetricsRegistry::Instance().GetCounter("stream.sessions_opened").Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  StreamSessionStats stats;
  stats.id = next_id_++;
  stats.name = name;
  ++registered_;
  if (sessions_.size() >= kMaxRetainedSessions) {
    // Evict the oldest *closed* session; never a live one.
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (!it->open) {
        sessions_.erase(it);
        break;
      }
    }
  }
  sessions_.push_back(stats);
  return sessions_.back().id;
}

void StreamDirectory::Update(const StreamSessionStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sessions_) {
    if (s.id == stats.id) {
      s = stats;
      return;
    }
  }
}

void StreamDirectory::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sessions_) {
    if (s.id == id) {
      s.open = false;
      return;
    }
  }
}

void StreamDirectory::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
}

size_t StreamDirectory::LiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& s : sessions_) {
    if (s.open) ++live;
  }
  return live;
}

std::string StreamDirectory::StreamsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string records = "[";
  bool first = true;
  size_t live = 0;
  for (const auto& s : sessions_) {
    if (s.open) ++live;
    if (!first) records += ",";
    first = false;
    JsonObjectBuilder one;
    one.Add("id", s.id);
    one.Add("name", s.name);
    one.Add("open", s.open);
    one.Add("rules", s.rules);
    one.Add("rows", s.rows);
    one.Add("appended_rows", s.appended_rows);
    one.Add("retracted_rows", s.retracted_rows);
    one.Add("batches_enqueued", s.batches_enqueued);
    one.Add("batches_processed", s.batches_processed);
    one.Add("pending_batches", s.pending_batches);
    one.Add("windows_converged", s.windows_converged);
    one.Add("violations_found", s.violations_found);
    one.Add("fixes_applied", s.fixes_applied);
    one.Add("unresolved_violations", s.unresolved_violations);
    one.Add("index_blocks", s.index_blocks);
    one.Add("index_rows", s.index_rows);
    one.Add("pool_values", s.pool_values);
    one.Add("pool_growths", s.pool_growths);
    one.Add("kernel_rebinds", s.kernel_rebinds);
    one.Add("backpressure_waits", s.backpressure_waits);
    one.Add("backpressure_rejections", s.backpressure_rejections);
    one.Add("last_window_seconds", s.last_window_seconds);
    one.Add("max_window_seconds", s.max_window_seconds);
    one.Add("total_detect_seconds", s.total_detect_seconds);
    one.Add("total_repair_seconds", s.total_repair_seconds);
    records += one.Build();
  }
  records += "]";
  JsonObjectBuilder out;
  out.Add("sessions", static_cast<uint64_t>(sessions_.size()));
  out.Add("live_sessions", static_cast<uint64_t>(live));
  out.AddRaw("records", records);
  return out.Build();
}

}  // namespace bigdansing
