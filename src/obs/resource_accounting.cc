#include "obs/resource_accounting.h"

#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/metrics_registry.h"

namespace bigdansing {
namespace {

/// Plain (non-atomic) per-thread counters: only the owning thread writes
/// and only the owning thread reads, so the hot path is two increments.
/// Trivially destructible so allocation during thread teardown stays safe.
thread_local uint64_t t_alloc_bytes = 0;
thread_local uint64_t t_alloc_count = 0;

inline void NoteAllocation(std::size_t size) {
  t_alloc_bytes += static_cast<uint64_t>(size);
  ++t_alloc_count;
}

}  // namespace

ThreadAllocCounters ThreadAllocations() {
  return ThreadAllocCounters{t_alloc_bytes, t_alloc_count};
}

uint64_t CurrentRssBytes() {
#if defined(__linux__)
  // statm field 2 is resident pages; reading it is one small pread — cheap
  // enough for stage boundaries.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  static const long page = sysconf(_SC_PAGESIZE);
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

StageResourceProbe::StageResourceProbe()
    : rss_before_(static_cast<int64_t>(CurrentRssBytes())),
      steals_counter_(
          &MetricsRegistry::Instance().GetCounter("threadpool.steals")) {
  steals_before_ = steals_counter_->Value();
}

int64_t StageResourceProbe::RssDeltaBytes() const {
  return static_cast<int64_t>(CurrentRssBytes()) - rss_before_;
}

uint64_t StageResourceProbe::StealsDelta() const {
  return steals_counter_->Value() - steals_before_;
}

}  // namespace bigdansing

// ---------------------------------------------------------------------------
// Counting allocator hook: replace the global operator new family so every
// heap allocation in the process is attributed to its calling thread. The
// replacements forward to malloc/free (never back into operator new), so
// there is no recursion, and the sanitizers' malloc interceptors still see
// every allocation. Deletes are replaced too so new/delete stay a matched
// malloc/free pair.
// ---------------------------------------------------------------------------

namespace {

void* CountedAlloc(std::size_t size) {
  bigdansing::NoteAllocation(size);
  // malloc(0) may return null legally; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  bigdansing::NoteAllocation(size);
  void* p = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (posix_memalign(&p, alignment, size == 0 ? 1 : size) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment)))
    return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
