#ifndef BIGDANSING_OBS_HTTP_SERVER_H_
#define BIGDANSING_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace bigdansing {

/// One dispatched observability response (status line + body), separated
/// from socket handling so tests exercise every endpoint without a port.
struct ObsResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Embedded, dependency-free observability endpoint: a blocking accept
/// loop on one dedicated thread serving read-only snapshots of the live
/// telemetry plane over HTTP/1.1 (connection-per-request, loopback use).
/// Enabled by BD_OBS_PORT; intended for operators watching a long-running
/// cleanse — every handler is a consistent snapshot, never a mutation.
///
/// Endpoints:
///   /healthz   liveness + uptime + plane status            (JSON)
///   /metrics   MetricsRegistry Prometheus text exposition  (text)
///   /stages    live per-context StageReports incl. in-flight stages (JSON)
///   /explain   runtime EXPLAIN tree rendered from open spans (JSON)
///   /profilez  sampling-profiler folded stacks (flamegraph input, text)
///   /quality   QualityRecorder run history + convergence + drift (JSON)
///   /streams   live + recently closed StreamSession counters (JSON)
///   /profile   latest Clean() input-table column profile    (JSON)
class ObsServer {
 public:
  static ObsServer& Instance();

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts the accept thread.
  /// Idempotent while running; returns false when the socket cannot be
  /// bound. The bound port is readable via port().
  bool Start(uint16_t port);

  /// Closes the listen socket and joins the accept thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Routes one request path (query strings ignored) to its endpoint.
  /// The pure core of the server, used directly by tests.
  static ObsResponse Dispatch(const std::string& path);

  /// Starts the server when BD_OBS_PORT is set to a valid port number.
  /// Also enables the TraceRecorder (so /explain has open spans to render)
  /// and the sampling profiler at its default rate (so /profilez is never
  /// empty). Returns true when the server is running afterwards.
  static bool StartFromEnv();

 private:
  ObsServer() = default;

  void AcceptLoop();
  void HandleConnection(int fd);

  std::mutex control_mu_;
  std::thread server_thread_;
  // Atomic: AcceptLoop reads it without the control mutex while Stop()
  // shuts it down from another thread.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
};

}  // namespace bigdansing

#endif  // BIGDANSING_OBS_HTTP_SERVER_H_
