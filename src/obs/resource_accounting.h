#ifndef BIGDANSING_OBS_RESOURCE_ACCOUNTING_H_
#define BIGDANSING_OBS_RESOURCE_ACCOUNTING_H_

#include <cstdint>

namespace bigdansing {

class Counter;

/// Per-thread allocation totals maintained by the process-wide counting
/// allocator hook (resource_accounting.cc replaces the global operator
/// new/new[] family). Both counters are monotone for the lifetime of the
/// thread; stage bodies snapshot them before and after the task body and
/// attribute the delta to the stage, so reads never cross threads.
struct ThreadAllocCounters {
  uint64_t bytes = 0;
  uint64_t count = 0;
};

/// The calling thread's cumulative heap-allocation totals (bytes requested
/// through operator new and number of allocations). Frees are deliberately
/// not subtracted: the metric is allocation pressure, not live size.
ThreadAllocCounters ThreadAllocations();

/// Resident set size of the process in bytes (from /proc/self/statm on
/// Linux); 0 where unavailable. Cheap enough for per-stage call sites, not
/// for per-record ones.
uint64_t CurrentRssBytes();

/// Captures process-level resource coordinates (RSS, cross-worker steal
/// count) at stage open so the StageExecutor can fold the stage-close
/// deltas into the StageReport. Steals are read from the process-wide
/// `threadpool.steals` counter, so the delta attributes every steal that
/// happened during the stage's window — concurrent stages each observe the
/// shared traffic (documented in DESIGN.md §11).
class StageResourceProbe {
 public:
  StageResourceProbe();

  /// RSS now minus RSS at construction (can be negative after a release).
  int64_t RssDeltaBytes() const;

  /// Cross-worker deque steals since construction.
  uint64_t StealsDelta() const;

 private:
  int64_t rss_before_ = 0;
  uint64_t steals_before_ = 0;
  Counter* steals_counter_ = nullptr;
};

}  // namespace bigdansing

#endif  // BIGDANSING_OBS_RESOURCE_ACCOUNTING_H_
