#ifndef BIGDANSING_OBS_STREAM_STATS_H_
#define BIGDANSING_OBS_STREAM_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bigdansing {

/// One stream session's observable counters, pushed by the session after
/// every state change (open, append, retract, processed window, close).
/// A plain snapshot struct so obs never depends on core.
struct StreamSessionStats {
  uint64_t id = 0;
  std::string name;
  bool open = true;
  uint64_t rules = 0;
  /// Current table size plus ingest totals.
  uint64_t rows = 0;
  uint64_t appended_rows = 0;
  uint64_t retracted_rows = 0;
  /// Micro-batch window accounting.
  uint64_t batches_enqueued = 0;
  uint64_t batches_processed = 0;
  uint64_t pending_batches = 0;
  uint64_t windows_converged = 0;
  /// Cleansing outcomes across all processed windows.
  uint64_t violations_found = 0;
  uint64_t fixes_applied = 0;
  uint64_t unresolved_violations = 0;
  /// Incremental violation index size (across rules).
  uint64_t index_blocks = 0;
  uint64_t index_rows = 0;
  /// Dictionary-encoding state behind the index.
  uint64_t pool_values = 0;
  uint64_t pool_growths = 0;
  uint64_t kernel_rebinds = 0;
  /// Backpressure events: Appends that drained inline (blocking mode) or
  /// were rejected with ResourceExhausted (non-blocking mode).
  uint64_t backpressure_waits = 0;
  uint64_t backpressure_rejections = 0;
  /// Per-window latency (seconds): last processed window and the maximum.
  double last_window_seconds = 0.0;
  double max_window_seconds = 0.0;
  double total_detect_seconds = 0.0;
  double total_repair_seconds = 0.0;
};

/// Process-wide directory of stream sessions — the /streams endpoint's data
/// source, mirroring StageDirectory's role for ExecutionContexts. Sessions
/// register on open, push snapshots as they work, and are retained (marked
/// closed) after close so a scrape right after a demo loop still sees the
/// final counters. Thread-safe.
class StreamDirectory {
 public:
  static StreamDirectory& Instance();

  /// Registers a session; returns its process-unique id.
  uint64_t Register(const std::string& name);

  /// Replaces the stored snapshot for `stats.id`. Unknown ids are ignored.
  void Update(const StreamSessionStats& stats);

  /// Marks session `id` closed, keeping its last snapshot.
  void Close(uint64_t id);

  /// Drops all sessions (tests).
  void Clear();

  size_t LiveCount() const;

  /// Strict-JSON snapshot:
  ///   {"sessions":N,"live_sessions":M,"records":[{...}, ...]}
  /// Records are in registration order; closed sessions keep their final
  /// snapshot with "open":false.
  std::string StreamsJson() const;

 private:
  StreamDirectory() = default;

  /// Oldest closed sessions are dropped beyond this many retained records.
  static constexpr size_t kMaxRetainedSessions = 64;

  mutable std::mutex mu_;
  std::vector<StreamSessionStats> sessions_;
  uint64_t next_id_ = 1;
  uint64_t registered_ = 0;
};

}  // namespace bigdansing

#endif  // BIGDANSING_OBS_STREAM_STATS_H_
