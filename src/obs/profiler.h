#ifndef BIGDANSING_OBS_PROFILER_H_
#define BIGDANSING_OBS_PROFILER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace bigdansing {

/// Immutable description of what a worker is currently executing. Interned
/// by the Profiler (one instance per distinct (stage, kind) pair, leaked
/// for the process lifetime), so publishing an activity is a single
/// pointer store and the sampler can dereference without synchronizing
/// with the publisher's stack frame.
struct ActivityDesc {
  std::string stage;  // stage name ("rule:phi1:detect") or "(threadpool)"
  std::string kind;   // work-unit kind: "task", "morsel", "run"
};

/// One thread's published current activity. Writers are the owning thread
/// only (ScopedActivity); the sampler thread reads concurrently through
/// the atomics, so mid-flight observation is race-free by construction.
/// Slots are heap-allocated once per thread and never freed — a sampler
/// tick may legally observe the slot of a thread that already exited (its
/// desc is cleared to null on thread teardown).
struct ActivitySlot {
  std::atomic<const ActivityDesc*> desc{nullptr};
  std::atomic<uint64_t> unit_begin{0};
  std::atomic<uint64_t> unit_end{0};
};

/// Signal-free sampling profiler: a dedicated sampler thread wakes at the
/// configured frequency and walks every registered activity slot. Each
/// observation of a non-null activity adds one sample to that activity's
/// folded-stack count; a tick during which no thread published anything
/// counts one "(idle)" sample, so the output distinguishes "nothing ran"
/// from "work ran unattributed". No signals, no stack unwinding: workers
/// cooperatively publish (stage, kind, unit range) via ScopedActivity and
/// the sampler only reads atomics, which keeps the hook cheap enough for
/// morsel granularity and the whole plane TSan-clean.
class Profiler {
 public:
  static Profiler& Instance();

  /// Interns an immutable activity descriptor; repeated calls with the
  /// same pair return the same pointer. Call once per stage execution
  /// (driver side), not per morsel.
  const ActivityDesc* Intern(const std::string& stage,
                             const std::string& kind);

  /// Starts the sampler thread at `hz` samples/second (clamped to
  /// [1, 10000]). Idempotent while running (keeps the original rate).
  void Start(double hz);

  /// Stops and joins the sampler thread. Sample counts are retained.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  double hz() const;

  /// Total sampler observations so far (attributed + idle).
  uint64_t TotalSamples() const;

  /// Flamegraph folded-stack rendering, one line per activity:
  ///   bigdansing;<stage>;<kind> <count>
  /// plus a "bigdansing;(idle) <count>" line for idle ticks. Lines are
  /// sorted by count descending so the hottest stage reads first.
  std::string FoldedStacks() const;

  void ResetSamples();

  /// BD_PROFILE_HZ when set to a positive number, else 97 (an off-beat
  /// prime, so the sampler does not alias with millisecond-periodic work).
  static double DefaultHz();

  /// Starts the profiler when BD_PROFILE_HZ or BD_PROFILE_FOLDED is set
  /// (rate from DefaultHz()). Safe to call repeatedly.
  static void StartFromEnv();

  /// Writes FoldedStacks() to the path named by BD_PROFILE_FOLDED ("-" or
  /// "stdout" print instead); no-op when the variable is unset. Returns
  /// false on I/O failure.
  static bool WriteFoldedFromEnv();

 private:
  friend class ScopedActivity;
  friend ActivitySlot* ThisThreadActivitySlot();

  Profiler() = default;

  void SamplerLoop();

  /// Registers a freshly allocated (leaked) slot for a new thread.
  ActivitySlot* RegisterSlot();

  mutable std::mutex intern_mu_;
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<ActivityDesc>>
      interned_;

  mutable std::mutex slots_mu_;
  std::vector<ActivitySlot*> slots_;

  mutable std::mutex samples_mu_;
  std::map<const ActivityDesc*, uint64_t> samples_;
  uint64_t idle_samples_ = 0;
  uint64_t total_samples_ = 0;

  mutable std::mutex control_mu_;  // guards start/stop and hz_
  std::condition_variable wake_;
  std::thread sampler_;
  double hz_ = 0.0;
  std::atomic<bool> running_{false};
};

/// The calling thread's activity slot (registered on first use, cleared
/// automatically when the thread exits).
ActivitySlot* ThisThreadActivitySlot();

/// RAII publication of the calling thread's current activity. Nests:
/// construction saves the previous activity and destruction restores it,
/// so a morsel body publishing its stage overlays the thread pool's
/// generic "run" activity and pops back on exit.
class ScopedActivity {
 public:
  ScopedActivity(const ActivityDesc* desc, uint64_t unit_begin,
                 uint64_t unit_end);
  ~ScopedActivity();

  ScopedActivity(const ScopedActivity&) = delete;
  ScopedActivity& operator=(const ScopedActivity&) = delete;

 private:
  ActivitySlot* slot_;
  const ActivityDesc* prev_desc_;
  uint64_t prev_begin_;
  uint64_t prev_end_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_OBS_PROFILER_H_
