#include "obs/quality.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "common/json_writer.h"
#include "common/lineage.h"
#include "common/metrics_registry.h"
#include "common/string_util.h"

namespace bigdansing {

namespace {

/// Values render with their type (same scheme as the lineage ledger and the
/// column profiler); null renders as JSON null.
std::string ValueJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(v.as_int());
    case ValueType::kDouble:
      return JsonDouble(v.as_double());
    case ValueType::kString:
      return "\"" + JsonEscape(v.as_string()) + "\"";
  }
  return "null";
}

uint64_t SumNested(
    const std::map<std::string, std::map<std::string, uint64_t>>& m) {
  uint64_t total = 0;
  for (const auto& [rule, cols] : m) {
    for (const auto& [col, n] : cols) total += n;
  }
  return total;
}

void FoldNested(
    std::map<std::string, std::map<std::string, QualityCounts>>* into,
    const std::map<std::string, std::map<std::string, uint64_t>>& from,
    uint64_t QualityCounts::*field) {
  for (const auto& [rule, cols] : from) {
    for (const auto& [col, n] : cols) {
      (*into)[rule][col].*field += n;
    }
  }
}

}  // namespace

uint64_t QualityRunRecord::TotalViolations() const {
  uint64_t total = 0;
  for (const auto& [rule, cols] : by_rule_column) {
    for (const auto& [col, c] : cols) total += c.violations;
  }
  return total;
}

uint64_t QualityRunRecord::TotalFixes() const {
  uint64_t total = 0;
  for (const auto& [rule, cols] : by_rule_column) {
    for (const auto& [col, c] : cols) total += c.fixes;
  }
  return total;
}

uint64_t QualityRunRecord::TotalUnresolved() const {
  uint64_t total = 0;
  for (const auto& [rule, cols] : by_rule_column) {
    for (const auto& [col, c] : cols) total += c.unresolved;
  }
  return total;
}

QualityCounts QualityRunRecord::RuleTotals(const std::string& rule) const {
  QualityCounts out;
  auto it = by_rule_column.find(rule);
  if (it == by_rule_column.end()) return out;
  for (const auto& [col, c] : it->second) {
    out.violations += c.violations;
    out.fixes += c.fixes;
    out.unresolved += c.unresolved;
  }
  return out;
}

std::string QualityRunRecord::ToJson() const {
  std::string out = "{\"run_id\":" + std::to_string(run_id);
  out += ",\"session\":\"" + JsonEscape(session) + "\"";
  out += ",\"rules\":" + std::to_string(rules);
  out += ",\"rows\":" + std::to_string(rows);
  out += std::string(",\"in_progress\":") + (in_progress ? "true" : "false");
  out += std::string(",\"converged\":") + (converged ? "true" : "false");
  out += std::string(",\"oscillation\":") + (oscillation ? "true" : "false");
  out += ",\"iterations\":" + std::to_string(curve.size());
  out += ",\"violations\":" + std::to_string(TotalViolations());
  out += ",\"fixes\":" + std::to_string(TotalFixes());
  out += ",\"unresolved\":" + std::to_string(TotalUnresolved());
  out += ",\"curve\":[";
  for (size_t i = 0; i < curve.size(); ++i) {
    const QualityIterationPoint& p = curve[i];
    if (i > 0) out += ",";
    out += "{\"iteration\":" + std::to_string(p.iteration);
    out += ",\"violations\":" + std::to_string(p.violations);
    out += ",\"cells_changed\":" + std::to_string(p.cells_changed);
    out += ",\"unresolved\":" + std::to_string(p.unresolved);
    out += ",\"frozen_cells\":" + std::to_string(p.frozen_cells);
    out += ",\"oscillating_cells\":" + std::to_string(p.oscillating_cells);
    out += "}";
  }
  out += "],\"rules_breakdown\":[";
  bool first_rule = true;
  for (const auto& [rule, cols] : by_rule_column) {
    if (!first_rule) out += ",";
    first_rule = false;
    const QualityCounts totals = RuleTotals(rule);
    out += "{\"rule\":\"" + JsonEscape(rule) + "\"";
    out += ",\"violations\":" + std::to_string(totals.violations);
    out += ",\"fixes\":" + std::to_string(totals.fixes);
    out += ",\"unresolved\":" + std::to_string(totals.unresolved);
    out += ",\"columns\":[";
    bool first_col = true;
    for (const auto& [col, c] : cols) {
      if (!first_col) out += ",";
      first_col = false;
      out += "{\"column\":\"" + JsonEscape(col) + "\"";
      out += ",\"violations\":" + std::to_string(c.violations);
      out += ",\"fixes\":" + std::to_string(c.fixes);
      out += ",\"unresolved\":" + std::to_string(c.unresolved);
      out += "}";
    }
    out += "]}";
  }
  out += "],\"profile\":";
  out += has_profile ? profile.ToJson() : std::string("null");
  out += "}";
  return out;
}

std::string QualityDriftJson(const QualityRunRecord& before,
                             const QualityRunRecord& after) {
  const uint64_t vb = before.TotalViolations();
  const uint64_t va = after.TotalViolations();
  std::string out = "{\"before_run\":" + std::to_string(before.run_id);
  out += ",\"after_run\":" + std::to_string(after.run_id);
  auto delta_block = [](const char* key, uint64_t b, uint64_t a) {
    return std::string(",\"") + key + "\":{\"before\":" + std::to_string(b) +
           ",\"after\":" + std::to_string(a) + ",\"delta\":" +
           std::to_string(static_cast<int64_t>(a) - static_cast<int64_t>(b)) +
           "}";
  };
  out += delta_block("violations", vb, va);
  out += delta_block("fixes", before.TotalFixes(), after.TotalFixes());
  out += delta_block("unresolved", before.TotalUnresolved(),
                     after.TotalUnresolved());

  // Violation-mix shift: each rule's share of the run's violations, so a
  // rule that doubled while the table tripled still reads as improved.
  std::set<std::string> rules;
  for (const auto& [rule, cols] : before.by_rule_column) rules.insert(rule);
  for (const auto& [rule, cols] : after.by_rule_column) rules.insert(rule);
  out += ",\"rules\":[";
  bool first = true;
  for (const std::string& rule : rules) {
    const uint64_t b = before.RuleTotals(rule).violations;
    const uint64_t a = after.RuleTotals(rule).violations;
    const double share_b =
        vb == 0 ? 0.0 : static_cast<double>(b) / static_cast<double>(vb);
    const double share_a =
        va == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(va);
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"" + JsonEscape(rule) + "\"";
    out += ",\"before\":" + std::to_string(b);
    out += ",\"after\":" + std::to_string(a);
    out += ",\"share_before\":" + JsonDouble(share_b);
    out += ",\"share_after\":" + JsonDouble(share_a);
    out += ",\"share_delta\":" + JsonDouble(share_a - share_b);
    out += "}";
  }
  out += "]";

  // Column-stat drift for columns profiled in both runs (matched by name).
  out += ",\"columns\":[";
  first = true;
  if (before.has_profile && after.has_profile) {
    for (const ColumnProfile& b : before.profile.columns) {
      const ColumnProfile* a = after.profile.Find(b.name);
      if (a == nullptr) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"column\":\"" + JsonEscape(b.name) + "\"";
      out += ",\"null_rate_before\":" + JsonDouble(b.null_rate());
      out += ",\"null_rate_after\":" + JsonDouble(a->null_rate());
      out += ",\"null_rate_delta\":" + JsonDouble(a->null_rate() - b.null_rate());
      out += ",\"distinct_before\":" + std::to_string(b.distinct);
      out += ",\"distinct_after\":" + std::to_string(a->distinct);
      out += std::string(",\"min_changed\":") +
             (b.min == a->min ? "false" : "true");
      out += std::string(",\"max_changed\":") +
             (b.max == a->max ? "false" : "true");
      // Top-k membership churn: values that entered or left the frequent
      // set between the snapshots.
      auto in_top = [](const ColumnProfile& prof, const Value& v) {
        for (const TopValue& t : prof.top) {
          if (t.value == v) return true;
        }
        return false;
      };
      out += ",\"top_entered\":[";
      bool first_v = true;
      for (const TopValue& t : a->top) {
        if (in_top(b, t.value)) continue;
        if (!first_v) out += ",";
        first_v = false;
        out += ValueJson(t.value);
      }
      out += "],\"top_left\":[";
      first_v = true;
      for (const TopValue& t : b.top) {
        if (in_top(*a, t.value)) continue;
        if (!first_v) out += ",";
        first_v = false;
        out += ValueJson(t.value);
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

QualityRecorder& QualityRecorder::Instance() {
  static QualityRecorder* instance = new QualityRecorder();
  return *instance;
}

void QualityRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.clear();
  runs_begun_ = 0;
}

QualityRunRecord* QualityRecorder::FindLocked(uint64_t run_id) {
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (it->run_id == run_id) return &*it;
  }
  return nullptr;
}

uint64_t QualityRecorder::BeginRun(uint64_t rules, uint64_t rows,
                                   std::string session) {
  if (!enabled()) return 0;
  MetricsRegistry::Instance().GetCounter("quality.runs").Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  QualityRunRecord rec;
  rec.run_id = next_run_id_++;
  rec.session = std::move(session);
  rec.rules = rules;
  rec.rows = rows;
  ++runs_begun_;
  if (runs_.size() >= kMaxRetainedRuns) runs_.erase(runs_.begin());
  runs_.push_back(std::move(rec));
  return runs_.back().run_id;
}

void QualityRecorder::RecordProfile(uint64_t run_id, TableProfile profile) {
  if (!enabled() || run_id == 0) return;
  MetricsRegistry::Instance().GetCounter("quality.profiles").Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  QualityRunRecord* rec = FindLocked(run_id);
  if (rec == nullptr) return;
  rec->profile = std::move(profile);
  rec->has_profile = true;
}

void QualityRecorder::RecordIteration(uint64_t run_id,
                                      const QualityIterationSample& sample) {
  if (!enabled() || run_id == 0) return;
  const uint64_t violations = SumNested(sample.violations);
  const uint64_t fixes = SumNested(sample.fixes);
  const uint64_t unresolved = SumNested(sample.unresolved);
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("quality.violations").Add(violations);
  registry.GetCounter("quality.fixes").Add(fixes);
  registry.GetCounter("quality.unresolved").Add(unresolved);
  std::lock_guard<std::mutex> lock(mu_);
  QualityRunRecord* rec = FindLocked(run_id);
  if (rec == nullptr) return;
  QualityIterationPoint point;
  point.iteration = sample.iteration;
  point.violations = violations;
  point.cells_changed = fixes;
  point.unresolved = unresolved;
  point.frozen_cells = sample.frozen_cells;
  point.oscillating_cells = sample.oscillating_cells;
  rec->curve.push_back(point);
  FoldNested(&rec->by_rule_column, sample.violations,
             &QualityCounts::violations);
  FoldNested(&rec->by_rule_column, sample.fixes, &QualityCounts::fixes);
  FoldNested(&rec->by_rule_column, sample.unresolved,
             &QualityCounts::unresolved);
  if (sample.oscillating_cells > 0) rec->oscillation = true;
}

void QualityRecorder::EndRun(uint64_t run_id, bool converged) {
  if (run_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  QualityRunRecord* rec = FindLocked(run_id);
  if (rec == nullptr) return;
  rec->in_progress = false;
  rec->converged = converged;
}

uint64_t QualityRecorder::RunsBegun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_begun_;
}

std::vector<QualityRunRecord> QualityRecorder::Runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

bool QualityRecorder::LatestRun(QualityRunRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (runs_.empty()) return false;
  *out = runs_.back();
  return true;
}

std::string QualityRecorder::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      std::string("{\"enabled\":") + (enabled() ? "true" : "false");
  out += ",\"runs_begun\":" + std::to_string(runs_begun_);
  out += ",\"runs_retained\":" + std::to_string(runs_.size());
  out += ",\"runs\":[";
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (i > 0) out += ",";
    out += runs_[i].ToJson();
  }
  out += "],\"drift\":";
  // Drift diffs the two most recent *completed* runs, so a scrape during a
  // Clean() never compares against a half-folded record.
  const QualityRunRecord* after = nullptr;
  const QualityRunRecord* before = nullptr;
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (it->in_progress) continue;
    if (after == nullptr) {
      after = &*it;
    } else {
      before = &*it;
      break;
    }
  }
  out += (before != nullptr && after != nullptr)
             ? QualityDriftJson(*before, *after)
             : std::string("null");
  out += "}";
  return out;
}

std::string QualityRecorder::LatestProfileJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!it->has_profile) continue;
    std::string out = "{\"has_profile\":true";
    out += ",\"run_id\":" + std::to_string(it->run_id);
    out += ",\"profile\":" + it->profile.ToJson();
    out += "}";
    return out;
  }
  return "{\"has_profile\":false,\"run_id\":0,\"profile\":null}";
}

std::string QualityRecorder::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const QualityRunRecord& rec : runs_) {
    if (rec.in_progress) continue;
    out += rec.ToJson();
    out += "\n";
  }
  return out;
}

bool QualityRecorder::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = ToJsonl();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size();
  return std::fclose(f) == 0 && ok;
}

void QualityRecorder::WriteJsonlFromEnv() {
  const char* path = std::getenv("BD_QUALITY_JSONL");
  if (path == nullptr || path[0] == '\0') return;
  QualityRecorder& recorder = Instance();
  if (std::string(path) == "-" || std::string(path) == "stdout") {
    const std::string text = recorder.ToJsonl();
    std::fwrite(text.data(), 1, text.size(), stdout);
    return;
  }
  if (!recorder.WriteJsonl(path)) {
    std::fprintf(stderr, "bigdansing: failed to write quality jsonl to %s\n",
                 path);
  }
}

bool ProvenanceTrackingEnabled() {
  return LineageRecorder::Instance().enabled() ||
         QualityRecorder::Instance().enabled();
}

}  // namespace bigdansing
