#include "obs/stage_directory.h"

#include <algorithm>

#include "common/json_writer.h"
#include "common/metrics_registry.h"
#include "dataflow/metrics.h"

namespace bigdansing {

StageDirectory& StageDirectory::Instance() {
  static StageDirectory* instance = new StageDirectory();  // Leaked.
  return *instance;
}

void StageDirectory::Register(const Metrics* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.emplace_back(next_id_++, metrics);
  MetricsRegistry::Instance().GetGauge("obs.live_contexts").Set(
      static_cast<int64_t>(live_.size()));
}

void StageDirectory::Unregister(const Metrics* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [metrics](const auto& entry) {
                               return entry.second == metrics;
                             }),
              live_.end());
  MetricsRegistry::Instance().GetGauge("obs.live_contexts").Set(
      static_cast<int64_t>(live_.size()));
}

size_t StageDirectory::LiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

std::string StageDirectory::StagesJson() const {
  // The directory mutex is held for the whole render: a Metrics destructor
  // blocks in Unregister until we finish, so every pointer below is live.
  std::lock_guard<std::mutex> lock(mu_);
  std::string contexts = "[";
  bool first = true;
  for (const auto& [id, m] : live_) {
    if (!first) contexts += ",";
    first = false;
    JsonObjectBuilder one;
    one.Add("id", id);
    one.Add("label", m->label());
    one.Add("stages", m->stages());
    one.Add("tasks", m->tasks());
    one.Add("morsels", m->morsels());
    one.Add("shuffled_records", m->shuffled_records());
    one.Add("simulated_wall_seconds", m->SimulatedWallSeconds());
    one.AddRaw("stage_reports", m->StageReportsJson());
    contexts += one.Build();
  }
  contexts += "]";
  JsonObjectBuilder out;
  out.Add("live_contexts", static_cast<uint64_t>(live_.size()));
  out.AddRaw("contexts", contexts);
  return out.Build();
}

// Registration hooks referenced from dataflow/metrics.h. Free functions so
// the header-only Metrics class does not need to include obs headers.
void RegisterLiveMetrics(const Metrics* metrics) {
  StageDirectory::Instance().Register(metrics);
}

void UnregisterLiveMetrics(const Metrics* metrics) {
  StageDirectory::Instance().Unregister(metrics);
}

}  // namespace bigdansing
