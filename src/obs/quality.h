#ifndef BIGDANSING_OBS_QUALITY_H_
#define BIGDANSING_OBS_QUALITY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "data/profile.h"

namespace bigdansing {

/// Violation/fix/unresolved counters for one (rule, column) cell of the
/// quality breakdown (or for one rule when rolled up across columns).
struct QualityCounts {
  uint64_t violations = 0;
  uint64_t fixes = 0;
  uint64_t unresolved = 0;
};

/// One point of a Clean() run's convergence curve (1-based iteration).
/// `frozen_cells` and `oscillating_cells` are cumulative: cells frozen so
/// far, and cells updated in more than one iteration so far.
struct QualityIterationPoint {
  size_t iteration = 0;
  uint64_t violations = 0;
  uint64_t cells_changed = 0;
  uint64_t unresolved = 0;
  uint64_t frozen_cells = 0;
  uint64_t oscillating_cells = 0;
};

/// Everything the cleanse driver learned about one iteration, keyed
/// rule -> column attribute -> count. A violation (and an unresolved
/// survivor) attributes to the column of its first candidate fix; a fix
/// attributes to the cell actually updated. These attributions are
/// deterministic, so the per-rule sums reconcile bit-exactly with the
/// lineage ledger and the CleanReport.
struct QualityIterationSample {
  size_t iteration = 0;
  std::map<std::string, std::map<std::string, uint64_t>> violations;
  std::map<std::string, std::map<std::string, uint64_t>> fixes;
  std::map<std::string, std::map<std::string, uint64_t>> unresolved;
  uint64_t frozen_cells = 0;
  uint64_t oscillating_cells = 0;
};

/// The quality record of one Clean() run: convergence curve, per-rule ×
/// per-column breakdown, and (optionally) the input table's column
/// profile.
struct QualityRunRecord {
  uint64_t run_id = 0;
  /// Stream-session namespace this run belongs to; empty for one-shot
  /// Clean() runs. Lets /quality consumers split batch history from each
  /// session's per-window history.
  std::string session;
  uint64_t rules = 0;
  uint64_t rows = 0;
  bool in_progress = true;
  bool converged = false;
  /// True when any cell was updated in more than one iteration (the
  /// oscillation the freeze mechanism exists to terminate).
  bool oscillation = false;
  bool has_profile = false;
  TableProfile profile;
  std::vector<QualityIterationPoint> curve;
  std::map<std::string, std::map<std::string, QualityCounts>> by_rule_column;

  uint64_t TotalViolations() const;
  uint64_t TotalFixes() const;
  uint64_t TotalUnresolved() const;
  /// Column counts of `rule` rolled up.
  QualityCounts RuleTotals(const std::string& rule) const;

  /// One strict-JSON object (no newline) — the exact line BD_QUALITY_JSONL
  /// exports, and the exact element the /quality snapshot embeds.
  std::string ToJson() const;
};

/// Drift report between two quality snapshots: per-column profile deltas
/// (null rate, distinct count, min/max movement, top-k membership) plus
/// the per-rule violation-mix shift. One strict-JSON object.
std::string QualityDriftJson(const QualityRunRecord& before,
                             const QualityRunRecord& after);

/// Process-wide data-quality recorder — the data-plane counterpart of the
/// TraceRecorder/LineageRecorder pair: where the ledger records individual
/// cell changes, this folds each Clean() run into per-rule × per-column
/// violation/fix/unresolved counts, a per-iteration convergence curve and
/// an input-table profile, retained as run history for drift diffing.
/// Disabled by default (every hook is one relaxed atomic load when off).
/// Thread-safe.
class QualityRecorder {
 public:
  static QualityRecorder& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Drops all run history.
  void Clear();

  /// Opens a run record; returns its id (0 while disabled). `session`
  /// namespaces the run ("" = one-shot Clean(); stream sessions pass their
  /// session name so per-window runs are attributable).
  uint64_t BeginRun(uint64_t rules, uint64_t rows, std::string session = "");

  /// Attaches the input table's profile to run `run_id`.
  void RecordProfile(uint64_t run_id, TableProfile profile);

  /// Folds one iteration's counts and curve point into run `run_id`.
  void RecordIteration(uint64_t run_id, const QualityIterationSample& sample);

  /// Closes run `run_id`. Safe to call for unknown/stale ids.
  void EndRun(uint64_t run_id, bool converged);

  /// Runs ever begun (not bounded by the retention cap).
  uint64_t RunsBegun() const;

  /// Retained run records, oldest first.
  std::vector<QualityRunRecord> Runs() const;

  /// Most recent run record (completed or in-progress); false when none.
  bool LatestRun(QualityRunRecord* out) const;

  /// The /quality endpoint body: enabled flag, run counts, the retained
  /// run records (each embedded via QualityRunRecord::ToJson(), so the
  /// final snapshot is byte-identical to the JSONL export's records), and
  /// the drift report between the last two completed runs (null until two
  /// runs completed).
  std::string SnapshotJson() const;

  /// The /profile endpoint body: the most recent run's table profile
  /// ({"has_profile":false} shell when none was recorded yet).
  std::string LatestProfileJson() const;

  /// Completed runs, one strict-JSON object per line (run order).
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path`; false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

  /// Honors BD_QUALITY_JSONL: unset -> no-op, "-"/"stdout" -> print the
  /// JSONL to stdout, anything else -> write it to that path.
  static void WriteJsonlFromEnv();

 private:
  QualityRecorder() = default;

  /// Oldest runs are dropped beyond this many so long-running loops (the
  /// obs demo, a future streaming service) keep bounded history. The
  /// latest records — the ones /quality, drift and the JSONL tail serve —
  /// are always retained.
  static constexpr size_t kMaxRetainedRuns = 512;

  QualityRunRecord* FindLocked(uint64_t run_id);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<QualityRunRecord> runs_;
  uint64_t next_run_id_ = 1;
  uint64_t runs_begun_ = 0;
};

/// True when any provenance consumer is live: the lineage ledger or the
/// quality recorder. Repair passes use this (instead of the lineage toggle
/// alone) to decide whether to attribute assignments to their violations,
/// so quality telemetry works with the ledger off.
bool ProvenanceTrackingEnabled();

}  // namespace bigdansing

#endif  // BIGDANSING_OBS_QUALITY_H_
