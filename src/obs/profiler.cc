#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace bigdansing {

Profiler& Profiler::Instance() {
  static Profiler* instance = new Profiler();  // Leaked: safe at exit.
  return *instance;
}

const ActivityDesc* Profiler::Intern(const std::string& stage,
                                     const std::string& kind) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto& slot = interned_[{stage, kind}];
  if (!slot) {
    slot = std::make_unique<ActivityDesc>();
    slot->stage = stage;
    slot->kind = kind;
  }
  return slot.get();
}

ActivitySlot* Profiler::RegisterSlot() {
  // Leaked deliberately: the sampler may observe the slot after its thread
  // exited, so slot storage must outlive every thread.
  ActivitySlot* slot = new ActivitySlot();
  std::lock_guard<std::mutex> lock(slots_mu_);
  slots_.push_back(slot);
  return slot;
}

ActivitySlot* ThisThreadActivitySlot() {
  // The holder's destructor clears the published activity when the thread
  // exits, so dead threads never count as "active" in later samples.
  struct Holder {
    ActivitySlot* slot = Profiler::Instance().RegisterSlot();
    ~Holder() { slot->desc.store(nullptr, std::memory_order_release); }
  };
  thread_local Holder holder;
  return holder.slot;
}

void Profiler::Start(double hz) {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  hz_ = std::clamp(hz, 1.0, 10000.0);
  running_.store(true, std::memory_order_release);
  sampler_ = std::thread([this] { SamplerLoop(); });
  MetricsRegistry::Instance().GetGauge("profiler.running").Set(1);
}

void Profiler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    running_.store(false, std::memory_order_release);
    wake_.notify_all();
    to_join = std::move(sampler_);
  }
  if (to_join.joinable()) to_join.join();
  MetricsRegistry::Instance().GetGauge("profiler.running").Set(0);
}

double Profiler::hz() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return hz_;
}

void Profiler::SamplerLoop() {
  Counter& sample_counter =
      MetricsRegistry::Instance().GetCounter("profiler.samples");
  const auto period = std::chrono::duration<double>(1.0 / hz());
  std::unique_lock<std::mutex> control(control_mu_);
  while (running_.load(std::memory_order_acquire)) {
    // Sleep interruptibly so Stop() never waits a full period.
    wake_.wait_for(control, period, [this] {
      return !running_.load(std::memory_order_acquire);
    });
    if (!running_.load(std::memory_order_acquire)) return;
    control.unlock();

    // Walk every slot; acquire pairs with the publisher's release store,
    // so the interned descriptor's strings are fully visible.
    size_t active = 0;
    {
      std::lock_guard<std::mutex> slots(slots_mu_);
      std::lock_guard<std::mutex> samples(samples_mu_);
      for (ActivitySlot* slot : slots_) {
        const ActivityDesc* desc = slot->desc.load(std::memory_order_acquire);
        if (desc == nullptr) continue;
        ++samples_[desc];
        ++total_samples_;
        ++active;
      }
      if (active == 0) {
        ++idle_samples_;
        ++total_samples_;
      }
    }
    sample_counter.Add(active == 0 ? 1 : active);

    control.lock();
  }
}

uint64_t Profiler::TotalSamples() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  return total_samples_;
}

std::string Profiler::FoldedStacks() const {
  std::vector<std::pair<std::string, uint64_t>> lines;
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    lines.reserve(samples_.size() + 1);
    for (const auto& [desc, count] : samples_) {
      lines.emplace_back("bigdansing;" + desc->stage + ";" + desc->kind,
                         count);
    }
    if (idle_samples_ > 0) {
      lines.emplace_back("bigdansing;(idle)", idle_samples_);
    }
  }
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::string out;
  for (const auto& [frames, count] : lines) {
    out += frames + " " + std::to_string(count) + "\n";
  }
  return out;
}

void Profiler::ResetSamples() {
  std::lock_guard<std::mutex> lock(samples_mu_);
  samples_.clear();
  idle_samples_ = 0;
  total_samples_ = 0;
}

double Profiler::DefaultHz() {
  if (const char* env = std::getenv("BD_PROFILE_HZ")) {
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (end != env && value > 0.0) return value;
  }
  return 97.0;
}

void Profiler::StartFromEnv() {
  const char* hz = std::getenv("BD_PROFILE_HZ");
  const char* folded = std::getenv("BD_PROFILE_FOLDED");
  const bool want = (hz != nullptr && *hz != '\0') ||
                    (folded != nullptr && *folded != '\0');
  if (want) Instance().Start(DefaultHz());
}

bool Profiler::WriteFoldedFromEnv() {
  const char* path = std::getenv("BD_PROFILE_FOLDED");
  if (path == nullptr || *path == '\0') return true;
  const std::string text = Instance().FoldedStacks();
  const std::string target(path);
  if (target == "-" || target == "stdout") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return true;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    BD_LOG(Warning) << "failed to write folded profile to " << target;
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && written == text.size();
}

ScopedActivity::ScopedActivity(const ActivityDesc* desc, uint64_t unit_begin,
                               uint64_t unit_end)
    : slot_(ThisThreadActivitySlot()) {
  prev_desc_ = slot_->desc.load(std::memory_order_relaxed);
  prev_begin_ = slot_->unit_begin.load(std::memory_order_relaxed);
  prev_end_ = slot_->unit_end.load(std::memory_order_relaxed);
  slot_->unit_begin.store(unit_begin, std::memory_order_relaxed);
  slot_->unit_end.store(unit_end, std::memory_order_relaxed);
  slot_->desc.store(desc, std::memory_order_release);
}

ScopedActivity::~ScopedActivity() {
  slot_->unit_begin.store(prev_begin_, std::memory_order_relaxed);
  slot_->unit_end.store(prev_end_, std::memory_order_relaxed);
  slot_->desc.store(prev_desc_, std::memory_order_release);
}

}  // namespace bigdansing
