#ifndef BIGDANSING_OBS_STAGE_DIRECTORY_H_
#define BIGDANSING_OBS_STAGE_DIRECTORY_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace bigdansing {

class Metrics;

/// Process-wide directory of every live Metrics instance (one per
/// ExecutionContext). Metrics registers itself on construction and
/// unregisters in its destructor, so the observability endpoints can
/// snapshot per-stage progress of jobs that are still running — the data
/// the end-of-run BD_STAGE_JSON dump cannot provide.
///
/// Consistency model: StagesJson() holds the directory mutex for the whole
/// render, so a Metrics destructor blocks until the snapshot completes and
/// a snapshot never touches a dead context. Each context's report list is
/// copied under that context's own stage mutex (Metrics::StageReports()),
/// so in-flight stages appear with whatever tasks/morsels have committed
/// at snapshot time — partial but internally consistent, and identical to
/// the end-of-run report once the stage finishes.
class StageDirectory {
 public:
  static StageDirectory& Instance();

  void Register(const Metrics* metrics);
  void Unregister(const Metrics* metrics);

  size_t LiveCount() const;

  /// Strict-JSON snapshot of every live context:
  ///   {"live_contexts":N,"contexts":[
  ///     {"id":K,"stages":...,"tasks":...,"morsels":...,
  ///      "simulated_wall_seconds":...,"stage_reports":[...]}]}
  /// `stage_reports` is each context's Metrics::StageReportsJson() verbatim
  /// (including in-flight stages flagged "in_flight":true), so the live
  /// snapshot reconciles exactly with the end-of-run dump.
  std::string StagesJson() const;

 private:
  StageDirectory() = default;

  mutable std::mutex mu_;
  /// Live instances with a stable per-registration id (monotone across the
  /// process, so two snapshots can correlate contexts).
  std::vector<std::pair<uint64_t, const Metrics*>> live_;
  uint64_t next_id_ = 0;
};

}  // namespace bigdansing

#endif  // BIGDANSING_OBS_STAGE_DIRECTORY_H_
