#ifndef BIGDANSING_REPAIR_EQUIVALENCE_CLASS_H_
#define BIGDANSING_REPAIR_EQUIVALENCE_CLASS_H_

#include <vector>

#include "dataflow/context.h"
#include "repair/repair_algorithm.h"

namespace bigdansing {

/// The equivalence-class repair algorithm [Bohannon et al., SIGMOD'05] in
/// its centralized form, as plugged into the black-box distribution scheme
/// (§5.1): cells linked by equality fixes form equivalence classes; every
/// class is assigned a single target value chosen to minimize the repair
/// cost (the most frequent current value of the class's members — each
/// member votes once; constant fixes vote for their constant). Ties break
/// toward the smallest value so repairs are deterministic.
class EquivalenceClassAlgorithm : public RepairAlgorithm {
 public:
  std::string name() const override { return "equivalence-class"; }
  std::vector<CellAssignment> RepairComponent(
      const std::vector<const ViolationWithFixes*>& edges) const override;
};

/// The natively distributed equivalence-class repair of §5.2, modeled as a
/// distributed word count with two map-reduce sequences on the dataflow
/// engine:
///   1. map    (class, cell, value) -> ((class, value), 1), counting each
///      element once per class;
///      reduce  count by (class, value);
///   2. map    ((class, value), count) -> (class, (value, count));
///      reduce  keep the most frequent value per class.
/// Classes are the connected components of the equality-fix graph, computed
/// with the BSP connected-components kernel (the GraphX substitute). The
/// target value is then assigned to every member cell whose current value
/// differs.
///
/// When `provenance` is non-null and the LineageRecorder is enabled, one
/// FixProvenance per returned assignment is appended to it (aligned by
/// index): the violation that first mentioned the assigned cell, the
/// equivalence-class label as the component id, and strategy
/// "distributed-equivalence-class".
std::vector<CellAssignment> DistributedEquivalenceClassRepair(
    ExecutionContext* ctx, const std::vector<ViolationWithFixes>& violations,
    std::vector<FixProvenance>* provenance = nullptr);

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_EQUIVALENCE_CLASS_H_
