#ifndef BIGDANSING_REPAIR_REPAIR_ALGORITHM_H_
#define BIGDANSING_REPAIR_REPAIR_ALGORITHM_H_

#include <string>
#include <vector>

#include "rules/violation.h"

namespace bigdansing {

/// A cell update chosen by a repair algorithm.
struct CellAssignment {
  CellRef cell;
  Value value;

  bool operator==(const CellAssignment& other) const = default;
};

/// Interface of a centralized repair algorithm, invoked by the black-box
/// distribution scheme of §5.1 on one connected component (or one k-way
/// part of an oversized component) at a time. Implementations must be
/// stateless across calls so instances can run concurrently on distinct
/// components.
class RepairAlgorithm {
 public:
  virtual ~RepairAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Computes cell updates resolving (greedily, cost-minimally) the
  /// violations in `edges`. `edges` always belong to one connected
  /// component of the violation hypergraph. Must be thread-safe.
  virtual std::vector<CellAssignment> RepairComponent(
      const std::vector<const ViolationWithFixes*>& edges) const = 0;
};

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_REPAIR_ALGORITHM_H_
