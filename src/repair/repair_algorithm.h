#ifndef BIGDANSING_REPAIR_REPAIR_ALGORITHM_H_
#define BIGDANSING_REPAIR_REPAIR_ALGORITHM_H_

#include <string>
#include <vector>

#include "rules/violation.h"

namespace bigdansing {

/// A cell update chosen by a repair algorithm.
struct CellAssignment {
  CellRef cell;
  Value value;

  bool operator==(const CellAssignment& other) const = default;
};

/// Provenance of one proposed assignment, filled by the repair schemes only
/// while the LineageRecorder is enabled (kept beside CellAssignment, not
/// inside it, so the repair fast path and equality semantics are
/// untouched when lineage is off).
struct FixProvenance {
  /// Rule whose violation proposed a fix touching the assigned cell.
  std::string rule;
  /// Index of that violation within the repair pass's input vector.
  uint64_t violation_id = 0;
  /// Connected-component id (or equivalence-class label) repaired under.
  uint64_t component = 0;
  /// Repair algorithm name.
  std::string strategy;
};

/// Interface of a centralized repair algorithm, invoked by the black-box
/// distribution scheme of §5.1 on one connected component (or one k-way
/// part of an oversized component) at a time. Implementations must be
/// stateless across calls so instances can run concurrently on distinct
/// components.
class RepairAlgorithm {
 public:
  virtual ~RepairAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Computes cell updates resolving (greedily, cost-minimally) the
  /// violations in `edges`. `edges` always belong to one connected
  /// component of the violation hypergraph. Must be thread-safe.
  virtual std::vector<CellAssignment> RepairComponent(
      const std::vector<const ViolationWithFixes*>& edges) const = 0;
};

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_REPAIR_ALGORITHM_H_
