#include "repair/equivalence_class.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/lineage.h"
#include "common/trace.h"
#include "obs/quality.h"
#include "dataflow/dataset.h"
#include "repair/connected_components.h"

namespace bigdansing {

namespace {

/// Value vote tally with deterministic winner selection: highest count,
/// ties broken toward the smaller value. std::map keeps value order.
Value WinningValue(const std::map<Value, size_t>& votes) {
  Value best;
  size_t best_count = 0;
  for (const auto& [value, count] : votes) {
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::vector<CellAssignment> EquivalenceClassAlgorithm::RepairComponent(
    const std::vector<const ViolationWithFixes*>& edges) const {
  // Dense ids for the cells touched by equality fixes.
  std::unordered_map<CellRef, size_t, CellRefHash> ids;
  std::vector<CellRef> cells;
  std::vector<Value> current;  // Current (dirty) value per cell.
  auto intern = [&](const Cell& c) {
    auto [it, inserted] = ids.emplace(c.ref, cells.size());
    if (inserted) {
      cells.push_back(c.ref);
      current.push_back(c.value);
    }
    return it->second;
  };

  // Union cells linked by `cell = cell` fixes; remember `cell = constant`.
  std::vector<size_t> parent;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto ensure = [&](size_t id) {
    while (parent.size() <= id) parent.push_back(parent.size());
  };
  std::vector<std::pair<size_t, Value>> constant_votes;
  for (const ViolationWithFixes* vf : edges) {
    for (const Fix& fix : vf->fixes) {
      if (fix.op != FixOp::kEq) continue;  // EC consumes equality fixes only.
      size_t left = intern(fix.left);
      ensure(left);
      if (fix.right.is_cell) {
        size_t right = intern(fix.right.cell);
        ensure(right);
        size_t a = find(left);
        size_t b = find(right);
        if (a != b) parent[std::max(a, b)] = std::min(a, b);
      } else {
        constant_votes.emplace_back(left, fix.right.constant);
      }
    }
  }

  // Tally votes per class: one vote per member's current value, plus one
  // per (cell, constant) fix.
  std::unordered_map<size_t, std::map<Value, size_t>> votes;
  for (size_t i = 0; i < cells.size(); ++i) {
    votes[find(i)][current[i]] += 1;
  }
  std::unordered_set<uint64_t> seen_constant;
  for (const auto& [cell_id, value] : constant_votes) {
    uint64_t key = StableHashUint64(cell_id) ^ value.Hash();
    if (!seen_constant.insert(key).second) continue;  // Count once.
    votes[find(cell_id)][value] += 1;
  }

  // Assign the winning value to members that differ.
  std::vector<CellAssignment> out;
  for (size_t i = 0; i < cells.size(); ++i) {
    const Value target = WinningValue(votes[find(i)]);
    if (current[i] != target) {
      out.push_back(CellAssignment{cells[i], target});
    }
  }
  return out;
}

std::vector<CellAssignment> DistributedEquivalenceClassRepair(
    ExecutionContext* ctx, const std::vector<ViolationWithFixes>& violations,
    std::vector<FixProvenance>* provenance) {
  const bool track_provenance =
      provenance != nullptr && ProvenanceTrackingEnabled();
  // Collect the equality-fix graph: nodes are cells, edges link the two
  // sides of `cell = cell` fixes. Cell identity is its dense id.
  std::unordered_map<CellRef, uint64_t, CellRefHash> ids;
  std::vector<CellRef> cells;
  std::vector<Value> current;
  // First violation (input index) mentioning each interned cell.
  std::vector<uint64_t> first_violation;
  uint64_t interning_violation = 0;
  auto intern = [&](const Cell& c) {
    auto [it, inserted] = ids.emplace(c.ref, cells.size());
    if (inserted) {
      cells.push_back(c.ref);
      current.push_back(c.value);
      if (track_provenance) first_violation.push_back(interning_violation);
    }
    return it->second;
  };
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  std::vector<std::pair<uint64_t, Value>> constant_votes;
  for (size_t v = 0; v < violations.size(); ++v) {
    const auto& vf = violations[v];
    interning_violation = v;
    for (const Fix& fix : vf.fixes) {
      if (fix.op != FixOp::kEq) continue;
      uint64_t left = intern(fix.left);
      if (fix.right.is_cell) {
        edges.emplace_back(left, intern(fix.right.cell));
      } else {
        constant_votes.emplace_back(left, fix.right.constant);
      }
    }
  }
  if (cells.empty()) return {};

  TraceRecorder& trace = TraceRecorder::Instance();
  std::optional<ScopedSpan> repair_span;
  if (trace.enabled()) {
    repair_span.emplace("repair:distributed-ec", "operator");
    repair_span->Annotate("cells", static_cast<uint64_t>(cells.size()));
    repair_span->Annotate("edges", static_cast<uint64_t>(edges.size()));
  }

  // Equivalence classes = connected components of the equality graph,
  // computed with the BSP kernel (GraphX role).
  std::vector<uint64_t> nodes(cells.size());
  for (uint64_t i = 0; i < nodes.size(); ++i) nodes[i] = i;
  std::optional<ScopedSpan> cc_span;
  if (trace.enabled()) {
    cc_span.emplace("repair:ec-connected-components", "operator");
  }
  ComponentLabels labels = BspConnectedComponents(ctx, nodes, edges);
  cc_span.reset();

  // First map-reduce sequence: ((class, value), 1) -> counts.
  // "If an element exists in multiple fixes, we only count its value once":
  // member votes are emitted per cell (once each); constant votes are
  // deduplicated per (cell, value).
  struct KeyHash {
    size_t operator()(const std::pair<uint64_t, Value>& k) const {
      size_t seed = static_cast<size_t>(StableHashUint64(k.first));
      HashCombine(&seed, static_cast<size_t>(k.second.Hash()));
      return seed;
    }
  };
  using CountKey = std::pair<uint64_t, Value>;
  std::vector<std::pair<CountKey, uint64_t>> votes;
  votes.reserve(cells.size() + constant_votes.size());
  for (uint64_t i = 0; i < cells.size(); ++i) {
    votes.emplace_back(CountKey{labels.at(i), current[i]}, 1);
  }
  std::unordered_set<uint64_t> seen_constant;
  for (const auto& [cell_id, value] : constant_votes) {
    uint64_t key = StableHashUint64(cell_id) ^ value.Hash();
    if (!seen_constant.insert(key).second) continue;
    votes.emplace_back(CountKey{labels.at(cell_id), value}, 1);
  }
  std::optional<ScopedSpan> mr1_span;
  if (trace.enabled()) mr1_span.emplace("repair:ec-mr1-count", "operator");
  auto counted = ReduceByKey<CountKey, uint64_t>(
      Dataset<std::pair<CountKey, uint64_t>>::FromVector(ctx, std::move(votes)),
      [](uint64_t a, uint64_t b) { return a + b; }, 0, KeyHash());
  mr1_span.reset();

  // Second sequence: (class, (value, count)) -> most frequent value.
  std::optional<ScopedSpan> mr2_span;
  if (trace.enabled()) mr2_span.emplace("repair:ec-mr2", "operator");
  auto per_class = counted.Map(
      [](const std::pair<CountKey, uint64_t>& rec) {
        return std::make_pair(rec.first.first,
                              std::make_pair(rec.first.second, rec.second));
      });
  using Best = std::pair<Value, uint64_t>;
  auto best = ReduceByKey(per_class, [](const Best& a, const Best& b) {
    if (a.second != b.second) return a.second > b.second ? a : b;
    return a.first <= b.first ? a : b;  // Deterministic tie-break.
  });

  std::unordered_map<uint64_t, Value> target;
  for (const auto& [cls, vc] : best.Collect()) target[cls] = vc.first;
  mr2_span.reset();

  std::vector<CellAssignment> out;
  for (uint64_t i = 0; i < cells.size(); ++i) {
    const Value& t = target.at(labels.at(i));
    if (current[i] != t) {
      out.push_back(CellAssignment{cells[i], t});
      if (track_provenance) {
        FixProvenance p;
        p.rule = violations[first_violation[i]].violation.rule_name;
        p.violation_id = first_violation[i];
        p.component = labels.at(i);
        p.strategy = "distributed-equivalence-class";
        provenance->push_back(std::move(p));
      }
    }
  }
  return out;
}

}  // namespace bigdansing
