#include "repair/blackbox.h"

#include <algorithm>
#include <mutex>
#include <optional>

#include "common/lineage.h"
#include "common/stopwatch.h"
#include "obs/quality.h"
#include "common/trace.h"
#include "dataflow/stage_executor.h"
#include <unordered_map>
#include <unordered_set>

#include "repair/hypergraph.h"
#include "repair/partitioner.h"

namespace bigdansing {

namespace {

/// Attributes each assignment of one repaired component to the first
/// violation (by input index) whose fixes mention the assigned cell —
/// deterministic and exact for equality-fix repairs, where every assigned
/// cell appears in some fix of its component. `edge_of` maps hyperedge
/// position to the violation's index in the repair pass's input.
void AttributeAssignments(const std::vector<const ViolationWithFixes*>& edges,
                          const std::vector<size_t>& edge_of,
                          const std::vector<CellAssignment>& assignments,
                          uint64_t component, const std::string& strategy,
                          std::vector<FixProvenance>* provenance) {
  std::unordered_map<CellRef, size_t, CellRefHash> owner;
  for (size_t e = 0; e < edges.size(); ++e) {
    for (const Fix& fix : edges[e]->fixes) {
      owner.emplace(fix.left.ref, e);
      if (fix.right.is_cell) owner.emplace(fix.right.cell.ref, e);
    }
  }
  for (const CellAssignment& a : assignments) {
    auto it = owner.find(a.cell);
    const size_t e = it != owner.end() ? it->second : 0;
    FixProvenance p;
    p.rule = edges[e]->violation.rule_name;
    p.violation_id = edge_of[e];
    p.component = component;
    p.strategy = strategy;
    provenance->push_back(std::move(p));
  }
}

/// Repairs one oversized component under the master/slave protocol:
/// the component's hyperedges are split k-way; part 0 (master) repairs
/// first and its updated cells become immutable; the remaining parts repair
/// in parallel and any assignment touching an immutable cell is undone.
void RepairSplitComponent(ExecutionContext* ctx,
                          const ViolationHypergraph& graph,
                          const std::vector<size_t>& component_edges,
                          const RepairAlgorithm& algorithm,
                          const BlackBoxOptions& options,
                          std::vector<CellAssignment>* applied,
                          size_t* num_undone) {
  // Runs inside a repair:components task, so this span nests under that
  // task's stage via the pool thread's scope stack.
  std::optional<ScopedSpan> span;
  if (TraceRecorder::Instance().enabled()) {
    span.emplace("repair:kway-split", "operator");
    span->Annotate("component_edges",
                   static_cast<uint64_t>(component_edges.size()));
  }
  std::vector<std::vector<uint64_t>> edge_nodes;
  edge_nodes.reserve(component_edges.size());
  for (size_t e : component_edges) edge_nodes.push_back(graph.edge_nodes(e));
  std::vector<size_t> part_of = GreedyKWayPartition(edge_nodes, options.kway_parts);
  size_t k = 1 + *std::max_element(part_of.begin(), part_of.end());
  if (span) span->Annotate("parts", static_cast<uint64_t>(k));

  std::vector<std::vector<const ViolationWithFixes*>> parts(k);
  for (size_t i = 0; i < component_edges.size(); ++i) {
    parts[part_of[i]].push_back(&graph.edge(component_edges[i]));
  }

  // Master (part 0) repairs first; its cells become immutable.
  std::vector<CellAssignment> master = algorithm.RepairComponent(parts[0]);
  std::unordered_set<CellRef, CellRefHash> immutable;
  for (const auto& a : master) immutable.insert(a.cell);
  applied->insert(applied->end(), master.begin(), master.end());

  // Slaves repair in parallel (in isolation, per the paper); conflicting
  // assignments are undone, triggering a new detect/repair iteration. The
  // immutability test covers master cells AND cut cells already assigned
  // by an earlier slave ("prevents us to change an element more than
  // once") — without the latter, two slaves sharing a cut vertex could
  // both rewrite it.
  if (k <= 1) return;
  // ParallelFor is re-entrant: when this runs on a pool worker (inside a
  // repair:components task), the caller helps drain the pool instead of
  // blocking a worker slot while waiting for the slave repairs.
  std::vector<std::vector<CellAssignment>> slave_results(k - 1);
  ctx->pool().ParallelFor(k - 1, [&](size_t s) {
    slave_results[s] = algorithm.RepairComponent(parts[s + 1]);
  });
  for (auto& result : slave_results) {
    for (auto& a : result) {
      if (!immutable.insert(a.cell).second) {
        ++*num_undone;
      } else {
        applied->push_back(std::move(a));
      }
    }
  }
}

}  // namespace

RepairPassResult BlackBoxRepair(
    ExecutionContext* ctx, const std::vector<ViolationWithFixes>& violations,
    const RepairAlgorithm& algorithm, const BlackBoxOptions& options) {
  RepairPassResult result;
  if (violations.empty()) return result;

  TraceRecorder& trace = TraceRecorder::Instance();
  if (!options.parallel) {
    // Centralized baseline: one repair instance over everything (the
    // algorithm itself still handles multiple equivalence classes). All
    // work lands on one worker slot.
    std::optional<ScopedSpan> span;
    if (trace.enabled()) {
      span.emplace("repair:centralized", "operator");
      span->Annotate("violations", static_cast<uint64_t>(violations.size()));
    }
    ThreadCpuStopwatch timer;
    std::vector<const ViolationWithFixes*> all;
    all.reserve(violations.size());
    for (const auto& vf : violations) all.push_back(&vf);
    result.applied = algorithm.RepairComponent(all);
    result.num_components = 1;
    ctx->metrics().RecordTaskTime(0, timer.ElapsedSeconds());
    if (ProvenanceTrackingEnabled()) {
      std::vector<size_t> edge_of(all.size());
      for (size_t e = 0; e < all.size(); ++e) edge_of[e] = e;
      AttributeAssignments(all, edge_of, result.applied, /*component=*/0,
                           algorithm.name(), &result.provenance);
    }
    return result;
  }

  // Hypergraph + connected components (GraphX role when BSP is selected).
  // The setup is itself a distributed job on a real cluster, so its cost is
  // spread over the worker slots in the simulated-cluster accounting; it is
  // still overhead the centralized repair does not pay, which is why a
  // serial repair can win at very low violation counts (Fig 12(b)).
  std::optional<ScopedSpan> repair_span;
  if (trace.enabled()) {
    repair_span.emplace("repair:blackbox", "operator");
    repair_span->Annotate("violations",
                          static_cast<uint64_t>(violations.size()));
  }
  ThreadCpuStopwatch setup_timer;
  std::optional<ScopedSpan> cc_span;
  if (trace.enabled()) cc_span.emplace("repair:hypergraph-cc", "operator");
  ViolationHypergraph graph(violations);
  std::vector<std::vector<size_t>> groups = graph.ConnectedComponentGroups(
      options.use_bsp_connected_components ? ctx : nullptr);
  result.num_components = groups.size();
  if (cc_span) {
    cc_span->Annotate("components", static_cast<uint64_t>(groups.size()));
    cc_span.reset();
  }
  const double setup_seconds = setup_timer.ElapsedSeconds();
  for (size_t s = 0; s < ctx->num_workers(); ++s) {
    ctx->metrics().RecordTaskTime(
        s, setup_seconds / static_cast<double>(ctx->num_workers()));
  }

  // Independent repair instance per component, scheduled on the pool. Each
  // task returns its outcome buffer (retryable: the algorithm is stateless
  // and the graph/group inputs are immutable), and the executor commits
  // exactly one outcome per component. Components are not row-splittable
  // (a repair instance needs its whole component), so this stage keeps
  // task granularity; to curb stragglers the tasks are dispatched largest
  // component first (LPT order) while outcomes commit under the original
  // component index, keeping the applied-fix order independent of the
  // schedule.
  struct ComponentOutcome {
    std::vector<CellAssignment> assignments;
    size_t undone = 0;
    bool split = false;
  };
  std::vector<size_t> order(groups.size());
  for (size_t g = 0; g < order.size(); ++g) order[g] = g;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return groups[a].size() > groups[b].size();
  });
  auto outcomes = StageExecutor(ctx).RunProducing<ComponentOutcome>(
      "repair:components", groups.size(), [&](size_t t, TaskContext& tc) {
        const size_t g = order[t];
        ComponentOutcome out;
        tc.records_in = groups[g].size();
        if (groups[g].size() > options.max_component_edges) {
          out.split = true;
          RepairSplitComponent(ctx, graph, groups[g], algorithm, options,
                               &out.assignments, &out.undone);
          tc.records_out = out.assignments.size();
          return out;
        }
        std::vector<const ViolationWithFixes*> edges;
        edges.reserve(groups[g].size());
        for (size_t e : groups[g]) edges.push_back(&graph.edge(e));
        out.assignments = algorithm.RepairComponent(edges);
        tc.records_out = out.assignments.size();
        return out;
      });
  if (!outcomes.ok()) throw StageError(outcomes.status());

  std::vector<size_t> slot_of(groups.size());
  for (size_t t = 0; t < order.size(); ++t) slot_of[order[t]] = t;
  const bool lineage_on = ProvenanceTrackingEnabled();
  for (size_t g = 0; g < groups.size(); ++g) {
    ComponentOutcome& out = (*outcomes)[slot_of[g]];
    result.num_split_components += out.split ? 1 : 0;
    result.num_undone += out.undone;
    if (lineage_on) {
      std::vector<const ViolationWithFixes*> edges;
      edges.reserve(groups[g].size());
      for (size_t e : groups[g]) edges.push_back(&graph.edge(e));
      AttributeAssignments(edges, groups[g], out.assignments,
                           static_cast<uint64_t>(g), algorithm.name(),
                           &result.provenance);
    }
    result.applied.insert(result.applied.end(),
                          std::make_move_iterator(out.assignments.begin()),
                          std::make_move_iterator(out.assignments.end()));
  }
  if (repair_span) {
    repair_span->Annotate("components",
                          static_cast<uint64_t>(result.num_components));
    repair_span->Annotate(
        "split_components",
        static_cast<uint64_t>(result.num_split_components));
    repair_span->Annotate("undone", static_cast<uint64_t>(result.num_undone));
    repair_span->Annotate("applied",
                          static_cast<uint64_t>(result.applied.size()));
  }
  return result;
}

}  // namespace bigdansing
