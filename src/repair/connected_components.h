#ifndef BIGDANSING_REPAIR_CONNECTED_COMPONENTS_H_
#define BIGDANSING_REPAIR_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataflow/context.h"

namespace bigdansing {

/// Node labels produced by a connected-components run: node id -> component
/// id (the minimum node id in the component).
using ComponentLabels = std::unordered_map<uint64_t, uint64_t>;

/// Connected components via sequential union-find. Reference implementation
/// and fast path for driver-side graphs. Isolated nodes (appearing in no
/// edge) must be passed via `nodes` to receive a label.
ComponentLabels UnionFindConnectedComponents(
    const std::vector<uint64_t>& nodes,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges);

/// Connected components via Bulk Synchronous Parallel min-label propagation
/// on the dataflow engine — the GraphX substitute of §5.1. Each superstep
/// propagates the smallest known component id across edges with a
/// reduceByKey(min) shuffle; converges in O(diameter) supersteps.
/// Produces exactly the same labels as the union-find version.
ComponentLabels BspConnectedComponents(
    ExecutionContext* ctx, const std::vector<uint64_t>& nodes,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges);

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_CONNECTED_COMPONENTS_H_
