#include "repair/hypergraph_repair.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "rules/violation.h"

namespace bigdansing {

namespace {

/// A constraint a fix imposes on one cell: `cell op bound`.
struct Constraint {
  FixOp op;
  Value bound;
};

/// The fix operator seen from the right-hand cell's perspective.
FixOp FlipFixOp(FixOp op) {
  switch (op) {
    case FixOp::kLt:
      return FixOp::kGt;
    case FixOp::kGt:
      return FixOp::kLt;
    case FixOp::kLeq:
      return FixOp::kGeq;
    case FixOp::kGeq:
      return FixOp::kLeq;
    default:
      return op;  // = and != are symmetric.
  }
}

bool EvalFixOp(const Value& a, FixOp op, const Value& b) {
  switch (op) {
    case FixOp::kEq:
      return a == b;
    case FixOp::kNeq:
      return a != b;
    case FixOp::kLt:
      return a < b;
    case FixOp::kGt:
      return a > b;
    case FixOp::kLeq:
      return a <= b;
    case FixOp::kGeq:
      return a >= b;
  }
  return false;
}

/// Chooses a value satisfying as many constraints as possible. Equality
/// constraints win by majority; ordering constraints narrow a numeric
/// interval whose midpoint (or boundary) is taken; != nudges away from
/// forbidden values.
Value ChooseValue(const std::vector<Constraint>& constraints,
                  const Value& current) {
  // Majority over equality targets first.
  std::map<Value, size_t> eq_votes;
  for (const auto& c : constraints) {
    if (c.op == FixOp::kEq) eq_votes[c.bound] += 1;
  }
  if (!eq_votes.empty()) {
    Value best;
    size_t best_count = 0;
    for (const auto& [v, n] : eq_votes) {
      if (n > best_count) {
        best = v;
        best_count = n;
      }
    }
    return best;
  }

  // Ordering constraints: intersect numeric bounds.
  double low = -std::numeric_limits<double>::infinity();
  double high = std::numeric_limits<double>::infinity();
  bool low_strict = false;
  bool high_strict = false;
  bool any_ordering = false;
  for (const auto& c : constraints) {
    if (!c.bound.is_numeric()) continue;
    double b = c.bound.AsNumber();
    switch (c.op) {
      case FixOp::kGt:
        any_ordering = true;
        if (b >= low) {
          low = b;
          low_strict = true;
        }
        break;
      case FixOp::kGeq:
        any_ordering = true;
        if (b > low) {
          low = b;
          low_strict = false;
        }
        break;
      case FixOp::kLt:
        any_ordering = true;
        if (b <= high) {
          high = b;
          high_strict = true;
        }
        break;
      case FixOp::kLeq:
        any_ordering = true;
        if (b < high) {
          high = b;
          high_strict = false;
        }
        break;
      default:
        break;
    }
  }
  Value candidate = current;
  if (any_ordering) {
    double v;
    const bool infeasible =
        low > high || (low == high && (low_strict || high_strict));
    if (std::isfinite(low) && std::isfinite(high) && infeasible) {
      // The conjunction is empty, but fixes are *alternatives*: satisfy
      // the majority side of the bounds instead.
      size_t lower_count = 0;
      size_t upper_count = 0;
      for (const auto& c : constraints) {
        if (c.op == FixOp::kGt || c.op == FixOp::kGeq) ++lower_count;
        if (c.op == FixOp::kLt || c.op == FixOp::kLeq) ++upper_count;
      }
      v = lower_count >= upper_count ? (low_strict ? low + 1.0 : low)
                                     : (high_strict ? high - 1.0 : high);
    } else if (std::isfinite(low) && std::isfinite(high)) {
      v = (low + high) / 2.0;
      if (!low_strict && v < low) v = low;
    } else if (std::isfinite(low)) {
      v = low_strict ? low + 1.0 : low;
    } else if (std::isfinite(high)) {
      v = high_strict ? high - 1.0 : high;
    } else {
      v = current.AsNumber();
    }
    candidate = current.is_int() && v == std::floor(v)
                    ? Value(static_cast<int64_t>(v))
                    : Value(v);
  }

  // Respect != constraints by nudging when violated.
  for (const auto& c : constraints) {
    if (c.op == FixOp::kNeq && candidate == c.bound) {
      if (candidate.is_numeric()) {
        candidate = Value(candidate.AsNumber() + 1.0);
      } else {
        candidate = Value(candidate.ToString() + "_x");
      }
    }
  }
  return candidate;
}

}  // namespace

std::vector<CellAssignment> HypergraphRepairAlgorithm::RepairComponent(
    const std::vector<const ViolationWithFixes*>& edges) const {
  // Current value per cell (violation-recorded values, then assignments).
  std::unordered_map<CellRef, Value, CellRefHash> values;
  auto note_value = [&](const Cell& c) { values.emplace(c.ref, c.value); };
  for (const auto* vf : edges) {
    for (const auto& c : vf->violation.cells) note_value(c);
    for (const auto& f : vf->fixes) {
      note_value(f.left);
      if (f.right.is_cell) note_value(f.right.cell);
    }
  }

  auto fix_satisfied = [&](const Fix& f) {
    const Value& left = values.at(f.left.ref);
    const Value& right =
        f.right.is_cell ? values.at(f.right.cell.ref) : f.right.constant;
    return EvalFixOp(left, f.op, right);
  };
  auto edge_resolved = [&](const ViolationWithFixes* vf) {
    for (const auto& f : vf->fixes) {
      if (fix_satisfied(f)) return true;
    }
    return false;
  };

  std::vector<const ViolationWithFixes*> unresolved;
  for (const auto* vf : edges) {
    if (!vf->fixes.empty() && !edge_resolved(vf)) unresolved.push_back(vf);
  }

  std::unordered_map<CellRef, Value, CellRefHash> assignments;
  while (!unresolved.empty()) {
    // 1. Rank cells by how many unresolved violations their fixes touch.
    std::map<CellRef, size_t> frequency;  // Ordered: deterministic tie-break.
    for (const auto* vf : unresolved) {
      std::map<CellRef, bool> seen;
      for (const auto& f : vf->fixes) {
        if (!seen[f.left.ref]) {
          frequency[f.left.ref] += 1;
          seen[f.left.ref] = true;
        }
        if (f.right.is_cell && !seen[f.right.cell.ref]) {
          frequency[f.right.cell.ref] += 1;
          seen[f.right.cell.ref] = true;
        }
      }
    }
    if (frequency.empty()) break;
    size_t max_frequency = 0;
    for (const auto& [_, n] : frequency) max_frequency = std::max(max_frequency, n);

    // 2. For each top-frequency candidate, compute the value its
    // constraints imply and the repair cost (the paper's §2.1 cost
    // function: distance between the old and new value). Among candidates
    // the cheapest repair wins — this is what makes the algorithm restore
    // a perturbed value instead of dragging a clean one.
    auto constraints_on = [&](const CellRef& cell) {
      std::vector<Constraint> constraints;
      for (const auto* vf : unresolved) {
        for (const auto& f : vf->fixes) {
          if (f.left.ref == cell) {
            Value bound = f.right.is_cell ? values.at(f.right.cell.ref)
                                          : f.right.constant;
            constraints.push_back(Constraint{f.op, std::move(bound)});
          } else if (f.right.is_cell && f.right.cell.ref == cell) {
            constraints.push_back(
                Constraint{FlipFixOp(f.op), values.at(f.left.ref)});
          }
        }
      }
      return constraints;
    };
    auto cost_of = [](const Value& from, const Value& to) {
      if (from.is_numeric() && to.is_numeric()) {
        return std::abs(from.AsNumber() - to.AsNumber());
      }
      return from == to ? 0.0 : 1.0;
    };
    constexpr size_t kMaxCandidates = 8;
    CellRef chosen{};
    Value new_value;
    double best_cost = std::numeric_limits<double>::infinity();
    size_t examined = 0;
    for (const auto& [cell, n] : frequency) {
      if (n != max_frequency) continue;
      if (++examined > kMaxCandidates) break;
      Value candidate = ChooseValue(constraints_on(cell), values.at(cell));
      double cost = cost_of(values.at(cell), candidate);
      if (cost < best_cost) {
        best_cost = cost;
        chosen = cell;
        new_value = std::move(candidate);
      }
    }

    // 3. Assign and re-evaluate.
    bool changed = values.at(chosen) != new_value;
    values[chosen] = new_value;
    std::vector<const ViolationWithFixes*> still;
    size_t resolved = 0;
    for (const auto* vf : unresolved) {
      if (edge_resolved(vf)) {
        ++resolved;
      } else {
        still.push_back(vf);
      }
    }
    if (changed && resolved > 0) assignments[chosen] = new_value;
    unresolved = std::move(still);
    if (resolved == 0) {
      // No progress: the remaining violations have no satisfiable fix here;
      // leave them for the next detect/repair iteration (§2.2 termination).
      break;
    }
  }

  std::vector<CellAssignment> out;
  out.reserve(assignments.size());
  for (const auto& [cell, value] : assignments) {
    out.push_back(CellAssignment{cell, value});
  }
  // Deterministic output order.
  std::sort(out.begin(), out.end(),
            [](const CellAssignment& a, const CellAssignment& b) {
              return a.cell < b.cell;
            });
  return out;
}

}  // namespace bigdansing
