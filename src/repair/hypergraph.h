#ifndef BIGDANSING_REPAIR_HYPERGRAPH_H_
#define BIGDANSING_REPAIR_HYPERGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataflow/context.h"
#include "rules/violation.h"

namespace bigdansing {

/// The violation hypergraph of §5.1: nodes are elements (cells), each
/// hyperedge is one violation together with its possible fixes. The graph
/// assigns dense node ids to distinct cells and can split its hyperedges
/// into connected components for independent repair.
class ViolationHypergraph {
 public:
  /// Builds the hypergraph from detection output. `violations` must outlive
  /// the hypergraph (edges hold pointers into it).
  explicit ViolationHypergraph(
      const std::vector<ViolationWithFixes>& violations);

  size_t num_nodes() const { return cells_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// The cell for a node id.
  const CellRef& cell(uint64_t node) const { return cells_[node]; }

  /// Node id of `cell`; cells are registered during construction.
  uint64_t NodeOf(const CellRef& cell) const;

  /// Node ids touched by hyperedge `e` (deduplicated).
  const std::vector<uint64_t>& edge_nodes(size_t e) const {
    return edge_nodes_[e];
  }

  /// The violation behind hyperedge `e`.
  const ViolationWithFixes& edge(size_t e) const { return *edges_[e]; }

  /// Binary edges (star expansion: first node of each hyperedge linked to
  /// the rest) for connected-components algorithms.
  std::vector<std::pair<uint64_t, uint64_t>> StarEdges() const;

  /// All node ids (0..num_nodes-1).
  std::vector<uint64_t> AllNodes() const;

  /// Groups hyperedges by connected component. When `ctx` is non-null the
  /// BSP dataflow algorithm computes the components (the GraphX path of the
  /// paper); otherwise sequential union-find is used. Each group holds
  /// indices into the hyperedge list; groups are ordered by component id.
  std::vector<std::vector<size_t>> ConnectedComponentGroups(
      ExecutionContext* ctx = nullptr) const;

 private:
  std::vector<CellRef> cells_;
  std::unordered_map<CellRef, uint64_t, CellRefHash> node_ids_;
  std::vector<const ViolationWithFixes*> edges_;
  std::vector<std::vector<uint64_t>> edge_nodes_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_HYPERGRAPH_H_
