#include "repair/connected_components.h"

#include <algorithm>

#include "dataflow/dataset.h"

namespace bigdansing {

namespace {

/// Union-find over arbitrary uint64 ids with path compression and union by
/// smaller root id (so the representative is the minimum id, matching BSP).
class UnionFind {
 public:
  uint64_t Find(uint64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_.emplace(x, x);
      return x;
    }
    // Path compression (iterative to avoid deep recursion).
    uint64_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint64_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void Union(uint64_t a, uint64_t b) {
    uint64_t ra = Find(a);
    uint64_t rb = Find(b);
    if (ra == rb) return;
    // The smaller id becomes the root so component ids are minima.
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }

  const std::unordered_map<uint64_t, uint64_t>& nodes() const {
    return parent_;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> parent_;
};

}  // namespace

ComponentLabels UnionFindConnectedComponents(
    const std::vector<uint64_t>& nodes,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges) {
  UnionFind uf;
  for (uint64_t n : nodes) uf.Find(n);
  for (const auto& [a, b] : edges) uf.Union(a, b);
  ComponentLabels labels;
  for (const auto& [node, _] : uf.nodes()) {
    labels[node] = uf.Find(node);
  }
  return labels;
}

ComponentLabels BspConnectedComponents(
    ExecutionContext* ctx, const std::vector<uint64_t>& nodes,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges) {
  // Initial labels: every node is its own component.
  std::vector<std::pair<uint64_t, uint64_t>> label_records;
  label_records.reserve(nodes.size());
  for (uint64_t n : nodes) label_records.emplace_back(n, n);
  for (const auto& [a, b] : edges) {
    label_records.emplace_back(a, a);
    label_records.emplace_back(b, b);
  }
  auto min_fn = [](uint64_t a, uint64_t b) { return std::min(a, b); };
  Dataset<std::pair<uint64_t, uint64_t>> labels =
      ReduceByKey(Dataset<std::pair<uint64_t, uint64_t>>::FromVector(
                      ctx, std::move(label_records)),
                  min_fn);

  // Edge dataset is reused every superstep.
  auto edge_ds =
      Dataset<std::pair<uint64_t, uint64_t>>::FromVector(ctx, edges);

  while (true) {
    // Superstep: each node sends its current label across incident edges;
    // nodes adopt the minimum of their own and received labels.
    auto with_labels = Join(edge_ds, labels);  // (u, (v, label_u)) keyed by u.
    // Messages to v: label_u; plus symmetric direction via reversed edges.
    auto messages = with_labels.Map(
        [](const std::pair<uint64_t, std::pair<uint64_t, uint64_t>>& rec) {
          return std::make_pair(rec.second.first, rec.second.second);
        });
    auto reversed = edge_ds.Map([](const std::pair<uint64_t, uint64_t>& e) {
      return std::make_pair(e.second, e.first);
    });
    auto messages_back =
        Join(reversed, labels).Map(
            [](const std::pair<uint64_t, std::pair<uint64_t, uint64_t>>& rec) {
              return std::make_pair(rec.second.first, rec.second.second);
            });
    auto combined = labels.Union(messages).Union(messages_back);
    auto new_labels = ReduceByKey(combined, min_fn);

    // Convergence check: did any label shrink?
    std::unordered_map<uint64_t, uint64_t> old_map;
    for (const auto& kv : labels.Collect()) old_map.insert(kv);
    bool changed = false;
    for (const auto& kv : new_labels.Collect()) {
      auto it = old_map.find(kv.first);
      if (it == old_map.end() || it->second != kv.second) {
        changed = true;
        break;
      }
    }
    labels = new_labels;
    if (!changed) break;
  }

  ComponentLabels out;
  for (const auto& kv : labels.Collect()) out.insert(kv);
  return out;
}

}  // namespace bigdansing
