#ifndef BIGDANSING_REPAIR_QUALITY_H_
#define BIGDANSING_REPAIR_QUALITY_H_

#include <string>
#include <vector>

#include "common/lineage.h"
#include "common/status.h"
#include "data/table.h"

namespace bigdansing {

/// Repair quality relative to a known ground truth (the Table 4
/// measurements): precision = correctly updated cells / updated cells,
/// recall = correctly updated cells / erroneous cells. An update is correct
/// when the repaired value exactly matches the ground truth.
struct RepairQuality {
  size_t errors = 0;           ///< Cells where dirty differs from truth.
  size_t updates = 0;          ///< Cells where repaired differs from dirty.
  size_t correct_updates = 0;  ///< Updates matching the truth exactly.
  double precision = 0.0;
  double recall = 0.0;

  std::string ToString() const;
};

/// Computes exact-match precision/recall. All three tables must be
/// row-aligned with identical schemas (generator output guarantees this).
Result<RepairQuality> EvaluateRepair(const Table& dirty, const Table& repaired,
                                     const Table& truth);

/// Same precision/recall computed from the repair lineage ledger instead of
/// a materialized repaired table: each cell's final value is the new value
/// of its LAST applied ledger entry (entries are recorded in application
/// order), so updates / correct_updates come straight from the ledger and
/// errors from a dirty-vs-truth scan. Given the ledger of one Clean() run
/// on `dirty`, this equals EvaluateRepair(dirty, repaired, truth) — cells
/// rewritten back to their dirty value are not counted as updates by either
/// path. Unresolved entries are ignored.
Result<RepairQuality> EvaluateRepairFromLineage(
    const std::vector<LineageEntry>& entries, const Table& dirty,
    const Table& truth);

/// Distance-based quality for numeric repairs (the paper's hypergraph /
/// TaxB measurement): total and per-error Euclidean distance between the
/// repaired values and the ground truth over the cells that were erroneous,
/// compared against the dirty data's distance.
struct RepairDistance {
  size_t errors = 0;
  double dirty_distance = 0.0;     ///< Σ |dirty - truth| over error cells.
  double repaired_distance = 0.0;  ///< Σ |repaired - truth| over error cells.
  double avg_dirty_distance = 0.0;
  double avg_repaired_distance = 0.0;

  std::string ToString() const;
};

/// Computes distance-based quality for the numeric attribute `attribute`.
Result<RepairDistance> EvaluateRepairDistance(const Table& dirty,
                                              const Table& repaired,
                                              const Table& truth,
                                              const std::string& attribute);

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_QUALITY_H_
