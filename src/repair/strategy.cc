#include "repair/strategy.h"

#include "common/fault.h"
#include "obs/quality.h"
#include "repair/equivalence_class.h"
#include "repair/hypergraph_repair.h"

namespace bigdansing {

Result<RepairPassResult> RepairStrategy::Repair(
    ExecutionContext* ctx, const std::vector<ViolationWithFixes>& violations,
    const BlackBoxOptions& options) const {
  // Provenance feeds both the lineage ledger and the quality recorder, so
  // either consumer being live turns attribution on.
  const bool lineage_on = ProvenanceTrackingEnabled();
  try {
    return DoRepair(ctx, violations, options, lineage_on);
  } catch (const StageError& e) {
    return e.status();
  }
}

namespace {

/// Black-box scheme around the centralized equivalence-class algorithm.
class EquivalenceClassStrategy : public RepairStrategy {
 public:
  std::string name() const override { return "equivalence-class"; }

 protected:
  RepairPassResult DoRepair(ExecutionContext* ctx,
                            const std::vector<ViolationWithFixes>& violations,
                            const BlackBoxOptions& options,
                            bool /*lineage_on*/) const override {
    // BlackBoxRepair reads the lineage toggle itself when attributing
    // assignments; nothing extra to thread through.
    EquivalenceClassAlgorithm algorithm;
    return BlackBoxRepair(ctx, violations, algorithm, options);
  }
};

/// Black-box scheme around the hypergraph algorithm.
class HypergraphStrategy : public RepairStrategy {
 public:
  std::string name() const override { return "hypergraph"; }

 protected:
  RepairPassResult DoRepair(ExecutionContext* ctx,
                            const std::vector<ViolationWithFixes>& violations,
                            const BlackBoxOptions& options,
                            bool /*lineage_on*/) const override {
    HypergraphRepairAlgorithm algorithm;
    return BlackBoxRepair(ctx, violations, algorithm, options);
  }
};

/// Natively distributed equivalence class (§5.2). Ignores the black-box
/// options — the distribution scheme is baked into the algorithm.
class DistributedEquivalenceClassStrategy : public RepairStrategy {
 public:
  std::string name() const override { return "distributed-equivalence-class"; }

 protected:
  RepairPassResult DoRepair(ExecutionContext* ctx,
                            const std::vector<ViolationWithFixes>& violations,
                            const BlackBoxOptions& /*options*/,
                            bool lineage_on) const override {
    RepairPassResult result;
    result.applied = DistributedEquivalenceClassRepair(
        ctx, violations, lineage_on ? &result.provenance : nullptr);
    return result;
  }
};

}  // namespace

const RepairStrategy& RepairStrategyFor(RepairMode mode) {
  static const EquivalenceClassStrategy equivalence_class;
  static const HypergraphStrategy hypergraph;
  static const DistributedEquivalenceClassStrategy distributed;
  switch (mode) {
    case RepairMode::kHypergraph:
      return hypergraph;
    case RepairMode::kDistributedEquivalenceClass:
      return distributed;
    case RepairMode::kEquivalenceClass:
      break;
  }
  return equivalence_class;
}

}  // namespace bigdansing
