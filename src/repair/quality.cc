#include "repair/quality.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace bigdansing {

namespace {

Status CheckAligned(const Table& a, const Table& b, const char* what) {
  if (!(a.schema() == b.schema()) || a.num_rows() != b.num_rows()) {
    return Status::InvalidArgument(std::string(what) +
                                   " tables are not row-aligned");
  }
  return Status::OK();
}

}  // namespace

std::string RepairQuality::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "errors=%zu updates=%zu correct=%zu precision=%.3f recall=%.3f",
                errors, updates, correct_updates, precision, recall);
  return buf;
}

Result<RepairQuality> EvaluateRepair(const Table& dirty, const Table& repaired,
                                     const Table& truth) {
  BIGDANSING_RETURN_NOT_OK(CheckAligned(dirty, repaired, "dirty/repaired"));
  BIGDANSING_RETURN_NOT_OK(CheckAligned(dirty, truth, "dirty/truth"));
  RepairQuality q;
  const size_t cols = dirty.schema().num_attributes();
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const Value& d = dirty.row(r).value(c);
      const Value& p = repaired.row(r).value(c);
      const Value& t = truth.row(r).value(c);
      if (d != t) ++q.errors;
      if (p != d) {
        ++q.updates;
        if (p == t) ++q.correct_updates;
      }
    }
  }
  q.precision = q.updates == 0
                    ? 1.0
                    : static_cast<double>(q.correct_updates) /
                          static_cast<double>(q.updates);
  q.recall = q.errors == 0 ? 1.0
                           : static_cast<double>(q.correct_updates) /
                                 static_cast<double>(q.errors);
  return q;
}

Result<RepairQuality> EvaluateRepairFromLineage(
    const std::vector<LineageEntry>& entries, const Table& dirty,
    const Table& truth) {
  BIGDANSING_RETURN_NOT_OK(CheckAligned(dirty, truth, "dirty/truth"));
  RepairQuality q;
  const size_t cols = dirty.schema().num_attributes();
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (dirty.row(r).value(c) != truth.row(r).value(c)) ++q.errors;
    }
  }
  // Entries are in application order, so a later entry for the same cell
  // supersedes an earlier one (fix-point iterations may rewrite a cell).
  std::map<std::pair<RowId, size_t>, Value> final_value;
  for (const LineageEntry& e : entries) {
    if (!e.applied) continue;
    final_value[{e.row_id, e.column}] = e.new_value;
  }
  for (const auto& [cell, value] : final_value) {
    const Row* dirty_row = dirty.FindRowById(cell.first);
    const Row* truth_row = truth.FindRowById(cell.first);
    if (dirty_row == nullptr || truth_row == nullptr ||
        cell.second >= dirty_row->size()) {
      continue;
    }
    if (value == dirty_row->value(cell.second)) continue;  // Net no-op.
    ++q.updates;
    if (value == truth_row->value(cell.second)) ++q.correct_updates;
  }
  q.precision = q.updates == 0
                    ? 1.0
                    : static_cast<double>(q.correct_updates) /
                          static_cast<double>(q.updates);
  q.recall = q.errors == 0 ? 1.0
                           : static_cast<double>(q.correct_updates) /
                                 static_cast<double>(q.errors);
  return q;
}

std::string RepairDistance::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "errors=%zu |R,G|=%.2f |R,G|/e=%.4f (dirty: |D,G|=%.2f "
                "|D,G|/e=%.4f)",
                errors, repaired_distance, avg_repaired_distance,
                dirty_distance, avg_dirty_distance);
  return buf;
}

Result<RepairDistance> EvaluateRepairDistance(const Table& dirty,
                                              const Table& repaired,
                                              const Table& truth,
                                              const std::string& attribute) {
  BIGDANSING_RETURN_NOT_OK(CheckAligned(dirty, repaired, "dirty/repaired"));
  BIGDANSING_RETURN_NOT_OK(CheckAligned(dirty, truth, "dirty/truth"));
  auto col = dirty.schema().IndexOf(attribute);
  if (!col.ok()) return col.status();
  RepairDistance d;
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    const Value& dv = dirty.row(r).value(*col);
    const Value& tv = truth.row(r).value(*col);
    if (dv == tv) continue;
    ++d.errors;
    d.dirty_distance += std::abs(dv.AsNumber() - tv.AsNumber());
    const Value& pv = repaired.row(r).value(*col);
    d.repaired_distance += std::abs(pv.AsNumber() - tv.AsNumber());
  }
  if (d.errors > 0) {
    d.avg_dirty_distance = d.dirty_distance / static_cast<double>(d.errors);
    d.avg_repaired_distance =
        d.repaired_distance / static_cast<double>(d.errors);
  }
  return d;
}

}  // namespace bigdansing
