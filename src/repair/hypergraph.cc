#include "repair/hypergraph.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "repair/connected_components.h"

namespace bigdansing {

ViolationHypergraph::ViolationHypergraph(
    const std::vector<ViolationWithFixes>& violations) {
  edges_.reserve(violations.size());
  edge_nodes_.reserve(violations.size());
  auto intern = [this](const CellRef& ref) -> uint64_t {
    auto [it, inserted] = node_ids_.emplace(ref, cells_.size());
    if (inserted) cells_.push_back(ref);
    return it->second;
  };
  for (const auto& vf : violations) {
    std::vector<uint64_t> nodes;
    // Nodes: cells of the violation plus cells referenced by its fixes
    // (a fix may mention a cell that Detect did not list).
    for (const auto& c : vf.violation.cells) nodes.push_back(intern(c.ref));
    for (const auto& f : vf.fixes) {
      nodes.push_back(intern(f.left.ref));
      if (f.right.is_cell) nodes.push_back(intern(f.right.cell.ref));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    edges_.push_back(&vf);
    edge_nodes_.push_back(std::move(nodes));
  }
}

uint64_t ViolationHypergraph::NodeOf(const CellRef& cell) const {
  auto it = node_ids_.find(cell);
  BD_CHECK(it != node_ids_.end()) << "unknown cell " << cell.ToString();
  return it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> ViolationHypergraph::StarEdges()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const auto& nodes : edge_nodes_) {
    for (size_t i = 1; i < nodes.size(); ++i) {
      edges.emplace_back(nodes[0], nodes[i]);
    }
  }
  return edges;
}

std::vector<uint64_t> ViolationHypergraph::AllNodes() const {
  std::vector<uint64_t> nodes(cells_.size());
  for (uint64_t i = 0; i < cells_.size(); ++i) nodes[i] = i;
  return nodes;
}

std::vector<std::vector<size_t>> ViolationHypergraph::ConnectedComponentGroups(
    ExecutionContext* ctx) const {
  ComponentLabels labels =
      ctx != nullptr ? BspConnectedComponents(ctx, AllNodes(), StarEdges())
                     : UnionFindConnectedComponents(AllNodes(), StarEdges());
  // Group hyperedges by the component of their first node (all nodes of a
  // hyperedge share a component by construction). std::map for stable,
  // component-id-ordered output.
  std::map<uint64_t, std::vector<size_t>> groups;
  for (size_t e = 0; e < edge_nodes_.size(); ++e) {
    if (edge_nodes_[e].empty()) continue;
    groups[labels.at(edge_nodes_[e][0])].push_back(e);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(groups.size());
  for (auto& [_, edges] : groups) out.push_back(std::move(edges));
  return out;
}

}  // namespace bigdansing
