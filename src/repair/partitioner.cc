#include "repair/partitioner.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace bigdansing {

std::vector<size_t> GreedyKWayPartition(
    const std::vector<std::vector<uint64_t>>& edges, size_t k) {
  if (k == 0) k = 1;
  k = std::min(k, std::max<size_t>(1, edges.size()));
  std::vector<size_t> assignment(edges.size(), 0);
  if (k == 1) return assignment;

  // Process larger edges first so they anchor the parts.
  std::vector<size_t> order(edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return edges[a].size() > edges[b].size();
  });

  // node -> set of parts it already appears in.
  std::unordered_map<uint64_t, std::unordered_set<size_t>> node_parts;
  std::vector<size_t> part_load(k, 0);
  // Balance cap ("k equal parts" in the paper): connectivity may not
  // overfill a part beyond ~10% of the ideal share.
  const size_t capacity = (edges.size() + k - 1) / k * 11 / 10 + 1;

  for (size_t e : order) {
    // Score each part by shared nodes with this edge.
    std::vector<size_t> shared(k, 0);
    for (uint64_t n : edges[e]) {
      auto it = node_parts.find(n);
      if (it == node_parts.end()) continue;
      for (size_t p : it->second) ++shared[p];
    }
    size_t best = k;  // Sentinel: no eligible part found yet.
    for (size_t p = 0; p < k; ++p) {
      if (part_load[p] >= capacity) continue;
      if (best == k || shared[p] > shared[best] ||
          (shared[p] == shared[best] && part_load[p] < part_load[best])) {
        best = p;
      }
    }
    if (best == k) best = e % k;  // All full (rounding): spread round-robin.
    assignment[e] = best;
    part_load[best] += 1;
    for (uint64_t n : edges[e]) node_parts[n].insert(best);
  }
  return assignment;
}

size_t CountCutNodes(const std::vector<std::vector<uint64_t>>& edges,
                     const std::vector<size_t>& assignment) {
  std::unordered_map<uint64_t, std::unordered_set<size_t>> node_parts;
  for (size_t e = 0; e < edges.size(); ++e) {
    for (uint64_t n : edges[e]) node_parts[n].insert(assignment[e]);
  }
  size_t cut = 0;
  for (const auto& [_, parts] : node_parts) {
    if (parts.size() > 1) ++cut;
  }
  return cut;
}

}  // namespace bigdansing
