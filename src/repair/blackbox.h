#ifndef BIGDANSING_REPAIR_BLACKBOX_H_
#define BIGDANSING_REPAIR_BLACKBOX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dataflow/context.h"
#include "repair/repair_algorithm.h"
#include "rules/violation.h"

namespace bigdansing {

/// Options for the black-box repair distribution scheme.
struct BlackBoxOptions {
  /// Run one repair instance per connected component in parallel (§5.1).
  /// When false, a single centralized instance handles all violations — the
  /// baseline of the Fig 12(b) experiment.
  bool parallel = true;

  /// Use the BSP dataflow connected-components kernel (the GraphX path);
  /// union-find otherwise. Results are identical.
  bool use_bsp_connected_components = false;

  /// Components with more hyperedges than this are split k-way and repaired
  /// under the master/slave protocol ("Dealing with big connected
  /// components"). Default: never split.
  size_t max_component_edges = static_cast<size_t>(-1);

  /// Number of parts for oversized components.
  size_t kway_parts = 4;
};

/// Result of one repair pass.
struct RepairPassResult {
  /// Cell updates actually applied (conflicting slave updates are undone
  /// per the master/slave protocol and not included).
  std::vector<CellAssignment> applied;
  /// Aligned with `applied` while the LineageRecorder is enabled (which
  /// rule/violation/component each assignment came from); empty otherwise.
  std::vector<FixProvenance> provenance;
  size_t num_components = 0;
  size_t num_split_components = 0;
  /// Slave assignments undone because they touched a master-immutable cell.
  size_t num_undone = 0;
};

/// Runs a centralized repair algorithm in a distributed fashion without
/// changing it (§5.1): builds the violation hypergraph, finds connected
/// components, and dispatches each component to an independent repair
/// instance on the worker pool. Components larger than
/// `options.max_component_edges` are k-way partitioned; the first part acts
/// as master, its updated cells become immutable, and conflicting slave
/// updates are undone (Example 2's consistency protocol).
///
/// Returns the assignments to apply; it does not touch any table — the
/// caller (the cleanse driver) applies them, which keeps the repair step
/// independent of the data container.
///
/// Throws StageError when the per-component repair stage exhausts its
/// retry budget; RepairStrategy::Repair catches it and returns a Status.
RepairPassResult BlackBoxRepair(ExecutionContext* ctx,
                                const std::vector<ViolationWithFixes>& violations,
                                const RepairAlgorithm& algorithm,
                                const BlackBoxOptions& options);

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_BLACKBOX_H_
