#ifndef BIGDANSING_REPAIR_HYPERGRAPH_REPAIR_H_
#define BIGDANSING_REPAIR_HYPERGRAPH_REPAIR_H_

#include <vector>

#include "repair/repair_algorithm.h"

namespace bigdansing {

/// The hypergraph-based repair algorithm for general (inequality) fixes,
/// in the spirit of the holistic data-cleaning algorithm [Chu et al.,
/// ICDE'13] that the paper plugs in for DCs (§5.1). Per connected
/// component it repeatedly:
///   1. picks the cell covering the most unresolved violations (minimal
///      vertex cover heuristic on the hypergraph),
///   2. gathers the fix expressions of those violations that mention the
///      cell, and
///   3. assigns the cell a value satisfying as many of them as possible —
///      the majority value for equality fixes, or a value inside the
///      [max lower bound, min upper bound] interval for ordering fixes
///      (the paper's QP step collapses to interval midpoints for
///      single-variable bounds).
/// Violations with no satisfiable fix for the chosen cell stay unresolved
/// and surface again in the next detect iteration.
class HypergraphRepairAlgorithm : public RepairAlgorithm {
 public:
  std::string name() const override { return "hypergraph"; }
  std::vector<CellAssignment> RepairComponent(
      const std::vector<const ViolationWithFixes*>& edges) const override;
};

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_HYPERGRAPH_REPAIR_H_
