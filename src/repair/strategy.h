#ifndef BIGDANSING_REPAIR_STRATEGY_H_
#define BIGDANSING_REPAIR_STRATEGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/context.h"
#include "repair/blackbox.h"
#include "rules/violation.h"

namespace bigdansing {

/// Which repair implementation drives the repair step.
enum class RepairMode {
  /// Black-box scheme (§5.1) around the centralized equivalence-class
  /// algorithm. Default — matches the paper's main configuration.
  kEquivalenceClass,
  /// Black-box scheme around the hypergraph algorithm (for DCs with
  /// inequality fixes).
  kHypergraph,
  /// Natively distributed equivalence class (§5.2, two map-reduce rounds).
  kDistributedEquivalenceClass,
};

/// Polymorphic face of the repair step. The cleanse driver no longer
/// switches over RepairMode: it asks RepairStrategyFor(mode) for a strategy
/// and calls Repair(). Repair() is a template method declared once on this
/// base — it resolves the lineage toggle, runs the scheme-specific
/// DoRepair(), and maps any internal stage failure (retry-budget
/// exhaustion in the component stage or the distributed rounds) to a
/// non-OK Status, so no strategy implementation repeats that boundary.
class RepairStrategy {
 public:
  virtual ~RepairStrategy() = default;

  virtual std::string name() const = 0;

  /// Computes (but does not apply) the cell assignments of one repair pass
  /// over `violations`. Never throws: stage failures surface as a Status.
  Result<RepairPassResult> Repair(
      ExecutionContext* ctx, const std::vector<ViolationWithFixes>& violations,
      const BlackBoxOptions& options) const;

 protected:
  /// Scheme-specific pass. `lineage_on` mirrors the process-wide
  /// LineageRecorder toggle, resolved once by Repair(); implementations
  /// fill RepairPassResult::provenance iff it is true. May throw StageError.
  virtual RepairPassResult DoRepair(
      ExecutionContext* ctx, const std::vector<ViolationWithFixes>& violations,
      const BlackBoxOptions& options, bool lineage_on) const = 0;
};

/// Returns the process-wide strategy instance for `mode`. Strategies are
/// stateless, so one shared const instance per mode serves all callers.
const RepairStrategy& RepairStrategyFor(RepairMode mode);

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_STRATEGY_H_
