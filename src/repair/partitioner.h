#ifndef BIGDANSING_REPAIR_PARTITIONER_H_
#define BIGDANSING_REPAIR_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bigdansing {

/// Greedy balanced k-way hyperedge partitioning — the stand-in for the
/// multilevel k-way hypergraph partitioner [Karypis & Kumar] the paper uses
/// to split connected components that exceed a single worker's memory
/// (§5.1 "Dealing with big connected components").
///
/// `edges[e]` lists the node ids of hyperedge e. Edges are assigned to `k`
/// parts; each edge goes to the part with which it currently shares the
/// most nodes (connectivity heuristic), with part size as the tie-break so
/// parts stay balanced. Returns the part index per edge (size == edges
/// .size()). k is clamped to [1, edges.size()].
std::vector<size_t> GreedyKWayPartition(
    const std::vector<std::vector<uint64_t>>& edges, size_t k);

/// Number of "cut" nodes: nodes appearing in more than one part under
/// `assignment`. Used by tests/benches to gauge partition quality.
size_t CountCutNodes(const std::vector<std::vector<uint64_t>>& edges,
                     const std::vector<size_t>& assignment);

}  // namespace bigdansing

#endif  // BIGDANSING_REPAIR_PARTITIONER_H_
