#include "baselines/nadeef_baseline.h"

#include "core/bigdansing.h"
#include "repair/equivalence_class.h"

namespace bigdansing {

Result<NadeefResult> NadeefDetect(const Table& table, const RulePtr& rule) {
  BIGDANSING_RETURN_NOT_OK(rule->Bind(table.schema()));
  NadeefResult result;
  const auto& rows = table.rows();
  auto probe = [&](const Row& a, const Row& b) {
    ++result.detect_calls;
    std::vector<Violation> found;
    rule->Detect(a, b, &found);
    for (auto& v : found) {
      ViolationWithFixes vf;
      vf.violation = std::move(v);
      rule->GenFix(vf.violation, &vf.fixes);
      result.violations.push_back(std::move(vf));
    }
  };
  if (rule->arity() == 1) {
    for (const Row& row : rows) {
      ++result.detect_calls;
      std::vector<Violation> found;
      rule->DetectSingle(row, &found);
      for (auto& v : found) {
        ViolationWithFixes vf;
        vf.violation = std::move(v);
        rule->GenFix(vf.violation, &vf.fixes);
        result.violations.push_back(std::move(vf));
      }
    }
    return result;
  }
  // Pair-at-a-time over the full cross product. Symmetric rules are probed
  // once per unordered pair (NADEEF's tuple iterator does the same); other
  // rules need both orientations.
  const bool symmetric = rule->IsSymmetric();
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      probe(rows[i], rows[j]);
      if (!symmetric) probe(rows[j], rows[i]);
    }
  }
  return result;
}

Result<size_t> NadeefClean(Table* table, const RulePtr& rule,
                           size_t max_iterations,
                           const RepairAlgorithm* algorithm) {
  EquivalenceClassAlgorithm ec;
  if (algorithm == nullptr) algorithm = &ec;
  size_t iterations = 0;
  for (; iterations < max_iterations; ++iterations) {
    auto detection = NadeefDetect(*table, rule);
    if (!detection.ok()) return detection.status();
    if (detection->violations.empty()) break;
    std::vector<const ViolationWithFixes*> all;
    all.reserve(detection->violations.size());
    for (const auto& vf : detection->violations) all.push_back(&vf);
    std::vector<CellAssignment> assignments = algorithm->RepairComponent(all);
    if (ApplyAssignments(table, assignments, nullptr) == 0) break;
  }
  return iterations;
}

}  // namespace bigdansing
