#ifndef BIGDANSING_BASELINES_NADEEF_BASELINE_H_
#define BIGDANSING_BASELINES_NADEEF_BASELINE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "repair/repair_algorithm.h"
#include "rules/rule.h"
#include "rules/violation.h"

namespace bigdansing {

/// Emulation of NADEEF's execution model (the paper's main usability
/// baseline, §6.2): a single-node engine that treats rules as black-box
/// Detect/GenFix UDFs and feeds them every candidate tuple (pair) — no
/// Scope, no Block, no join enhancers, no parallelism. This reproduces the
/// cost structure that makes NADEEF orders of magnitude slower: O(n²)
/// pair-at-a-time dispatch regardless of the rule.
struct NadeefResult {
  std::vector<ViolationWithFixes> violations;
  uint64_t detect_calls = 0;
};

/// Runs single-threaded exhaustive detection of `rule` over `table`.
Result<NadeefResult> NadeefDetect(const Table& table, const RulePtr& rule);

/// Full NADEEF-style cleansing: exhaustive detection plus a centralized
/// repair (`algorithm`, defaulting to the equivalence-class algorithm when
/// null), iterated up to `max_iterations`. Repairs `table` in place and
/// returns the number of iterations used.
Result<size_t> NadeefClean(Table* table, const RulePtr& rule,
                           size_t max_iterations,
                           const RepairAlgorithm* algorithm = nullptr);

}  // namespace bigdansing

#endif  // BIGDANSING_BASELINES_NADEEF_BASELINE_H_
