#ifndef BIGDANSING_BASELINES_SQL_BASELINE_H_
#define BIGDANSING_BASELINES_SQL_BASELINE_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "rules/rule.h"

namespace bigdansing {

/// The SQL engines the paper compares against (§6.1). What we reproduce is
/// each engine's *plan shape* for violation detection, not the engine:
///  - kPostgres: single-threaded; equality rules run as a hash self-join,
///    inequality rules as a nested-loop cross product with a post-filter.
///  - kSparkSql: the same plans parallelized over the worker pool, with the
///    input scanned twice (self-join reads both sides).
///  - kShark: parallel, but the join materializes all candidate pairs
///    before filtering (the paper: "Shark does not process joins
///    efficiently"), and no hash join is used — even equality rules pay a
///    cross product within a coarse repartition.
enum class SqlEngine { kPostgres, kSparkSql, kShark };

/// Returns "postgres", "sparksql" or "shark".
const char* SqlEngineName(SqlEngine engine);

/// Outcome of a baseline detection run.
struct SqlBaselineResult {
  /// Violating pairs found — symmetric rules yield duplicates, exactly as
  /// the SQL self-join formulation does (a.rhs <> b.rhs matches twice).
  size_t violations = 0;
  /// Join probes / filter evaluations performed.
  uint64_t pairs_probed = 0;
};

/// Runs violation detection for `rule` the way `engine`'s SQL plan would.
/// Supports FD and DC rules (the declarative forms that translate to SQL;
/// UDF rules cannot run on SQL engines — the paper makes the same point for
/// Spark SQL in §6.5).
Result<SqlBaselineResult> SqlBaselineDetect(ExecutionContext* ctx,
                                            const Table& table,
                                            const RulePtr& rule,
                                            SqlEngine engine);

}  // namespace bigdansing

#endif  // BIGDANSING_BASELINES_SQL_BASELINE_H_
