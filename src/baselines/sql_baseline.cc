#include "baselines/sql_baseline.h"

#include <atomic>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "rules/dc_rule.h"
#include "rules/fd_rule.h"

namespace bigdansing {

namespace {

/// Probes Detect on the ordered pair and returns the violation count.
size_t ProbePair(const Rule& rule, const Row& a, const Row& b) {
  std::vector<Violation> found;
  rule.Detect(a, b, &found);
  return found.size();
}

/// Hash self-join on the FD's LHS. SQL self-joins read the relation twice
/// — both sides are physically copied, as the paper notes for Spark SQL
/// ("it copies the input data twice") — and the join result rows are
/// materialized before the caller counts them.
SqlBaselineResult HashSelfJoin(ExecutionContext* ctx, const Table& table,
                               const Rule& rule,
                               const std::vector<size_t>& key_columns,
                               bool parallel) {
  auto key_of = [&key_columns](const Row& row, uint64_t* h) {
    *h = 0x42D;
    for (size_t c : key_columns) {
      if (row.value(c).is_null()) return false;
      *h = StableHashUint64(*h ^ row.value(c).Hash());
    }
    return true;
  };
  // Scan 1: build side (copies rows, as an engine's exec batch would).
  std::unordered_map<uint64_t, std::vector<Row>> build;
  for (const Row& row : table.rows()) {
    uint64_t h = 0;
    if (key_of(row, &h)) build[h].push_back(row);
  }
  ctx->metrics().AddRecordsRead(table.num_rows());
  // Scan 2: probe side — the self-join re-reads (re-copies) the input.
  std::vector<Row> probe_side;
  probe_side.reserve(table.num_rows());
  std::vector<uint64_t> probe_keys;
  probe_keys.reserve(table.num_rows());
  for (const Row& row : table.rows()) {
    uint64_t h = 0;
    if (key_of(row, &h)) {
      probe_side.push_back(row);
      probe_keys.push_back(h);
    }
  }
  ctx->metrics().AddRecordsRead(table.num_rows());

  std::atomic<size_t> violations{0};
  std::atomic<uint64_t> probed{0};
  const size_t num_chunks = parallel ? ctx->num_workers() * 2 : 1;
  const size_t chunk = (probe_side.size() + num_chunks - 1) / num_chunks;
  auto process_chunk = [&](size_t c) {
    size_t begin = c * chunk;
    size_t end = std::min(probe_side.size(), begin + chunk);
    size_t local_viol = 0;
    uint64_t local_probe = 0;
    std::vector<Violation> result_set;  // Materialized join output.
    for (size_t i = begin; i < end; ++i) {
      auto it = build.find(probe_keys[i]);
      if (it == build.end()) continue;
      for (const Row& other : it->second) {
        if (other.id() == probe_side[i].id()) continue;  // a.ctid <> b.ctid
        ++local_probe;
        rule.Detect(other, probe_side[i], &result_set);
      }
    }
    local_viol = result_set.size();
    violations += local_viol;
    probed += local_probe;
  };
  if (parallel && chunk > 0) {
    ctx->pool().ParallelFor(num_chunks, process_chunk);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) process_chunk(c);
  }
  return SqlBaselineResult{violations.load(), probed.load()};
}

/// Cross product with post-selection — the plan SQL engines use for
/// inequality joins. Optionally materializes the pair list first (Shark).
SqlBaselineResult CrossProductFilter(ExecutionContext* ctx, const Table& table,
                                     const Rule& rule, bool parallel,
                                     bool materialize_pairs) {
  const auto& rows = table.rows();
  ctx->metrics().AddRecordsRead(2 * table.num_rows());
  std::atomic<size_t> violations{0};
  std::atomic<uint64_t> probed{0};

  if (materialize_pairs) {
    // Shark: build the full pair list, then filter it.
    std::vector<std::pair<const Row*, const Row*>> pairs;
    pairs.reserve(rows.size() * rows.size());
    for (const Row& a : rows) {
      for (const Row& b : rows) {
        if (a.id() == b.id()) continue;
        pairs.emplace_back(&a, &b);
      }
    }
    ctx->metrics().AddPairsEnumerated(pairs.size());
    auto filter = [&](size_t i) {
      probed.fetch_add(1, std::memory_order_relaxed);
      if (ProbePair(rule, *pairs[i].first, *pairs[i].second) > 0) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (parallel) {
      ctx->pool().ParallelFor(pairs.size(), filter);
    } else {
      for (size_t i = 0; i < pairs.size(); ++i) filter(i);
    }
    return SqlBaselineResult{violations.load(), probed.load()};
  }

  // Streaming nested loop.
  auto process_row = [&](size_t i) {
    size_t local_viol = 0;
    uint64_t local_probe = 0;
    for (size_t j = 0; j < rows.size(); ++j) {
      if (i == j) continue;
      ++local_probe;
      local_viol += ProbePair(rule, rows[i], rows[j]);
    }
    violations += local_viol;
    probed += local_probe;
  };
  if (parallel) {
    ctx->pool().ParallelFor(rows.size(), process_row);
  } else {
    for (size_t i = 0; i < rows.size(); ++i) process_row(i);
  }
  ctx->metrics().AddPairsEnumerated(probed.load());
  return SqlBaselineResult{violations.load(), probed.load()};
}

}  // namespace

const char* SqlEngineName(SqlEngine engine) {
  switch (engine) {
    case SqlEngine::kPostgres:
      return "postgres";
    case SqlEngine::kSparkSql:
      return "sparksql";
    case SqlEngine::kShark:
      return "shark";
  }
  return "?";
}

Result<SqlBaselineResult> SqlBaselineDetect(ExecutionContext* ctx,
                                            const Table& table,
                                            const RulePtr& rule,
                                            SqlEngine engine) {
  BIGDANSING_RETURN_NOT_OK(rule->Bind(table.schema()));
  const bool parallel = engine != SqlEngine::kPostgres;
  const bool materialize = engine == SqlEngine::kShark;

  if (auto* fd = dynamic_cast<FdRule*>(rule.get())) {
    // Equality join on the LHS. Shark skips the hash join (coarse plan).
    if (engine == SqlEngine::kShark) {
      return CrossProductFilter(ctx, table, *rule, parallel, materialize);
    }
    std::vector<size_t> key_columns;
    for (const auto& a : fd->lhs()) {
      auto idx = table.schema().IndexOf(a);
      if (!idx.ok()) return idx.status();
      key_columns.push_back(*idx);
    }
    return HashSelfJoin(ctx, table, *rule, key_columns, parallel);
  }

  if (auto* dc = dynamic_cast<DcRule*>(rule.get())) {
    // Equality predicates t1.A = t2.A become the hash-join key; with none,
    // the plan degenerates to a cross product with post-selection.
    std::vector<size_t> key_columns;
    if (engine != SqlEngine::kShark) {
      for (const auto& a : dc->BlockingAttributes()) {
        auto idx = table.schema().IndexOf(a);
        if (!idx.ok()) return idx.status();
        key_columns.push_back(*idx);
      }
    }
    if (!key_columns.empty()) {
      return HashSelfJoin(ctx, table, *rule, key_columns, parallel);
    }
    return CrossProductFilter(ctx, table, *rule, parallel, materialize);
  }

  return Status::Unimplemented(
      "SQL baselines support declarative FD/DC rules only (UDFs cannot be "
      "expressed in SQL)");
}

}  // namespace bigdansing
