#include "common/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bigdansing {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool LooksLikeInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace bigdansing
