#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/metrics_registry.h"
#include "obs/profiler.h"

namespace bigdansing {

namespace {

// Identifies the pool (and worker slot) owning the current thread, so
// Submit can push onto the local deque and WaitIdle/ParallelFor know to
// help-drain instead of blocking. Non-worker threads keep the defaults.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

constexpr size_t kNoWorker = static_cast<size_t>(-1);

size_t CurrentWorkerIn(const ThreadPool* pool) {
  return tls_pool == pool ? tls_worker : kNoWorker;
}

}  // namespace

size_t ThreadPool::DefaultThreadCount() {
  size_t hw = std::thread::hardware_concurrency();
  return EnvThreadsOr(hw == 0 ? 1 : hw);
}

size_t ThreadPool::EnvThreadsOr(size_t fallback) {
  // Re-read on every call: pools are constructed rarely and tests toggle
  // the variable with setenv between contexts.
  if (const char* env = std::getenv("BD_THREADS")) {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  return fallback == 0 ? 1 : fallback;
}

ThreadPool::ThreadPool() : ThreadPool(DefaultThreadCount()) {}

ThreadPool::ThreadPool(size_t num_threads) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  queue_depth_gauge_ = &registry.GetGauge("threadpool.queue_depth");
  active_workers_gauge_ = &registry.GetGauge("threadpool.active_workers");
  tasks_counter_ = &registry.GetCounter("threadpool.tasks_executed");
  steals_counter_ = &registry.GetCounter("threadpool.steals");
  pool_activity_ = Profiler::Instance().Intern("(threadpool)", "run");
  if (num_threads == 0) num_threads = 1;
  workers_ = std::vector<Worker>(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  // Workers drain every deque before exiting, so queued tasks still run.
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const size_t home = CurrentWorkerIn(this);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Local submissions go on the submitter's own deque (popped LIFO, so a
    // worker stays on the cache-warm work it just created); external ones
    // spread round-robin so stealing is the exception, not the rule.
    size_t target =
        home != kNoWorker ? home : (submit_cursor_++ % workers_.size());
    workers_[target].tasks.push_back(std::move(task));
    ++pending_;
    ++in_flight_;
    // Inside the lock so the matching decrement (issued after the pop,
    // which also needs the lock) can never be observed first.
    queue_depth_gauge_->Add(1);
  }
  task_available_.notify_one();
}

bool ThreadPool::PopTaskLocked(size_t home, std::function<void()>* task) {
  if (pending_ == 0) return false;
  const size_t n = workers_.size();
  if (home != kNoWorker && !workers_[home].tasks.empty()) {
    *task = std::move(workers_[home].tasks.back());
    workers_[home].tasks.pop_back();
    --pending_;
    return true;
  }
  // Steal the oldest task of another deque; scanning from home+1 spreads
  // the victims. Non-worker helpers scan from the round-robin cursor.
  const size_t start = home != kNoWorker ? home + 1 : submit_cursor_;
  for (size_t k = 0; k < n; ++k) {
    Worker& victim = workers_[(start + k) % n];
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    --pending_;
    steals_counter_->Add(1);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()> task) {
  queue_depth_gauge_->Add(-1);
  active_workers_gauge_->Add(1);
  {
    // Baseline activity for the sampling profiler; stage bodies overlay
    // their own (stage, kind) on top and pop back to this on return.
    ScopedActivity activity(pool_activity_, 0, 0);
    task();
  }
  // Gauge updates precede the in_flight_ decrement: once WaitIdle()
  // observes zero in-flight tasks, both gauges already net to zero.
  tasks_counter_->Add(1);
  active_workers_gauge_->Add(-1);
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    idle = --in_flight_ == 0;
  }
  if (idle) all_done_.notify_all();
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!PopTaskLocked(CurrentWorkerIn(this), &task)) return false;
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WaitIdle() {
  if (tls_pool == this) {
    // Called from inside a pool task: blocking on all_done_ would deadlock
    // (this frame's own task counts as in-flight). Help drain instead, and
    // yield while other workers finish tasks they already popped.
    while (true) {
      if (TryRunOneTask()) continue;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // One in-flight task is this frame itself.
        if (in_flight_ <= 1) return;
      }
      std::this_thread::yield();
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker = index;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || pending_ > 0; });
      if (!PopTaskLocked(index, &task)) {
        if (shutdown_) return;
        continue;
      }
    }
    RunTask(std::move(task));
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  // The calling thread always participates, so ParallelFor is safe to nest
  // inside pool tasks (a blocked-waiting caller could deadlock a small
  // pool). Pool workers join as helpers when idle. Indices are claimed in
  // chunks from a shared counter; the shared state is heap-held so helpers
  // that wake after the caller returned only touch valid memory (they then
  // see an exhausted counter and exit without dereferencing `body`).
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    size_t count = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* body = nullptr;
  };
  auto state = std::make_shared<State>();
  state->count = count;
  state->chunk = std::max<size_t>(1, count / (threads_.size() * 8 + 1));
  state->body = &body;
  auto work = [state] {
    while (true) {
      size_t begin = state->next.fetch_add(state->chunk);
      if (begin >= state->count) return;
      size_t end = std::min(state->count, begin + state->chunk);
      for (size_t i = begin; i < end; ++i) (*state->body)(i);
      state->completed.fetch_add(end - begin);
    }
  };
  size_t helpers = threads_.size() < count ? threads_.size() : count;
  for (size_t h = 0; h + 1 < helpers; ++h) Submit(work);
  work();
  // All indices are claimed once `work` returns, but helpers may still be
  // finishing their last chunk — and, when nested, may themselves be stuck
  // behind tasks queued ahead of them. Help drain the pool instead of
  // spinning idle so a waiting caller is never dead weight.
  while (state->completed.load(std::memory_order_acquire) != count) {
    if (!TryRunOneTask()) std::this_thread::yield();
  }
}

}  // namespace bigdansing
