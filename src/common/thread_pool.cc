#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/metrics_registry.h"

namespace bigdansing {

ThreadPool::ThreadPool(size_t num_threads) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  queue_depth_gauge_ = &registry.GetGauge("threadpool.queue_depth");
  active_workers_gauge_ = &registry.GetGauge("threadpool.active_workers");
  tasks_counter_ = &registry.GetCounter("threadpool.tasks_executed");
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    // Inside the lock so the matching decrement (issued after the pop,
    // which also needs the lock) can never be observed first.
    queue_depth_gauge_->Add(1);
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  // The calling thread always participates, so ParallelFor is safe to nest
  // inside pool tasks (a blocked-waiting caller could deadlock a small
  // pool). Pool workers join as helpers when idle. Indices are claimed in
  // chunks from a shared counter; the shared state is heap-held so helpers
  // that wake after the caller returned only touch valid memory (they then
  // see an exhausted counter and exit without dereferencing `body`).
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    size_t count = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* body = nullptr;
  };
  auto state = std::make_shared<State>();
  state->count = count;
  state->chunk = std::max<size_t>(1, count / (threads_.size() * 8 + 1));
  state->body = &body;
  auto work = [state] {
    while (true) {
      size_t begin = state->next.fetch_add(state->chunk);
      if (begin >= state->count) return;
      size_t end = std::min(state->count, begin + state->chunk);
      for (size_t i = begin; i < end; ++i) (*state->body)(i);
      state->completed.fetch_add(end - begin);
    }
  };
  size_t helpers = threads_.size() < count ? threads_.size() : count;
  for (size_t h = 0; h + 1 < helpers; ++h) Submit(work);
  work();
  // All indices are claimed once `work` returns; spin briefly for helpers
  // still finishing their last chunk.
  while (state->completed.load(std::memory_order_acquire) != count) {
    std::this_thread::yield();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge_->Add(-1);
    active_workers_gauge_->Add(1);
    task();
    // Gauge updates precede the in_flight_ decrement: once WaitIdle()
    // observes zero in-flight tasks, both gauges already net to zero.
    tasks_counter_->Add(1);
    active_workers_gauge_->Add(-1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace bigdansing
