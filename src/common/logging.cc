#include "common/logging.h"

namespace bigdansing {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

Logger& Logger::Instance() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace bigdansing
