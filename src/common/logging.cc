#include "common/logging.h"

#include <cctype>

namespace bigdansing {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

Logger& Logger::Instance() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level())) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

bool InitLoggingFromEnv() {
  const char* env = std::getenv("BD_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return false;
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(env, &level)) {
    BD_LOG(Warning) << "BD_LOG_LEVEL='" << env
                    << "' not recognized (want debug|info|warn|error)";
    return false;
  }
  Logger::Instance().set_min_level(level);
  return true;
}

}  // namespace bigdansing
