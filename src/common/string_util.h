#ifndef BIGDANSING_COMMON_STRING_UTIL_H_
#define BIGDANSING_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bigdansing {

/// Splits `input` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between them.
std::string Join(const std::vector<std::string>& parts, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` (after trimming) parses fully as a signed integer.
bool LooksLikeInt(std::string_view s);

/// True if `s` (after trimming) parses fully as a floating point number.
bool LooksLikeDouble(std::string_view s);

/// Escapes `s` for embedding inside a JSON string literal: `"` and `\`
/// are backslash-escaped, `\n`/`\t`/`\r`/`\b`/`\f` use their two-character
/// forms, and any other control character becomes `\u00XX`, so every input
/// round-trips through a standards-conforming JSON parser.
std::string JsonEscape(std::string_view s);

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_STRING_UTIL_H_
