#ifndef BIGDANSING_COMMON_JSON_WRITER_H_
#define BIGDANSING_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace bigdansing {

/// Minimal ordered JSON object builder used by every machine-readable
/// emitter in the repo (metrics registry snapshot, lineage JSONL, bench
/// records). Keys render in insertion order; string values go through
/// JsonEscape, so output always satisfies the strict-parser tests.
class JsonObjectBuilder {
 public:
  /// String value (escaped).
  JsonObjectBuilder& Add(std::string_view key, std::string_view value);
  JsonObjectBuilder& Add(std::string_view key, const char* value) {
    return Add(key, std::string_view(value));
  }
  JsonObjectBuilder& Add(std::string_view key, uint64_t value);
  JsonObjectBuilder& Add(std::string_view key, int64_t value);
  JsonObjectBuilder& Add(std::string_view key, double value);
  JsonObjectBuilder& Add(std::string_view key, bool value);

  /// Pre-rendered JSON fragment (nested object/array); inserted verbatim.
  JsonObjectBuilder& AddRaw(std::string_view key, std::string_view json);

  bool empty() const { return body_.empty(); }

  /// "{...}" with the fields added so far.
  std::string Build() const;

 private:
  void Key(std::string_view key);

  std::string body_;
};

/// "%.6f" double rendering shared by all JSON emitters (no exponents, so
/// output diffs cleanly and the strict mini parser's expectations hold).
std::string JsonDouble(double value);

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_JSON_WRITER_H_
