#ifndef BIGDANSING_COMMON_STATUS_H_
#define BIGDANSING_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace bigdansing {

/// Error categories used across the library. Library code never throws;
/// fallible operations return a Status (or a Result<T> when they also
/// produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
  /// A bounded resource (e.g. a stream session's in-flight batch window) is
  /// full; retry after draining. Used by StreamSession backpressure.
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path
/// (no allocation); error path carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bigdansing

/// Propagates a non-OK Status from an expression, like Arrow's macro.
#define BIGDANSING_RETURN_NOT_OK(expr)             \
  do {                                             \
    ::bigdansing::Status _st = (expr);             \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // BIGDANSING_COMMON_STATUS_H_
