#ifndef BIGDANSING_COMMON_FAULT_H_
#define BIGDANSING_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace bigdansing {

/// Thrown by a stage task body (or injected by the FaultInjector) to signal
/// a *retryable* task-attempt failure. The StageExecutor catches it, backs
/// off, and re-runs the attempt — task bodies are deterministic per index,
/// so a retried attempt reproduces the original result bit-identically.
/// Any other exception escaping a task body is treated as non-retryable and
/// fails the whole stage with an Internal Status.
class TaskFailure : public std::runtime_error {
 public:
  explicit TaskFailure(std::string site)
      : std::runtime_error("injected fault at site '" + site + "'"),
        site_(std::move(site)) {}
  TaskFailure(std::string site, const std::string& message)
      : std::runtime_error(message), site_(std::move(site)) {}

  /// The fault site (usually the stage name) the failure is attributed to.
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Internal control-flow exception that carries a stage-failure Status
/// across layers with no Status channel (Dataset::Force, shuffle helpers,
/// OCJoin). Thrown only after the StageExecutor has already turned the
/// failure into a Status; caught — and converted back to that Status — at
/// the public API boundaries (RuleEngine::Detect, RepairStrategy::Repair,
/// MapReduceDetect, Job::Run, BigDansing::Clean). It must never escape the
/// library: "library code never throws" still holds at every public entry
/// point.
class StageError : public std::exception {
 public:
  explicit StageError(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

/// Recovery knobs for one stage execution. Carried by the ExecutionContext
/// (default from env) and overridable per request via DetectRequest /
/// CleanOptions.
struct FaultPolicy {
  /// Total attempts per task including the first (1 disables retry).
  size_t max_attempts = 4;
  /// Cap on retries across all tasks of one stage; exhausting it fails the
  /// stage with a non-OK Status.
  size_t stage_retry_budget = 64;
  /// Exponential backoff between attempts of one task, capped.
  double backoff_initial_ms = 0.5;
  double backoff_max_ms = 8.0;
  /// Speculative re-execution of stragglers (BD_SPECULATION). Only stages
  /// whose task results flow through per-attempt buffers (RunProducing)
  /// speculate; in-place stages never do.
  bool speculation = false;
  /// Duplicate a task once it has run longer than
  /// `speculation_multiplier x median committed task wall time`...
  double speculation_multiplier = 2.0;
  /// ...and longer than this floor (so sub-millisecond stages never pay the
  /// duplicate-launch overhead).
  double speculation_min_seconds = 0.002;

  /// Policy from BD_SPECULATION ("0"/unset off; "1" on with the default
  /// multiplier; a number > 1 on with that multiplier).
  static FaultPolicy FromEnv();
};

/// Process-wide deterministic fault injector. Sites are named after the
/// stage they guard (the StageExecutor probes `OnSite(stage, task, attempt)`
/// before every task attempt), so `BD_FAULT_SPEC` schedules map 1:1 onto
/// stage names printed by EXPLAIN / StageReports.
///
/// Spec grammar (BD_FAULT_SPEC or Configure()): semicolon-separated clauses
/// of comma-separated key=value fields:
///
///   stage=<name|prefix*|*>   site filter (required)
///   task=<n>                 only task index n (default: any task)
///   kind=throw|delay         throw TaskFailure, or sleep (default throw)
///   prob=<p>                 per-attempt firing probability (default 1.0)
///   times=<n>                stop after n injections (default unlimited)
///   ms=<m>                   delay duration for kind=delay (default 20)
///
/// e.g.  BD_FAULT_SPEC='stage=mr:spill,task=3,kind=throw,prob=0.01'
///       BD_FAULT_SEED=42
///
/// Draws are pure functions of (seed, site, task, attempt): a re-run with
/// the same seed injects the same schedule, and a *retry* of the same task
/// draws again with attempt+1 — so prob=1,times=unlimited starves retries
/// deterministically while prob<1 lets them through.
///
/// Every injection bumps the `fault.injected.<site>` counter (plus
/// `fault.injected_total`) in the MetricsRegistry.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Replaces the active schedule. Empty spec == disable. Returns
  /// InvalidArgument on grammar errors (injector left disabled).
  Status Configure(const std::string& spec, uint64_t seed);

  /// Removes all fault specs (site tracking is left as-is).
  void Clear();

  /// True when at least one spec is active (fast, lock-free; the hot-path
  /// guard for OnSite).
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire) ||
           tracking_.load(std::memory_order_acquire);
  }

  /// Probes the site. May throw TaskFailure (kind=throw) or sleep
  /// (kind=delay). Also records the site when site tracking is on.
  void OnSite(const std::string& site, size_t task, size_t attempt);

  /// Site tracking: when on, OnSite records every distinct site name even
  /// with no specs active. Lets tests enumerate all registered fault sites
  /// from a fault-free run, then target each one.
  void set_site_tracking(bool on) {
    tracking_.store(on, std::memory_order_release);
  }
  std::vector<std::string> SeenSites() const;
  void ClearSeenSites();

  /// Total injections since the last Configure()/Clear().
  uint64_t injected_total() const {
    return injected_total_.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind { kThrow, kDelay };
  struct Spec {
    std::string site;     // exact name, or prefix when wildcard is set
    bool wildcard = false;
    bool any_task = true;
    size_t task = 0;
    Kind kind = Kind::kThrow;
    double probability = 1.0;
    uint64_t max_hits = UINT64_MAX;
    double delay_ms = 20.0;
    std::shared_ptr<std::atomic<uint64_t>> hits;
  };

  FaultInjector() = default;
  static Status ParseSpec(const std::string& text, std::vector<Spec>* out);
  /// Uniform [0,1) draw, pure in (seed, site, task, attempt).
  static double Draw(uint64_t seed, const std::string& site, size_t task,
                     size_t attempt);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> tracking_{false};
  std::atomic<uint64_t> injected_total_{0};
  mutable std::mutex mutex_;
  std::vector<Spec> specs_;
  uint64_t seed_ = 42;
  bool env_loaded_ = false;
  std::set<std::string> seen_sites_;

  void LoadFromEnvLocked();
};

/// Millisecond sleep used for retry backoff and injected delays.
void SleepForMs(double ms);

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_FAULT_H_
