#ifndef BIGDANSING_COMMON_LINEAGE_H_
#define BIGDANSING_COMMON_LINEAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "data/row.h"
#include "data/value.h"

namespace bigdansing {

/// One ledger record. `applied` entries describe a cell update performed by
/// the cleanse driver; `!applied` entries mark a violation that survived a
/// fix-point iteration (none of its candidate fixes were applied, so it is
/// carried into the next detect pass unresolved).
struct LineageEntry {
  bool applied = true;
  RowId row_id = -1;
  size_t column = 0;
  std::string attribute;
  Value old_value;
  Value new_value;
  /// Label of the rule whose violation proposed the fix.
  std::string rule;
  /// Index of the violation within the repair pass's input (unique within
  /// one iteration; combine with `iteration` for a global key).
  uint64_t violation_id = 0;
  /// 1-based fix-point iteration of the Clean() loop.
  size_t iteration = 0;
  /// Repair algorithm that proposed the fix ("equivalence-class",
  /// "hypergraph", "distributed-equivalence-class").
  std::string strategy;
  /// Connected-component id (black-box scheme) or equivalence-class label
  /// (distributed scheme) the fix was repaired under.
  uint64_t component = 0;

  /// One strict-JSON object (no newline).
  std::string ToJson() const;
};

/// Per-rule (or per-iteration) rollup of the ledger.
struct LineageSummary {
  uint64_t applied_fixes = 0;
  uint64_t unresolved = 0;
};

/// Process-wide repair lineage ledger — the data-side counterpart of the
/// TraceRecorder: where spans answer "where did the time go", the ledger
/// answers "which cell was changed, by which rule, from which violation,
/// in which iteration". Disabled by default; every Record call is a single
/// relaxed atomic load while disabled, so the repair hot path pays nothing
/// when lineage is off. Thread-safe.
class LineageRecorder {
 public:
  static LineageRecorder& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Drops all recorded entries.
  void Clear();

  /// Appends an applied-fix record. No-op while disabled.
  void RecordFix(LineageEntry entry);

  /// Appends an unresolved-violation record. No-op while disabled.
  void RecordUnresolved(std::string rule, uint64_t violation_id,
                        size_t iteration);

  size_t EntryCount() const;
  std::vector<LineageEntry> Entries() const;

  /// Applied/unresolved totals keyed by rule label.
  std::map<std::string, LineageSummary> SummaryByRule() const;

  /// Applied/unresolved totals keyed by fix-point iteration.
  std::map<size_t, LineageSummary> SummaryByIteration() const;

  /// All entries, one strict-JSON object per line.
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path`; false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

 private:
  LineageRecorder() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<LineageEntry> entries_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_LINEAGE_H_
