#include "common/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/json_writer.h"

namespace bigdansing {

double Histogram::BucketBound(size_t i) {
  return kBase * std::ldexp(1.0, static_cast<int>(i));
}

size_t Histogram::BucketIndex(double value) {
  if (!(value > kBase)) return 0;  // NaN, negatives and tiny samples.
  // First i with value <= kBase * 2^i, i.e. ceil(log2(value / kBase)).
  int exp = static_cast<int>(std::ceil(std::log2(value / kBase)));
  if (exp < 0) exp = 0;
  if (exp > static_cast<int>(kNumBuckets) - 1) exp = kNumBuckets - 1;
  // log2 rounding can land one bucket off either way; settle on the first
  // bucket whose bound covers the value.
  while (exp > 0 && value <= BucketBound(static_cast<size_t>(exp - 1))) --exp;
  while (exp < static_cast<int>(kNumBuckets) - 1 &&
         value > BucketBound(static_cast<size_t>(exp))) {
    ++exp;
  }
  return static_cast<size_t>(exp);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double sum = std::bit_cast<double>(bits) + value;
    if (sum_bits_.compare_exchange_weak(bits, std::bit_cast<uint64_t>(sum),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = Sum();
  return snap;
}

double Histogram::QuantileFromSnapshot(const Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile refers to (1-based, ceil semantics so
  // Quantile(0.5) of {a} is a's bucket and of {a,b} is a's bucket).
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(snap.count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += snap.buckets[i];
    if (cumulative >= rank) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

double Histogram::Quantile(double q) const {
  return QuantileFromSnapshot(TakeSnapshot(), q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonObjectBuilder counters;
  for (const auto& [name, c] : counters_) counters.Add(name, c->Value());
  JsonObjectBuilder gauges;
  for (const auto& [name, g] : gauges_) gauges.Add(name, g->Value());
  JsonObjectBuilder histograms;
  for (const auto& [name, h] : histograms_) {
    // One snapshot feeds count, quantiles and buckets so the exported
    // fields agree with each other even while Observe() runs concurrently.
    const Histogram::Snapshot snap = h->TakeSnapshot();
    JsonObjectBuilder one;
    one.Add("count", snap.count);
    one.Add("sum", snap.sum);
    one.Add("p50", Histogram::QuantileFromSnapshot(snap, 0.5));
    one.Add("p99", Histogram::QuantileFromSnapshot(snap, 0.99));
    one.Add("max", Histogram::QuantileFromSnapshot(snap, 1.0));
    std::string bounds = "[";
    std::string counts = "[";
    bool first = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!first) {
        bounds += ",";
        counts += ",";
      }
      first = false;
      bounds += JsonDouble(Histogram::BucketBound(i));
      counts += std::to_string(snap.buckets[i]);
    }
    bounds += "]";
    counts += "]";
    one.AddRaw("bucket_bounds", bounds);
    one.AddRaw("bucket_counts", counts);
    histograms.AddRaw(name, one.Build());
  }
  JsonObjectBuilder out;
  out.AddRaw("counters", counters.Build());
  out.AddRaw("gauges", gauges.Build());
  out.AddRaw("histograms", histograms.Build());
  return out.Build();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

/// Prometheus value rendering: unlike JSON (where non-finite becomes
/// null), the exposition format spells infinities and NaN out.
std::string PromDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return JsonDouble(value);
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    // The cumulative series and the +Inf/_count values all derive from one
    // snapshot, so the series stays monotone and +Inf == _count even while
    // other threads Observe() mid-scrape.
    const Histogram::Snapshot snap = h->TakeSnapshot();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      out += prom + "_bucket{le=\"" + PromDouble(Histogram::BucketBound(i)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += prom + "_sum " + PromDouble(snap.sum) + "\n";
    out += prom + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

}  // namespace bigdansing
