#ifndef BIGDANSING_COMMON_RANDOM_H_
#define BIGDANSING_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace bigdansing {

/// Deterministic pseudo-random generator (splitmix64 core). All dataset
/// generators and error injectors draw from this so experiments and tests
/// are reproducible byte-for-byte across runs and platforms.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextUint64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of length `len`.
  std::string NextString(int len) {
    std::string s(static_cast<size_t>(len), 'a');
    for (auto& c : s) c = static_cast<char>('a' + NextBounded(26));
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_RANDOM_H_
