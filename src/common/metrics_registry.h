#ifndef BIGDANSING_COMMON_METRICS_REGISTRY_H_
#define BIGDANSING_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bigdansing {

/// Monotonic event counter. All operations are single relaxed atomics, so
/// counters are safe to bump from task bodies without measurable cost.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, active workers) with a
/// high-watermark variant (UpdateMax) for peak tracking.
class Gauge {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` exceeds the current value.
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram of non-negative samples. Bucket i spans
/// (BucketBound(i-1), BucketBound(i)] with BucketBound(i) = kBase * 2^i;
/// bucket 0 additionally absorbs everything <= kBase (including zero and
/// negatives), and the last bucket is unbounded above. Observe() is two
/// relaxed atomic adds plus a CAS loop for the running sum, so it is cheap
/// enough for per-task call sites (never per-record).
class Histogram {
 public:
  /// 64 buckets starting at 1 microsecond cover ~18 orders of magnitude —
  /// enough for both second-scale timings and byte counts.
  static constexpr size_t kNumBuckets = 64;
  static constexpr double kBase = 1e-6;

  /// Upper bound of bucket `i` (inclusive). The last bucket reports its
  /// nominal bound but accepts any larger sample.
  static double BucketBound(size_t i);

  /// Index of the bucket that receives `value`.
  static size_t BucketIndex(double value);

  void Observe(double value);

  /// Point-in-time copy of the histogram, internally consistent under
  /// concurrent Observe(): `count` is the sum of the bucket reads (never
  /// the separate count_ atomic, which an in-flight Observe may not have
  /// bumped yet), so a cumulative bucket series built from a snapshot is
  /// monotone and its +Inf bucket equals `count` exactly — the invariant
  /// Prometheus scrapers check.
  struct Snapshot {
    uint64_t buckets[kNumBuckets] = {};
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot TakeSnapshot() const;

  /// Quantile computed over a snapshot (same semantics as Quantile()).
  static double QuantileFromSnapshot(const Snapshot& snap, double q);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Smallest bucket upper bound b such that at least q * Count() samples
  /// fall in buckets up to b. q is clamped to [0, 1]. Returns 0 for an
  /// empty histogram. For a single sample every quantile is the bound of
  /// the bucket holding it.
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  /// Bit-cast accumulator: fetch_add on atomic<double> is not universally
  /// lock-free, so the sum is maintained with a CAS loop over the bits.
  std::atomic<uint64_t> sum_bits_{0};
};

/// Process-wide registry of named counters, gauges and histograms — the
/// metrics the per-stage StageReports cannot see (thread-pool queue depth,
/// shuffle buffer bytes, violation/fix totals across engines). Lookup
/// returns stable pointers, so hot sites resolve a metric once and cache
/// the pointer. Snapshots export as strict JSON (BD_METRICS_JSON) and as
/// Prometheus text exposition.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Zeroes every registered metric (names stay registered; pointers stay
  /// valid). Tests use this to isolate themselves from earlier activity.
  void ResetAll();

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  /// sorted order. Histograms carry count/sum/p50/p99/max plus the
  /// non-empty buckets as parallel bound/count arrays.
  std::string ToJson() const;

  /// Prometheus-style text exposition ('.' in names becomes '_';
  /// histograms render as cumulative _bucket series plus _sum/_count).
  std::string ToPrometheusText() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_METRICS_REGISTRY_H_
