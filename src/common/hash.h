#ifndef BIGDANSING_COMMON_HASH_H_
#define BIGDANSING_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace bigdansing {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9E3779B97F4A7C15ULL + (*seed << 12) + (*seed >> 4);
}

/// FNV-1a over bytes; stable across platforms (unlike std::hash<string>).
inline uint64_t StableHashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Stable mix for 64-bit integers (splitmix64 finalizer).
inline uint64_t StableHashUint64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_HASH_H_
