#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <unordered_map>

#include "common/string_util.h"

namespace bigdansing {

namespace {

/// Per-thread stack of open ScopedSpans (ids). One process-wide recorder,
/// so one stack per thread suffices.
thread_local std::vector<uint64_t> t_scope_stack;

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Microseconds with sub-microsecond precision for Chrome "ts"/"dur".
std::string FormatUs(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_seconds_(SteadyNowSeconds()) {}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // Leaked: safe at exit.
  return *recorder;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  base_id_ = next_id_;
  epoch_seconds_ = SteadyNowSeconds();
}

double TraceRecorder::NowUs() const {
  return (SteadyNowSeconds() - epoch_seconds_) * 1e6;
}

TraceSpan* TraceRecorder::FindLocked(uint64_t id) {
  if (id <= base_id_ || id > next_id_) return nullptr;
  return &spans_[id - base_id_ - 1];
}

uint64_t TraceRecorder::Begin(const std::string& name,
                              const std::string& category, uint64_t parent,
                              int64_t lane) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = ++next_id_;
  span.parent = parent;
  span.name = name;
  span.category = category;
  span.start_us = NowUs();
  span.lane = lane;
  spans_.push_back(std::move(span));
  return next_id_;
}

void TraceRecorder::End(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan* span = FindLocked(id);
  if (span == nullptr || !span->open) return;
  span->duration_us = NowUs() - span->start_us;
  span->open = false;
}

void TraceRecorder::Annotate(uint64_t id, const std::string& key,
                             std::string value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan* span = FindLocked(id);
  if (span == nullptr) return;
  span->args.emplace_back(key, std::move(value));
}

void TraceRecorder::Annotate(uint64_t id, const std::string& key,
                             uint64_t value) {
  Annotate(id, key, std::to_string(value));
}

void TraceRecorder::Annotate(uint64_t id, const std::string& key,
                             double value) {
  Annotate(id, key, FormatDouble(value));
}

uint64_t TraceRecorder::CurrentSpan() const {
  return t_scope_stack.empty() ? 0 : t_scope_stack.back();
}

void TraceRecorder::PushScope(uint64_t id) { t_scope_stack.push_back(id); }

void TraceRecorder::PopScope() {
  if (!t_scope_stack.empty()) t_scope_stack.pop_back();
}

std::vector<TraceSpan> TraceRecorder::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t TraceRecorder::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<TraceSpan> spans = Spans();
  const double now_us = NowUs();

  // Lane -> Chrome tid. Driver spans (lane -1) share tid 0; worker lane L
  // maps to tid L+1, so tasks lay out per logical-worker lane.
  std::map<int64_t, int64_t> tids;
  tids[-1] = 0;
  for (const TraceSpan& s : spans) {
    if (s.lane >= 0) tids[s.lane] = s.lane + 1;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += event;
  };
  for (const auto& [lane, tid] : tids) {
    std::string name = lane < 0 ? "driver" : "worker-" + std::to_string(lane);
    append("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name + "\"}}");
  }
  for (const TraceSpan& s : spans) {
    const double dur = s.open ? now_us - s.start_us : s.duration_us;
    std::string event = "{\"name\":\"" + JsonEscape(s.name) + "\"";
    event += ",\"cat\":\"" + JsonEscape(s.category) + "\"";
    event += ",\"ph\":\"X\"";
    event += ",\"ts\":" + FormatUs(s.start_us);
    event += ",\"dur\":" + FormatUs(dur < 0.0 ? 0.0 : dur);
    event += ",\"pid\":1";
    event += ",\"tid\":" + std::to_string(tids[s.lane < 0 ? -1 : s.lane]);
    event += ",\"args\":{\"span_id\":\"" + std::to_string(s.id) + "\"";
    event += ",\"parent\":\"" + std::to_string(s.parent) + "\"";
    if (s.open) event += ",\"open\":\"true\"";
    for (const auto& [key, value] : s.args) {
      event += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    event += "}}";
    append(event);
  }
  out += "]}";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

std::string TraceRecorder::ExplainTree() const {
  std::vector<TraceSpan> spans = Spans();
  const double now_us = NowUs();

  // Index by id; resolve each span's effective parent: the nearest
  // ancestor that is neither a task nor a morsel (spans opened inside a
  // task or morsel body re-attach to the work unit's stage-or-above
  // ancestor). Tasks and morsels themselves are folded into their stage
  // line — EXPLAIN summarizes per stage, the Chrome trace keeps the units.
  auto is_work_unit = [](const TraceSpan& s) {
    return s.category == "task" || s.category == "morsel";
  };
  std::unordered_map<uint64_t, const TraceSpan*> by_id;
  for (const TraceSpan& s : spans) by_id[s.id] = &s;
  auto effective_parent = [&](const TraceSpan& s) -> uint64_t {
    uint64_t p = s.parent;
    while (p != 0) {
      auto it = by_id.find(p);
      if (it == by_id.end()) return 0;  // Parent cleared: promote to root.
      if (!is_work_unit(*it->second)) return p;
      p = it->second->parent;
    }
    return 0;
  };

  std::unordered_map<uint64_t, std::vector<const TraceSpan*>> children;
  std::vector<const TraceSpan*> roots;
  for (const TraceSpan& s : spans) {
    if (is_work_unit(s)) continue;
    uint64_t parent = effective_parent(s);
    if (parent == 0) {
      roots.push_back(&s);
    } else {
      children[parent].push_back(&s);
    }
  }
  // Begin order == id order already, but make the invariant explicit.
  auto by_start = [](const TraceSpan* a, const TraceSpan* b) {
    return a->id < b->id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) std::sort(kids.begin(), kids.end(), by_start);

  std::string out = "EXPLAIN (runtime)\n";
  std::function<void(const TraceSpan&, const std::string&, bool)> render =
      [&](const TraceSpan& s, const std::string& prefix, bool last) {
        const double dur_us = s.open ? now_us - s.start_us : s.duration_us;
        out += prefix + (last ? "└─ " : "├─ ");
        out += "[" + s.category + "] " + s.name;
        out += "  wall=" + FormatDouble(dur_us / 1e6) + "s";
        if (s.open) out += " (open)";
        for (const auto& [key, value] : s.args) {
          out += " " + key + "=" + value;
        }
        out += "\n";
        const std::string child_prefix = prefix + (last ? "   " : "│  ");
        auto it = children.find(s.id);
        if (it == children.end()) return;
        for (size_t i = 0; i < it->second.size(); ++i) {
          render(*it->second[i], child_prefix, i + 1 == it->second.size());
        }
      };
  for (size_t i = 0; i < roots.size(); ++i) {
    render(*roots[i], "", i + 1 == roots.size());
  }
  return out;
}

ScopedSpan::ScopedSpan(const std::string& name, const std::string& category)
    : recorder_(&TraceRecorder::Instance()) {
  id_ = recorder_->Begin(name, category, recorder_->CurrentSpan());
  if (id_ != 0) recorder_->PushScope(id_);
}

ScopedSpan::ScopedSpan(const std::string& name, const std::string& category,
                       uint64_t parent, int64_t lane)
    : recorder_(&TraceRecorder::Instance()) {
  id_ = recorder_->Begin(name, category, parent, lane);
  if (id_ != 0) recorder_->PushScope(id_);
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  recorder_->PopScope();
  recorder_->End(id_);
}

void ScopedSpan::Annotate(const std::string& key, std::string value) {
  if (id_ != 0) recorder_->Annotate(id_, key, std::move(value));
}

void ScopedSpan::Annotate(const std::string& key, uint64_t value) {
  if (id_ != 0) recorder_->Annotate(id_, key, value);
}

void ScopedSpan::Annotate(const std::string& key, double value) {
  if (id_ != 0) recorder_->Annotate(id_, key, value);
}

}  // namespace bigdansing
