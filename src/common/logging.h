#ifndef BIGDANSING_COMMON_LOGGING_H_
#define BIGDANSING_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace bigdansing {

/// Severity levels for the library logger. kFatal aborts the process after
/// emitting the message (used for programming errors, not data errors —
/// data errors flow through Status).
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide logger configuration. Thread-safe; the level check is one
/// relaxed atomic load so callers may probe it on hot paths.
class Logger {
 public:
  static Logger& Instance();

  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  /// Emits one line `[LEVEL] message` to stderr if `level >= min_level`.
  void Log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> min_level_{LogLevel::kInfo};
  std::mutex mutex_;
};

/// True when a BD_LOG(level) statement would emit. Use to skip building
/// log messages on hot paths (e.g. per-stage debug events).
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         static_cast<int>(Logger::Instance().min_level());
}

/// Parses "debug" / "info" / "warn" / "warning" / "error" (any case) into
/// `*level`; false (and `*level` untouched) for anything else.
bool ParseLogLevel(std::string_view text, LogLevel* level);

/// Applies the BD_LOG_LEVEL environment variable to Logger::Instance().
/// Shared startup helper for benches, tests and tools; returns true when
/// the variable was set to a recognized level.
bool InitLoggingFromEnv();

namespace internal_logging {

/// Stream-style log statement builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}  // NOLINT(runtime/explicit)
  ~LogMessage() {
    Logger::Instance().Log(level_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace bigdansing

#define BD_LOG(level) \
  ::bigdansing::internal_logging::LogMessage(::bigdansing::LogLevel::k##level)

/// Invariant check that survives NDEBUG builds; logs and aborts on failure.
#define BD_CHECK(condition)                                        \
  if (!(condition))                                                \
  BD_LOG(Fatal) << "Check failed: " #condition " at " << __FILE__ \
                << ":" << __LINE__ << " "

#endif  // BIGDANSING_COMMON_LOGGING_H_
