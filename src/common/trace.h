#ifndef BIGDANSING_COMMON_TRACE_H_
#define BIGDANSING_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bigdansing {

/// One recorded span. Spans form a forest through `parent` (0 = root).
/// Times are microseconds relative to the recorder's epoch (construction or
/// last Clear()).
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  /// Hierarchy level: "job", "phase", "rule", "operator", "stage", "task",
  /// or "morsel" (a row-range slice of a task under the morsel scheduler).
  std::string category;
  double start_us = 0.0;
  double duration_us = 0.0;
  /// Still open (End() not yet called) — exports use the current time.
  bool open = true;
  /// Logical worker lane for task spans (becomes the Chrome-trace tid);
  /// -1 for driver-side spans.
  int64_t lane = -1;
  /// Ordered key/value attributes ("records_in" -> "1000"). Values are
  /// pre-formatted; numeric Annotate overloads keep plain digits.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide recorder of hierarchical execution spans — the runtime
/// counterpart of the physical plan. Every Begin/End/Annotate is a no-op
/// (one relaxed atomic load) while disabled, so leaving tracing off costs
/// nothing on hot paths. Thread-safe.
///
/// Scoped nesting: each thread keeps a stack of the ScopedSpans it has
/// open; a new ScopedSpan parents to the innermost one. Spans that cross
/// threads (stage -> task) pass the parent id explicitly.
///
/// Exports:
///  - ToChromeTraceJson(): Chrome trace-event JSON ("traceEvents" array of
///    "X" complete events) loadable in chrome://tracing or Perfetto, with
///    task spans laid out per logical-worker lane.
///  - ExplainTree(): a human-readable runtime EXPLAIN — the span forest
///    with each node's attributes (records in/out, selectivity, shuffle
///    volume, busy/wall time, task skew), task spans folded into their
///    parent stage.
class TraceRecorder {
 public:
  static TraceRecorder& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Drops all recorded spans and restarts the epoch. Span ids stay
  /// monotonic across Clear(), so End()/Annotate() on a handle from before
  /// the Clear are safe no-ops.
  void Clear();

  /// Opens a span and returns its id (0 when disabled — all other calls
  /// accept 0 as a no-op handle). `parent` 0 makes a root span.
  uint64_t Begin(const std::string& name, const std::string& category,
                 uint64_t parent, int64_t lane = -1);

  /// Closes span `id` with the current time.
  void End(uint64_t id);

  /// Attaches a key/value attribute to span `id`.
  void Annotate(uint64_t id, const std::string& key, std::string value);
  void Annotate(uint64_t id, const std::string& key, uint64_t value);
  void Annotate(uint64_t id, const std::string& key, double value);

  /// Innermost ScopedSpan open on the calling thread (0 when none).
  uint64_t CurrentSpan() const;

  /// Snapshot of all spans recorded since the last Clear(), in Begin order.
  std::vector<TraceSpan> Spans() const;
  size_t SpanCount() const;

  /// Chrome trace-event JSON (the whole recording).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Renders the runtime EXPLAIN tree. Task and morsel spans are not
  /// printed as nodes (their skew summary lives on the parent stage's
  /// attributes); spans opened inside a task or morsel re-attach to the
  /// nearest stage-or-above ancestor.
  std::string ExplainTree() const;

 private:
  friend class ScopedSpan;
  TraceRecorder();

  void PushScope(uint64_t id);
  void PopScope();

  /// Microseconds since the epoch.
  double NowUs() const;

  /// Pointer to span `id` or null when stale/unknown. Requires mu_.
  TraceSpan* FindLocked(uint64_t id);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  /// Ids handed out before the last Clear() are <= base_id_ and stale.
  uint64_t base_id_ = 0;
  uint64_t next_id_ = 0;
  /// Steady-clock epoch in seconds (absolute), reset by Clear().
  double epoch_seconds_ = 0.0;
};

/// RAII span: opens in the constructor, closes in the destructor, and
/// maintains the calling thread's scope stack so nested ScopedSpans parent
/// automatically. Near-zero cost when the recorder is disabled.
class ScopedSpan {
 public:
  /// Parents to the calling thread's innermost open ScopedSpan.
  ScopedSpan(const std::string& name, const std::string& category);

  /// Explicit parent (for spans whose parent lives on another thread, e.g.
  /// task spans under their stage) on worker lane `lane`.
  ScopedSpan(const std::string& name, const std::string& category,
             uint64_t parent, int64_t lane);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Recorder id of this span; 0 when tracing is disabled.
  uint64_t id() const { return id_; }

  void Annotate(const std::string& key, std::string value);
  void Annotate(const std::string& key, uint64_t value);
  void Annotate(const std::string& key, double value);

 private:
  TraceRecorder* recorder_;
  uint64_t id_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_TRACE_H_
