#ifndef BIGDANSING_COMMON_THREAD_POOL_H_
#define BIGDANSING_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bigdansing {

class Counter;
class Gauge;
struct ActivityDesc;

/// Work-stealing worker pool used by the dataflow engine to execute
/// per-partition tasks and row-range morsels. Each worker owns a deque:
/// tasks submitted from a worker thread push onto that worker's own deque
/// and are popped LIFO (newest first — keeps a worker on the cache-warm
/// morsels it just produced), while idle workers steal FIFO from the
/// *front* of other deques (oldest first — steals grab the work least
/// likely to be in the victim's cache). Tasks submitted from non-worker
/// threads are distributed round-robin across the deques.
///
/// Re-entrancy: a task that calls back into its own pool never blocks on
/// queued work. ParallelFor and WaitIdle (when invoked on a worker thread)
/// drain tasks via TryRunOneTask() instead of sleeping, so nested
/// ParallelFor / nested stages cannot deadlock even on a 1-thread pool.
///
/// Feeds four process-wide registry metrics (all pools share them; the
/// queue/active accounting nets to zero per task, so those gauges read zero
/// whenever every pool is idle): `threadpool.queue_depth`,
/// `threadpool.active_workers`, `threadpool.tasks_executed`, and
/// `threadpool.steals` (tasks taken from a deque other than the runner's
/// own — the work-stealing traffic). Updates sit outside the worker-timed
/// task body and cost one relaxed atomic each.
class ThreadPool {
 public:
  /// Creates DefaultThreadCount() workers.
  ThreadPool();
  /// Creates `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Worker count from the environment: BD_THREADS when set to a positive
  /// integer, else std::thread::hardware_concurrency() (min 1).
  static size_t DefaultThreadCount();

  /// BD_THREADS when set, else `fallback`. Pool construction sites with a
  /// semantic worker count (ExecutionContext's simulated cluster size) pass
  /// it here so the env var can override the physical thread count without
  /// changing the logical topology.
  static size_t EnvThreadsOr(size_t fallback);

  /// Enqueues a task for asynchronous execution. From a worker thread of
  /// this pool the task lands on that worker's own deque (LIFO); otherwise
  /// deques are fed round-robin.
  void Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have finished. On a worker
  /// thread of this pool it helps drain the queues instead of blocking, so
  /// a task may wait for tasks it submitted itself.
  void WaitIdle();

  /// Runs body(i) for i in [0, count) across the pool and waits.
  /// `body` must be safe to invoke concurrently for distinct indices.
  /// Safe to nest inside pool tasks: the caller participates and helps
  /// drain queued tasks while waiting for stragglers.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Pops one queued task (own deque first, then stealing) and runs it on
  /// the calling thread. Returns false when every deque is empty. The
  /// help-drain primitive used by waiting drivers; callable from any
  /// thread.
  bool TryRunOneTask();

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
  };

  /// Takes one task: LIFO from `home`'s deque when `home` is a valid
  /// worker index, else FIFO-steals from the front of another deque
  /// (scanning from home+1 so contention spreads). Decrements pending_.
  /// Requires mutex_. Returns false when all deques are empty.
  bool PopTaskLocked(size_t home, std::function<void()>* task);

  /// Executes one dequeued task with the gauge/counter bookkeeping and the
  /// in-flight decrement that wakes WaitIdle.
  void RunTask(std::function<void()> task);

  void WorkerLoop(size_t index);

  std::vector<std::thread> threads_;
  // Registry handles resolved once at construction (stable for the process
  // lifetime) so the per-task updates are plain atomic ops, no map lookups.
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* active_workers_gauge_ = nullptr;
  Counter* tasks_counter_ = nullptr;
  Counter* steals_counter_ = nullptr;
  /// Interned "(threadpool)" activity published around every task body, so
  /// profiler samples of pool work that predates its stage's ScopedActivity
  /// (or has none) still attribute to the pool instead of "(idle)".
  const ActivityDesc* pool_activity_ = nullptr;
  std::vector<Worker> workers_;
  /// Round-robin cursor for external submissions.
  size_t submit_cursor_ = 0;
  /// Queued-but-not-popped tasks across all deques (mutex_).
  size_t pending_ = 0;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  /// Submitted tasks not yet finished (queued + running).
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_THREAD_POOL_H_
