#ifndef BIGDANSING_COMMON_THREAD_POOL_H_
#define BIGDANSING_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bigdansing {

class Counter;
class Gauge;

/// Fixed-size worker pool used by the dataflow engine to execute per-partition
/// tasks. Tasks are void() closures; ParallelFor blocks until every index has
/// been processed. A pool of size 1 still runs tasks on its worker thread so
/// behaviour is uniform regardless of hardware parallelism.
///
/// Feeds three process-wide registry metrics (all pools share them; the
/// accounting nets to zero per task, so the gauges read zero whenever every
/// pool is idle): `threadpool.queue_depth`, `threadpool.active_workers`,
/// `threadpool.tasks_executed`. Updates sit outside the worker-timed task
/// body and cost one relaxed atomic each.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have finished.
  void WaitIdle();

  /// Runs body(i) for i in [0, count) across the pool and waits.
  /// `body` must be safe to invoke concurrently for distinct indices.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  // Registry handles resolved once at construction (stable for the process
  // lifetime) so the per-task updates are plain atomic ops, no map lookups.
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* active_workers_gauge_ = nullptr;
  Counter* tasks_counter_ = nullptr;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_THREAD_POOL_H_
