#ifndef BIGDANSING_COMMON_STOPWATCH_H_
#define BIGDANSING_COMMON_STOPWATCH_H_

#include <ctime>

#include <chrono>

namespace bigdansing {

/// Wall-clock stopwatch for timing experiment stages.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Stopwatch over the calling thread's CPU time. Used for per-task cost
/// accounting in the dataflow engine: unlike wall time it is not inflated
/// by preemption when more worker threads run than the host has cores, so
/// simulated-cluster times stay meaningful on small machines.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  /// CPU seconds this thread has consumed since construction/Reset().
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_COMMON_STOPWATCH_H_
