#include "common/lineage.h"

#include <cstdio>

#include "common/json_writer.h"

namespace bigdansing {

namespace {

/// Values render with their type so int 1 and string "1" stay
/// distinguishable in the ledger ("" for null matches Value::ToString).
void AddValue(JsonObjectBuilder* obj, std::string_view key, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      obj->AddRaw(key, "null");
      return;
    case ValueType::kInt:
      obj->Add(key, static_cast<int64_t>(v.as_int()));
      return;
    case ValueType::kDouble:
      obj->Add(key, v.as_double());
      return;
    case ValueType::kString:
      obj->Add(key, v.as_string());
      return;
  }
}

}  // namespace

std::string LineageEntry::ToJson() const {
  JsonObjectBuilder obj;
  obj.Add("kind", applied ? "fix" : "unresolved");
  obj.Add("rule", rule);
  obj.Add("violation_id", violation_id);
  obj.Add("iteration", static_cast<uint64_t>(iteration));
  if (applied) {
    obj.Add("row_id", static_cast<int64_t>(row_id));
    obj.Add("column", static_cast<uint64_t>(column));
    obj.Add("attribute", attribute);
    AddValue(&obj, "old_value", old_value);
    AddValue(&obj, "new_value", new_value);
    obj.Add("strategy", strategy);
    obj.Add("component", component);
  }
  return obj.Build();
}

LineageRecorder& LineageRecorder::Instance() {
  static LineageRecorder* instance = new LineageRecorder();
  return *instance;
}

void LineageRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void LineageRecorder::RecordFix(LineageEntry entry) {
  if (!enabled()) return;
  entry.applied = true;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

void LineageRecorder::RecordUnresolved(std::string rule, uint64_t violation_id,
                                       size_t iteration) {
  if (!enabled()) return;
  LineageEntry entry;
  entry.applied = false;
  entry.rule = std::move(rule);
  entry.violation_id = violation_id;
  entry.iteration = iteration;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

size_t LineageRecorder::EntryCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<LineageEntry> LineageRecorder::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::map<std::string, LineageSummary> LineageRecorder::SummaryByRule() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, LineageSummary> out;
  for (const auto& e : entries_) {
    LineageSummary& s = out[e.rule];
    if (e.applied) {
      ++s.applied_fixes;
    } else {
      ++s.unresolved;
    }
  }
  return out;
}

std::map<size_t, LineageSummary> LineageRecorder::SummaryByIteration() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<size_t, LineageSummary> out;
  for (const auto& e : entries_) {
    LineageSummary& s = out[e.iteration];
    if (e.applied) {
      ++s.applied_fixes;
    } else {
      ++s.unresolved;
    }
  }
  return out;
}

std::string LineageRecorder::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& e : entries_) {
    out += e.ToJson();
    out += "\n";
  }
  return out;
}

bool LineageRecorder::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = ToJsonl();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace bigdansing
