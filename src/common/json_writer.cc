#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace bigdansing {

void JsonObjectBuilder::Key(std::string_view key) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"";
  body_ += JsonEscape(key);
  body_ += "\":";
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key,
                                          std::string_view value) {
  Key(key);
  body_ += "\"";
  body_ += JsonEscape(value);
  body_ += "\"";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key,
                                          uint64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key, double value) {
  Key(key);
  body_ += JsonDouble(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::AddRaw(std::string_view key,
                                             std::string_view json) {
  Key(key);
  body_ += json;
  return *this;
}

std::string JsonObjectBuilder::Build() const { return "{" + body_ + "}"; }

std::string JsonDouble(double value) {
  // JSON has no literal for infinities or NaN; "%.6f" would print "inf" /
  // "nan" and break every strict consumer downstream. Emit null instead.
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace bigdansing
