#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/string_util.h"

namespace bigdansing {

namespace {

// Strict numeric field parsers: the whole value must be consumed, so
// "zebra" or "0.5x" are rejected instead of silently parsing as 0.
bool ParseDoubleField(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseUintField(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-') return false;
  char* end = nullptr;
  const uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

FaultPolicy FaultPolicy::FromEnv() {
  FaultPolicy policy;
  const char* env = std::getenv("BD_SPECULATION");
  if (env != nullptr && *env != '\0' && std::string(env) != "0") {
    policy.speculation = true;
    const double k = std::atof(env);
    if (k > 1.0) policy.speculation_multiplier = k;
  }
  return policy;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    std::lock_guard<std::mutex> lock(injector->mutex_);
    injector->LoadFromEnvLocked();
    return injector;
  }();
  return *instance;
}

void FaultInjector::LoadFromEnvLocked() {
  if (env_loaded_) return;
  env_loaded_ = true;
  const char* seed_env = std::getenv("BD_FAULT_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    seed_ = std::strtoull(seed_env, nullptr, 10);
  }
  const char* spec_env = std::getenv("BD_FAULT_SPEC");
  if (spec_env == nullptr || *spec_env == '\0') return;
  std::vector<Spec> specs;
  Status st = ParseSpec(spec_env, &specs);
  if (!st.ok()) {
    BD_LOG(Warning) << "ignoring malformed BD_FAULT_SPEC: " << st.ToString();
    return;
  }
  specs_ = std::move(specs);
  enabled_.store(!specs_.empty(), std::memory_order_release);
  if (!specs_.empty()) {
    BD_LOG(Info) << "fault injection armed: " << specs_.size()
                 << " spec(s), seed=" << seed_;
  }
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::vector<Spec> specs;
  if (!spec.empty()) {
    BIGDANSING_RETURN_NOT_OK(ParseSpec(spec, &specs));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  env_loaded_ = true;  // an explicit Configure overrides the env schedule
  seed_ = seed;
  specs_ = std::move(specs);
  injected_total_.store(0, std::memory_order_relaxed);
  enabled_.store(!specs_.empty(), std::memory_order_release);
  return Status::OK();
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  env_loaded_ = true;
  specs_.clear();
  injected_total_.store(0, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_release);
}

std::vector<std::string> FaultInjector::SeenSites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {seen_sites_.begin(), seen_sites_.end()};
}

void FaultInjector::ClearSeenSites() {
  std::lock_guard<std::mutex> lock(mutex_);
  seen_sites_.clear();
}

Status FaultInjector::ParseSpec(const std::string& text,
                                std::vector<Spec>* out) {
  for (const std::string& clause : Split(text, ';')) {
    if (clause.empty()) continue;
    Spec spec;
    bool has_site = false;
    for (const std::string& field : Split(clause, ',')) {
      if (field.empty()) continue;
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault spec field '" + field +
                                       "' is not key=value");
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "stage" || key == "site") {
        spec.site = value;
        if (!spec.site.empty() && spec.site.back() == '*') {
          spec.wildcard = true;
          spec.site.pop_back();
        }
        has_site = true;
      } else if (key == "task") {
        uint64_t task = 0;
        if (!ParseUintField(value, &task)) {
          return Status::InvalidArgument("fault spec task '" + value +
                                         "' is not an unsigned integer");
        }
        spec.any_task = false;
        spec.task = static_cast<size_t>(task);
      } else if (key == "kind") {
        if (value == "throw") {
          spec.kind = Kind::kThrow;
        } else if (value == "delay") {
          spec.kind = Kind::kDelay;
        } else {
          return Status::InvalidArgument("fault spec kind '" + value +
                                         "' (want throw|delay)");
        }
      } else if (key == "prob") {
        if (!ParseDoubleField(value, &spec.probability) ||
            spec.probability < 0.0 || spec.probability > 1.0) {
          return Status::InvalidArgument("fault spec prob '" + value +
                                         "' is not a number in [0,1]");
        }
      } else if (key == "times") {
        if (!ParseUintField(value, &spec.max_hits)) {
          return Status::InvalidArgument("fault spec times '" + value +
                                         "' is not an unsigned integer");
        }
      } else if (key == "ms") {
        if (!ParseDoubleField(value, &spec.delay_ms) || spec.delay_ms < 0.0) {
          return Status::InvalidArgument("fault spec ms '" + value +
                                         "' is not a non-negative number");
        }
      } else {
        return Status::InvalidArgument("unknown fault spec key '" + key + "'");
      }
    }
    if (!has_site) {
      return Status::InvalidArgument("fault spec clause '" + clause +
                                     "' has no stage= field");
    }
    spec.hits = std::make_shared<std::atomic<uint64_t>>(0);
    out->push_back(std::move(spec));
  }
  return Status::OK();
}

double FaultInjector::Draw(uint64_t seed, const std::string& site, size_t task,
                           size_t attempt) {
  uint64_t h = StableHashUint64(seed ^ StableHashBytes(site));
  h = StableHashUint64(h ^ (static_cast<uint64_t>(task) * 0x9E3779B97F4A7C15ULL));
  h = StableHashUint64(h ^ (static_cast<uint64_t>(attempt) + 1));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjector::OnSite(const std::string& site, size_t task,
                           size_t attempt) {
  if (!enabled()) return;
  Kind fire_kind = Kind::kThrow;
  double fire_ms = 0.0;
  bool fire = false;
  uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tracking_.load(std::memory_order_relaxed)) seen_sites_.insert(site);
    seed = seed_;
    for (const Spec& spec : specs_) {
      const bool site_match =
          spec.wildcard ? site.compare(0, spec.site.size(), spec.site) == 0
                        : site == spec.site;
      if (!site_match) continue;
      if (!spec.any_task && task != spec.task) continue;
      if (spec.hits->load(std::memory_order_relaxed) >= spec.max_hits) continue;
      if (spec.probability < 1.0 &&
          Draw(seed, site, task, attempt) >= spec.probability) {
        continue;
      }
      spec.hits->fetch_add(1, std::memory_order_relaxed);
      fire = true;
      fire_kind = spec.kind;
      fire_ms = spec.delay_ms;
      break;
    }
  }
  if (!fire) return;
  injected_total_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Instance().GetCounter("fault.injected_total").Add();
  MetricsRegistry::Instance().GetCounter("fault.injected." + site).Add();
  if (fire_kind == Kind::kDelay) {
    SleepForMs(fire_ms);
    return;
  }
  throw TaskFailure(site, "injected fault at site '" + site + "' task " +
                              std::to_string(task) + " attempt " +
                              std::to_string(attempt));
}

}  // namespace bigdansing
