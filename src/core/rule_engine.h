#ifndef BIGDANSING_CORE_RULE_ENGINE_H_
#define BIGDANSING_CORE_RULE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "core/iejoin.h"
#include "core/ocjoin.h"
#include "core/physical_plan.h"
#include "data/storage.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "rules/dc_rule.h"
#include "rules/rule.h"
#include "rules/violation.h"

namespace bigdansing {

/// Output of one detection run: the violation hyperedges plus execution
/// counters used by the experiments.
struct DetectionResult {
  std::vector<ViolationWithFixes> violations;
  /// Number of Detect invocations (candidate pairs/units actually probed).
  uint64_t detect_calls = 0;
  /// OCJoin statistics when that enhancer ran; zeroed otherwise.
  OCJoinStats ocjoin_stats;
  /// IEJoin statistics when PlannerOptions::use_iejoin routed the
  /// inequality join there; zeroed otherwise.
  IEJoinStats iejoin_stats;
  /// The physical plan that was executed (for EXPLAIN-style reporting).
  std::string plan_description;
};

/// One detection job, whatever its flavor. The unified entry point
/// RuleEngine::Detect(const DetectRequest&) replaces the historical family
/// of Detect/DetectAll/DetectAcross/DetectIncremental/DetectWithStorage
/// overloads: callers describe *what* to detect and the engine picks the
/// dispatch path from which fields are set.
///
/// Exactly one input source must be given:
///   - `table` alone            -> in-memory detection (all `rules`).
///   - `table` + `right`        -> two-table detection (one DcRule).
///   - `table` + `changed_rows` -> incremental re-detection (one rule).
///   - `storage` + `dataset`    -> storage-backed detection with Block
///                                 pushdown (one rule).
/// Field combinations outside these shapes are rejected with
/// InvalidArgument before any work runs.
struct DetectRequest {
  /// Base table (t1's range). Required unless `storage` is set.
  const Table* table = nullptr;
  /// Second table for two-table rules (t2's range). When set, `rules` must
  /// hold exactly one rule and it must be a DcRule bound across both
  /// schemas.
  const Table* right = nullptr;
  /// Rules to evaluate. Multi-rule requests share scans via plan
  /// consolidation (§4.2); results align with this vector by index.
  std::vector<RulePtr> rules;
  /// Storage manager owning `dataset`; enables Block pushdown to a
  /// partitioned replica (Appendix F).
  const StorageManager* storage = nullptr;
  /// Name of the stored dataset when `storage` is set.
  std::string dataset;
  /// When set, restricts detection to violations involving at least one of
  /// these rows (incremental re-detection after a repair pass).
  const std::unordered_set<RowId>* changed_rows = nullptr;
  /// Fault-tolerance knobs (retry budgets, speculation) scoped to this
  /// request; unset inherits the ExecutionContext policy.
  std::optional<FaultPolicy> fault_policy;
};

/// The RuleEngine (§2.2): translates rules through the logical and physical
/// layers and executes the resulting plan on the dataflow engine, producing
/// violations and possible fixes. Thread-compatible: one engine may be used
/// from one thread at a time; the engine itself parallelizes internally.
class RuleEngine {
 public:
  explicit RuleEngine(ExecutionContext* ctx,
                      PlannerOptions options = PlannerOptions());

  const PlannerOptions& options() const { return options_; }

  /// Unified detection entry point. Validates the request shape, applies
  /// the request's fault policy for the duration of the run, dispatches to
  /// the matching execution path, and maps any internal stage failure
  /// (retry-budget exhaustion included) to a non-OK Status — this is the
  /// single throw/catch boundary of the detection API. Results align with
  /// `request.rules` by index.
  Result<std::vector<DetectionResult>> Detect(const DetectRequest& request) const;

  /// Detects violations of `rule` in `table`.
  /// Deprecated convenience wrapper over Detect(DetectRequest).
  Result<DetectionResult> Detect(const Table& table, const RulePtr& rule) const;

  /// Detects violations of several rules with shared scans: rules whose
  /// consolidated plans read the same scoped/blocked data reuse one pass
  /// (the plan-consolidation optimization of §4.2). Results align with
  /// `rules` by index.
  /// Deprecated convenience wrapper over Detect(DetectRequest).
  [[deprecated("build a DetectRequest with table+rules and call Detect()")]]
  Result<std::vector<DetectionResult>> DetectAll(
      const Table& table, const std::vector<RulePtr>& rules) const;

  /// Detects violations of a two-table denial constraint (t1 ranges over
  /// `left`, t2 over `right`) using the CoBlock enhancer when the rule has
  /// equality predicates t1.X = t2.Y. Used for rules like the paper's DC (1)
  /// joining customers and suppliers.
  /// Deprecated convenience wrapper over Detect(DetectRequest).
  [[deprecated("build a DetectRequest with table+right and call Detect()")]]
  Result<DetectionResult> DetectAcross(const Table& left, const Table& right,
                                       const std::shared_ptr<DcRule>& rule) const;

  /// Incremental re-detection: finds the violations of `rule` that involve
  /// at least one row in `changed_rows`. After a repair pass touched only
  /// a few rows, violations not involving them are unchanged, so the
  /// cleanse loop's later iterations only need this restricted detection
  /// (an extension beyond the paper; cf. its citation of incremental
  /// detection [Fan et al., ICDE'12] as related work). For blocked rules
  /// only the blocks containing changed rows are iterated; for unblocked
  /// rules the changed rows are paired against the whole dataset.
  /// Deprecated convenience wrapper over Detect(DetectRequest).
  [[deprecated(
      "build a DetectRequest with table+changed_rows and call Detect()")]]
  Result<DetectionResult> DetectIncremental(
      const Table& table, const RulePtr& rule,
      const std::unordered_set<RowId>& changed_rows) const;

  /// Detects violations of `rule` in the stored dataset `name`, pushing the
  /// Block operator down to storage when possible (Appendix F): if a
  /// replica exists that is partitioned on the rule's single blocking
  /// attribute, rows sharing a blocking key are already co-located and the
  /// blocking shuffle is skipped entirely (metrics record zero shuffled
  /// records for the pass). Falls back to the ordinary path otherwise.
  /// Deprecated convenience wrapper over Detect(DetectRequest).
  [[deprecated("build a DetectRequest with storage+dataset and call Detect()")]]
  Result<DetectionResult> DetectWithStorage(const StorageManager& storage,
                                            const std::string& name,
                                            const RulePtr& rule) const;

 private:
  /// Dispatch bodies behind the Detect boundary. These may throw StageError
  /// (stage retry budget exhausted); Detect(DetectRequest) catches it.
  Result<std::vector<DetectionResult>> DetectAllImpl(
      const Table& table, const std::vector<RulePtr>& rules) const;
  Result<DetectionResult> DetectAcrossImpl(
      const Table& left, const Table& right,
      const std::shared_ptr<DcRule>& rule) const;
  Result<DetectionResult> DetectIncrementalImpl(
      const Table& table, const RulePtr& rule,
      const std::unordered_set<RowId>& changed_rows) const;
  Result<DetectionResult> DetectWithStorageImpl(const StorageManager& storage,
                                                const std::string& name,
                                                const RulePtr& rule) const;

  ExecutionContext* ctx_;
  PlannerOptions options_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_RULE_ENGINE_H_
