#ifndef BIGDANSING_CORE_RULE_ENGINE_H_
#define BIGDANSING_CORE_RULE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/iejoin.h"
#include "core/ocjoin.h"
#include "core/physical_plan.h"
#include "data/storage.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "rules/dc_rule.h"
#include "rules/rule.h"
#include "rules/violation.h"

namespace bigdansing {

/// Output of one detection run: the violation hyperedges plus execution
/// counters used by the experiments.
struct DetectionResult {
  std::vector<ViolationWithFixes> violations;
  /// Number of Detect invocations (candidate pairs/units actually probed).
  uint64_t detect_calls = 0;
  /// OCJoin statistics when that enhancer ran; zeroed otherwise.
  OCJoinStats ocjoin_stats;
  /// IEJoin statistics when PlannerOptions::use_iejoin routed the
  /// inequality join there; zeroed otherwise.
  IEJoinStats iejoin_stats;
  /// The physical plan that was executed (for EXPLAIN-style reporting).
  std::string plan_description;
};

/// The RuleEngine (§2.2): translates rules through the logical and physical
/// layers and executes the resulting plan on the dataflow engine, producing
/// violations and possible fixes. Thread-compatible: one engine may be used
/// from one thread at a time; the engine itself parallelizes internally.
class RuleEngine {
 public:
  explicit RuleEngine(ExecutionContext* ctx,
                      PlannerOptions options = PlannerOptions());

  const PlannerOptions& options() const { return options_; }

  /// Detects violations of `rule` in `table`.
  Result<DetectionResult> Detect(const Table& table, const RulePtr& rule) const;

  /// Detects violations of several rules with shared scans: rules whose
  /// consolidated plans read the same scoped/blocked data reuse one pass
  /// (the plan-consolidation optimization of §4.2). Results align with
  /// `rules` by index.
  Result<std::vector<DetectionResult>> DetectAll(
      const Table& table, const std::vector<RulePtr>& rules) const;

  /// Detects violations of a two-table denial constraint (t1 ranges over
  /// `left`, t2 over `right`) using the CoBlock enhancer when the rule has
  /// equality predicates t1.X = t2.Y. Used for rules like the paper's DC (1)
  /// joining customers and suppliers.
  Result<DetectionResult> DetectAcross(const Table& left, const Table& right,
                                       const std::shared_ptr<DcRule>& rule) const;

  /// Incremental re-detection: finds the violations of `rule` that involve
  /// at least one row in `changed_rows`. After a repair pass touched only
  /// a few rows, violations not involving them are unchanged, so the
  /// cleanse loop's later iterations only need this restricted detection
  /// (an extension beyond the paper; cf. its citation of incremental
  /// detection [Fan et al., ICDE'12] as related work). For blocked rules
  /// only the blocks containing changed rows are iterated; for unblocked
  /// rules the changed rows are paired against the whole dataset.
  Result<DetectionResult> DetectIncremental(
      const Table& table, const RulePtr& rule,
      const std::unordered_set<RowId>& changed_rows) const;

  /// Detects violations of `rule` in the stored dataset `name`, pushing the
  /// Block operator down to storage when possible (Appendix F): if a
  /// replica exists that is partitioned on the rule's single blocking
  /// attribute, rows sharing a blocking key are already co-located and the
  /// blocking shuffle is skipped entirely (metrics record zero shuffled
  /// records for the pass). Falls back to the ordinary path otherwise.
  Result<DetectionResult> DetectWithStorage(const StorageManager& storage,
                                            const std::string& name,
                                            const RulePtr& rule) const;

 private:
  ExecutionContext* ctx_;
  PlannerOptions options_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_RULE_ENGINE_H_
