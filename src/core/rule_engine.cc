#include "core/rule_engine.h"

#include <atomic>
#include <optional>
#include <unordered_map>

#include "common/fault.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/columnar_detect.h"
#include "core/detect_output.h"
#include "obs/profiler.h"
#include "dataflow/dataset.h"
#include "dataflow/stage_executor.h"

namespace bigdansing {

namespace {

/// Block key type: a stable hash of the blocking-key values. Collisions only
/// merge blocks (Detect re-checks the actual predicates), never lose pairs
/// that belong together, so correctness is preserved.
using BlockKey = uint64_t;

/// Rows of `table` as a distributed dataset. The partition copy is serial
/// driver work; published to the sampling profiler so profiled runs
/// attribute it instead of counting idle ticks.
Dataset<Row> LoadTable(ExecutionContext* ctx, const Table& table) {
  ScopedActivity activity(Profiler::Instance().Intern("load:table", "driver"),
                          0, 0);
  return Dataset<Row>::FromVector(ctx, table.rows());
}

/// Applies PScope: projects each row to `scope_columns`, recording source
/// columns so cells map back to the base table. Empty columns = identity.
Dataset<Row> ApplyScope(const Dataset<Row>& data,
                        const std::vector<size_t>& scope_columns) {
  if (scope_columns.empty()) return data;
  return data.Map([scope_columns](const Row& row) {
    return columnar::ScopeProject(row, scope_columns);
  }, "scope");
}

/// Computes the blocking key of `row` under `plan`; returns false when the
/// row belongs to no block (null key component / null UDF key).
bool ComputeBlockKey(const PhysicalRulePlan& plan, const Row& row,
                     BlockKey* key) {
  if (plan.block_key_fn) {
    Value v = plan.block_key_fn(plan.detect_schema, row);
    if (v.is_null()) return false;
    *key = v.Hash();
    return true;
  }
  uint64_t h = 0x42D;
  for (size_t c : plan.blocking_columns) {
    const Value& v = row.value(c);
    if (v.is_null()) return false;
    h = StableHashUint64(h ^ v.Hash());
  }
  *key = h;
  return true;
}

// Detection task accumulation and merge helpers live in detect_output.h,
// shared with the columnar kernel path (columnar_detect.cc).
using detect::MergeOutputs;
using detect::MergeTaskPieces;
using detect::Probe;
using detect::TaskOutput;

/// Enumerates candidate pairs inside one block according to the Iterate
/// strategy and probes Detect on each.
void IterateBlock(const PhysicalRulePlan& plan, const std::vector<Row>& block,
                  TaskOutput* out) {
  const Rule& rule = *plan.rule;
  if (plan.strategy == IterateStrategy::kUCrossProduct) {
    // Unordered pairs (the UCrossProduct enhancer): n(n-1)/2 enumerations.
    // Symmetric rules need one probe per pair; asymmetric ones need both
    // orientations but still skip the reversed-pair materialization.
    const bool symmetric = rule.IsSymmetric();
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        Probe(rule, block[i], block[j], out);
        if (!symmetric) Probe(rule, block[j], block[i], out);
      }
    }
    return;
  }
  // CrossProduct wrapper (also the within-block fallback for OCJoin-style
  // rules that block on equality predicates — blocks are small, so the
  // quadratic pass stays local): all ordered pairs, n² - n probes. As a
  // wrapper it materializes the Iterate output before Detect runs, which
  // is exactly the overhead the enhancers avoid.
  std::vector<std::pair<const Row*, const Row*>> pairs;
  pairs.reserve(block.size() * block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    for (size_t j = 0; j < block.size(); ++j) {
      if (i != j) pairs.emplace_back(&block[i], &block[j]);
    }
  }
  for (const auto& [a, b] : pairs) Probe(rule, *a, *b, out);
}

/// Executes the blocked pipeline: Iterate within blocks -> Detect -> GenFix.
/// The task body accumulates into a per-attempt TaskOutput and returns it,
/// so a retried or speculative attempt never double-appends (the executor
/// commits exactly one buffer per task).
void RunBlocked(ExecutionContext* ctx, const PhysicalRulePlan& plan,
                const Dataset<std::pair<BlockKey, std::vector<Row>>>& blocks,
                DetectionResult* result) {
  // Morsel units are whole blocks: a skewed partition (one giant dedup
  // block plus many tiny ones) no longer pins a single worker — idle
  // workers steal its block ranges. The quadratic interior of one block is
  // the floor of splittability here; OCJoin handles that case upstream by
  // never building giant blocks.
  const auto& parts = blocks.partitions();
  std::vector<TaskOutput> tasks = blocks.RunStageMorsels<TaskOutput>(
      "iterate|detect|genfix",
      [&](size_t p) { return parts[p].size(); },
      [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
        TaskOutput out;
        for (size_t b = begin; b < end; ++b) {
          IterateBlock(plan, parts[p][b].second, &out);
        }
        ctx->metrics().AddPairsEnumerated(out.detect_calls);
        tc.records_in = end - begin;
        tc.records_out = out.violations.size();
        return out;
      },
      [](size_t, std::vector<TaskOutput>&& pieces) {
        return MergeTaskPieces(std::move(pieces));
      });
  MergeOutputs(&tasks, result);
}

/// Executes the whole-dataset pair enumeration (no blocking key): rows are
/// chunked and chunk pairs are processed as parallel tasks.
void RunUnblocked(ExecutionContext* ctx, const PhysicalRulePlan& plan,
                  const std::vector<Row>& rows, DetectionResult* result) {
  const bool unordered = plan.strategy == IterateStrategy::kUCrossProduct &&
                         plan.rule->IsSymmetric();
  size_t num_chunks = std::max<size_t>(1, ctx->num_workers() * 2);
  if (num_chunks > rows.size()) num_chunks = std::max<size_t>(1, rows.size());
  size_t chunk = (rows.size() + num_chunks - 1) / num_chunks;
  // Task list: chunk pairs (i <= j). For unordered enumeration each chunk
  // pair is visited once; for ordered enumeration both orientations are
  // probed inside the task.
  struct ChunkPair {
    size_t i;
    size_t j;
  };
  std::vector<ChunkPair> chunk_pairs;
  for (size_t i = 0; i < num_chunks; ++i) {
    for (size_t j = i; j < num_chunks; ++j) chunk_pairs.push_back({i, j});
  }
  const bool materialize = plan.strategy == IterateStrategy::kCrossProduct;
  auto tasks = StageExecutor(ctx).RunProducing<TaskOutput>(
      "iterate|detect|genfix:unblocked", chunk_pairs.size(),
      [&](size_t t, TaskContext& tc) {
    auto [ci, cj] = chunk_pairs[t];
    size_t ibegin = ci * chunk;
    size_t iend = std::min(rows.size(), ibegin + chunk);
    size_t jbegin = cj * chunk;
    size_t jend = std::min(rows.size(), jbegin + chunk);
    TaskOutput task_out;
    TaskOutput* out = &task_out;
    const Rule& rule = *plan.rule;
    if (materialize) {
      // Wrapper semantics: PIterate materializes the candidate pair list,
      // then PDetect consumes it.
      std::vector<std::pair<const Row*, const Row*>> pairs;
      for (size_t i = ibegin; i < iend; ++i) {
        size_t jstart = (ci == cj) ? i + 1 : jbegin;
        for (size_t j = jstart; j < jend; ++j) {
          pairs.emplace_back(&rows[i], &rows[j]);
          pairs.emplace_back(&rows[j], &rows[i]);
        }
      }
      for (const auto& [a, b] : pairs) Probe(rule, *a, *b, out);
    } else {
      for (size_t i = ibegin; i < iend; ++i) {
        size_t jstart = (ci == cj) ? i + 1 : jbegin;
        for (size_t j = jstart; j < jend; ++j) {
          Probe(rule, rows[i], rows[j], out);
          if (!unordered) Probe(rule, rows[j], rows[i], out);
        }
      }
    }
    ctx->metrics().AddPairsEnumerated(out->detect_calls);
    tc.records_in = iend - ibegin;
    tc.records_out = out->violations.size();
    return task_out;
  });
  if (!tasks.ok()) throw StageError(tasks.status());
  MergeOutputs(&*tasks, result);
}

}  // namespace

RuleEngine::RuleEngine(ExecutionContext* ctx, PlannerOptions options)
    : ctx_(ctx), options_(options) {}

Result<std::vector<DetectionResult>> RuleEngine::Detect(
    const DetectRequest& request) const {
  // --- Shape validation: reject malformed requests before any stage runs.
  // Zero rules is trivially valid for plain in-memory detection (nothing to
  // detect, empty result) — Clean() with an empty rule list relies on it.
  if (request.rules.empty()) {
    if (request.storage != nullptr || request.right != nullptr ||
        request.changed_rows != nullptr) {
      return Status::InvalidArgument(
          "DetectRequest: at least one rule required");
    }
    if (request.table == nullptr) {
      return Status::InvalidArgument(
          "DetectRequest: a table (or storage + dataset) is required");
    }
    return std::vector<DetectionResult>{};
  }
  for (const auto& rule : request.rules) {
    if (rule == nullptr) {
      return Status::InvalidArgument("DetectRequest: null rule");
    }
  }
  const bool storage_backed = request.storage != nullptr;
  const bool across = request.right != nullptr;
  const bool incremental = request.changed_rows != nullptr;
  if (storage_backed) {
    if (request.table != nullptr || across || incremental) {
      return Status::InvalidArgument(
          "DetectRequest: storage-backed detection takes no table, right "
          "table, or changed-row set");
    }
    if (request.dataset.empty()) {
      return Status::InvalidArgument(
          "DetectRequest: storage-backed detection requires a dataset name");
    }
    if (request.rules.size() != 1) {
      return Status::InvalidArgument(
          "DetectRequest: storage-backed detection takes exactly one rule");
    }
  } else {
    if (request.table == nullptr) {
      return Status::InvalidArgument(
          "DetectRequest: a table (or storage + dataset) is required");
    }
    if (!request.dataset.empty()) {
      return Status::InvalidArgument(
          "DetectRequest: dataset name requires a storage manager");
    }
  }
  std::shared_ptr<DcRule> across_rule;
  if (across) {
    if (incremental) {
      return Status::InvalidArgument(
          "DetectRequest: two-table detection cannot be incremental");
    }
    if (request.rules.size() != 1) {
      return Status::InvalidArgument(
          "DetectRequest: two-table detection takes exactly one rule");
    }
    across_rule = std::dynamic_pointer_cast<DcRule>(request.rules[0]);
    if (across_rule == nullptr) {
      return Status::InvalidArgument(
          "DetectRequest: two-table detection requires a denial-constraint "
          "rule");
    }
  }
  if (incremental && request.rules.size() != 1) {
    return Status::InvalidArgument(
        "DetectRequest: incremental detection takes exactly one rule");
  }

  // --- Scoped fault policy + the single StageError -> Status boundary of
  // the detection API: everything below may throw when a stage exhausts
  // its retry budget.
  std::optional<ScopedFaultPolicy> scoped_policy;
  if (request.fault_policy.has_value()) {
    scoped_policy.emplace(ctx_, *request.fault_policy);
  }
  try {
    if (storage_backed) {
      auto result = DetectWithStorageImpl(*request.storage, request.dataset,
                                          request.rules[0]);
      if (!result.ok()) return result.status();
      std::vector<DetectionResult> out;
      out.push_back(std::move(*result));
      return out;
    }
    if (across) {
      auto result = DetectAcrossImpl(*request.table, *request.right,
                                     across_rule);
      if (!result.ok()) return result.status();
      std::vector<DetectionResult> out;
      out.push_back(std::move(*result));
      return out;
    }
    if (incremental) {
      auto result = DetectIncrementalImpl(*request.table, request.rules[0],
                                          *request.changed_rows);
      if (!result.ok()) return result.status();
      std::vector<DetectionResult> out;
      out.push_back(std::move(*result));
      return out;
    }
    return DetectAllImpl(*request.table, request.rules);
  } catch (const StageError& e) {
    return e.status();
  }
}

Result<DetectionResult> RuleEngine::Detect(const Table& table,
                                           const RulePtr& rule) const {
  DetectRequest request;
  request.table = &table;
  request.rules = {rule};
  auto results = Detect(request);
  if (!results.ok()) return results.status();
  return std::move((*results)[0]);
}

Result<std::vector<DetectionResult>> RuleEngine::DetectAll(
    const Table& table, const std::vector<RulePtr>& rules) const {
  DetectRequest request;
  request.table = &table;
  request.rules = rules;
  return Detect(request);
}

Result<DetectionResult> RuleEngine::DetectAcross(
    const Table& left, const Table& right,
    const std::shared_ptr<DcRule>& rule) const {
  DetectRequest request;
  request.table = &left;
  request.right = &right;
  request.rules = {rule};
  auto results = Detect(request);
  if (!results.ok()) return results.status();
  return std::move((*results)[0]);
}

Result<DetectionResult> RuleEngine::DetectIncremental(
    const Table& table, const RulePtr& rule,
    const std::unordered_set<RowId>& changed_rows) const {
  DetectRequest request;
  request.table = &table;
  request.rules = {rule};
  request.changed_rows = &changed_rows;
  auto results = Detect(request);
  if (!results.ok()) return results.status();
  return std::move((*results)[0]);
}

Result<DetectionResult> RuleEngine::DetectWithStorage(
    const StorageManager& storage, const std::string& name,
    const RulePtr& rule) const {
  DetectRequest request;
  request.storage = &storage;
  request.dataset = name;
  request.rules = {rule};
  auto results = Detect(request);
  if (!results.ok()) return results.status();
  return std::move((*results)[0]);
}

Result<std::vector<DetectionResult>> RuleEngine::DetectAllImpl(
    const Table& table, const std::vector<RulePtr>& rules) const {
  std::vector<DetectionResult> results(rules.size());

  // Tracing: standalone Detect calls (benches driving the engine directly)
  // become their own job span; when a Clean() fix-point iteration already
  // opened a phase span, rule spans nest under it instead.
  TraceRecorder& trace = TraceRecorder::Instance();
  std::optional<ScopedSpan> job_span;
  if (trace.enabled() && trace.CurrentSpan() == 0) {
    job_span.emplace("detect", "job");
    job_span->Annotate("rules", static_cast<uint64_t>(rules.size()));
  }

  // Build physical plans first so binding errors surface before any work.
  std::vector<PhysicalRulePlan> plans;
  plans.reserve(rules.size());
  for (const auto& rule : rules) {
    auto plan = BuildPhysicalPlan(rule, table.schema(), options_);
    if (!plan.ok()) return plan.status();
    plans.push_back(std::move(*plan));
  }

  // Shared scan: the base dataset is materialized once for all rules
  // (plan consolidation, §4.2). Scoped/blocked intermediates are cached by
  // their parameter signature so rules with equal Scope/Block params reuse
  // one pass.
  Dataset<Row> base = LoadTable(ctx_, table);
  std::unordered_map<std::string, Dataset<Row>> scoped_cache;
  std::unordered_map<std::string,
                     Dataset<std::pair<BlockKey, std::vector<Row>>>>
      block_cache;
  columnar::ColumnarCaches columnar_caches;

  for (size_t r = 0; r < rules.size(); ++r) {
    const PhysicalRulePlan& plan = plans[r];
    DetectionResult& result = results[r];
    result.plan_description = plan.ToString();

    // Per-rule attribution: every stage this rule forces nests under its
    // rule span (via the driver thread's scope stack), so the EXPLAIN tree
    // and Chrome trace break execution down by rule.
    std::optional<ScopedSpan> rule_span;
    if (trace.enabled()) {
      rule_span.emplace(plan.rule->name(), "rule");
      plan.AnnotateSpan(&*rule_span);
    }

    // Columnar kernel path (default; BD_KERNELS=0 disables): declarative
    // rules with a registered kernel compiler evaluate candidates over
    // dictionary codes encoded straight from base rows — no eager scope
    // stage — and fall through to the interpreted stages below when not
    // kernelizable (UDF rules, similarity predicates, global OCJoin).
    // Bit-identical output either way.
    if (ctx_->kernels_enabled() &&
        columnar::TryDetectColumnar(ctx_, plan, base, &columnar_caches,
                                    &result)) {
      continue;
    }

    // PScope (cached across rules with identical column sets).
    std::string scope_sig;
    for (size_t c : plan.scope_columns) {
      scope_sig += std::to_string(c) + ",";
    }
    auto scoped_it = scoped_cache.find(scope_sig);
    if (scoped_it == scoped_cache.end()) {
      scoped_it =
          scoped_cache.emplace(scope_sig, ApplyScope(base, plan.scope_columns))
              .first;
    }
    const Dataset<Row>& scoped = scoped_it->second;

    // Arity-1 rules: units flow straight to Detect.
    if (plan.strategy == IterateStrategy::kSingle) {
      std::optional<ScopedSpan> op_span;
      if (trace.enabled()) op_span.emplace("scope|detect|genfix", "operator");
      const auto& parts = scoped.partitions();
      std::vector<TaskOutput> tasks = scoped.RunStageMorsels<TaskOutput>(
          "detect:single|genfix",
          [&](size_t p) { return parts[p].size(); },
          [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
            TaskOutput out;
            for (size_t i = begin; i < end; ++i) {
              const Row& row = parts[p][i];
              ++out.detect_calls;
              std::vector<Violation> found;
              plan.rule->DetectSingle(row, &found);
              for (auto& v : found) {
                ViolationWithFixes vf;
                vf.violation = std::move(v);
                plan.rule->GenFix(vf.violation, &vf.fixes);
                out.violations.push_back(std::move(vf));
              }
            }
            tc.records_in = end - begin;
            tc.records_out = out.violations.size();
            return out;
          },
          [](size_t, std::vector<TaskOutput>&& pieces) {
            return MergeTaskPieces(std::move(pieces));
          });
      MergeOutputs(&tasks, &result);
      continue;
    }

    // OCJoin enhancer: global inequality self-join (no blocking key).
    const bool has_blocking =
        !plan.blocking_columns.empty() || static_cast<bool>(plan.block_key_fn);
    if (plan.strategy == IterateStrategy::kOCJoin && !has_blocking) {
      std::vector<Row> rows;
      {
        std::optional<ScopedSpan> op_span;
        if (trace.enabled()) op_span.emplace("scope", "operator");
        rows = scoped.Collect();
      }
      std::vector<RowPair> pairs;
      if (options_.use_iejoin && IEJoinApplicable(plan.ocjoin_conditions)) {
        pairs = IEJoin(ctx_, rows, plan.ocjoin_conditions,
                       &result.iejoin_stats);
      } else {
        OCJoinOptions oc_options;
        oc_options.order_conditions_by_selectivity =
            options_.ocjoin_selectivity_ordering;
        pairs = OCJoin(ctx_, rows, plan.ocjoin_conditions, oc_options,
                       &result.ocjoin_stats);
      }
      std::optional<ScopedSpan> op_span;
      if (trace.enabled()) op_span.emplace("detect|genfix", "operator");
      Dataset<RowPair> pair_ds = Dataset<RowPair>::FromVector(ctx_, std::move(pairs));
      const auto& parts = pair_ds.partitions();
      std::vector<TaskOutput> tasks = pair_ds.RunStageMorsels<TaskOutput>(
          "detect|genfix:ocjoin-pairs",
          [&](size_t p) { return parts[p].size(); },
          [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
            TaskOutput out;
            for (size_t i = begin; i < end; ++i) {
              const RowPair& pr = parts[p][i];
              Probe(*plan.rule, pr.left, pr.right, &out);
            }
            tc.records_in = end - begin;
            tc.records_out = out.violations.size();
            return out;
          },
          [](size_t, std::vector<TaskOutput>&& pieces) {
            return MergeTaskPieces(std::move(pieces));
          });
      MergeOutputs(&tasks, &result);
      continue;
    }

    if (has_blocking) {
      // PBlock (cached): key rows, drop keyless rows, group.
      std::string block_sig = scope_sig + "|";
      if (plan.block_key_fn) {
        block_sig += "udf:" + plan.rule->name();
      } else {
        for (size_t c : plan.blocking_columns) {
          block_sig += std::to_string(c) + ",";
        }
      }
      std::optional<ScopedSpan> op_span;
      if (trace.enabled()) {
        op_span.emplace("scope|block|iterate|detect|genfix", "operator");
      }
      auto block_it = block_cache.find(block_sig);
      if (block_it == block_cache.end()) {
        auto keyed = scoped.MapPartitions<std::pair<BlockKey, Row>>(
            [&plan](const std::vector<Row>& part) {
              std::vector<std::pair<BlockKey, Row>> out;
              out.reserve(part.size());
              BlockKey key = 0;
              for (const Row& row : part) {
                if (ComputeBlockKey(plan, row, &key)) {
                  out.emplace_back(key, row);
                }
              }
              return out;
            }, "block");
        block_it = block_cache.emplace(block_sig, GroupByKey(keyed)).first;
      }
      RunBlocked(ctx_, plan, block_it->second, &result);
      continue;
    }

    // No blocking key: whole-dataset enumeration.
    std::optional<ScopedSpan> op_span;
    if (trace.enabled()) {
      op_span.emplace("scope|iterate|detect|genfix", "operator");
    }
    std::vector<Row> rows = scoped.Collect();
    RunUnblocked(ctx_, plan, rows, &result);
  }
  return results;
}

Result<DetectionResult> RuleEngine::DetectIncrementalImpl(
    const Table& table, const RulePtr& rule,
    const std::unordered_set<RowId>& changed_rows) const {
  auto plan = BuildPhysicalPlan(rule, table.schema(), options_);
  if (!plan.ok()) return plan.status();
  DetectionResult result;
  result.plan_description = plan->ToString() + " [incremental: " +
                            std::to_string(changed_rows.size()) +
                            " changed rows]";
  if (changed_rows.empty()) return result;

  Dataset<Row> base = LoadTable(ctx_, table);
  Dataset<Row> scoped = ApplyScope(base, plan->scope_columns);

  // Arity-1: only the changed units can have new violations.
  if (plan->strategy == IterateStrategy::kSingle) {
    const auto& parts = scoped.partitions();
    std::vector<TaskOutput> tasks = scoped.RunStageProducing<TaskOutput>(
        "detect:single|genfix", [&](size_t p, TaskContext& tc) {
          TaskOutput out;
          for (const Row& row : parts[p]) {
            if (changed_rows.count(row.id()) == 0) continue;
            ++out.detect_calls;
            std::vector<Violation> found;
            plan->rule->DetectSingle(row, &found);
            for (auto& v : found) {
              ViolationWithFixes vf;
              vf.violation = std::move(v);
              plan->rule->GenFix(vf.violation, &vf.fixes);
              out.violations.push_back(std::move(vf));
            }
          }
          tc.records_out = out.violations.size();
          return out;
        });
    MergeOutputs(&tasks, &result);
    return result;
  }

  const bool has_blocking =
      !plan->blocking_columns.empty() || static_cast<bool>(plan->block_key_fn);
  if (has_blocking) {
    // Only blocks containing a changed row can gain or lose violations.
    // First pass: the changed rows' block keys (a small driver-side set);
    // second pass: key and group only the rows landing in those blocks, so
    // the shuffle moves a fraction of the data.
    std::vector<std::vector<BlockKey>> per_part_keys =
        scoped.RunStageProducing<std::vector<BlockKey>>(
            "block:dirty-keys", [&](size_t p, TaskContext& tc) {
              std::vector<BlockKey> keys;
              BlockKey key = 0;
              for (const Row& row : scoped.partitions()[p]) {
                if (changed_rows.count(row.id()) > 0 &&
                    ComputeBlockKey(*plan, row, &key)) {
                  keys.push_back(key);
                }
              }
              tc.records_out = keys.size();
              return keys;
            });
    std::unordered_set<BlockKey> dirty_keys;
    for (const auto& keys : per_part_keys) {
      dirty_keys.insert(keys.begin(), keys.end());
    }
    auto keyed = scoped.MapPartitions<std::pair<BlockKey, Row>>(
        [&plan = *plan, &dirty_keys](const std::vector<Row>& part) {
          std::vector<std::pair<BlockKey, Row>> out;
          BlockKey key = 0;
          for (const Row& row : part) {
            if (ComputeBlockKey(plan, row, &key) &&
                dirty_keys.count(key) > 0) {
              out.emplace_back(key, row);
            }
          }
          return out;
        }, "block:dirty");
    RunBlocked(ctx_, *plan, GroupByKey(keyed), &result);
    return result;
  }

  // Unblocked (incl. OCJoin rules): pair every changed row against the
  // whole dataset in both orientations — O(|changed| * n) probes, which is
  // the win when few rows changed.
  std::vector<Row> rows = scoped.Collect();
  std::vector<Row> changed;
  for (const Row& row : rows) {
    if (changed_rows.count(row.id()) > 0) changed.push_back(row);
  }
  Dataset<Row> changed_ds = Dataset<Row>::FromVector(ctx_, std::move(changed));
  const auto& parts = changed_ds.partitions();
  std::vector<TaskOutput> tasks = changed_ds.RunStageMorsels<TaskOutput>(
      "iterate|detect:incremental",
      [&](size_t p) { return parts[p].size(); },
      [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
        TaskOutput out;
        for (size_t i = begin; i < end; ++i) {
          const Row& c = parts[p][i];
          for (const Row& r : rows) {
            if (r.id() == c.id()) continue;
            // Each unordered pair {c, r} is owned by exactly one loop
            // iteration: by c when r is unchanged, else by the smaller id —
            // so both-changed pairs are not probed twice.
            if (changed_rows.count(r.id()) > 0 && r.id() < c.id()) continue;
            Probe(*plan->rule, c, r, &out);
            Probe(*plan->rule, r, c, &out);
          }
        }
        ctx_->metrics().AddPairsEnumerated(out.detect_calls);
        tc.records_in = end - begin;
        tc.records_out = out.violations.size();
        return out;
      },
      [](size_t, std::vector<TaskOutput>&& pieces) {
        return MergeTaskPieces(std::move(pieces));
      });
  MergeOutputs(&tasks, &result);
  return result;
}

Result<DetectionResult> RuleEngine::DetectWithStorageImpl(
    const StorageManager& storage, const std::string& name,
    const RulePtr& rule) const {
  auto schema = storage.GetSchema(name);
  if (!schema.ok()) return schema.status();
  auto plan = BuildPhysicalPlan(rule, *schema, options_);
  if (!plan.ok()) return plan.status();

  // Pushdown applies when the rule blocks on exactly one attribute and a
  // replica partitioned on that attribute exists.
  std::vector<std::string> blocking = rule->BlockingAttributes();
  const PartitionedReplica* replica = nullptr;
  if (blocking.size() == 1 && !plan->block_key_fn) {
    auto found = storage.FindReplica(name, blocking[0]);
    if (found.ok()) replica = *found;
  }
  if (replica == nullptr) {
    // No matching replica: ordinary path over the reassembled table.
    auto table = storage.Load(name);
    if (!table.ok()) return table.status();
    auto results = DetectAllImpl(*table, {rule});
    if (!results.ok()) return results.status();
    return std::move((*results)[0]);
  }

  DetectionResult result;
  result.plan_description =
      plan->ToString() + " [block pushed down to storage replica '" +
      replica->attribute + "']";
  // Rows sharing a blocking key are co-located in one storage partition,
  // so grouping is local to each partition — no shuffle.
  Dataset<Row> data(ctx_, replica->partitions);
  ctx_->metrics().AddRecordsRead(data.Count());
  auto scoped = ApplyScope(data, plan->scope_columns);
  auto blocks = scoped.MapPartitions<std::pair<BlockKey, std::vector<Row>>>(
      [&plan = *plan](const std::vector<Row>& part) {
        std::unordered_map<BlockKey, std::vector<Row>> groups;
        BlockKey key = 0;
        for (const Row& row : part) {
          if (ComputeBlockKey(plan, row, &key)) groups[key].push_back(row);
        }
        std::vector<std::pair<BlockKey, std::vector<Row>>> out;
        out.reserve(groups.size());
        for (auto& g : groups) out.emplace_back(g.first, std::move(g.second));
        return out;
      }, "block:local");
  RunBlocked(ctx_, *plan, blocks, &result);
  return result;
}

Result<DetectionResult> RuleEngine::DetectAcrossImpl(
    const Table& left, const Table& right,
    const std::shared_ptr<DcRule>& rule) const {
  DetectionResult result;
  BIGDANSING_RETURN_NOT_OK(rule->BindAcross(left.schema(), right.schema()));
  TraceRecorder& trace = TraceRecorder::Instance();
  std::optional<ScopedSpan> job_span;
  if (trace.enabled() && trace.CurrentSpan() == 0) {
    job_span.emplace("detect-across", "job");
  }
  std::optional<ScopedSpan> rule_span;
  if (trace.enabled()) rule_span.emplace(rule->name(), "rule");
  auto blocking = rule->BlockingAttributePairs();
  result.plan_description =
      "PhysicalPlan[" + rule->name() + "]: coblock(" +
      std::to_string(blocking.size()) + " key pairs) -> iterate -> detect -> genfix";

  Dataset<Row> left_ds = LoadTable(ctx_, left);
  Dataset<Row> right_ds = LoadTable(ctx_, right);

  if (blocking.empty()) {
    // No equality link: cross product of the two datasets.
    std::optional<ScopedSpan> op_span;
    if (trace.enabled()) {
      op_span.emplace("iterate|detect|genfix", "operator");
    }
    auto pairs = left_ds.Cartesian(right_ds);
    const auto& parts = pairs.partitions();
    std::vector<TaskOutput> tasks = pairs.RunStageMorsels<TaskOutput>(
        "detect|genfix:cartesian",
        [&](size_t p) { return parts[p].size(); },
        [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
          TaskOutput out;
          for (size_t i = begin; i < end; ++i) {
            const auto& pr = parts[p][i];
            Probe(*rule, pr.first, pr.second, &out);
          }
          tc.records_in = end - begin;
          tc.records_out = out.violations.size();
          return out;
        },
        [](size_t, std::vector<TaskOutput>&& pieces) {
          return MergeTaskPieces(std::move(pieces));
        });
    MergeOutputs(&tasks, &result);
    return result;
  }

  // CoBlock enhancer: key both sides on their half of the equality
  // predicates and cogroup, so Iterate only pairs units within co-blocks
  // (Figure 6).
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;
  for (const auto& [la, ra] : blocking) {
    auto lc = left.schema().IndexOf(la);
    if (!lc.ok()) return lc.status();
    left_cols.push_back(*lc);
    auto rc = right.schema().IndexOf(ra);
    if (!rc.ok()) return rc.status();
    right_cols.push_back(*rc);
  }
  auto key_rows = [](const Dataset<Row>& ds, const std::vector<size_t>& cols) {
    // Deferred until the CoGroup below: capture the column list by value.
    return ds.FlatMap([cols](const Row& row) {
      std::vector<std::pair<BlockKey, Row>> out;
      uint64_t h = 0x42D;
      for (size_t c : cols) {
        const Value& v = row.value(c);
        if (v.is_null()) return out;
        h = StableHashUint64(h ^ v.Hash());
      }
      out.emplace_back(h, row);
      return out;
    });
  };
  std::optional<ScopedSpan> op_span;
  if (trace.enabled()) {
    op_span.emplace("coblock|iterate|detect|genfix", "operator");
  }
  auto coblocks = CoGroup(key_rows(left_ds, left_cols),
                          key_rows(right_ds, right_cols));
  const auto& parts = coblocks.partitions();
  std::vector<TaskOutput> tasks = coblocks.RunStageMorsels<TaskOutput>(
      "iterate|detect|genfix:coblock",
      [&](size_t p) { return parts[p].size(); },
      [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
        TaskOutput out;
        for (size_t i = begin; i < end; ++i) {
          const auto& [lbag, rbag] = parts[p][i].second;
          for (const Row& a : lbag) {
            for (const Row& b : rbag) {
              Probe(*rule, a, b, &out);
            }
          }
        }
        ctx_->metrics().AddPairsEnumerated(out.detect_calls);
        tc.records_in = end - begin;
        tc.records_out = out.violations.size();
        return out;
      },
      [](size_t, std::vector<TaskOutput>&& pieces) {
        return MergeTaskPieces(std::move(pieces));
      });
  MergeOutputs(&tasks, &result);
  return result;
}

}  // namespace bigdansing
