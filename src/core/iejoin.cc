#include "core/iejoin.h"

#include <algorithm>

#include "common/trace.h"

namespace bigdansing {

namespace {

bool EvalOrdering(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kLeq:
      return a <= b;
    case CmpOp::kGeq:
      return a >= b;
    default:
      return false;
  }
}

bool AscendingFor(CmpOp op) { return op == CmpOp::kLt || op == CmpOp::kLeq; }

}  // namespace

bool IEJoinApplicable(const std::vector<OrderingCondition>& conditions) {
  return conditions.size() >= 2;
}

std::vector<RowPair> IEJoin(ExecutionContext* ctx,
                            const std::vector<Row>& rows,
                            const std::vector<OrderingCondition>& conditions,
                            IEJoinStats* stats) {
  IEJoinStats local;
  std::vector<RowPair> results;
  if (stats != nullptr) *stats = local;
  if (!IEJoinApplicable(conditions) || rows.empty()) return results;

  ScopedSpan span("iejoin", "operator");
  span.Annotate("rows", static_cast<uint64_t>(rows.size()));
  span.Annotate("conditions", static_cast<uint64_t>(conditions.size()));

  const OrderingCondition& c1 = conditions[0];  // t1.A op1 t2.B
  const OrderingCondition& c2 = conditions[1];  // t1.C op2 t2.D

  // Candidate (t1) side needs non-null A and C; target (t2) side non-null
  // B and D. A row may qualify for one role only.
  std::vector<uint32_t> candidates;  // Row indices usable as t1.
  std::vector<uint32_t> targets;     // Row indices usable as t2.
  for (uint32_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (!r.value(c1.left_column).is_null() && !r.value(c2.left_column).is_null()) {
      candidates.push_back(i);
    }
    if (!r.value(c1.right_column).is_null() &&
        !r.value(c2.right_column).is_null()) {
      targets.push_back(i);
    }
  }
  local.rows_joined = candidates.size();
  if (candidates.empty() || targets.empty()) {
    if (stats != nullptr) *stats = local;
    return results;
  }

  // Order 1: candidates sorted ascending by A. The bit array is indexed by
  // this order, so the set {t1 : t1.A op1 t2.B} is one contiguous range
  // found by binary search.
  std::vector<uint32_t> by_a = candidates;
  std::sort(by_a.begin(), by_a.end(), [&](uint32_t x, uint32_t y) {
    return rows[x].value(c1.left_column) < rows[y].value(c1.left_column);
  });
  std::vector<Value> a_values;
  a_values.reserve(by_a.size());
  for (uint32_t i : by_a) a_values.push_back(rows[i].value(c1.left_column));
  // Permutation: candidate row index -> its position in the A order.
  std::vector<uint32_t> pos_in_a(rows.size(), 0);
  for (uint32_t p = 0; p < by_a.size(); ++p) pos_in_a[by_a[p]] = p;

  // Order 2: candidates sorted by C in the direction that makes the
  // inserted set {t1 : t1.C op2 t2.D} grow monotonically while targets are
  // visited in matching D order.
  const bool ascending = AscendingFor(c2.op);
  std::vector<uint32_t> by_c = candidates;
  std::sort(by_c.begin(), by_c.end(), [&](uint32_t x, uint32_t y) {
    const Value& vx = rows[x].value(c2.left_column);
    const Value& vy = rows[y].value(c2.left_column);
    return ascending ? vx < vy : vy < vx;
  });
  std::vector<uint32_t> target_order = targets;
  std::sort(target_order.begin(), target_order.end(),
            [&](uint32_t x, uint32_t y) {
              const Value& vx = rows[x].value(c2.right_column);
              const Value& vy = rows[y].value(c2.right_column);
              return ascending ? vx < vy : vy < vx;
            });

  // Bit array over A positions, plus the envelope of set positions so
  // emission never scans regions that are provably all-zero (the win on
  // correlated data, where the qualifying range and the inserted set
  // barely overlap).
  std::vector<uint64_t> bits((by_a.size() + 63) / 64, 0);
  size_t min_set = by_a.size();
  size_t max_set = 0;
  size_t insert_ptr = 0;
  size_t bitmap_probes = 0;

  for (uint32_t t_idx : target_order) {
    const Row& t2 = rows[t_idx];
    const Value& d = t2.value(c2.right_column);
    // Insert every candidate whose C satisfies op2 against this D; the
    // visit order makes this set monotone, so the pointer never rewinds.
    while (insert_ptr < by_c.size() &&
           EvalOrdering(rows[by_c[insert_ptr]].value(c2.left_column), c2.op, d)) {
      uint32_t p = pos_in_a[by_c[insert_ptr]];
      bits[p >> 6] |= uint64_t{1} << (p & 63);
      min_set = std::min(min_set, static_cast<size_t>(p));
      max_set = std::max(max_set, static_cast<size_t>(p) + 1);
      ++insert_ptr;
    }
    if (min_set >= max_set) continue;  // Nothing inserted yet.
    // Qualifying A range for condition 1.
    const Value& b = t2.value(c1.right_column);
    size_t lo = 0;
    size_t hi = a_values.size();
    switch (c1.op) {
      case CmpOp::kGt:  // t1.A > b: suffix after upper_bound.
        lo = static_cast<size_t>(
            std::upper_bound(a_values.begin(), a_values.end(), b) -
            a_values.begin());
        break;
      case CmpOp::kGeq:
        lo = static_cast<size_t>(
            std::lower_bound(a_values.begin(), a_values.end(), b) -
            a_values.begin());
        break;
      case CmpOp::kLt:  // t1.A < b: prefix before lower_bound.
        hi = static_cast<size_t>(
            std::lower_bound(a_values.begin(), a_values.end(), b) -
            a_values.begin());
        break;
      case CmpOp::kLeq:
        hi = static_cast<size_t>(
            std::upper_bound(a_values.begin(), a_values.end(), b) -
            a_values.begin());
        break;
      default:
        continue;
    }
    lo = std::max(lo, min_set);
    hi = std::min(hi, max_set);
    if (lo >= hi) continue;
    // Emit set bits in [lo, hi), skipping zero words.
    size_t word = lo >> 6;
    const size_t last_word = (hi - 1) >> 6;
    for (; word <= last_word; ++word) {
      uint64_t mask = bits[word];
      ++bitmap_probes;
      if (mask == 0) continue;
      // Clip the word to [lo, hi).
      size_t base = word << 6;
      if (base < lo) mask &= ~uint64_t{0} << (lo - base);
      if (base + 64 > hi) mask &= (~uint64_t{0}) >> (base + 64 - hi);
      while (mask != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(mask));
        mask &= mask - 1;
        const Row& t1 = rows[by_a[base + bit]];
        if (t1.id() == t2.id()) continue;
        // Residual conditions beyond the two that drove the join.
        bool all = true;
        for (size_t j = 2; j < conditions.size(); ++j) {
          const auto& cj = conditions[j];
          const Value& lv = t1.value(cj.left_column);
          const Value& rv = t2.value(cj.right_column);
          if (lv.is_null() || rv.is_null() || !EvalOrdering(lv, cj.op, rv)) {
            all = false;
            break;
          }
        }
        if (all) results.push_back(RowPair{t1, t2});
      }
    }
  }
  local.bitmap_probes = bitmap_probes;
  local.result_pairs = results.size();
  ctx->metrics().AddPairsEnumerated(results.size());
  if (stats != nullptr) *stats = local;
  if (span.id() != 0) {
    span.Annotate("rows_joined", static_cast<uint64_t>(local.rows_joined));
    span.Annotate("bitmap_probes",
                  static_cast<uint64_t>(local.bitmap_probes));
    span.Annotate("result_pairs", static_cast<uint64_t>(local.result_pairs));
  }
  return results;
}

}  // namespace bigdansing
