#ifndef BIGDANSING_CORE_LOGICAL_PLAN_H_
#define BIGDANSING_CORE_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "rules/rule.h"
#include "rules/udf_rule.h"

namespace bigdansing {

/// The five logical operators of BigDansing's abstraction (§3.1).
enum class LogicalOpKind { kScope, kBlock, kIterate, kDetect, kGenFix };

/// Returns "Scope", "Block", "Iterate", "Detect" or "GenFix".
const char* LogicalOpKindName(LogicalOpKind kind);

/// One node of a logical plan. `params` is a canonical string describing the
/// operator's UDF/configuration (e.g. scope column list); two operators with
/// equal kind, input and params compute the same function, which is what
/// plan consolidation (Algorithm 1) exploits. `output_labels` carries one
/// label per original operator folded into this node.
struct LogicalOperatorDesc {
  LogicalOpKind kind = LogicalOpKind::kDetect;
  std::string input_label;
  std::vector<std::string> output_labels;
  std::string params;
  RulePtr rule;

  /// "Scope(D1 -> T1,T2; cols=zipcode,city)" rendering.
  std::string ToString() const;
};

/// A logical plan: the operator sequence the planner derived from a job or
/// a declarative rule (§3.2). Operators appear in dataflow order.
struct LogicalPlan {
  std::vector<LogicalOperatorDesc> ops;

  /// Multi-line rendering for debugging and plan tests.
  std::string ToString() const;

  /// Number of operators of `kind`.
  size_t CountOps(LogicalOpKind kind) const;
};

/// Generates the logical plan for one declarative or UDF rule against the
/// dataset labeled `input_label` with schema `schema` (the automatic
/// translation of §3.2): optional Scope (when the rule declares relevant
/// attributes), optional Block (when it declares a blocking key), an
/// Iterate chosen from the rule's symmetry/ordering hints, one Detect and
/// one GenFix.
Result<LogicalPlan> BuildLogicalPlan(const RulePtr& rule, const Schema& schema,
                                     const std::string& input_label);

/// Validates the §3.2 well-formedness conditions: at least one Detect, every
/// non-Detect operator's output reachable by some downstream operator, and
/// at most one GenFix per Detect. Returns the first problem found.
Status ValidateLogicalPlan(const LogicalPlan& plan);

/// Plan consolidation (Algorithm 1): folds operators with the same kind,
/// the same input dataset and the same params into a single operator
/// carrying all output labels, enabling shared scans. Operators that cannot
/// be merged are kept unchanged and order is preserved.
LogicalPlan ConsolidatePlan(const LogicalPlan& plan);

/// Concatenates per-rule plans over the same input dataset (the multi-rule
/// case of §3.2 / Appendix E bushy plans) so ConsolidatePlan can share work
/// across rules.
LogicalPlan MergePlans(const std::vector<LogicalPlan>& plans);

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_LOGICAL_PLAN_H_
