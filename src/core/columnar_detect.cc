#include "core/columnar_detect.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/hash.h"
#include "common/trace.h"
#include "core/detect_output.h"
#include "dataflow/stage_executor.h"
#include "rules/detect_kernel.h"

namespace bigdansing {
namespace columnar {

namespace {

using detect::MaterializePair;
using detect::MaterializeSingle;
using detect::MergeOutputs;
using detect::MergeTaskPieces;
using detect::TaskOutput;

/// Per-partition arrays of per-slot code pointers, the gather structure
/// every kernel evaluation reads through.
using SlotPtrs = std::vector<std::vector<const uint32_t*>>;

/// Materializes matched candidates exactly as the interpreted path sees
/// them: the base row when the plan has no scope, else the on-demand
/// projection (identical to the eager scope stage's output rows).
class RowMaterializer {
 public:
  RowMaterializer(const std::vector<std::vector<Row>>& bparts,
                  const std::vector<size_t>& scope_columns)
      : bparts_(bparts), scope_columns_(scope_columns) {}

  /// Returns the detect-schema row for `ref` — a reference into the base
  /// partition when no scope applies (no copy), else `*storage` filled with
  /// the projection.
  const Row& Get(const RowRef& ref, Row* storage) const {
    return Get(bparts_[ref.part][ref.idx], storage);
  }

  const Row& Get(const Row& row, Row* storage) const {
    if (scope_columns_.empty()) return row;
    *storage = ScopeProject(row, scope_columns_);
    return *storage;
  }

 private:
  const std::vector<std::vector<Row>>& bparts_;
  const std::vector<size_t>& scope_columns_;
};

/// Reused per-task buffers for the batched block decision.
struct BlockScratch {
  std::vector<CodeTuple> tuples;
  std::vector<std::pair<uint32_t, uint32_t>> matches;
};

/// Kernel analogue of IterateBlock: identical pair enumeration order, with
/// the kernel deciding each pair and the rule materializing only matches.
void IterateBlockKernel(const PhysicalRulePlan& plan,
                        const DetectKernel& kernel,
                        const std::vector<RowRef>& block,
                        const RowMaterializer& rows, const SlotPtrs& slot_ptrs,
                        BlockScratch* scratch, TaskOutput* out) {
  const Rule& rule = *plan.rule;
  auto materialize = [&](const RowRef& a, const RowRef& b) {
    Row sa, sb;
    MaterializePair(rule, rows.Get(a, &sa), rows.Get(b, &sb), out);
  };
  auto eval = [&](const RowRef& a, const RowRef& b) {
    ++out->detect_calls;
    const CodeTuple ta{slot_ptrs[a.part].data(), a.idx};
    const CodeTuple tb{slot_ptrs[b.part].data(), b.idx};
    if (kernel.Matches(ta, tb)) materialize(a, b);
  };
  if (plan.strategy == IterateStrategy::kUCrossProduct) {
    if (rule.IsSymmetric()) {
      // The hot shape (FDs, symmetric DCs): decide the whole upper
      // triangle in one batched kernel call — a branch-light loop over
      // contiguous codes with no per-pair virtual dispatch — then
      // materialize matches, which MatchUpper reports in the same (i, j)
      // order the per-pair loop would have evaluated.
      const size_t n = block.size();
      scratch->tuples.clear();
      for (const RowRef& r : block) {
        scratch->tuples.push_back(CodeTuple{slot_ptrs[r.part].data(), r.idx});
      }
      scratch->matches.clear();
      out->detect_calls += n * (n - 1) / 2;
      kernel.MatchUpper(scratch->tuples.data(), n, &scratch->matches);
      for (const auto& [i, j] : scratch->matches) {
        materialize(block[i], block[j]);
      }
      return;
    }
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        eval(block[i], block[j]);
        eval(block[j], block[i]);
      }
    }
    return;
  }
  // CrossProduct order (also the within-block fallback for blocked OCJoin
  // rules): all ordered pairs, row-major — the order the interpreted path
  // materializes its pair list in.
  for (size_t i = 0; i < block.size(); ++i) {
    for (size_t j = 0; j < block.size(); ++j) {
      if (i != j) eval(block[i], block[j]);
    }
  }
}

}  // namespace

bool TryDetectColumnar(ExecutionContext* ctx, const PhysicalRulePlan& plan,
                       const Dataset<Row>& base, ColumnarCaches* caches,
                       DetectionResult* result) {
  // Eligibility — decided before any stage runs, so a false return leaves
  // the engine free to take the interpreted path untouched.
  if (plan.block_key_fn) return false;  // procedural UDF keys stay interpreted
  auto tmpl =
      KernelRegistry::Instance().Compile(*plan.rule, plan.detect_schema);
  if (tmpl == nullptr) return false;
  const bool single = plan.strategy == IterateStrategy::kSingle;
  const bool has_blocking = !plan.blocking_columns.empty();
  if (plan.strategy == IterateStrategy::kOCJoin && !has_blocking) {
    // Global inequality self-join: OCJoin/IEJoin own that path.
    return false;
  }

  result->plan_description += " [kernel]";
  TraceRecorder& trace = TraceRecorder::Instance();

  // The kernel path never runs the eager scope stage: codes are encoded
  // straight from base rows (honouring the scope's column mapping) and the
  // projection is applied on demand, only to matched candidates.
  auto to_base = [&](size_t c) {
    return plan.scope_columns.empty() ? c : plan.scope_columns[c];
  };

  // Columns to dictionary-encode, in base-column space: the kernel's slots
  // plus the blocking key. Columns whose codes are compared across columns
  // share one pool (one group); the rest are singleton groups.
  std::vector<std::vector<size_t>> groups;
  std::unordered_set<size_t> covered;
  for (const auto& g : tmpl->shared_groups()) {
    std::vector<size_t> mapped;
    for (size_t c : g) {
      if (covered.insert(to_base(c)).second) mapped.push_back(to_base(c));
    }
    if (!mapped.empty()) groups.push_back(std::move(mapped));
  }
  for (size_t c : tmpl->columns()) {
    if (covered.insert(to_base(c)).second) groups.push_back({to_base(c)});
  }
  for (size_t c : plan.blocking_columns) {
    if (covered.insert(to_base(c)).second) groups.push_back({to_base(c)});
  }

  // Encode with per-group caching (keyed by the group's sorted base
  // columns), so e.g. two FDs sharing a key column encode it once even when
  // their scopes differ.
  std::vector<std::vector<size_t>> missing;
  std::vector<std::string> group_sigs;
  group_sigs.reserve(groups.size());
  for (const auto& g : groups) {
    std::vector<size_t> sorted = g;
    std::sort(sorted.begin(), sorted.end());
    std::string sig;
    for (size_t c : sorted) sig += std::to_string(c) + ",";
    group_sigs.push_back(sig);
    if (caches->encoded.find(sig) == caches->encoded.end()) missing.push_back(g);
  }
  if (!missing.empty()) {
    std::optional<ScopedSpan> encode_span;
    if (trace.enabled()) encode_span.emplace("kernel:encode", "operator");
    EncodedColumnSet fresh = EncodeColumns(base, missing);
    for (const auto& g : missing) {
      std::vector<size_t> sorted = g;
      std::sort(sorted.begin(), sorted.end());
      std::string sig;
      for (size_t c : sorted) sig += std::to_string(c) + ",";
      EncodedColumnSet set;
      set.rows = fresh.rows;
      for (size_t c : g) set.columns.emplace(c, fresh.columns.at(c));
      caches->encoded.emplace(std::move(sig), std::move(set));
    }
  }
  // Gather this rule's columns from the per-group cache entries.
  std::unordered_map<size_t, const EncodedColumn*> enc;
  for (size_t g = 0; g < groups.size(); ++g) {
    const EncodedColumnSet& set = caches->encoded.at(group_sigs[g]);
    for (size_t c : groups[g]) enc.emplace(c, &set.columns.at(c));
  }

  std::vector<const ValuePool*> pools;
  pools.reserve(tmpl->columns().size());
  for (size_t c : tmpl->columns()) {
    pools.push_back(enc.at(to_base(c))->pool.get());
  }
  const std::unique_ptr<DetectKernel> kernel = tmpl->Bind(pools);

  const auto& bparts = base.partitions();
  SlotPtrs slot_ptrs(bparts.size());
  for (size_t p = 0; p < bparts.size(); ++p) {
    slot_ptrs[p].reserve(tmpl->columns().size());
    for (size_t c : tmpl->columns()) {
      slot_ptrs[p].push_back(enc.at(to_base(c))->codes[p].data());
    }
  }
  const RowMaterializer rows(bparts, plan.scope_columns);

  // --- Arity-1 rules: evaluate every unit against the code vectors.
  if (single) {
    std::optional<ScopedSpan> op_span;
    if (trace.enabled()) op_span.emplace("kernel:detect|genfix", "operator");
    std::vector<TaskOutput> tasks = base.RunStageMorsels<TaskOutput>(
        "kernel:detect:single|genfix",
        [&](size_t p) { return bparts[p].size(); },
        [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
          TaskOutput out;
          const uint32_t* const* cols = slot_ptrs[p].data();
          Row storage;
          for (size_t i = begin; i < end; ++i) {
            ++out.detect_calls;
            if (kernel->MatchesSingle(CodeTuple{cols, i})) {
              MaterializeSingle(*plan.rule, rows.Get(bparts[p][i], &storage),
                                &out);
            }
          }
          tc.records_in = end - begin;
          tc.records_out = out.violations.size();
          return out;
        },
        [](size_t, std::vector<TaskOutput>&& pieces) {
          return MergeTaskPieces(std::move(pieces));
        });
    MergeOutputs(&tasks, result);
    return true;
  }

  // --- Blocked rules: block keys hashed from precomputed per-code hashes
  // in one tight loop, then 8-byte RowRefs shuffled instead of whole rows.
  if (has_blocking) {
    std::optional<ScopedSpan> op_span;
    if (trace.enabled()) {
      op_span.emplace("kernel:block|iterate|detect|genfix", "operator");
    }
    std::string block_sig;
    for (size_t c : plan.blocking_columns) {
      block_sig += std::to_string(to_base(c)) + ",";
    }
    auto block_it = caches->blocks.find(block_sig);
    if (block_it == caches->blocks.end()) {
      struct KeyCol {
        const ValuePool* pool;
        const EncodedColumn* col;
      };
      std::vector<KeyCol> key_cols;
      key_cols.reserve(plan.blocking_columns.size());
      for (size_t c : plan.blocking_columns) {
        const EncodedColumn* col = enc.at(to_base(c));
        key_cols.push_back({col->pool.get(), col});
      }
      using KeyedPiece = std::vector<std::pair<uint64_t, RowRef>>;
      std::vector<KeyedPiece> keyed_parts = base.RunStageMorsels<KeyedPiece>(
          "kernel:block",
          [&](size_t p) { return bparts[p].size(); },
          [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
            KeyedPiece out;
            out.reserve(end - begin);
            for (size_t i = begin; i < end; ++i) {
              uint64_t h = 0x42D;
              bool keyed = true;
              for (const KeyCol& kc : key_cols) {
                const uint32_t code = kc.col->codes[p][i];
                if (code == ValuePool::kNullCode) {
                  keyed = false;  // null key component: row joins no block
                  break;
                }
                h = StableHashUint64(h ^ kc.pool->hash(code));
              }
              if (keyed) {
                out.emplace_back(h, RowRef{static_cast<uint32_t>(p),
                                           static_cast<uint32_t>(i)});
              }
            }
            tc.records_in = end - begin;
            tc.records_out = out.size();
            return out;
          },
          [](size_t, std::vector<KeyedPiece>&& pieces) {
            KeyedPiece merged;
            size_t total = 0;
            for (const auto& piece : pieces) total += piece.size();
            merged.reserve(total);
            for (auto& piece : pieces) {
              merged.insert(merged.end(), piece.begin(), piece.end());
            }
            return merged;
          });
      Dataset<std::pair<uint64_t, RowRef>> keyed(ctx, std::move(keyed_parts));
      block_it = caches->blocks.emplace(block_sig, GroupByKey(keyed)).first;
    }
    const auto& blocks = block_it->second;
    const auto& gparts = blocks.partitions();
    std::vector<TaskOutput> tasks = blocks.RunStageMorsels<TaskOutput>(
        "kernel:iterate|detect|genfix",
        [&](size_t p) { return gparts[p].size(); },
        [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
          TaskOutput out;
          BlockScratch scratch;
          for (size_t b = begin; b < end; ++b) {
            IterateBlockKernel(plan, *kernel, gparts[p][b].second, rows,
                               slot_ptrs, &scratch, &out);
          }
          ctx->metrics().AddPairsEnumerated(out.detect_calls);
          tc.records_in = end - begin;
          tc.records_out = out.violations.size();
          return out;
        },
        [](size_t, std::vector<TaskOutput>&& pieces) {
          return MergeTaskPieces(std::move(pieces));
        });
    MergeOutputs(&tasks, result);
    return true;
  }

  // --- No blocking key: whole-dataset chunk-pair enumeration over flat
  // contiguous code arrays (partition codes concatenated in Collect order).
  std::optional<ScopedSpan> op_span;
  if (trace.enabled()) {
    op_span.emplace("kernel:iterate|detect|genfix", "operator");
  }
  const std::vector<Row> base_rows = base.Collect();
  std::vector<std::vector<uint32_t>> flat(tmpl->columns().size());
  for (size_t s = 0; s < tmpl->columns().size(); ++s) {
    const EncodedColumn& col = *enc.at(to_base(tmpl->columns()[s]));
    flat[s].reserve(base_rows.size());
    for (const auto& part : col.codes) {
      flat[s].insert(flat[s].end(), part.begin(), part.end());
    }
  }
  std::vector<const uint32_t*> flat_ptrs;
  flat_ptrs.reserve(flat.size());
  for (const auto& codes : flat) flat_ptrs.push_back(codes.data());

  // Chunking replicated from the interpreted RunUnblocked so tasks, pair
  // order and therefore violation order line up exactly.
  const bool unordered = plan.strategy == IterateStrategy::kUCrossProduct &&
                         plan.rule->IsSymmetric();
  size_t num_chunks = std::max<size_t>(1, ctx->num_workers() * 2);
  if (num_chunks > base_rows.size()) {
    num_chunks = std::max<size_t>(1, base_rows.size());
  }
  const size_t chunk = (base_rows.size() + num_chunks - 1) / num_chunks;
  struct ChunkPair {
    size_t i;
    size_t j;
  };
  std::vector<ChunkPair> chunk_pairs;
  for (size_t i = 0; i < num_chunks; ++i) {
    for (size_t j = i; j < num_chunks; ++j) chunk_pairs.push_back({i, j});
  }
  const bool materialize = plan.strategy == IterateStrategy::kCrossProduct;
  auto tasks = StageExecutor(ctx).RunProducing<TaskOutput>(
      "kernel:iterate|detect|genfix:unblocked", chunk_pairs.size(),
      [&](size_t t, TaskContext& tc) {
        auto [ci, cj] = chunk_pairs[t];
        const size_t ibegin = ci * chunk;
        const size_t iend = std::min(base_rows.size(), ibegin + chunk);
        const size_t jbegin = cj * chunk;
        const size_t jend = std::min(base_rows.size(), jbegin + chunk);
        TaskOutput out;
        const uint32_t* const* cols = flat_ptrs.data();
        auto eval = [&](size_t i, size_t j) {
          ++out.detect_calls;
          if (kernel->Matches(CodeTuple{cols, i}, CodeTuple{cols, j})) {
            Row sa, sb;
            MaterializePair(*plan.rule, rows.Get(base_rows[i], &sa),
                            rows.Get(base_rows[j], &sb), &out);
          }
        };
        for (size_t i = ibegin; i < iend; ++i) {
          const size_t jstart = (ci == cj) ? i + 1 : jbegin;
          for (size_t j = jstart; j < jend; ++j) {
            if (materialize) {
              // CrossProduct wrapper order: (i, j) then (j, i), exactly
              // the interpreted pair-list materialization order.
              eval(i, j);
              eval(j, i);
            } else {
              eval(i, j);
              if (!unordered) eval(j, i);
            }
          }
        }
        ctx->metrics().AddPairsEnumerated(out.detect_calls);
        tc.records_in = iend - ibegin;
        tc.records_out = out.violations.size();
        return out;
      });
  if (!tasks.ok()) throw StageError(tasks.status());
  MergeOutputs(&*tasks, result);
  return true;
}

}  // namespace columnar
}  // namespace bigdansing
