#ifndef BIGDANSING_CORE_COLUMNAR_DETECT_H_
#define BIGDANSING_CORE_COLUMNAR_DETECT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/physical_plan.h"
#include "core/rule_engine.h"
#include "data/dictionary.h"
#include "data/row.h"
#include "dataflow/context.h"
#include "dataflow/dataset.h"

namespace bigdansing {
namespace columnar {

/// Compact handle to a base-table row: partition + index within the
/// partition. The kernel path shuffles these 8-byte refs instead of whole
/// Rows; the grouped block layout stays identical because GroupByKey's
/// output depends only on the key sequence, never on the value type.
struct RowRef {
  uint32_t part;
  uint32_t idx;
};

/// The per-row projection PScope applies (values + source-column mapping,
/// id preserved). The kernel path skips the eager scope stage — codes are
/// built straight from base rows — and applies this projection only to the
/// rows of matched candidates, so materialized violations are byte-equal to
/// the interpreted path's. Kept here so the eager ApplyScope stage and the
/// kernel's on-demand projection cannot drift apart.
inline Row ScopeProject(const Row& row,
                        const std::vector<size_t>& scope_columns) {
  std::vector<Value> values;
  values.reserve(scope_columns.size());
  std::vector<size_t> sources;
  sources.reserve(scope_columns.size());
  for (size_t c : scope_columns) {
    values.push_back(row.value(row.source_column(c)));
    sources.push_back(row.source_column(c));
  }
  Row out(row.id(), std::move(values));
  out.set_source_columns(std::move(sources));
  return out;
}

/// Per-DetectAll caches for the kernel path, keyed in base-column space so
/// rules with different scopes still share work: encoded column sets keyed
/// by pool-sharing group, and grouped RowRef blocks keyed by the blocking
/// columns.
struct ColumnarCaches {
  std::unordered_map<std::string, EncodedColumnSet> encoded;
  std::unordered_map<std::string,
                     Dataset<std::pair<uint64_t, std::vector<RowRef>>>>
      blocks;
};

/// Runs one rule's Detect through the columnar kernel path when the rule is
/// kernelizable (a registered compiler accepts it, no UDF block key, not a
/// global OCJoin). Appends to `result` and returns true on success; returns
/// false — without running any stage — when the rule must take the
/// interpreted path. Output is bit-identical to the interpreted path: the
/// kernel only decides which candidates match, and violations are
/// materialized by the rule itself in the same enumeration order.
bool TryDetectColumnar(ExecutionContext* ctx, const PhysicalRulePlan& plan,
                       const Dataset<Row>& base, ColumnarCaches* caches,
                       DetectionResult* result);

}  // namespace columnar
}  // namespace bigdansing

#endif  // BIGDANSING_CORE_COLUMNAR_DETECT_H_
