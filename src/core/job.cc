#include "core/job.h"

#include <unordered_map>
#include <unordered_set>

#include "common/fault.h"
#include "dataflow/dataset.h"

namespace bigdansing {

namespace {

/// A resolved detection chain: the flows and operators feeding one Detect.
struct ResolvedChain {
  const Table* left_table = nullptr;
  const Table* right_table = nullptr;  // Null for single-flow chains.
  Job::ScopeFn left_scope;
  Job::ScopeFn right_scope;
  Job::BlockFn left_block;
  Job::BlockFn right_block;
  Job::IterateFn iterate1;
  Job::Iterate2Fn iterate2;
  Job::DetectFn detect;
  Job::GenFixFn gen_fix;
  std::string rule_name;
};

/// Applies a Scope UDF (identity when unset).
Dataset<Row> ApplyJobScope(const Dataset<Row>& data, const Job::ScopeFn& fn) {
  if (!fn) return data;
  return data.FlatMap([&fn](const Row& row) { return fn(row); });
}

/// Keys a flow by its Block UDF; without one, everything lands in a single
/// global block (key 0).
Dataset<std::pair<uint64_t, Row>> KeyFlow(const Dataset<Row>& data,
                                          const Job::BlockFn& fn) {
  return data.MapPartitions<std::pair<uint64_t, Row>>(
      [&fn](const std::vector<Row>& part) {
        std::vector<std::pair<uint64_t, Row>> out;
        out.reserve(part.size());
        for (const Row& row : part) {
          if (fn) {
            Value key = fn(row);
            if (key.is_null()) continue;
            out.emplace_back(key.Hash(), row);
          } else {
            out.emplace_back(0, row);
          }
        }
        return out;
      });
}

/// Default single-flow pairing: all unordered pairs of a block.
std::vector<RowPair> DefaultIterate1(const std::vector<Row>& block) {
  std::vector<RowPair> pairs;
  pairs.reserve(block.size() * (block.size() - 1) / 2);
  for (size_t i = 0; i < block.size(); ++i) {
    for (size_t j = i + 1; j < block.size(); ++j) {
      pairs.push_back(RowPair{block[i], block[j]});
    }
  }
  return pairs;
}

/// Default two-flow pairing: the cross product of the two bags.
std::vector<RowPair> DefaultIterate2(const std::vector<Row>& left,
                                     const std::vector<Row>& right) {
  std::vector<RowPair> pairs;
  pairs.reserve(left.size() * right.size());
  for (const Row& a : left) {
    for (const Row& b : right) pairs.push_back(RowPair{a, b});
  }
  return pairs;
}

/// Runs Detect + GenFix over the candidate pairs of one chain and merges
/// per-partition outputs into `result`. Each task accumulates into its own
/// returned buffer, so a retried attempt never double-appends.
template <typename Entry>
void DetectOverPairs(ExecutionContext* ctx, const ResolvedChain& chain,
                     const Dataset<Entry>& blocks,
                     const std::function<std::vector<RowPair>(const Entry&)>& expand,
                     DetectionResult* result) {
  const auto& parts = blocks.partitions();
  struct TaskOut {
    std::vector<ViolationWithFixes> violations;
    uint64_t detect_calls = 0;
  };
  std::vector<TaskOut> tasks = blocks.template RunStageProducing<TaskOut>(
      "iterate|detect|genfix:job", [&](size_t p, TaskContext& tc) {
        TaskOut out;
        for (const auto& entry : parts[p]) {
          for (const RowPair& pair : expand(entry)) {
            ++out.detect_calls;
            std::vector<Violation> found;
            chain.detect(pair, &found);
            for (auto& v : found) {
              if (v.rule_name.empty()) v.rule_name = chain.rule_name;
              ViolationWithFixes vf;
              vf.violation = std::move(v);
              if (chain.gen_fix) chain.gen_fix(vf.violation, &vf.fixes);
              out.violations.push_back(std::move(vf));
            }
          }
        }
        ctx->metrics().AddPairsEnumerated(out.detect_calls);
        tc.records_out = out.violations.size();
        return out;
      });
  for (auto& t : tasks) {
    result->detect_calls += t.detect_calls;
    for (auto& v : t.violations) result->violations.push_back(std::move(v));
  }
}

}  // namespace

Job& Job::AddInput(const std::string& label, const Table* table) {
  inputs_.emplace_back(label, table);
  return *this;
}

Job& Job::AddScope(ScopeFn fn, const std::string& label) {
  scopes_.push_back(ScopeOp{std::move(fn), label});
  return *this;
}

Job& Job::AddBlock(BlockFn fn, const std::string& label) {
  blocks_.push_back(BlockOp{std::move(fn), label});
  return *this;
}

Job& Job::AddIterate(const std::string& output_label,
                     std::vector<std::string> input_labels) {
  iterates_.push_back(IterateOp{output_label, std::move(input_labels),
                                nullptr, nullptr});
  return *this;
}

Job& Job::AddIterate(const std::string& output_label,
                     std::vector<std::string> input_labels, IterateFn fn) {
  iterates_.push_back(IterateOp{output_label, std::move(input_labels),
                                std::move(fn), nullptr});
  return *this;
}

Job& Job::AddIterate(const std::string& output_label,
                     std::vector<std::string> input_labels, Iterate2Fn fn2) {
  iterates_.push_back(IterateOp{output_label, std::move(input_labels),
                                nullptr, std::move(fn2)});
  return *this;
}

Job& Job::AddDetect(DetectFn fn, const std::string& label,
                    const std::string& rule_name) {
  detects_.push_back(DetectOp{std::move(fn), label,
                              rule_name.empty() ? name_ : rule_name});
  return *this;
}

Job& Job::AddGenFix(GenFixFn fn, const std::string& label) {
  genfixes_.push_back(GenFixOp{std::move(fn), label});
  return *this;
}

const Job::ScopeOp* Job::FindScope(const std::string& label) const {
  for (const auto& op : scopes_) {
    if (op.label == label) return &op;
  }
  return nullptr;
}

const Job::BlockOp* Job::FindBlock(const std::string& label) const {
  for (const auto& op : blocks_) {
    if (op.label == label) return &op;
  }
  return nullptr;
}

const Job::IterateOp* Job::FindIterate(const std::string& output_label) const {
  for (const auto& op : iterates_) {
    if (op.output_label == output_label) return &op;
  }
  return nullptr;
}

Status Job::Validate() const {
  // §3.2: the job is correct when all referenced operators/flows are
  // defined and at least one Detect is specified.
  if (detects_.empty()) {
    return Status::InvalidArgument("job '" + name_ +
                                   "' must specify at least one Detect");
  }
  std::unordered_set<std::string> input_labels;
  for (const auto& [label, table] : inputs_) {
    if (table == nullptr) {
      return Status::InvalidArgument("input '" + label + "' is null");
    }
    if (!input_labels.insert(label).second) {
      return Status::InvalidArgument("duplicate input label '" + label + "'");
    }
  }
  auto is_unit_flow = [&](const std::string& label) {
    return input_labels.count(label) > 0;
  };
  for (const auto& op : scopes_) {
    if (!is_unit_flow(op.label)) {
      return Status::InvalidArgument("Scope references unknown flow '" +
                                     op.label + "'");
    }
    if (!op.fn) {
      return Status::InvalidArgument("Scope on '" + op.label + "' has no UDF");
    }
  }
  for (const auto& op : blocks_) {
    if (!is_unit_flow(op.label)) {
      return Status::InvalidArgument("Block references unknown flow '" +
                                     op.label + "'");
    }
    if (!op.fn) {
      return Status::InvalidArgument("Block on '" + op.label + "' has no UDF");
    }
  }
  std::unordered_set<std::string> iterate_outputs;
  for (const auto& op : iterates_) {
    if (op.input_labels.empty() || op.input_labels.size() > 2) {
      return Status::InvalidArgument(
          "Iterate '" + op.output_label + "' must have 1 or 2 input flows");
    }
    for (const auto& in : op.input_labels) {
      if (!is_unit_flow(in)) {
        return Status::InvalidArgument(
            "Iterate '" + op.output_label + "' references unknown flow '" +
            in + "' (iterate-over-iterate is not supported)");
      }
    }
    if (!iterate_outputs.insert(op.output_label).second) {
      return Status::InvalidArgument("duplicate Iterate output '" +
                                     op.output_label + "'");
    }
    if (op.input_labels.size() == 1 && op.fn2) {
      return Status::InvalidArgument("Iterate '" + op.output_label +
                                     "' has a two-flow UDF but one input");
    }
    if (op.input_labels.size() == 2 && op.fn) {
      return Status::InvalidArgument("Iterate '" + op.output_label +
                                     "' has a one-flow UDF but two inputs");
    }
  }
  for (const auto& op : detects_) {
    if (!op.fn) {
      return Status::InvalidArgument("Detect on '" + op.label + "' has no UDF");
    }
    // A Detect label must be an Iterate output or a unit flow (the planner
    // then generates the Iterate).
    if (iterate_outputs.count(op.label) == 0 && !is_unit_flow(op.label)) {
      return Status::InvalidArgument("Detect references unknown flow '" +
                                     op.label + "'");
    }
  }
  for (const auto& op : genfixes_) {
    bool matched = false;
    for (const auto& d : detects_) matched = matched || d.label == op.label;
    if (!matched) {
      return Status::InvalidArgument("GenFix on '" + op.label +
                                     "' has no matching Detect");
    }
  }
  return Status::OK();
}

Result<LogicalPlan> Job::Plan() const {
  BIGDANSING_RETURN_NOT_OK(Validate());
  LogicalPlan plan;
  auto add = [&plan](LogicalOpKind kind, const std::string& in,
                     const std::string& out, const std::string& params) {
    LogicalOperatorDesc desc;
    desc.kind = kind;
    desc.input_label = in;
    desc.output_labels = {out};
    desc.params = params;
    plan.ops.push_back(std::move(desc));
  };
  // Walk each Detect's chain in dataflow order (the §3.2 resolution walks
  // it in reverse; emitting forward reads better).
  for (const auto& detect : detects_) {
    const IterateOp* iterate = FindIterate(detect.label);
    std::vector<std::string> unit_flows =
        iterate != nullptr ? iterate->input_labels
                           : std::vector<std::string>{detect.label};
    for (const auto& flow : unit_flows) {
      if (const ScopeOp* s = FindScope(flow)) {
        add(LogicalOpKind::kScope, flow, flow, "udf");
        (void)s;
      }
      if (const BlockOp* b = FindBlock(flow)) {
        add(LogicalOpKind::kBlock, flow, flow, "udf");
        (void)b;
      }
    }
    std::string iterate_params =
        iterate == nullptr ? "generated" : (iterate->fn || iterate->fn2 ? "udf" : "default");
    add(LogicalOpKind::kIterate,
        unit_flows.size() == 2 ? unit_flows[0] + "+" + unit_flows[1]
                               : unit_flows[0],
        detect.label, iterate_params);
    add(LogicalOpKind::kDetect, detect.label, detect.label + ".violations",
        "rule=" + detect.rule_name);
    for (const auto& gf : genfixes_) {
      if (gf.label == detect.label) {
        add(LogicalOpKind::kGenFix, detect.label + ".violations",
            detect.label + ".fixes", "rule=" + detect.rule_name);
      }
    }
  }
  return plan;
}

Result<DetectionResult> Job::Run(ExecutionContext* ctx) const {
  BIGDANSING_RETURN_NOT_OK(Validate());
  DetectionResult result;
  auto plan = Plan();
  if (plan.ok()) result.plan_description = "Job[" + name_ + "]:\n" + plan->ToString();

  std::unordered_map<std::string, const Table*> input_map;
  for (const auto& [label, table] : inputs_) input_map[label] = table;

  // Dataflow stages below surface retry-budget exhaustion as StageError;
  // Job::Run is the Status boundary of the job-level API.
  try {
  for (const auto& detect : detects_) {
    // Resolve the chain feeding this Detect (§3.2, Figure 3: find the
    // matching Iterate, then Blocks, then Scopes by label).
    ResolvedChain chain;
    chain.detect = detect.fn;
    chain.rule_name = detect.rule_name;
    for (const auto& gf : genfixes_) {
      if (gf.label == detect.label) chain.gen_fix = gf.fn;
    }
    const IterateOp* iterate = FindIterate(detect.label);
    std::vector<std::string> unit_flows =
        iterate != nullptr ? iterate->input_labels
                           : std::vector<std::string>{detect.label};
    auto left_table = input_map.find(unit_flows[0]);
    if (left_table == input_map.end()) {
      return Status::InvalidArgument("flow '" + unit_flows[0] +
                                     "' has no input dataset");
    }
    chain.left_table = left_table->second;
    if (const ScopeOp* s = FindScope(unit_flows[0])) chain.left_scope = s->fn;
    if (const BlockOp* b = FindBlock(unit_flows[0])) chain.left_block = b->fn;
    if (iterate != nullptr) {
      chain.iterate1 = iterate->fn;
      chain.iterate2 = iterate->fn2;
    }
    if (unit_flows.size() == 2) {
      auto right_table = input_map.find(unit_flows[1]);
      if (right_table == input_map.end()) {
        return Status::InvalidArgument("flow '" + unit_flows[1] +
                                       "' has no input dataset");
      }
      chain.right_table = right_table->second;
      if (const ScopeOp* s = FindScope(unit_flows[1])) chain.right_scope = s->fn;
      if (const BlockOp* b = FindBlock(unit_flows[1])) chain.right_block = b->fn;
    }

    // Execute: load -> scope -> block -> iterate -> detect -> genfix.
    auto left =
        ApplyJobScope(Dataset<Row>::FromVector(ctx, chain.left_table->rows()),
                      chain.left_scope);
    if (chain.right_table == nullptr) {
      auto blocks = GroupByKey(KeyFlow(left, chain.left_block));
      const Job::IterateFn pairing =
          chain.iterate1 ? chain.iterate1 : Job::IterateFn(DefaultIterate1);
      DetectOverPairs<std::pair<uint64_t, std::vector<Row>>>(
          ctx, chain, blocks,
          [&pairing](const std::pair<uint64_t, std::vector<Row>>& block) {
            return pairing(block.second);
          },
          &result);
    } else {
      auto right = ApplyJobScope(
          Dataset<Row>::FromVector(ctx, chain.right_table->rows()),
          chain.right_scope);
      auto coblocks = CoGroup(KeyFlow(left, chain.left_block),
                              KeyFlow(right, chain.right_block));
      const Job::Iterate2Fn pairing =
          chain.iterate2 ? chain.iterate2 : Job::Iterate2Fn(DefaultIterate2);
      using CoEntry =
          std::pair<uint64_t, std::pair<std::vector<Row>, std::vector<Row>>>;
      DetectOverPairs<CoEntry>(
          ctx, chain, coblocks,
          [&pairing](const CoEntry& entry) {
            return pairing(entry.second.first, entry.second.second);
          },
          &result);
    }
  }
  } catch (const StageError& e) {
    return e.status();
  }
  return result;
}

}  // namespace bigdansing
