#ifndef BIGDANSING_CORE_DETECT_OUTPUT_H_
#define BIGDANSING_CORE_DETECT_OUTPUT_H_

#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "core/rule_engine.h"
#include "obs/profiler.h"
#include "rules/rule.h"

namespace bigdansing {
namespace detect {

/// Per-task accumulation of detection output, shared by the interpreted
/// stages (rule_engine.cc) and the columnar kernel stages
/// (columnar_detect.cc). `detect_calls` counts candidate-pair (or unit)
/// evaluations — for the kernel path that is kernel evaluations, so the
/// counter stays identical to the interpreted path's Detect-call count.
struct TaskOutput {
  std::vector<ViolationWithFixes> violations;
  uint64_t detect_calls = 0;
};

/// Runs Detect (and GenFix) on the ordered pair (a, b), appending to `out`.
inline void Probe(const Rule& rule, const Row& a, const Row& b,
                  TaskOutput* out) {
  ++out->detect_calls;
  std::vector<Violation> found;
  rule.Detect(a, b, &found);
  for (auto& v : found) {
    ViolationWithFixes vf;
    vf.violation = std::move(v);
    rule.GenFix(vf.violation, &vf.fixes);
    out->violations.push_back(std::move(vf));
  }
}

/// Materializes violations + fixes for a pair the kernel already decided
/// matches. Does NOT bump detect_calls — the kernel path counts every
/// evaluated pair, matching or not, at its evaluation site.
inline void MaterializePair(const Rule& rule, const Row& a, const Row& b,
                            TaskOutput* out) {
  std::vector<Violation> found;
  rule.Detect(a, b, &found);
  for (auto& v : found) {
    ViolationWithFixes vf;
    vf.violation = std::move(v);
    rule.GenFix(vf.violation, &vf.fixes);
    out->violations.push_back(std::move(vf));
  }
}

/// Arity-1 analogue of MaterializePair.
inline void MaterializeSingle(const Rule& rule, const Row& row,
                              TaskOutput* out) {
  std::vector<Violation> found;
  rule.DetectSingle(row, &found);
  for (auto& v : found) {
    ViolationWithFixes vf;
    vf.violation = std::move(v);
    rule.GenFix(vf.violation, &vf.fixes);
    out->violations.push_back(std::move(vf));
  }
}

/// Folds one partition's morsel partials into its TaskOutput, in morsel
/// (unit-range) order — violation order stays identical to one sequential
/// pass over the partition's units.
inline TaskOutput MergeTaskPieces(std::vector<TaskOutput>&& pieces) {
  TaskOutput merged;
  size_t total = 0;
  for (const auto& piece : pieces) total += piece.violations.size();
  merged.violations.reserve(total);
  for (auto& piece : pieces) {
    merged.detect_calls += piece.detect_calls;
    for (auto& v : piece.violations) {
      merged.violations.push_back(std::move(v));
    }
  }
  return merged;
}

/// Merges per-task outputs into a DetectionResult. Driver-side (one call
/// per detection stage), so the registry bookkeeping here is off the
/// worker-timed hot path.
inline void MergeOutputs(std::vector<TaskOutput>* tasks,
                         DetectionResult* result) {
  ScopedActivity activity(
      Profiler::Instance().Intern("detect:merge", "driver"), 0, 0);
  size_t total = 0;
  for (const auto& t : *tasks) total += t.violations.size();
  result->violations.reserve(result->violations.size() + total);
  uint64_t fixes = 0;
  for (auto& t : *tasks) {
    result->detect_calls += t.detect_calls;
    for (auto& v : t.violations) {
      fixes += v.fixes.size();
      result->violations.push_back(std::move(v));
    }
  }
  if (total > 0) {
    MetricsRegistry& registry = MetricsRegistry::Instance();
    registry.GetCounter("rules.violations_detected").Add(total);
    registry.GetCounter("rules.fixes_proposed").Add(fixes);
  }
}

}  // namespace detect
}  // namespace bigdansing

#endif  // BIGDANSING_CORE_DETECT_OUTPUT_H_
