#include "core/stream_session.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>

#include "common/hash.h"
#include "common/lineage.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/stopwatch.h"
#include "core/columnar_detect.h"
#include "core/rule_engine.h"
#include "obs/quality.h"
#include "repair/strategy.h"

namespace bigdansing {

namespace {

size_t EnvSizeOr(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  return fallback;
}

/// Default session names ("stream-N") when StreamOptions carries none.
std::atomic<uint64_t>& NameCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

/// Closes the quality run of one window on every exit path (mirrors the
/// QualityRunGuard of Clean()).
struct WindowQualityGuard {
  uint64_t run_id = 0;
  const bool* converged = nullptr;
  ~WindowQualityGuard() {
    if (run_id != 0) {
      QualityRecorder::Instance().EndRun(run_id, *converged);
    }
  }
};

}  // namespace

size_t StreamOptions::DefaultBatchRows() {
  return EnvSizeOr("BD_STREAM_BATCH_ROWS", 4096);
}

size_t StreamOptions::DefaultMaxInflight() {
  return EnvSizeOr("BD_STREAM_MAX_INFLIGHT", 4);
}

StreamSession::StreamSession(ExecutionContext* parent, Table* table,
                             std::vector<RulePtr> rules, StreamOptions options)
    : parent_ctx_(parent),
      table_(table),
      rules_(std::move(rules)),
      opts_(std::move(options)) {}

StreamSession::~StreamSession() { (void)Close(); }

Status StreamSession::Init() {
  if (table_ == nullptr) {
    return Status::InvalidArgument("OpenStream: table must not be null");
  }
  if (rules_.empty()) {
    return Status::InvalidArgument("OpenStream: no rules given");
  }
  if (opts_.batch_rows == 0) opts_.batch_rows = StreamOptions::DefaultBatchRows();
  if (opts_.max_inflight_batches == 0) {
    opts_.max_inflight_batches = StreamOptions::DefaultMaxInflight();
  }
  if (opts_.max_window_iterations == 0) {
    opts_.max_window_iterations = opts_.clean.max_iterations;
  }
  name_ = opts_.session_name.empty()
              ? "stream-" + std::to_string(NameCounter().fetch_add(1) + 1)
              : opts_.session_name;

  // The session's own context: same logical cluster as the parent, but its
  // Metrics carry the session label so /stages attributes this session's
  // stages (and SimulatedWallSeconds isolates its cost for the benches).
  session_ctx_ = std::make_unique<ExecutionContext>(parent_ctx_->num_workers(),
                                                    parent_ctx_->backend());
  session_ctx_->set_morsel_rows(parent_ctx_->morsel_rows());
  session_ctx_->set_kernels_enabled(parent_ctx_->kernels_enabled());
  session_ctx_->set_fault_policy(parent_ctx_->fault_policy());
  session_ctx_->metrics().set_label(name_);

  // Physical plans once per session; the per-window engine calls rebuild
  // their own, but the session needs the blocking layout and detect schema
  // to maintain its index.
  indexes_.reserve(rules_.size());
  for (const auto& rule : rules_) {
    auto plan = BuildPhysicalPlan(rule, table_->schema(), opts_.clean.planner);
    if (!plan.ok()) return plan.status();
    RuleIndex ri;
    ri.plan = std::move(*plan);
    const bool has_key =
        ri.plan.block_key_fn || !ri.plan.blocking_columns.empty();
    // Arity-1 rules never pair within blocks, and kSingle plans ignore
    // blocking — both take the engine's changed-rows path instead.
    ri.blocked = has_key && rule->arity() == 2 &&
                 ri.plan.strategy != IterateStrategy::kSingle;
    if (ri.blocked && !ri.plan.block_key_fn) {
      for (size_t c : ri.plan.blocking_columns) {
        ri.key_cols.push_back(ri.plan.scope_columns.empty()
                                  ? c
                                  : ri.plan.scope_columns[c]);
      }
    }
    if (ri.blocked && !ri.plan.block_key_fn &&
        session_ctx_->kernels_enabled()) {
      ri.tmpl = KernelRegistry::Instance().Compile(*rule, ri.plan.detect_schema);
      if (ri.tmpl) {
        for (size_t c : ri.tmpl->columns()) {
          ri.slot_cols.push_back(ri.plan.scope_columns.empty()
                                     ? c
                                     : ri.plan.scope_columns[c]);
        }
      }
    }
    indexes_.push_back(std::move(ri));
  }

  // Indexed base columns: every blocking key column plus every kernel slot.
  for (const auto& ri : indexes_) {
    for (size_t c : ri.key_cols) {
      if (col_slot_.emplace(c, indexed_cols_.size()).second) {
        indexed_cols_.push_back(c);
      }
    }
    for (size_t c : ri.slot_cols) {
      if (col_slot_.emplace(c, indexed_cols_.size()).second) {
        indexed_cols_.push_back(c);
      }
    }
  }

  // Pool-sharing groups (union-find over slots): kernels comparing codes
  // across two columns need those columns in one pool.
  std::vector<size_t> parent(indexed_cols_.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&parent](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& ri : indexes_) {
    if (!ri.tmpl) continue;
    for (const auto& group : ri.tmpl->shared_groups()) {
      for (size_t i = 1; i < group.size(); ++i) {
        const size_t a = ri.plan.scope_columns.empty()
                             ? group[0]
                             : ri.plan.scope_columns[group[0]];
        const size_t b = ri.plan.scope_columns.empty()
                             ? group[i]
                             : ri.plan.scope_columns[group[i]];
        parent[find(col_slot_.at(a))] = find(col_slot_.at(b));
      }
    }
  }
  col_group_.resize(indexed_cols_.size());
  std::unordered_map<size_t, size_t> root_to_group;
  for (size_t s = 0; s < indexed_cols_.size(); ++s) {
    const size_t root = find(s);
    auto [it, fresh] = root_to_group.emplace(root, pools_.size());
    if (fresh) pools_.push_back(std::make_shared<const ValuePool>(
        std::vector<Value>()));
    col_group_[s] = it->second;
  }

  // Index the existing rows and mark their blocks dirty, so the first
  // processed window cleans the backlog (OpenStream + Flush ≈ Clean).
  std::vector<const Row*> existing;
  existing.reserve(table_->num_rows());
  for (size_t pos = 0; pos < table_->num_rows(); ++pos) {
    const Row& row = table_->row(pos);
    if (!row_pos_.emplace(row.id(), pos).second) {
      return Status::InvalidArgument(
          "OpenStream: duplicate row id " + std::to_string(row.id()));
    }
    next_row_id_ = std::max(next_row_id_, row.id() + 1);
    existing.push_back(&row);
  }
  GrowPools(existing);
  for (const Row* row : existing) {
    EncodeRow(*row);
    IndexInsert(*row);
    pending_changed_.insert(row->id());
  }

  directory_id_ = StreamDirectory::Instance().Register(name_);
  stats_.id = directory_id_;
  stats_.name = name_;
  stats_.rules = rules_.size();
  PushStats();
  return Status::OK();
}

void StreamSession::GrowPools(const std::vector<const Row*>& rows) {
  if (pools_.empty() || rows.empty()) return;
  std::vector<std::vector<Value>> fresh(pools_.size());
  for (const Row* row : rows) {
    for (size_t s = 0; s < indexed_cols_.size(); ++s) {
      const Value& v = row->value(indexed_cols_[s]);
      if (v.is_null()) continue;
      if (pools_[col_group_[s]]->CodeOf(v) == ValuePool::kAbsentCode) {
        fresh[col_group_[s]].push_back(v);
      }
    }
  }
  for (size_t g = 0; g < pools_.size(); ++g) {
    if (fresh[g].empty()) continue;
    std::vector<uint32_t> old_to_new;
    auto grown = GrowPool(pools_[g], fresh[g], &old_to_new);
    if (grown == pools_[g]) continue;
    pools_[g] = std::move(grown);
    ++pool_epoch_;
    ++stats_.pool_growths;
    // Monotone remap of every stored code of this group's columns.
    for (auto& [id, codes] : row_codes_) {
      for (size_t s = 0; s < indexed_cols_.size(); ++s) {
        if (col_group_[s] != g) continue;
        const uint32_t c = codes[s];
        if (c < old_to_new.size()) codes[s] = old_to_new[c];
      }
    }
  }
}

void StreamSession::EncodeRow(const Row& row) {
  if (indexed_cols_.empty()) return;
  auto& codes = row_codes_[row.id()];
  codes.resize(indexed_cols_.size());
  for (size_t s = 0; s < indexed_cols_.size(); ++s) {
    codes[s] = pools_[col_group_[s]]->CodeOf(row.value(indexed_cols_[s]));
  }
}

void StreamSession::DropCodes(RowId id) { row_codes_.erase(id); }

bool StreamSession::KeyOf(const RuleIndex& ri, const Row& row,
                          uint64_t* key) const {
  if (ri.plan.block_key_fn) {
    // UDF keys see the scoped row, exactly as the engine's blocking stage.
    Value v = ri.plan.scope_columns.empty()
                  ? ri.plan.block_key_fn(ri.plan.detect_schema, row)
                  : ri.plan.block_key_fn(
                        ri.plan.detect_schema,
                        columnar::ScopeProject(row, ri.plan.scope_columns));
    if (v.is_null()) return false;
    *key = v.Hash();
    return true;
  }
  // Pool-hash path: hash(code) is the precomputed Value::Hash, so the key
  // is the engine's ComputeBlockKey rebuilt from dictionary codes.
  const auto codes_it = row_codes_.find(row.id());
  uint64_t h = 0x42D;
  for (size_t c : ri.key_cols) {
    uint64_t vh = 0;
    bool have = false;
    if (codes_it != row_codes_.end()) {
      const size_t slot = col_slot_.at(c);
      const uint32_t code = codes_it->second[slot];
      if (code == ValuePool::kNullCode) return false;
      const ValuePool& pool = *pools_[col_group_[slot]];
      if (code < pool.size()) {
        vh = pool.hash(code);
        have = true;
      }
    }
    if (!have) {
      const Value& v = row.value(c);
      if (v.is_null()) return false;
      vh = v.Hash();
    }
    h = StableHashUint64(h ^ vh);
  }
  *key = h;
  return true;
}

void StreamSession::IndexInsert(const Row& row) {
  for (auto& ri : indexes_) {
    if (!ri.blocked) continue;
    uint64_t key = 0;
    if (!KeyOf(ri, row, &key)) continue;
    ri.blocks[key].insert(row.id());
    ri.row_key[row.id()] = key;
    ri.dirty.insert(key);
  }
}

void StreamSession::IndexRemove(RowId id) {
  for (auto& ri : indexes_) {
    if (!ri.blocked) continue;
    auto it = ri.row_key.find(id);
    if (it == ri.row_key.end()) continue;
    auto block = ri.blocks.find(it->second);
    if (block != ri.blocks.end()) {
      block->second.erase(id);
      if (block->second.empty()) ri.blocks.erase(block);
    }
    ri.dirty.insert(it->second);
    ri.row_key.erase(it);
  }
}

void StreamSession::Rekey(const Row& row) {
  for (auto& ri : indexes_) {
    if (!ri.blocked) continue;
    uint64_t new_key = 0;
    const bool has_new = KeyOf(ri, row, &new_key);
    auto it = ri.row_key.find(row.id());
    const bool has_old = it != ri.row_key.end();
    if (has_old && has_new && it->second == new_key) continue;
    if (has_old) {
      auto block = ri.blocks.find(it->second);
      if (block != ri.blocks.end()) {
        block->second.erase(row.id());
        if (block->second.empty()) ri.blocks.erase(block);
      }
      ri.dirty.insert(it->second);
      ri.row_key.erase(it);
    }
    if (has_new) {
      ri.blocks[new_key].insert(row.id());
      ri.row_key[row.id()] = new_key;
      ri.dirty.insert(new_key);
    }
  }
}

Status StreamSession::Append(std::vector<Row> rows) {
  if (closed_) return Status::InvalidArgument("stream session is closed");
  const size_t width = table_->schema().num_attributes();
  std::unordered_set<RowId> batch_ids;
  for (auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "Append: row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
    if (row.id() < 0) row.set_id(next_row_id_++);
    if (row_pos_.count(row.id()) > 0 || pending_ids_.count(row.id()) > 0 ||
        !batch_ids.insert(row.id()).second) {
      return Status::InvalidArgument("Append: duplicate row id " +
                                     std::to_string(row.id()));
    }
    next_row_id_ = std::max(next_row_id_, row.id() + 1);
  }

  const size_t new_batches =
      (rows.size() + opts_.batch_rows - 1) / opts_.batch_rows;
  if (!opts_.block_on_backpressure &&
      pending_.size() + new_batches > opts_.max_inflight_batches) {
    ++stats_.backpressure_rejections;
    MetricsRegistry::Instance()
        .GetCounter("stream.backpressure_rejections")
        .Add(1);
    PushStats();
    return Status::ResourceExhausted(
        "stream session " + name_ + ": in-flight window full (" +
        std::to_string(pending_.size()) + " batches queued, bound " +
        std::to_string(opts_.max_inflight_batches) + "); Poll() and retry");
  }

  for (size_t begin = 0; begin < rows.size(); begin += opts_.batch_rows) {
    const size_t end = std::min(begin + opts_.batch_rows, rows.size());
    std::vector<Row> batch(std::make_move_iterator(rows.begin() + begin),
                           std::make_move_iterator(rows.begin() + end));
    for (const auto& row : batch) pending_ids_.insert(row.id());
    stats_.appended_rows += batch.size();
    pending_.push_back(std::move(batch));
    ++stats_.batches_enqueued;
  }

  // Blocking backpressure: the appender's thread drains windows until the
  // queue fits the bound again.
  while (pending_.size() > opts_.max_inflight_batches) {
    ++stats_.backpressure_waits;
    MetricsRegistry::Instance().GetCounter("stream.backpressure_waits").Add(1);
    auto drained = ProcessWindow();
    if (!drained.ok()) return drained.status();
  }
  PushStats();
  return Status::OK();
}

Status StreamSession::AppendValues(std::vector<std::vector<Value>> rows) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (auto& values : rows) out.emplace_back(-1, std::move(values));
  return Append(std::move(out));
}

Status StreamSession::Retract(const std::vector<RowId>& row_ids) {
  if (closed_) return Status::InvalidArgument("stream session is closed");
  std::vector<size_t> positions;
  for (RowId id : row_ids) {
    if (pending_ids_.count(id) > 0) {
      // Still queued: the row never reaches the table.
      for (auto& batch : pending_) {
        for (auto it = batch.begin(); it != batch.end(); ++it) {
          if (it->id() == id) {
            batch.erase(it);
            break;
          }
        }
      }
      pending_ids_.erase(id);
      ++stats_.retracted_rows;
      continue;
    }
    auto pos = row_pos_.find(id);
    if (pos == row_pos_.end()) continue;  // unknown/already retracted
    IndexRemove(id);
    DropCodes(id);
    pending_changed_.erase(id);
    positions.push_back(pos->second);
    ++stats_.retracted_rows;
  }
  if (!positions.empty()) {
    // Erase back-to-front so earlier positions stay valid, then rebuild the
    // position map once.
    std::sort(positions.begin(), positions.end(), std::greater<size_t>());
    auto& rows = table_->mutable_rows();
    for (size_t pos : positions) rows.erase(rows.begin() + pos);
    row_pos_.clear();
    for (size_t pos = 0; pos < rows.size(); ++pos) {
      row_pos_[rows[pos].id()] = pos;
    }
  }
  PushStats();
  return Status::OK();
}

bool StreamSession::HasWork() const {
  if (!pending_.empty() || !pending_changed_.empty()) return true;
  for (const auto& ri : indexes_) {
    if (!ri.dirty.empty()) return true;
  }
  return false;
}

void StreamSession::EnsureKernelBound(RuleIndex* ri) {
  if (!ri->tmpl) return;
  if (ri->kernel && ri->kernel_pool_epoch == pool_epoch_) return;
  std::vector<const ValuePool*> pools;
  pools.reserve(ri->slot_cols.size());
  for (size_t c : ri->slot_cols) {
    pools.push_back(pools_[col_group_[col_slot_.at(c)]].get());
  }
  const bool rebind = ri->kernel != nullptr;
  ri->kernel = ri->tmpl->Bind(pools);
  ri->kernel_pool_epoch = pool_epoch_;
  if (rebind) {
    ++stats_.kernel_rebinds;
    MetricsRegistry::Instance().GetCounter("stream.kernel_rebinds").Add(1);
  }
}

bool StreamSession::BlockMayViolate(RuleIndex* ri,
                                    const std::vector<size_t>& positions) {
  if (!ri->kernel) return true;
  const size_t n = positions.size();
  const size_t slots = ri->slot_cols.size();
  std::vector<std::vector<uint32_t>> slot_codes(
      slots, std::vector<uint32_t>(n, ValuePool::kNullCode));
  for (size_t i = 0; i < n; ++i) {
    const Row& row = table_->row(positions[i]);
    auto it = row_codes_.find(row.id());
    if (it == row_codes_.end()) return true;  // unencoded: assume dirty
    for (size_t s = 0; s < slots; ++s) {
      slot_codes[s][i] = it->second[col_slot_.at(ri->slot_cols[s])];
    }
  }
  std::vector<const uint32_t*> ptrs;
  ptrs.reserve(slots);
  for (size_t s = 0; s < slots; ++s) ptrs.push_back(slot_codes[s].data());
  const bool symmetric = ri->plan.rule->IsSymmetric();
  CodeTuple a{ptrs.data(), 0};
  CodeTuple b{ptrs.data(), 0};
  for (size_t i = 0; i < n; ++i) {
    a.row = i;
    for (size_t j = i + 1; j < n; ++j) {
      b.row = j;
      if (ri->kernel->Matches(a, b)) return true;
      if (!symmetric && ri->kernel->Matches(b, a)) return true;
    }
  }
  return false;
}

Table StreamSession::BuildCandidateTable(RuleIndex* ri, size_t* candidates) {
  EnsureKernelBound(ri);
  std::vector<size_t> positions;
  std::vector<size_t> block_positions;
  for (uint64_t key : ri->dirty) {
    auto block = ri->blocks.find(key);
    if (block == ri->blocks.end() || block->second.size() < 2) continue;
    block_positions.clear();
    block_positions.reserve(block->second.size());
    for (RowId id : block->second) {
      auto pos = row_pos_.find(id);
      if (pos != row_pos_.end()) block_positions.push_back(pos->second);
    }
    if (block_positions.size() < 2) continue;
    // Table order inside the block, so detection enumerates candidate pairs
    // exactly as a full pass over the base table would.
    std::sort(block_positions.begin(), block_positions.end());
    if (!BlockMayViolate(ri, block_positions)) continue;
    positions.insert(positions.end(), block_positions.begin(),
                     block_positions.end());
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  *candidates = positions.size();
  Table sub(table_->schema());
  for (size_t pos : positions) sub.AppendRowWithId(table_->row(pos));
  return sub;
}

size_t StreamSession::ApplyWindowAssignments(
    const std::vector<CellAssignment>& assignments,
    const std::vector<FixProvenance>& provenance, size_t iteration,
    const std::vector<ViolationWithFixes>& violations,
    QualityIterationSample* sample) {
  LineageRecorder& lineage = LineageRecorder::Instance();
  const bool lineage_on = lineage.enabled();
  const Schema& schema = table_->schema();
  auto column_name = [&schema](size_t col) {
    return col < schema.num_attributes() ? schema.attribute(col)
                                         : std::string();
  };

  std::unordered_set<uint64_t> resolved;
  std::unordered_set<RowId> touched;
  size_t changed = 0;
  for (size_t i = 0; i < assignments.size(); ++i) {
    const auto& a = assignments[i];
    if (frozen_.count(a.cell) > 0) continue;
    auto pos = row_pos_.find(a.cell.row_id);
    if (pos == row_pos_.end()) continue;  // retracted under the repair
    Row& row = table_->mutable_row(pos->second);
    if (a.cell.column >= row.size()) continue;
    if (row.value(a.cell.column) == a.value) continue;
    if (lineage_on) {
      LineageEntry entry;
      entry.row_id = a.cell.row_id;
      entry.column = a.cell.column;
      entry.attribute = column_name(a.cell.column);
      entry.old_value = row.value(a.cell.column);
      entry.new_value = a.value;
      entry.iteration = iteration;
      if (i < provenance.size()) {
        entry.rule = provenance[i].rule;
        entry.violation_id = provenance[i].violation_id;
        entry.strategy = provenance[i].strategy;
        entry.component = provenance[i].component;
      }
      lineage.RecordFix(std::move(entry));
    }
    if (i < provenance.size()) resolved.insert(provenance[i].violation_id);
    if (sample != nullptr) {
      const std::string rule =
          i < provenance.size() ? provenance[i].rule : std::string();
      ++sample->fixes[rule][column_name(a.cell.column)];
    }
    row.set_value(a.cell.column, a.value);
    ++changed;
    if (col_slot_.count(a.cell.column) > 0) touched.insert(a.cell.row_id);
  }

  // Repaired values may be new to the pools (rule constants); grow once for
  // the whole pass, then move the touched rows between blocks.
  if (!touched.empty()) {
    std::vector<const Row*> rows;
    rows.reserve(touched.size());
    for (RowId id : touched) rows.push_back(&table_->row(row_pos_.at(id)));
    GrowPools(rows);
    for (const Row* row : rows) {
      EncodeRow(*row);
      Rekey(*row);
    }
  }

  // Unresolved survivors, attributed as Clean() attributes them.
  const bool quality_on = sample != nullptr;
  if (lineage_on || quality_on) {
    for (uint64_t vid = 0; vid < violations.size(); ++vid) {
      if (resolved.count(vid) > 0) continue;
      if (lineage_on) {
        lineage.RecordUnresolved(violations[vid].violation.rule_name, vid,
                                 iteration);
      }
      if (quality_on) {
        ++sample->unresolved[violations[vid].violation.rule_name][column_name(
            violations[vid].fixes.front().left.ref.column)];
      }
      ++stats_.unresolved_violations;
    }
  }
  return changed;
}

Result<StreamWindowReport> StreamSession::ProcessWindow() {
  StreamWindowReport rep;
  rep.window_id = ++window_seq_;
  Stopwatch window_timer;

  std::optional<ScopedFaultPolicy> scoped_policy;
  if (opts_.clean.fault_policy.has_value()) {
    scoped_policy.emplace(ctx(), *opts_.clean.fault_policy);
  }

  // Land the oldest micro-batch: append, encode against the session pools,
  // join the violation index (marking the joined blocks dirty).
  if (!pending_.empty()) {
    std::vector<Row> batch = std::move(pending_.front());
    pending_.pop_front();
    ++stats_.batches_processed;
    rep.appended_rows = batch.size();
    const size_t first_pos = table_->num_rows();
    for (auto& row : batch) {
      pending_ids_.erase(row.id());
      row_pos_[row.id()] = table_->num_rows();
      table_->AppendRowWithId(std::move(row));
    }
    std::vector<const Row*> fresh;
    fresh.reserve(table_->num_rows() - first_pos);
    for (size_t pos = first_pos; pos < table_->num_rows(); ++pos) {
      fresh.push_back(&table_->row(pos));
    }
    GrowPools(fresh);
    for (const Row* row : fresh) {
      EncodeRow(*row);
      IndexInsert(*row);
      pending_changed_.insert(row->id());
    }
  }

  std::unordered_set<RowId> changed = std::move(pending_changed_);
  pending_changed_.clear();

  RuleEngine engine(ctx(), opts_.clean.planner);
  const RepairStrategy& repair_strategy =
      RepairStrategyFor(opts_.clean.repair_mode);
  QualityRecorder& quality = QualityRecorder::Instance();
  const bool quality_on = quality.enabled();
  const uint64_t quality_run =
      quality_on ? quality.BeginRun(rules_.size(), table_->num_rows(), name_)
                 : 0;
  WindowQualityGuard quality_guard{quality_run, &rep.converged};
  auto oscillating_cells = [this]() {
    uint64_t n = 0;
    for (const auto& [cell, count] : update_counts_) {
      if (count >= 2) ++n;
    }
    return n;
  };
  const Schema& schema = table_->schema();
  auto column_name = [&schema](size_t col) {
    return col < schema.num_attributes() ? schema.attribute(col)
                                         : std::string();
  };

  try {
    for (size_t iter = 0; iter < opts_.max_window_iterations; ++iter) {
      rep.iterations = iter + 1;
      QualityIterationSample sample;
      sample.iteration = iter + 1;

      // Detect over only what this window touched: dirty blocks through the
      // index for blocked rules, the engine's incremental changed-rows path
      // for the rest.
      Stopwatch detect_timer;
      std::vector<ViolationWithFixes> pooled;
      for (size_t r = 0; r < rules_.size(); ++r) {
        RuleIndex& ri = indexes_[r];
        std::vector<ViolationWithFixes> found;
        if (ri.blocked) {
          if (ri.dirty.empty()) continue;
          rep.dirty_blocks += ri.dirty.size();
          size_t candidates = 0;
          Table sub = BuildCandidateTable(&ri, &candidates);
          ri.dirty.clear();
          rep.candidate_rows += candidates;
          if (sub.num_rows() < 2) continue;
          DetectRequest req;
          req.table = &sub;
          req.rules = {rules_[r]};
          auto res = engine.Detect(req);
          if (!res.ok()) return res.status();
          found = std::move((*res)[0].violations);
        } else {
          if (changed.empty()) continue;
          DetectRequest req;
          req.table = table_;
          req.rules = {rules_[r]};
          req.changed_rows = &changed;
          auto res = engine.Detect(req);
          if (!res.ok()) return res.status();
          found = std::move((*res)[0].violations);
        }
        // Pool across rules, dropping violations whose fixes only touch
        // frozen cells (same termination contract as Clean()).
        for (auto& vf : found) {
          bool repairable = false;
          for (const auto& f : vf.fixes) {
            if (frozen_.count(f.left.ref) == 0) {
              repairable = true;
              break;
            }
          }
          if (repairable && !vf.fixes.empty()) {
            if (quality_on) {
              ++sample.violations[vf.violation.rule_name]
                                 [column_name(vf.fixes.front().left.ref.column)];
            }
            pooled.push_back(std::move(vf));
          }
        }
      }
      rep.detect_seconds += detect_timer.ElapsedSeconds();
      rep.violations += pooled.size();
      stats_.violations_found += pooled.size();

      if (pooled.empty()) {
        rep.converged = true;
        if (quality_on) {
          sample.frozen_cells = frozen_.size();
          sample.oscillating_cells = oscillating_cells();
          quality.RecordIteration(quality_run, sample);
        }
        break;
      }

      Stopwatch repair_timer;
      auto pass = repair_strategy.Repair(ctx(), pooled, opts_.clean.repair);
      if (!pass.ok()) return pass.status();
      const size_t applied = ApplyWindowAssignments(
          pass->applied, pass->provenance, iter + 1, pooled,
          quality_on ? &sample : nullptr);
      rep.repair_seconds += repair_timer.ElapsedSeconds();
      rep.applied_fixes += applied;
      stats_.fixes_applied += applied;

      if (applied == 0) {
        // Nothing applicable: the surviving violations have no possible
        // fixes, so re-detecting their blocks would spin forever.
        rep.converged = true;
        if (quality_on) {
          sample.frozen_cells = frozen_.size();
          sample.oscillating_cells = oscillating_cells();
          quality.RecordIteration(quality_run, sample);
        }
        break;
      }

      // Next iteration re-verifies only what this repair touched: Clean()'s
      // freeze bookkeeping over every proposed assignment, the touched
      // rows' blocks re-marked dirty (Rekey already dirtied moved rows).
      changed.clear();
      for (const auto& a : pass->applied) {
        changed.insert(a.cell.row_id);
        if (++update_counts_[a.cell] >= opts_.clean.freeze_after_updates) {
          frozen_.insert(a.cell);
        }
      }
      for (RowId id : changed) {
        for (auto& ri : indexes_) {
          if (!ri.blocked) continue;
          auto key = ri.row_key.find(id);
          if (key != ri.row_key.end()) ri.dirty.insert(key->second);
        }
      }

      if (quality_on) {
        sample.frozen_cells = frozen_.size();
        sample.oscillating_cells = oscillating_cells();
        quality.RecordIteration(quality_run, sample);
      }
    }
  } catch (const StageError& e) {
    return e.status();
  }

  if (!rep.converged) {
    // Iteration cap: carry the residual dirt into the next window so the
    // fix-point resumes instead of silently dropping it.
    for (RowId id : changed) pending_changed_.insert(id);
    for (RowId id : changed) {
      for (auto& ri : indexes_) {
        if (!ri.blocked) continue;
        auto key = ri.row_key.find(id);
        if (key != ri.row_key.end()) ri.dirty.insert(key->second);
      }
    }
  } else {
    ++stats_.windows_converged;
  }

  const double window_seconds = window_timer.ElapsedSeconds();
  stats_.last_window_seconds = window_seconds;
  stats_.max_window_seconds = std::max(stats_.max_window_seconds,
                                       window_seconds);
  stats_.total_detect_seconds += rep.detect_seconds;
  stats_.total_repair_seconds += rep.repair_seconds;
  MetricsRegistry::Instance().GetCounter("stream.windows_processed").Add(1);
  PushStats();
  return rep;
}

Result<StreamWindowReport> StreamSession::Poll() {
  if (closed_) return Status::InvalidArgument("stream session is closed");
  if (!HasWork()) {
    StreamWindowReport rep;
    rep.converged = true;
    return rep;
  }
  return ProcessWindow();
}

Status StreamSession::RunVerifyWindows(StreamFlushReport* out) {
  RuleEngine engine(ctx(), opts_.clean.planner);
  const RepairStrategy& repair_strategy =
      RepairStrategyFor(opts_.clean.repair_mode);
  QualityRecorder& quality = QualityRecorder::Instance();
  std::optional<ScopedFaultPolicy> scoped_policy;
  if (opts_.clean.fault_policy.has_value()) {
    scoped_policy.emplace(ctx(), *opts_.clean.fault_policy);
  }
  const Schema& schema = table_->schema();
  auto column_name = [&schema](size_t col) {
    return col < schema.num_attributes() ? schema.attribute(col)
                                         : std::string();
  };

  for (size_t iter = 0; iter < opts_.clean.max_iterations; ++iter) {
    StreamWindowReport rep;
    rep.window_id = ++window_seq_;
    rep.iterations = 1;
    Stopwatch window_timer;
    const bool quality_on = quality.enabled();
    const uint64_t quality_run =
        quality_on ? quality.BeginRun(rules_.size(), table_->num_rows(), name_)
                   : 0;
    WindowQualityGuard quality_guard{quality_run, &rep.converged};
    QualityIterationSample sample;
    sample.iteration = 1;

    // Full-table verification detect: the same pass Clean() ends with, so
    // a drained session certifies convergence against every rule at once.
    Stopwatch detect_timer;
    DetectRequest req;
    req.table = table_;
    req.rules = rules_;
    auto detections = engine.Detect(req);
    if (!detections.ok()) return detections.status();
    std::vector<ViolationWithFixes> pooled;
    for (auto& d : *detections) {
      for (auto& vf : d.violations) {
        bool repairable = false;
        for (const auto& f : vf.fixes) {
          if (frozen_.count(f.left.ref) == 0) {
            repairable = true;
            break;
          }
        }
        if (repairable && !vf.fixes.empty()) {
          if (quality_on) {
            ++sample.violations[vf.violation.rule_name]
                               [column_name(vf.fixes.front().left.ref.column)];
          }
          pooled.push_back(std::move(vf));
        }
      }
    }
    rep.detect_seconds = detect_timer.ElapsedSeconds();
    rep.violations = pooled.size();
    rep.candidate_rows = table_->num_rows();
    stats_.violations_found += pooled.size();

    if (pooled.empty()) {
      rep.converged = true;
      out->converged = true;
      // The whole table verified clean: no dirt can be pending.
      for (auto& ri : indexes_) ri.dirty.clear();
      pending_changed_.clear();
      ++stats_.windows_converged;
      if (quality_on) {
        quality.RecordIteration(quality_run, sample);
      }
      stats_.total_detect_seconds += rep.detect_seconds;
      stats_.last_window_seconds = window_timer.ElapsedSeconds();
      out->windows.push_back(rep);
      PushStats();
      break;
    }

    Stopwatch repair_timer;
    auto pass = repair_strategy.Repair(ctx(), pooled, opts_.clean.repair);
    if (!pass.ok()) return pass.status();
    const size_t applied = ApplyWindowAssignments(
        pass->applied, pass->provenance, 1, pooled,
        quality_on ? &sample : nullptr);
    rep.repair_seconds = repair_timer.ElapsedSeconds();
    rep.applied_fixes = applied;
    stats_.fixes_applied += applied;
    out->total_violations += pooled.size();
    out->total_applied_fixes += applied;

    for (const auto& a : pass->applied) {
      if (++update_counts_[a.cell] >= opts_.clean.freeze_after_updates) {
        frozen_.insert(a.cell);
      }
    }
    if (quality_on) {
      sample.frozen_cells = frozen_.size();
      quality.RecordIteration(quality_run, sample);
    }
    stats_.total_detect_seconds += rep.detect_seconds;
    stats_.total_repair_seconds += rep.repair_seconds;
    stats_.last_window_seconds = window_timer.ElapsedSeconds();
    out->windows.push_back(rep);
    PushStats();

    if (applied == 0) {
      // No possible fixes: Clean() reports this state converged.
      out->converged = true;
      for (auto& ri : indexes_) ri.dirty.clear();
      pending_changed_.clear();
      ++stats_.windows_converged;
      break;
    }
  }
  return Status::OK();
}

Result<StreamFlushReport> StreamSession::Flush() {
  if (closed_) return Status::InvalidArgument("stream session is closed");
  StreamFlushReport out;
  // Freeze bookkeeping bounds this drain exactly as it bounds Clean():
  // every non-converged window applies at least one real change, and
  // oscillating cells freeze after freeze_after_updates rounds.
  while (HasWork()) {
    auto rep = ProcessWindow();
    if (!rep.ok()) return rep.status();
    out.total_violations += rep->violations;
    out.total_applied_fixes += rep->applied_fixes;
    out.converged = rep->converged;
    out.windows.push_back(std::move(*rep));
  }
  if (opts_.verify_on_flush) {
    out.converged = false;
    Status st = RunVerifyWindows(&out);
    if (!st.ok()) return st;
  }
  PushStats();
  return out;
}

StreamSessionStats StreamSession::stats() const {
  StreamSessionStats s = stats_;
  s.rows = table_ != nullptr ? table_->num_rows() : 0;
  s.pending_batches = pending_.size();
  s.open = !closed_;
  size_t blocks = 0;
  size_t rows = 0;
  for (const auto& ri : indexes_) {
    blocks += ri.blocks.size();
    rows += ri.row_key.size();
  }
  s.index_blocks = blocks;
  s.index_rows = rows;
  size_t pool_values = 0;
  for (const auto& pool : pools_) pool_values += pool->size();
  s.pool_values = pool_values;
  return s;
}

std::vector<std::pair<std::string, uint64_t>>
StreamSession::IndexFingerprints() const {
  // Stable over (sorted block key -> sorted member ids): identical content
  // must fingerprint identically whatever the append/retract history was.
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(indexes_.size());
  for (const auto& ri : indexes_) {
    std::vector<uint64_t> keys;
    keys.reserve(ri.blocks.size());
    for (const auto& [key, members] : ri.blocks) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    uint64_t h = 0x5EED;
    for (uint64_t key : keys) {
      h = StableHashUint64(h ^ key);
      const auto& members = ri.blocks.at(key);
      std::vector<RowId> ids(members.begin(), members.end());
      std::sort(ids.begin(), ids.end());
      for (RowId id : ids) {
        h = StableHashUint64(h ^ static_cast<uint64_t>(id));
      }
    }
    out.emplace_back(ri.plan.rule->name(), h);
  }
  return out;
}

void StreamSession::PushStats(bool closing) {
  StreamSessionStats s = stats();
  if (closing) s.open = false;
  StreamDirectory::Instance().Update(s);
}

Status StreamSession::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  PushStats(/*closing=*/true);
  StreamDirectory::Instance().Close(directory_id_);
  return Status::OK();
}

}  // namespace bigdansing
