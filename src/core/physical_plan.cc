#include "core/physical_plan.h"

#include "common/string_util.h"
#include "common/trace.h"

namespace bigdansing {

const char* IterateStrategyName(IterateStrategy strategy) {
  switch (strategy) {
    case IterateStrategy::kCrossProduct:
      return "CrossProduct";
    case IterateStrategy::kUCrossProduct:
      return "UCrossProduct";
    case IterateStrategy::kOCJoin:
      return "OCJoin";
    case IterateStrategy::kSingle:
      return "Single";
  }
  return "?";
}

std::string PhysicalRulePlan::ToString() const {
  std::string out = "PhysicalPlan[" + rule->name() + "]: ";
  out += scope_columns.empty() ? "scan" : "scope(" + std::to_string(scope_columns.size()) + " cols)";
  if (!blocking_columns.empty()) {
    out += " -> block(" + std::to_string(blocking_columns.size()) + " cols)";
  } else if (block_key_fn) {
    out += " -> block(udf)";
  }
  out += " -> ";
  out += IterateStrategyName(strategy);
  out += " -> detect -> genfix";
  return out;
}

void PhysicalRulePlan::AnnotateSpan(ScopedSpan* span) const {
  if (span == nullptr || span->id() == 0) return;
  span->Annotate("strategy", std::string(IterateStrategyName(strategy)));
  span->Annotate("scope_columns",
                 static_cast<uint64_t>(scope_columns.size()));
  if (block_key_fn) {
    span->Annotate("blocking", std::string("udf"));
  } else {
    span->Annotate("blocking_columns",
                   static_cast<uint64_t>(blocking_columns.size()));
  }
  if (!ocjoin_conditions.empty()) {
    span->Annotate("ocjoin_conditions",
                   static_cast<uint64_t>(ocjoin_conditions.size()));
  }
}

Result<PhysicalRulePlan> BuildPhysicalPlan(const RulePtr& rule,
                                           const Schema& base_schema,
                                           const PlannerOptions& options) {
  if (rule == nullptr) return Status::InvalidArgument("rule is null");
  PhysicalRulePlan plan;
  plan.rule = rule;

  // PScope: project to the rule's relevant attributes when enabled.
  std::vector<std::string> relevant = rule->RelevantAttributes();
  if (options.enable_scope && !relevant.empty()) {
    for (const auto& a : relevant) {
      auto idx = base_schema.IndexOf(a);
      if (!idx.ok()) return idx.status();
      plan.scope_columns.push_back(*idx);
    }
    plan.detect_schema = base_schema.Project(plan.scope_columns);
  } else {
    plan.detect_schema = base_schema;
  }

  // Bind the rule once against the schema it will see.
  BIGDANSING_RETURN_NOT_OK(rule->Bind(plan.detect_schema));

  // PBlock: resolve the blocking key against the detect schema.
  if (options.enable_blocking) {
    if (auto* udf = dynamic_cast<UdfRule*>(rule.get()); udf && udf->block_key()) {
      plan.block_key_fn = udf->block_key();
    } else {
      for (const auto& a : rule->BlockingAttributes()) {
        auto idx = plan.detect_schema.IndexOf(a);
        if (!idx.ok()) return idx.status();
        plan.blocking_columns.push_back(*idx);
      }
    }
  }

  // Iterate enhancer selection (§4.2): OCJoin when ordering conditions
  // exist, UCrossProduct for symmetric rules, CrossProduct otherwise.
  if (rule->arity() == 1) {
    plan.strategy = IterateStrategy::kSingle;
    return plan;
  }
  std::vector<OrderingCondition> conditions = rule->OrderingConditions();
  if (options.enable_ocjoin && !conditions.empty()) {
    plan.strategy = IterateStrategy::kOCJoin;
    for (auto& c : conditions) {
      auto left = plan.detect_schema.IndexOf(c.left_attr);
      if (!left.ok()) return left.status();
      auto right = plan.detect_schema.IndexOf(c.right_attr);
      if (!right.ok()) return right.status();
      c.left_column = *left;
      c.right_column = *right;
    }
    plan.ocjoin_conditions = std::move(conditions);
    return plan;
  }
  if (options.enable_ucross_product) {
    // UCrossProduct enumerates each unordered pair once. Symmetric rules
    // are probed once per pair (halving Detect calls); asymmetric rules are
    // probed in both orientations but still skip materializing reversed
    // pairs — the paper's "slight performance advantage" over CrossProduct.
    plan.strategy = IterateStrategy::kUCrossProduct;
    return plan;
  }
  // Wrapper translation: cross product over all ordered pairs. It covers
  // both orientations inherently, so it is correct for any rule — at the
  // cost of duplicate probes (and duplicate violations) for symmetric ones.
  plan.strategy = IterateStrategy::kCrossProduct;
  return plan;
}

}  // namespace bigdansing
