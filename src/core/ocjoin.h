#ifndef BIGDANSING_CORE_OCJOIN_H_
#define BIGDANSING_CORE_OCJOIN_H_

#include <cstddef>
#include <vector>

#include "data/row.h"
#include "dataflow/context.h"
#include "rules/rule.h"

namespace bigdansing {

/// Options for the OCJoin enhancer.
struct OCJoinOptions {
  /// Number of range partitions; 0 derives one from the input size and the
  /// context's worker count.
  size_t num_partitions = 0;
  /// Reorder the join conditions by estimated selectivity before running,
  /// putting the most selective condition first (§4.3: "If the selectivity
  /// values for the different inequality conditions are known, OCJoin can
  /// order the different joins accordingly"). Selectivity is estimated by
  /// probing a sample of row pairs; see `selectivity_sample_pairs`.
  bool order_conditions_by_selectivity = false;
  /// Number of sampled row pairs used for the selectivity estimate.
  size_t selectivity_sample_pairs = 512;
};

/// Statistics reported by one OCJoin execution, used by tests and by the
/// Fig 11(c) ablation bench to show how pruning cuts work.
struct OCJoinStats {
  size_t num_partitions = 0;
  size_t partition_pairs_total = 0;
  size_t partition_pairs_after_pruning = 0;
  size_t candidate_pairs = 0;  ///< Pairs satisfying the first condition.
  size_t result_pairs = 0;     ///< Pairs satisfying every condition.
  /// Index (into the caller's condition list) of the condition the join
  /// ran first — != 0 only when selectivity ordering moved one forward.
  size_t primary_condition = 0;
};

/// The self-join over ordering comparisons of §4.3 (Algorithm 2):
/// 1. range-partitions `rows` on the first condition's primary attribute,
/// 2. sorts each partition once per condition attribute,
/// 3. prunes partition pairs whose [min, max] ranges cannot satisfy the
///    conditions, and
/// 4. sort-merge joins the surviving pairs in parallel.
///
/// Returns every ordered pair (t1, t2) satisfying all conditions, where a
/// condition reads t1.left_column op t2.right_column. Rows with a null
/// value in any condition attribute never join. `stats` (optional) receives
/// execution counters.
std::vector<RowPair> OCJoin(ExecutionContext* ctx,
                            const std::vector<Row>& rows,
                            const std::vector<OrderingCondition>& conditions,
                            const OCJoinOptions& options,
                            OCJoinStats* stats = nullptr);

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_OCJOIN_H_
