#include "core/ocjoin.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "dataflow/stage_executor.h"

namespace bigdansing {

namespace {

/// Evaluates `a op b` for an ordering comparison. Callers guarantee a and b
/// are non-null.
bool EvalOrdering(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kLeq:
      return a <= b;
    case CmpOp::kGeq:
      return a >= b;
    default:
      return false;
  }
}

/// Per-partition state after the sorting phase: row storage, one sorted
/// index per condition column (nulls excluded), and min/max per column.
struct PartitionState {
  std::vector<Row> rows;
  /// column -> indices of rows with non-null values, sorted ascending.
  std::unordered_map<size_t, std::vector<uint32_t>> sorted;
  /// column -> (min, max) over non-null values; absent if all null.
  std::unordered_map<size_t, std::pair<Value, Value>> range;
};

/// True when some value in [t1_range] op [t2_range] can hold.
bool RangesCanSatisfy(const std::pair<Value, Value>& t1_range, CmpOp op,
                      const std::pair<Value, Value>& t2_range) {
  switch (op) {
    case CmpOp::kLt:
      return t1_range.first < t2_range.second;
    case CmpOp::kLeq:
      return t1_range.first <= t2_range.second;
    case CmpOp::kGt:
      return t1_range.second > t2_range.first;
    case CmpOp::kGeq:
      return t1_range.second >= t2_range.first;
    default:
      return true;
  }
}

}  // namespace

std::vector<RowPair> OCJoin(ExecutionContext* ctx,
                            const std::vector<Row>& rows,
                            const std::vector<OrderingCondition>& conditions,
                            const OCJoinOptions& options, OCJoinStats* stats) {
  OCJoinStats local_stats;
  std::vector<RowPair> results;
  if (stats != nullptr) *stats = local_stats;
  if (rows.empty() || conditions.empty()) return results;

  ScopedSpan span("ocjoin", "operator");
  span.Annotate("rows", static_cast<uint64_t>(rows.size()));
  span.Annotate("conditions", static_cast<uint64_t>(conditions.size()));

  // --- Optional condition ordering by estimated selectivity (§4.3) ---
  // The first condition drives the merge and determines the candidate
  // count, so the most selective one (fewest satisfying pairs on a random
  // pair sample) should run first.
  std::vector<OrderingCondition> ordered = conditions;
  const std::vector<OrderingCondition>& conds = ordered;
  size_t primary_condition = 0;
  if (options.order_conditions_by_selectivity && conds.size() > 1 &&
      rows.size() >= 2) {
    std::vector<size_t> hits(conds.size(), 0);
    uint64_t state = 0x5EEDF00DULL ^ rows.size();
    auto next_index = [&state, &rows]() {
      state = StableHashUint64(state + 1);
      return static_cast<size_t>(state % rows.size());
    };
    for (size_t s = 0; s < options.selectivity_sample_pairs; ++s) {
      const Row& a = rows[next_index()];
      const Row& b = rows[next_index()];
      for (size_t j = 0; j < conds.size(); ++j) {
        const Value& l = a.value(conds[j].left_column);
        const Value& r = b.value(conds[j].right_column);
        if (!l.is_null() && !r.is_null() &&
            EvalOrdering(l, conds[j].op, r)) {
          ++hits[j];
        }
      }
    }
    for (size_t j = 1; j < conds.size(); ++j) {
      if (hits[j] < hits[primary_condition]) primary_condition = j;
    }
    if (primary_condition != 0) {
      std::swap(ordered[0], ordered[primary_condition]);
    }
  }
  local_stats.primary_condition = primary_condition;

  // --- Partitioning phase (Algorithm 2 lines 1-2) ---
  // PartAtt: the primary attribute of the first condition.
  const size_t part_col = conds[0].left_column;
  size_t np = options.num_partitions;
  if (np == 0) {
    np = std::max<size_t>(ctx->num_workers() * 2, rows.size() / 4096);
    np = std::min<size_t>(np, 256);
    if (np == 0) np = 1;
  }

  // Quantile boundaries from a strided sample of PartAtt.
  std::vector<Value> sample;
  size_t stride = std::max<size_t>(1, rows.size() / 65536);
  for (size_t i = 0; i < rows.size(); i += stride) {
    const Value& v = rows[i].value(part_col);
    if (!v.is_null()) sample.push_back(v);
  }
  std::sort(sample.begin(), sample.end());
  std::vector<Value> boundaries;
  for (size_t k = 1; k < np && !sample.empty(); ++k) {
    boundaries.push_back(sample[k * sample.size() / np]);
  }

  std::vector<PartitionState> parts(np);
  for (const Row& row : rows) {
    const Value& v = row.value(part_col);
    size_t p = 0;
    if (!v.is_null() && !boundaries.empty()) {
      p = static_cast<size_t>(
          std::upper_bound(boundaries.begin(), boundaries.end(), v) -
          boundaries.begin());
    }
    parts[p].rows.push_back(row);
  }
  ctx->metrics().AddShuffledRecords(rows.size());
  ctx->metrics().AddStage();

  // Distinct columns appearing in conditions (for sorting and ranges).
  std::vector<size_t> columns;
  for (const auto& c : conds) {
    for (size_t col : {c.left_column, c.right_column}) {
      if (std::find(columns.begin(), columns.end(), col) == columns.end()) {
        columns.push_back(col);
      }
    }
  }

  // --- Sorting phase (lines 4-5): local, one sorted list per condition
  // attribute per partition. ---
  StageExecutor executor(ctx);
  Status sort_status = executor.Run("ocjoin:sort", np, [&](size_t p, TaskContext& tc) {
    PartitionState& part = parts[p];
    tc.records_in = part.rows.size();
    for (size_t col : columns) {
      std::vector<uint32_t> idx;
      idx.reserve(part.rows.size());
      for (uint32_t i = 0; i < part.rows.size(); ++i) {
        if (!part.rows[i].value(col).is_null()) idx.push_back(i);
      }
      std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
        return part.rows[a].value(col) < part.rows[b].value(col);
      });
      if (!idx.empty()) {
        part.range.emplace(col,
                           std::make_pair(part.rows[idx.front()].value(col),
                                          part.rows[idx.back()].value(col)));
      }
      part.sorted.emplace(col, std::move(idx));
    }
    ctx->ChargeMaterialization(part.rows.size());
  });
  if (!sort_status.ok()) throw StageError(std::move(sort_status));

  // --- Pruning phase (line 7): drop partition pairs whose min/max ranges
  // cannot satisfy some condition. ---
  struct PartPair {
    size_t t1;
    size_t t2;
  };
  std::vector<PartPair> surviving;
  local_stats.num_partitions = np;
  local_stats.partition_pairs_total = np * np;
  for (size_t i = 0; i < np; ++i) {
    if (parts[i].rows.empty()) continue;
    for (size_t l = 0; l < np; ++l) {
      if (parts[l].rows.empty()) continue;
      bool possible = true;
      for (const auto& c : conds) {
        auto r1 = parts[i].range.find(c.left_column);
        auto r2 = parts[l].range.find(c.right_column);
        if (r1 == parts[i].range.end() || r2 == parts[l].range.end() ||
            !RangesCanSatisfy(r1->second, c.op, r2->second)) {
          possible = false;
          break;
        }
      }
      if (possible) surviving.push_back({i, l});
    }
  }
  local_stats.partition_pairs_after_pruning = surviving.size();

  // --- Joining phase (lines 9-14): sort-merge join on the first condition,
  // residual conditions evaluated per candidate pair. The per-pair merge is
  // split into morsels over the t1 sort order: each morsel rescans its
  // boundary from scratch (the boundary is a pure function of v1, so the
  // rescan lands exactly where the sequential scan would), making morsels
  // independent while piece-order concatenation reproduces the sequential
  // output order bit-identically.
  std::atomic<size_t> candidate_pairs{0};
  const OrderingCondition& c0 = conds[0];
  auto join_result = executor.RunMorsels<std::vector<RowPair>>(
      "ocjoin:join", surviving.size(),
      [&](size_t t) -> size_t {
        const PartitionState& p1 = parts[surviving[t].t1];
        const PartitionState& p2 = parts[surviving[t].t2];
        if (p2.sorted.at(c0.right_column).empty()) return 0;
        return p1.sorted.at(c0.left_column).size();
      },
      [&](size_t t, size_t begin, size_t end_unit, TaskContext& tc) {
        const PartitionState& p1 = parts[surviving[t].t1];
        const PartitionState& p2 = parts[surviving[t].t2];
        const auto& s1 = p1.sorted.at(c0.left_column);   // t1 side, ascending.
        const auto& s2 = p2.sorted.at(c0.right_column);  // t2 side, ascending.
        std::vector<RowPair> out;
        size_t local_candidates = 0;
        auto residuals_hold = [&](const Row& t1, const Row& t2) {
          for (size_t j = 1; j < conds.size(); ++j) {
            const auto& cj = conds[j];
            const Value& lv = t1.value(cj.left_column);
            const Value& rv = t2.value(cj.right_column);
            if (lv.is_null() || rv.is_null() || !EvalOrdering(lv, cj.op, rv)) {
              return false;
            }
          }
          return true;
        };
        // For < / <= the qualifying t2 form a suffix of s2; for > / >= a
        // prefix. The boundary moves monotonically as t1 advances through
        // its iteration order, giving the merge its linear scan structure.
        const bool suffix = c0.op == CmpOp::kLt || c0.op == CmpOp::kLeq;
        if (suffix) {
          // t1 ascending over s1 positions [begin, end_unit); qualifying
          // t2 = {b : v1 op b} is a suffix whose start moves right as v1
          // grows.
          size_t start = 0;
          for (size_t a = begin; a < end_unit; ++a) {
            const Row& t1 = p1.rows[s1[a]];
            const Value& v1 = t1.value(c0.left_column);
            while (start < s2.size() &&
                   !EvalOrdering(v1, c0.op,
                                 p2.rows[s2[start]].value(c0.right_column))) {
              ++start;
            }
            for (size_t b = start; b < s2.size(); ++b) {
              const Row& t2 = p2.rows[s2[b]];
              if (t1.id() == t2.id()) continue;
              ++local_candidates;
              if (residuals_hold(t1, t2)) out.push_back(RowPair{t1, t2});
            }
          }
        } else {
          // t1 descending; iteration step k covers a = n-1-k, so the
          // morsel [begin, end_unit) walks s1 from the top down and the
          // qualifying t2 prefix end moves left as v1 shrinks.
          size_t end = s2.size();
          for (size_t k = begin; k < end_unit; ++k) {
            const Row& t1 = p1.rows[s1[s1.size() - 1 - k]];
            const Value& v1 = t1.value(c0.left_column);
            while (end > 0 &&
                   !EvalOrdering(v1, c0.op,
                                 p2.rows[s2[end - 1]].value(c0.right_column))) {
              --end;
            }
            for (size_t b = 0; b < end; ++b) {
              const Row& t2 = p2.rows[s2[b]];
              if (t1.id() == t2.id()) continue;
              ++local_candidates;
              if (residuals_hold(t1, t2)) out.push_back(RowPair{t1, t2});
            }
          }
        }
        candidate_pairs += local_candidates;
        tc.records_in = end_unit - begin;
        tc.records_out = out.size();
        return out;
      },
      [](size_t, std::vector<std::vector<RowPair>>&& pieces) {
        size_t total = 0;
        for (const auto& piece : pieces) total += piece.size();
        std::vector<RowPair> merged;
        merged.reserve(total);
        for (auto& piece : pieces) {
          merged.insert(merged.end(), std::make_move_iterator(piece.begin()),
                        std::make_move_iterator(piece.end()));
        }
        return merged;
      });
  if (!join_result.ok()) throw StageError(join_result.status());
  std::vector<std::vector<RowPair>> task_results = std::move(*join_result);

  size_t total = 0;
  for (const auto& tr : task_results) total += tr.size();
  results.reserve(total);
  for (auto& tr : task_results) {
    results.insert(results.end(), std::make_move_iterator(tr.begin()),
                   std::make_move_iterator(tr.end()));
  }
  local_stats.candidate_pairs = candidate_pairs.load();
  local_stats.result_pairs = results.size();
  ctx->metrics().AddPairsEnumerated(local_stats.candidate_pairs);
  if (stats != nullptr) *stats = local_stats;
  if (span.id() != 0) {
    span.Annotate("num_partitions",
                  static_cast<uint64_t>(local_stats.num_partitions));
    span.Annotate("partition_pairs_total",
                  static_cast<uint64_t>(local_stats.partition_pairs_total));
    span.Annotate(
        "partition_pairs_after_pruning",
        static_cast<uint64_t>(local_stats.partition_pairs_after_pruning));
    span.Annotate("candidate_pairs",
                  static_cast<uint64_t>(local_stats.candidate_pairs));
    span.Annotate("result_pairs",
                  static_cast<uint64_t>(local_stats.result_pairs));
  }
  return results;
}

}  // namespace bigdansing
