#include "core/logical_plan.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace bigdansing {

const char* LogicalOpKindName(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScope:
      return "Scope";
    case LogicalOpKind::kBlock:
      return "Block";
    case LogicalOpKind::kIterate:
      return "Iterate";
    case LogicalOpKind::kDetect:
      return "Detect";
    case LogicalOpKind::kGenFix:
      return "GenFix";
  }
  return "?";
}

std::string LogicalOperatorDesc::ToString() const {
  std::string out = LogicalOpKindName(kind);
  out += "(" + input_label + " -> " + Join(output_labels, ',');
  if (!params.empty()) out += "; " + params;
  out += ")";
  return out;
}

std::string LogicalPlan::ToString() const {
  std::string out;
  for (const auto& op : ops) {
    out += op.ToString();
    out += "\n";
  }
  return out;
}

size_t LogicalPlan::CountOps(LogicalOpKind kind) const {
  size_t n = 0;
  for (const auto& op : ops) n += op.kind == kind ? 1 : 0;
  return n;
}

Result<LogicalPlan> BuildLogicalPlan(const RulePtr& rule, const Schema& schema,
                                     const std::string& input_label) {
  if (rule == nullptr) return Status::InvalidArgument("rule is null");
  LogicalPlan plan;
  std::string label = input_label;
  const std::string rule_tag = rule->name();

  // Scope: only when the rule narrows to known attributes.
  std::vector<std::string> relevant = rule->RelevantAttributes();
  if (!relevant.empty()) {
    for (const auto& a : relevant) {
      if (!schema.Contains(a)) {
        return Status::InvalidArgument("rule '" + rule_tag +
                                       "' references unknown attribute '" + a +
                                       "' of schema " + schema.ToString());
      }
    }
    LogicalOperatorDesc scope;
    scope.kind = LogicalOpKind::kScope;
    scope.input_label = label;
    scope.output_labels = {rule_tag + ".scoped"};
    scope.params = "cols=" + Join(relevant, ',');
    scope.rule = rule;
    label = scope.output_labels[0];
    plan.ops.push_back(std::move(scope));
  }

  // Block: when a blocking key exists (attribute-based or procedural).
  std::vector<std::string> blocking = rule->BlockingAttributes();
  bool has_udf_key = false;
  if (auto* udf = dynamic_cast<UdfRule*>(rule.get())) {
    has_udf_key = static_cast<bool>(udf->block_key());
  }
  if (!blocking.empty() || has_udf_key) {
    LogicalOperatorDesc block;
    block.kind = LogicalOpKind::kBlock;
    block.input_label = label;
    block.output_labels = {rule_tag + ".blocked"};
    block.params = has_udf_key ? "key=udf:" + rule_tag
                               : "key=" + Join(blocking, ',');
    block.rule = rule;
    label = block.output_labels[0];
    plan.ops.push_back(std::move(block));
  }

  // Iterate: generated automatically from the rule's hints (§3.2: "If
  // Iterate is not specified, BigDansing generates one according to the
  // input required by the Detect operator").
  if (rule->arity() == 2) {
    LogicalOperatorDesc iterate;
    iterate.kind = LogicalOpKind::kIterate;
    iterate.input_label = label;
    iterate.output_labels = {rule_tag + ".pairs"};
    if (!rule->OrderingConditions().empty()) {
      iterate.params = "strategy=ocjoin";
    } else if (rule->IsSymmetric()) {
      iterate.params = "strategy=ucross";
    } else {
      iterate.params = "strategy=cross";
    }
    iterate.rule = rule;
    label = iterate.output_labels[0];
    plan.ops.push_back(std::move(iterate));
  }

  LogicalOperatorDesc detect;
  detect.kind = LogicalOpKind::kDetect;
  detect.input_label = label;
  detect.output_labels = {rule_tag + ".violations"};
  detect.params = "rule=" + rule_tag;
  detect.rule = rule;
  label = detect.output_labels[0];
  plan.ops.push_back(std::move(detect));

  LogicalOperatorDesc genfix;
  genfix.kind = LogicalOpKind::kGenFix;
  genfix.input_label = label;
  genfix.output_labels = {rule_tag + ".fixes"};
  genfix.params = "rule=" + rule_tag;
  genfix.rule = rule;
  plan.ops.push_back(std::move(genfix));

  return plan;
}

Status ValidateLogicalPlan(const LogicalPlan& plan) {
  if (plan.CountOps(LogicalOpKind::kDetect) == 0) {
    return Status::InvalidArgument(
        "logical plan must contain at least one Detect operator");
  }
  // Every non-terminal output label must be consumed downstream.
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const auto& op = plan.ops[i];
    if (op.kind == LogicalOpKind::kGenFix) continue;  // Terminal.
    if (op.kind == LogicalOpKind::kDetect) {
      // §3.2: a Detect without GenFix is legal (violations go to disk).
      continue;
    }
    for (const auto& label : op.output_labels) {
      bool consumed = false;
      for (size_t j = 0; j < plan.ops.size(); ++j) {
        if (j != i && plan.ops[j].input_label == label) consumed = true;
      }
      if (!consumed) {
        return Status::InvalidArgument("operator output '" + label +
                                       "' of " + op.ToString() +
                                       " is never consumed");
      }
    }
  }
  // At most one GenFix per Detect output.
  std::unordered_set<std::string> genfix_inputs;
  for (const auto& op : plan.ops) {
    if (op.kind != LogicalOpKind::kGenFix) continue;
    if (!genfix_inputs.insert(op.input_label).second) {
      return Status::InvalidArgument("multiple GenFix operators consume '" +
                                     op.input_label + "'");
    }
  }
  return Status::OK();
}

LogicalPlan ConsolidatePlan(const LogicalPlan& plan) {
  LogicalPlan out;
  std::vector<bool> merged(plan.ops.size(), false);
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    if (merged[i]) continue;
    LogicalOperatorDesc op = plan.ops[i];
    // Detect/GenFix operators invoke rule-specific UDFs; only the data
    // preparation operators are consolidated (the paper merges Scope and
    // Block over the same input, Figure 5).
    if (op.kind == LogicalOpKind::kScope || op.kind == LogicalOpKind::kBlock ||
        op.kind == LogicalOpKind::kIterate) {
      for (size_t j = i + 1; j < plan.ops.size(); ++j) {
        if (merged[j]) continue;
        const auto& other = plan.ops[j];
        if (other.kind == op.kind && other.input_label == op.input_label &&
            other.params == op.params) {
          op.output_labels.insert(op.output_labels.end(),
                                  other.output_labels.begin(),
                                  other.output_labels.end());
          merged[j] = true;
        }
      }
    }
    out.ops.push_back(std::move(op));
  }
  return out;
}

LogicalPlan MergePlans(const std::vector<LogicalPlan>& plans) {
  LogicalPlan out;
  for (const auto& p : plans) {
    out.ops.insert(out.ops.end(), p.ops.begin(), p.ops.end());
  }
  return out;
}

}  // namespace bigdansing
