#ifndef BIGDANSING_CORE_IEJOIN_H_
#define BIGDANSING_CORE_IEJOIN_H_

#include <vector>

#include "data/row.h"
#include "dataflow/context.h"
#include "rules/rule.h"

namespace bigdansing {

/// Statistics from one IEJoin execution.
struct IEJoinStats {
  size_t rows_joined = 0;       ///< Non-null rows that entered the join.
  size_t bitmap_probes = 0;     ///< Bitmap words scanned during emission.
  size_t result_pairs = 0;
};

/// IEJoin — the sort/permutation/bit-array inequality self-join that grew
/// out of BigDansing's OCJoin (Khayyat et al., "Lightning Fast and Space
/// Efficient Inequality Joins", the follow-on work to §4.3). Handles
/// exactly two ordering conditions:
///
///   t1.A op1 t2.B   and   t1.C op2 t2.D
///
/// Instead of enumerating every pair satisfying the first condition (the
/// OCJoin merge), IEJoin sorts the data twice (once per condition), walks
/// the second order while inserting positions into a bit array indexed by
/// the first order, and emits only set bits inside the qualifying range —
/// so pairs failing either condition are never touched. Residual
/// conditions beyond the first two are evaluated per emitted pair.
///
/// Returns all ordered pairs (t1, t2), t1 != t2, satisfying every
/// condition. Rows with nulls in any condition attribute never join.
std::vector<RowPair> IEJoin(ExecutionContext* ctx,
                            const std::vector<Row>& rows,
                            const std::vector<OrderingCondition>& conditions,
                            IEJoinStats* stats = nullptr);

/// True when `conditions` fits IEJoin (at least two ordering conditions;
/// the first two drive the join).
bool IEJoinApplicable(const std::vector<OrderingCondition>& conditions);

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_IEJOIN_H_
