#ifndef BIGDANSING_CORE_JOB_H_
#define BIGDANSING_CORE_JOB_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/logical_plan.h"
#include "core/rule_engine.h"
#include "data/table.h"
#include "dataflow/context.h"

namespace bigdansing {

/// The user-facing job API of Appendix A: users register labeled logical
/// operators (Scope, Block, Iterate, Detect, GenFix) and input datasets,
/// and the planner assembles, validates and executes the dataflow
/// (§3.2, Figure 3). Labels name data flows; an operator consumes the flow
/// with its label and passes the transformed flow downstream under the
/// same label (Iterate merges several input flows into one output flow).
///
/// Example (the paper's Listing 3, adapted):
///
///   Job job("example");
///   job.AddInput("S", &customers)
///      .AddInput("W", &suppliers)
///      .AddScope(ProjectNamePhone, "S")
///      .AddBlock(KeyOnName, "S")
///      .AddBlock(KeyOnName, "W")
///      .AddIterate("M", {"S", "W"})       // pairs across the two flows
///      .AddDetect(MyDetect, "M")
///      .AddGenFix(MyGenFix, "M");
///   auto result = job.Run(&ctx);
///
/// Missing operators are generated per §3.2: no Iterate -> all unordered
/// pairs (single flow) or all cross-flow pairs (two flows); no Block ->
/// one global block; no Scope -> identity. Iterate outputs cannot feed
/// other Iterates (bushy plans over iterate outputs, Appendix E, are out
/// of scope for the job API; use RuleEngine::DetectAcross for the
/// supported two-table case).
class Job {
 public:
  /// Scope UDF: unit -> filtered/transformed units (may replicate or drop).
  using ScopeFn = std::function<std::vector<Row>(const Row&)>;
  /// Block UDF: unit -> blocking key (null key drops the unit from blocks).
  using BlockFn = std::function<Value(const Row&)>;
  /// Iterate UDF over one flow's block: units -> candidate pairs.
  using IterateFn =
      std::function<std::vector<RowPair>(const std::vector<Row>&)>;
  /// Iterate UDF over a co-block of two flows: (left units, right units)
  /// -> candidate pairs.
  using Iterate2Fn = std::function<std::vector<RowPair>(
      const std::vector<Row>&, const std::vector<Row>&)>;
  /// Detect UDF: candidate pair -> violations.
  using DetectFn =
      std::function<void(const RowPair&, std::vector<Violation>*)>;
  /// GenFix UDF: violation -> possible fixes.
  using GenFixFn =
      std::function<void(const Violation&, std::vector<Fix>*)>;

  explicit Job(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers `table` as the data flow `label`. The table must outlive
  /// Run(). The same table may be registered under several labels (the
  /// paper's Listing 3 registers D1 as both S and T).
  Job& AddInput(const std::string& label, const Table* table);

  /// Adds a Scope operator on flow `label`.
  Job& AddScope(ScopeFn fn, const std::string& label);

  /// Adds a Block operator on flow `label`.
  Job& AddBlock(BlockFn fn, const std::string& label);

  /// Adds an Iterate producing flow `output_label` from one or two input
  /// flows. With one input flow the pairing is within blocks; with two it
  /// is across the co-blocks of the two flows. `fn`/`fn2` override the
  /// default pairing (all unordered pairs / full bag cross product).
  Job& AddIterate(const std::string& output_label,
                  std::vector<std::string> input_labels);
  Job& AddIterate(const std::string& output_label,
                  std::vector<std::string> input_labels, IterateFn fn);
  Job& AddIterate(const std::string& output_label,
                  std::vector<std::string> input_labels, Iterate2Fn fn2);

  /// Adds a Detect on flow `label` (an Iterate output, or a unit flow —
  /// the planner then generates the Iterate, §3.2).
  Job& AddDetect(DetectFn fn, const std::string& label,
                 const std::string& rule_name = "");

  /// Adds a GenFix on the same label as a Detect.
  Job& AddGenFix(GenFixFn fn, const std::string& label);

  /// Validates the job (§3.2: every referenced flow defined, at least one
  /// Detect, at most one operator of each kind per label, Iterate arity
  /// 1 or 2) without running it.
  Status Validate() const;

  /// The logical plan the planner assembled, for inspection/EXPLAIN.
  Result<LogicalPlan> Plan() const;

  /// Validates, plans and executes the job on `ctx`; returns all
  /// violations with their fixes (one DetectionResult pooling every
  /// Detect operator's output).
  Result<DetectionResult> Run(ExecutionContext* ctx) const;

 private:
  struct ScopeOp {
    ScopeFn fn;
    std::string label;
  };
  struct BlockOp {
    BlockFn fn;
    std::string label;
  };
  struct IterateOp {
    std::string output_label;
    std::vector<std::string> input_labels;
    IterateFn fn;    // One-flow custom pairing (optional).
    Iterate2Fn fn2;  // Two-flow custom pairing (optional).
  };
  struct DetectOp {
    DetectFn fn;
    std::string label;
    std::string rule_name;
  };
  struct GenFixOp {
    GenFixFn fn;
    std::string label;
  };

  const ScopeOp* FindScope(const std::string& label) const;
  const BlockOp* FindBlock(const std::string& label) const;
  const IterateOp* FindIterate(const std::string& output_label) const;

  std::string name_;
  std::vector<std::pair<std::string, const Table*>> inputs_;
  std::vector<ScopeOp> scopes_;
  std::vector<BlockOp> blocks_;
  std::vector<IterateOp> iterates_;
  std::vector<DetectOp> detects_;
  std::vector<GenFixOp> genfixes_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_JOB_H_
