#include "core/multi_dc.h"

#include <utility>

#include "common/fault.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "dataflow/dataset.h"
#include "rules/parser.h"
#include "rules/similarity.h"

namespace bigdansing {

namespace {

bool EvalOp(const Value& left, CmpOp op, const Value& right,
            double threshold) {
  if (left.is_null() || right.is_null()) return false;
  switch (op) {
    case CmpOp::kEq:
      return left == right;
    case CmpOp::kNeq:
      return left != right;
    case CmpOp::kLt:
      return left < right;
    case CmpOp::kGt:
      return left > right;
    case CmpOp::kLeq:
      return left <= right;
    case CmpOp::kGeq:
      return left >= right;
    case CmpOp::kSimilar:
      return IsSimilar(left.ToString(), right.ToString(), threshold);
  }
  return false;
}

FixOp ToFixOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return FixOp::kEq;
    case CmpOp::kNeq:
      return FixOp::kNeq;
    case CmpOp::kLt:
      return FixOp::kLt;
    case CmpOp::kGt:
      return FixOp::kGt;
    case CmpOp::kLeq:
      return FixOp::kLeq;
    case CmpOp::kGeq:
      return FixOp::kGeq;
    case CmpOp::kSimilar:
      return FixOp::kEq;
  }
  return FixOp::kEq;
}

}  // namespace

Status ThreeTupleDcRule::Bind(const Schema& pair_schema,
                              const Schema& third_schema) {
  left_columns_.clear();
  right_columns_.clear();
  pair_link_ = kNoLink;
  third_link_ = kNoLink;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const Predicate& p = predicates_[i];
    if (p.left_tuple < 1 || p.left_tuple > 3 ||
        (!p.right_is_constant && (p.right_tuple < 1 || p.right_tuple > 3))) {
      return Status::InvalidArgument("predicate references unknown tuple: " +
                                     p.ToString());
    }
    // Resolve each operand against the schema of the tuple it names.
    const Schema& lschema = p.left_tuple == 3 ? third_schema : pair_schema;
    auto left = lschema.IndexOf(p.left_attr);
    if (!left.ok()) return left.status();
    size_t right_col = 0;
    if (!p.right_is_constant) {
      const Schema& rschema =
          p.right_tuple == 3 ? third_schema : pair_schema;
      auto right = rschema.IndexOf(p.right_attr);
      if (!right.ok()) return right.status();
      right_col = *right;
    }
    left_columns_.push_back(*left);
    right_columns_.push_back(right_col);
    // Link discovery.
    if (p.op == CmpOp::kEq && !p.right_is_constant) {
      bool left_pair = p.left_tuple <= 2;
      bool right_pair = p.right_tuple <= 2;
      if (left_pair && right_pair && p.left_tuple != p.right_tuple &&
          pair_link_ == kNoLink) {
        pair_link_ = i;
      }
      if (left_pair != right_pair && third_link_ == kNoLink) {
        third_link_ = i;
      }
    }
  }
  if (third_link_ == kNoLink) {
    return Status::InvalidArgument(
        "three-tuple DC needs an equality predicate linking t1/t2 to t3 "
        "(otherwise the plan is a cross product)");
  }
  if (pair_link_ == kNoLink) {
    return Status::InvalidArgument(
        "three-tuple DC needs an equality predicate between t1 and t2");
  }
  pair_schema_ = pair_schema;
  third_schema_ = third_schema;
  return Status::OK();
}

bool ThreeTupleDcRule::Matches(const Row& t1, const Row& t2,
                               const Row& t3) const {
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const Predicate& p = predicates_[i];
    const Row& lrow = p.left_tuple == 1 ? t1 : (p.left_tuple == 2 ? t2 : t3);
    const Value& left = lrow.value(left_columns_[i]);
    const Value* right;
    if (p.right_is_constant) {
      right = &p.constant;
    } else {
      const Row& rrow =
          p.right_tuple == 1 ? t1 : (p.right_tuple == 2 ? t2 : t3);
      right = &rrow.value(right_columns_[i]);
    }
    if (!EvalOp(left, p.op, *right, p.similarity_threshold)) return false;
  }
  return true;
}

Violation ThreeTupleDcRule::MakeViolation(const Row& t1, const Row& t2,
                                          const Row& t3) const {
  Violation v;
  v.rule_name = name_;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const Predicate& p = predicates_[i];
    auto make_cell = [&](int tuple, size_t column) {
      const Row& row = tuple == 1 ? t1 : (tuple == 2 ? t2 : t3);
      const Schema& schema = tuple == 3 ? third_schema_ : pair_schema_;
      Cell c;
      c.ref.row_id = row.id();
      c.ref.column = column;
      c.attribute = schema.attribute(column);
      c.value = row.value(column);
      return c;
    };
    v.cells.push_back(make_cell(p.left_tuple, left_columns_[i]));
    if (!p.right_is_constant) {
      v.cells.push_back(make_cell(p.right_tuple, right_columns_[i]));
    }
  }
  return v;
}

std::vector<Fix> ThreeTupleDcRule::GenFixes(const Violation& violation) const {
  std::vector<Fix> fixes;
  size_t cell = 0;
  for (const Predicate& p : predicates_) {
    if (cell >= violation.cells.size()) break;
    Fix fix;
    fix.left = violation.cells[cell++];
    fix.op = ToFixOp(NegateOp(p.op));
    if (p.right_is_constant) {
      fix.right = FixTerm::MakeConstant(p.constant);
    } else {
      if (cell >= violation.cells.size()) break;
      fix.right = FixTerm::MakeCell(violation.cells[cell++]);
    }
    fixes.push_back(std::move(fix));
  }
  return fixes;
}

Result<std::shared_ptr<ThreeTupleDcRule>> ParseThreeTupleDc(
    const std::string& text) {
  std::string_view rest = Trim(text);
  std::string name(rest);
  auto lower = ToLower(rest);
  size_t body_pos = std::string::npos;
  if (StartsWith(lower, "dc3:")) {
    body_pos = 4;
  } else {
    size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      auto after = Trim(rest.substr(colon + 1));
      if (StartsWith(ToLower(after), "dc3:")) {
        name = std::string(Trim(rest.substr(0, colon)));
        rest = after;
        body_pos = 4;
      }
    }
  }
  if (body_pos == std::string::npos) {
    return Status::ParseError("three-tuple DC must start with 'DC3:'");
  }
  auto preds = ParsePredicateConjunction(
      std::string(Trim(rest.substr(body_pos))));
  if (!preds.ok()) return preds.status();
  bool any_third = false;
  for (const auto& p : *preds) {
    any_third = any_third || p.left_tuple == 3 ||
                (!p.right_is_constant && p.right_tuple == 3);
  }
  if (!any_third) {
    return Status::ParseError("DC3 must reference t3; use DC: otherwise");
  }
  return std::make_shared<ThreeTupleDcRule>(name, std::move(*preds));
}

Result<std::vector<ViolationWithFixes>> DetectThreeTuple(
    ExecutionContext* ctx, const Table& pair_table, const Table& third_table,
    const std::shared_ptr<ThreeTupleDcRule>& rule, uint64_t* probes) {
  BIGDANSING_RETURN_NOT_OK(
      rule->Bind(pair_table.schema(), third_table.schema()));
  const auto& preds = rule->predicates();
  const Predicate& pair_link = preds[rule->pair_link_];
  const Predicate& third_link = preds[rule->third_link_];

  // Columns of the pair link, normalized so `t1_col` keys the t1 role.
  size_t t1_col = rule->left_columns_[rule->pair_link_];
  size_t t2_col = rule->right_columns_[rule->pair_link_];
  if (pair_link.left_tuple == 2) std::swap(t1_col, t2_col);

  // The third link: which pair tuple joins t3, and on which columns.
  int pair_side_tuple;
  size_t pair_side_col;
  size_t t3_col;
  if (third_link.left_tuple == 3) {
    pair_side_tuple = third_link.right_tuple;
    pair_side_col = rule->right_columns_[rule->third_link_];
    t3_col = rule->left_columns_[rule->third_link_];
  } else {
    pair_side_tuple = third_link.left_tuple;
    pair_side_col = rule->left_columns_[rule->third_link_];
    t3_col = rule->right_columns_[rule->third_link_];
  }

  // Everything below runs dataflow stages, which surface retry-budget
  // exhaustion as a StageError; this function is the Status boundary.
  try {
  // Stage 1 (left side of the bushy plan): self co-block of the pair table
  // on the t1-t2 equality link, evaluating pair-only predicates early.
  Dataset<Row> pair_rows =
      Dataset<Row>::FromVector(ctx, pair_table.rows());
  auto key_by = [ctx](const Dataset<Row>& ds, size_t col) {
    return ds.MapPartitions<std::pair<uint64_t, Row>>(
        [col](const std::vector<Row>& part) {
          std::vector<std::pair<uint64_t, Row>> out;
          out.reserve(part.size());
          for (const Row& row : part) {
            const Value& v = row.value(col);
            if (!v.is_null()) out.emplace_back(v.Hash(), row);
          }
          return out;
        });
  };
  auto coblocks = CoGroup(key_by(pair_rows, t1_col), key_by(pair_rows, t2_col));

  // Pair-only predicates (no t3 reference) prune candidates early.
  std::vector<size_t> pair_only;
  std::vector<size_t> with_third;
  for (size_t i = 0; i < preds.size(); ++i) {
    bool third = preds[i].left_tuple == 3 ||
                 (!preds[i].right_is_constant && preds[i].right_tuple == 3);
    (third ? with_third : pair_only).push_back(i);
  }
  auto eval_pred = [&](size_t i, const Row& t1, const Row& t2,
                       const Row* t3) {
    const Predicate& p = preds[i];
    auto row_of = [&](int tuple) -> const Row& {
      return tuple == 1 ? t1 : (tuple == 2 ? t2 : *t3);
    };
    const Value& left = row_of(p.left_tuple).value(rule->left_columns_[i]);
    const Value* right = p.right_is_constant
                             ? &p.constant
                             : &row_of(p.right_tuple)
                                    .value(rule->right_columns_[i]);
    return EvalOp(left, p.op, *right, p.similarity_threshold);
  };

  // Candidate pairs keyed by their t3 join value. Each task returns its
  // buffer (retry/speculation-safe: one commit per task).
  const auto& cparts = coblocks.partitions();
  std::vector<std::vector<std::pair<uint64_t, RowPair>>> per_part =
      coblocks.RunStageProducing<std::vector<std::pair<uint64_t, RowPair>>>(
          "iterate:3dc-pairs", [&](size_t p, TaskContext& tc) {
            std::vector<std::pair<uint64_t, RowPair>> out;
            for (const auto& kv : cparts[p]) {
              for (const Row& a : kv.second.first) {
                for (const Row& b : kv.second.second) {
                  if (a.id() == b.id()) continue;
                  bool ok = true;
                  for (size_t i : pair_only) {
                    if (!eval_pred(i, a, b, nullptr)) {
                      ok = false;
                      break;
                    }
                  }
                  if (!ok) continue;
                  const Row& join_row = pair_side_tuple == 1 ? a : b;
                  const Value& jv = join_row.value(pair_side_col);
                  if (jv.is_null()) continue;
                  out.emplace_back(jv.Hash(), RowPair{a, b});
                }
              }
            }
            tc.records_out = out.size();
            return out;
          });
  std::vector<std::pair<uint64_t, RowPair>> keyed_pairs;
  for (auto& part : per_part) {
    keyed_pairs.insert(keyed_pairs.end(),
                       std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
  }
  auto pairs_ds = Dataset<std::pair<uint64_t, RowPair>>::FromVector(
      ctx, std::move(keyed_pairs));

  // Stage 2 (right side of the plan): scope + block the third table, then
  // co-group with the candidate pairs and evaluate the residual predicates.
  std::vector<size_t> third_only;
  for (size_t i : with_third) {
    const Predicate& p = preds[i];
    bool only_third =
        p.left_tuple == 3 && (p.right_is_constant || p.right_tuple == 3);
    if (only_third) third_only.push_back(i);
  }
  Dataset<Row> third_rows =
      Dataset<Row>::FromVector(ctx, third_table.rows());
  auto third_keyed = third_rows.MapPartitions<std::pair<uint64_t, Row>>(
      [&](const std::vector<Row>& part) {
        std::vector<std::pair<uint64_t, Row>> out;
        for (const Row& row : part) {
          // Scope: predicates touching only t3 (e.g. t3.Role = "M").
          bool ok = true;
          for (size_t i : third_only) {
            if (!eval_pred(i, row, row, &row)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          const Value& v = row.value(t3_col);
          if (!v.is_null()) out.emplace_back(v.Hash(), row);
        }
        return out;
      });

  auto joined = CoGroup(pairs_ds, third_keyed);
  const auto& jparts = joined.partitions();
  struct ThirdOut {
    std::vector<ViolationWithFixes> violations;
    uint64_t probes = 0;
  };
  std::vector<ThirdOut> outputs = joined.RunStageProducing<ThirdOut>(
      "detect|genfix:3dc", [&](size_t p, TaskContext& tc) {
        ThirdOut out;
        for (const auto& kv : jparts[p]) {
          for (const RowPair& pair : kv.second.first) {
            for (const Row& t3 : kv.second.second) {
              ++out.probes;
              bool ok = true;
              for (size_t i : with_third) {
                if (!eval_pred(i, pair.left, pair.right, &t3)) {
                  ok = false;
                  break;
                }
              }
              if (!ok) continue;
              ViolationWithFixes vf;
              vf.violation = rule->MakeViolation(pair.left, pair.right, t3);
              vf.fixes = rule->GenFixes(vf.violation);
              out.violations.push_back(std::move(vf));
            }
          }
        }
        ctx->metrics().AddPairsEnumerated(out.probes);
        tc.records_out = out.violations.size();
        return out;
      });

  std::vector<ViolationWithFixes> result;
  uint64_t total_probes = 0;
  for (auto& out : outputs) {
    total_probes += out.probes;
    result.insert(result.end(),
                  std::make_move_iterator(out.violations.begin()),
                  std::make_move_iterator(out.violations.end()));
  }
  if (probes != nullptr) *probes = total_probes;
  return result;
  } catch (const StageError& e) {
    return e.status();
  }
}

}  // namespace bigdansing
