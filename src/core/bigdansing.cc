#include "core/bigdansing.h"

#include <cstdio>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/fault.h"
#include "common/lineage.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/stream_session.h"
#include "data/profile.h"
#include "obs/quality.h"
#include "repair/strategy.h"

namespace bigdansing {

namespace {

/// Closes the QualityRecorder run on every exit path of Clean() — normal
/// return, early Status return, and StageError unwinding alike — so a
/// scrape never sees a run stuck in_progress after its Clean() finished.
struct QualityRunGuard {
  uint64_t run_id = 0;
  const CleanReport* report = nullptr;
  ~QualityRunGuard() {
    if (run_id != 0) {
      QualityRecorder::Instance().EndRun(run_id, report->converged);
    }
  }
};

/// Lineage-aware twin of ApplyAssignments: applies the assignments and, for
/// each cell actually changed, appends a ledger entry carrying the old/new
/// value plus the provenance the repair pass attached (when `provenance` is
/// shorter than `assignments` — lineage was toggled mid-run — missing
/// entries fall back to empty provenance). Violations whose fixes produced
/// at least one applied change are inserted into `resolved`.
size_t ApplyAssignmentsWithLineage(
    Table* table, const std::vector<CellAssignment>& assignments,
    const std::vector<FixProvenance>& provenance,
    const std::unordered_set<CellRef, CellRefHash>* frozen, size_t iteration,
    std::unordered_set<uint64_t>* resolved,
    std::map<std::string, LineageSummary>* by_rule,
    std::map<std::string, std::map<std::string, uint64_t>>* fix_columns) {
  LineageRecorder& lineage = LineageRecorder::Instance();
  const Schema& schema = table->schema();
  size_t changed = 0;
  for (size_t i = 0; i < assignments.size(); ++i) {
    const auto& a = assignments[i];
    if (frozen != nullptr && frozen->count(a.cell) > 0) continue;
    Row* row = table->FindMutableRowById(a.cell.row_id);
    if (row == nullptr || a.cell.column >= row->size()) continue;
    if (row->value(a.cell.column) == a.value) continue;
    LineageEntry entry;
    entry.row_id = a.cell.row_id;
    entry.column = a.cell.column;
    if (a.cell.column < schema.num_attributes()) {
      entry.attribute = schema.attribute(a.cell.column);
    }
    entry.old_value = row->value(a.cell.column);
    entry.new_value = a.value;
    entry.iteration = iteration;
    if (i < provenance.size()) {
      const FixProvenance& p = provenance[i];
      entry.rule = p.rule;
      entry.violation_id = p.violation_id;
      entry.strategy = p.strategy;
      entry.component = p.component;
      resolved->insert(p.violation_id);
    }
    ++(*by_rule)[entry.rule].applied_fixes;
    if (fix_columns != nullptr) {
      ++(*fix_columns)[entry.rule][entry.attribute];
    }
    row->set_value(a.cell.column, a.value);
    ++changed;
    lineage.RecordFix(std::move(entry));
  }
  return changed;
}

}  // namespace

std::string CleanReport::ToString() const {
  std::string out = "CleanReport: iterations=" +
                    std::to_string(iterations.size()) +
                    (converged ? " (converged)" : " (iteration cap)");
  for (size_t i = 0; i < iterations.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\n  iter %zu: violations=%zu fixes=%zu detect=%.3fs "
                  "repair=%.3fs",
                  i + 1, iterations[i].violations, iterations[i].applied_fixes,
                  iterations[i].detect_seconds, iterations[i].repair_seconds);
    out += buf;
  }
  return out;
}

size_t ApplyAssignments(
    Table* table, const std::vector<CellAssignment>& assignments,
    const std::unordered_set<CellRef, CellRefHash>* frozen) {
  size_t changed = 0;
  for (const auto& a : assignments) {
    if (frozen != nullptr && frozen->count(a.cell) > 0) continue;
    Row* row = table->FindMutableRowById(a.cell.row_id);
    if (row == nullptr || a.cell.column >= row->size()) continue;
    if (row->value(a.cell.column) != a.value) {
      row->set_value(a.cell.column, a.value);
      ++changed;
    }
  }
  return changed;
}

BigDansing::BigDansing(ExecutionContext* ctx, CleanOptions options)
    : ctx_(ctx), options_(std::move(options)) {}

Result<std::unique_ptr<StreamSession>> BigDansing::OpenStream(
    Table* table, const std::vector<RulePtr>& rules,
    StreamOptions options) const {
  // Not make_unique: the constructor is private to the BigDansing friend.
  std::unique_ptr<StreamSession> session(
      new StreamSession(ctx_, table, rules, std::move(options)));
  Status status = session->Init();
  if (!status.ok()) return status;
  return session;
}

Result<std::unique_ptr<StreamSession>> BigDansing::OpenStream(
    Table* table, const std::vector<RulePtr>& rules) const {
  StreamOptions options;
  options.clean = options_;
  return OpenStream(table, rules, std::move(options));
}

Result<CleanReport> BigDansing::Clean(Table* table,
                                      const std::vector<RulePtr>& rules) const {
  CleanReport report;
  RuleEngine engine(ctx_, options_.planner);
  const RepairStrategy& repair_strategy =
      RepairStrategyFor(options_.repair_mode);

  // Per-run fault policy: scoped so nested detect/repair stages all see it
  // and the context is restored when Clean returns.
  std::optional<ScopedFaultPolicy> scoped_policy;
  if (options_.fault_policy.has_value()) {
    scoped_policy.emplace(ctx_, *options_.fault_policy);
  }

  // The whole fix-point run is one job span; each iteration contributes a
  // detect and a repair phase span underneath it.
  TraceRecorder& trace = TraceRecorder::Instance();
  std::optional<ScopedSpan> job_span;
  if (trace.enabled()) {
    job_span.emplace("clean", "job");
    job_span->Annotate("rules", static_cast<uint64_t>(rules.size()));
    job_span->Annotate("max_iterations",
                       static_cast<uint64_t>(options_.max_iterations));
  }

  // Data-quality plane: open a run record, profile the dirty input, and
  // fold every iteration's violation/fix/unresolved attribution into it.
  // One relaxed load when the recorder is off.
  QualityRecorder& quality = QualityRecorder::Instance();
  const bool quality_on = quality.enabled();
  const uint64_t quality_run =
      quality_on ? quality.BeginRun(rules.size(), table->num_rows()) : 0;
  QualityRunGuard quality_guard{quality_run, &report};
  if (quality_on) {
    quality.RecordProfile(quality_run, ProfileTable(ctx_, *table));
  }
  const Schema& schema = table->schema();
  auto column_name = [&schema](size_t col) {
    return col < schema.num_attributes() ? schema.attribute(col)
                                         : std::string();
  };

  // Cells updated often enough get frozen so oscillating repairs terminate
  // (§2.2: "the algorithm puts a special variable on such units after a
  // fixed number of iterations").
  std::unordered_map<CellRef, size_t, CellRefHash> update_counts;
  std::unordered_set<CellRef, CellRefHash> frozen;
  // A cell repaired in more than one iteration is oscillating — the
  // behavior freezing exists to terminate; the quality curve reports how
  // many cells have crossed that line so far.
  auto oscillating_cells = [&update_counts]() {
    uint64_t n = 0;
    for (const auto& [cell, count] : update_counts) {
      if (count >= 2) ++n;
    }
    return n;
  };

  // Per-rule lineage tally for THIS run (the recorder is process-global, so
  // its summaries may span several Clean calls; the EXPLAIN annotations must
  // only reflect this job).
  std::map<std::string, LineageSummary> lineage_by_rule;

  std::unordered_set<RowId> last_changed_rows;
  // Defensive boundary: the detect and repair entry points already map
  // StageError to Status, but Clean is the outermost public API of the
  // system — a stage failure escaping a future code path must still
  // surface as a Status here, never as a crash.
  try {
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    IterationReport it;
    QualityIterationSample sample;
    sample.iteration = iter + 1;

    Stopwatch detect_timer;
    const bool incremental = options_.incremental_redetection && iter > 0;
    std::optional<ScopedSpan> detect_span;
    if (trace.enabled()) {
      detect_span.emplace("detect:iter" + std::to_string(iter + 1), "phase");
      if (incremental) {
        detect_span->Annotate("mode", std::string("incremental"));
        detect_span->Annotate(
            "changed_rows", static_cast<uint64_t>(last_changed_rows.size()));
      }
    }
    Result<std::vector<DetectionResult>> detections =
        std::vector<DetectionResult>{};
    DetectRequest full_request;
    full_request.table = table;
    full_request.rules = rules;
    if (incremental) {
      std::vector<DetectionResult> partial;
      partial.reserve(rules.size());
      bool failed = false;
      for (const auto& rule : rules) {
        DetectRequest request;
        request.table = table;
        request.rules = {rule};
        request.changed_rows = &last_changed_rows;
        auto d = engine.Detect(request);
        if (!d.ok()) {
          detections = d.status();
          failed = true;
          break;
        }
        partial.push_back(std::move(d->front()));
      }
      if (!failed) {
        size_t found = 0;
        for (const auto& d : partial) found += d.violations.size();
        if (found == 0) {
          // Incremental pass is clean: verify with one full detection so
          // the converged result is identical to the non-incremental mode.
          detections = engine.Detect(full_request);
        } else {
          detections = std::move(partial);
        }
      }
    } else {
      detections = engine.Detect(full_request);
    }
    if (!detections.ok()) return detections.status();
    it.detect_seconds = detect_timer.ElapsedSeconds();
    report.total_detect_seconds += it.detect_seconds;
    detect_span.reset();

    // Pool all rules' violations; drop violations whose fixes only touch
    // frozen cells ("violations with no possible fixes" terminate the
    // loop, §2.1).
    std::vector<ViolationWithFixes> violations;
    for (auto& d : *detections) {
      for (auto& vf : d.violations) {
        bool repairable = false;
        for (const auto& f : vf.fixes) {
          if (frozen.count(f.left.ref) == 0) {
            repairable = true;
            break;
          }
        }
        if (repairable && !vf.fixes.empty()) {
          if (quality_on) {
            // A violation attributes to the column of its first candidate
            // fix — deterministic, so the per-rule sums reconcile exactly
            // with the lineage ledger and the CleanReport.
            ++sample.violations[vf.violation.rule_name]
                               [column_name(vf.fixes.front().left.ref.column)];
          }
          violations.push_back(std::move(vf));
        }
      }
    }
    it.violations = violations.size();

    if (violations.empty()) {
      report.iterations.push_back(it);
      report.converged = true;
      if (quality_on) {
        sample.frozen_cells = frozen.size();
        sample.oscillating_cells = oscillating_cells();
        quality.RecordIteration(quality_run, sample);
      }
      break;
    }

    Stopwatch repair_timer;
    std::optional<ScopedSpan> repair_span;
    if (trace.enabled()) {
      repair_span.emplace("repair:iter" + std::to_string(iter + 1), "phase");
      repair_span->Annotate("violations",
                            static_cast<uint64_t>(violations.size()));
    }
    const bool lineage_on = LineageRecorder::Instance().enabled();
    auto pass = repair_strategy.Repair(ctx_, violations, options_.repair);
    if (!pass.ok()) return pass.status();
    std::vector<CellAssignment> assignments = std::move(pass->applied);
    std::vector<FixProvenance> provenance = std::move(pass->provenance);
    if (lineage_on || quality_on) {
      std::unordered_set<uint64_t> resolved;
      it.applied_fixes = ApplyAssignmentsWithLineage(
          table, assignments, provenance, &frozen, iter + 1, &resolved,
          &lineage_by_rule, quality_on ? &sample.fixes : nullptr);
      // Every pooled violation with no applied fix this iteration survives
      // into the next detect pass (or the end of the run) unresolved.
      LineageRecorder& lineage = LineageRecorder::Instance();
      for (uint64_t vid = 0; vid < violations.size(); ++vid) {
        if (resolved.count(vid) == 0) {
          lineage.RecordUnresolved(violations[vid].violation.rule_name, vid,
                                   iter + 1);
          ++lineage_by_rule[violations[vid].violation.rule_name].unresolved;
          if (quality_on) {
            ++sample.unresolved
                  [violations[vid].violation.rule_name]
                  [column_name(violations[vid].fixes.front().left.ref.column)];
          }
        }
      }
    } else {
      it.applied_fixes = ApplyAssignments(table, assignments, &frozen);
    }
    it.repair_seconds = repair_timer.ElapsedSeconds();
    report.total_repair_seconds += it.repair_seconds;
    if (repair_span) {
      repair_span->Annotate("applied_fixes",
                            static_cast<uint64_t>(it.applied_fixes));
      repair_span.reset();
    }
    report.iterations.push_back(it);

    if (it.applied_fixes == 0) {
      // Nothing applicable: remaining violations have no possible fixes.
      report.converged = true;
      if (quality_on) {
        sample.frozen_cells = frozen.size();
        sample.oscillating_cells = oscillating_cells();
        quality.RecordIteration(quality_run, sample);
      }
      break;
    }

    last_changed_rows.clear();
    for (const auto& a : assignments) {
      last_changed_rows.insert(a.cell.row_id);
      if (++update_counts[a.cell] >= options_.freeze_after_updates) {
        frozen.insert(a.cell);
      }
    }

    if (quality_on) {
      // Sampled after the freeze bookkeeping so the curve point reflects
      // the state the NEXT iteration starts from.
      sample.frozen_cells = frozen.size();
      sample.oscillating_cells = oscillating_cells();
      quality.RecordIteration(quality_run, sample);
    }
  }
  } catch (const StageError& e) {
    return e.status();
  }
  size_t total_fixes = 0;
  size_t total_violations = 0;
  for (const auto& i : report.iterations) {
    total_fixes += i.applied_fixes;
    total_violations += i.violations;
  }
  size_t total_unresolved = 0;
  for (const auto& [rule, s] : lineage_by_rule) total_unresolved += s.unresolved;

  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("clean.iterations")
      .Add(static_cast<uint64_t>(report.iterations.size()));
  registry.GetCounter("clean.fixes_applied")
      .Add(static_cast<uint64_t>(total_fixes));
  registry.GetCounter("clean.violations_pooled")
      .Add(static_cast<uint64_t>(total_violations));
  registry.GetCounter("clean.unresolved_violations")
      .Add(static_cast<uint64_t>(total_unresolved));

  if (job_span) {
    job_span->Annotate("iterations",
                       static_cast<uint64_t>(report.iterations.size()));
    job_span->Annotate("converged",
                       std::string(report.converged ? "true" : "false"));
    // Fold the ledger rollup of this run into the EXPLAIN tree: one pair of
    // annotations per rule with at least one applied fix or survivor.
    for (const auto& [rule, s] : lineage_by_rule) {
      job_span->Annotate("lineage." + rule + ".fixes", s.applied_fixes);
      job_span->Annotate("lineage." + rule + ".unresolved", s.unresolved);
    }
  }
  return report;
}

}  // namespace bigdansing
