#ifndef BIGDANSING_CORE_BIGDANSING_H_
#define BIGDANSING_CORE_BIGDANSING_H_

#include <memory>
#include <optional>
#include <unordered_set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "core/rule_engine.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "repair/blackbox.h"
#include "repair/repair_algorithm.h"
#include "repair/strategy.h"  // RepairMode + the strategy factory.

namespace bigdansing {

class StreamSession;
struct StreamOptions;

/// Options for a full cleanse run.
struct CleanOptions {
  PlannerOptions planner;
  BlackBoxOptions repair;
  RepairMode repair_mode = RepairMode::kEquivalenceClass;
  /// Detect/repair iterations stop after this many rounds even if
  /// violations remain (§2.2: a bound ensures termination; cells repaired
  /// in every earlier round are then frozen).
  size_t max_iterations = 10;
  /// A cell updated in more than this many iterations is frozen (made
  /// immutable) so oscillating repairs terminate.
  size_t freeze_after_updates = 3;
  /// From the second iteration on, only re-detect violations involving
  /// rows the previous repair changed (RuleEngine::DetectIncremental). A
  /// full detection pass still verifies convergence before the loop ends,
  /// so the result is identical — later iterations are just cheaper.
  bool incremental_redetection = false;
  /// Fault-tolerance knobs (retry budgets, speculation) applied to every
  /// stage of the run — detection, repair, and shuffles alike. Unset
  /// inherits the ExecutionContext policy (itself seeded from
  /// BD_FAULT_SPEC / BD_SPECULATION at construction).
  std::optional<FaultPolicy> fault_policy;
};

/// Per-iteration record of a cleanse run.
struct IterationReport {
  size_t violations = 0;
  size_t applied_fixes = 0;
  double detect_seconds = 0.0;
  double repair_seconds = 0.0;
};

/// Outcome of BigDansing::Clean.
struct CleanReport {
  std::vector<IterationReport> iterations;
  /// True when the final detect pass found no (repairable) violations.
  bool converged = false;
  double total_detect_seconds = 0.0;
  double total_repair_seconds = 0.0;

  size_t num_iterations() const { return iterations.size(); }
  std::string ToString() const;
};

/// The system facade (§2.2, Figure 1): takes a dirty dataset and rules,
/// iterates RuleEngine detection and distributed repair until a fix point,
/// and leaves the repaired instance in `table`.
class BigDansing {
 public:
  explicit BigDansing(ExecutionContext* ctx,
                      CleanOptions options = CleanOptions());

  /// Runs the full cleanse loop over `table` in place.
  Result<CleanReport> Clean(Table* table,
                            const std::vector<RulePtr>& rules) const;

  /// Opens a long-running streaming cleanse session over `table` (which
  /// must outlive the session): rows arrive via StreamSession::Append in
  /// bounded micro-batches and each Poll() repairs only the blocks the
  /// batch touched, against a persistent incremental violation index.
  /// Existing rows are indexed and marked dirty, so OpenStream + Flush
  /// reaches the same fix-point contract as Clean(). The two-argument
  /// overload inherits this facade's CleanOptions.
  Result<std::unique_ptr<StreamSession>> OpenStream(
      Table* table, const std::vector<RulePtr>& rules,
      StreamOptions options) const;
  Result<std::unique_ptr<StreamSession>> OpenStream(
      Table* table, const std::vector<RulePtr>& rules) const;

  /// Detection only — exposed for experiments that time phases separately.
  Result<std::vector<DetectionResult>> Detect(
      const Table& table, const std::vector<RulePtr>& rules) const {
    DetectRequest request;
    request.table = &table;
    request.rules = rules;
    return RuleEngine(ctx_, options_.planner).Detect(request);
  }

 private:
  ExecutionContext* ctx_;
  CleanOptions options_;
};

/// Applies cell assignments to `table`, skipping cells present in
/// `frozen` (may be null). Returns the number of cells actually changed.
size_t ApplyAssignments(Table* table,
                        const std::vector<CellAssignment>& assignments,
                        const std::unordered_set<CellRef, CellRefHash>* frozen);

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_BIGDANSING_H_
