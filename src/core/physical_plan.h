#ifndef BIGDANSING_CORE_PHYSICAL_PLAN_H_
#define BIGDANSING_CORE_PHYSICAL_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/logical_plan.h"
#include "data/schema.h"
#include "rules/rule.h"
#include "rules/udf_rule.h"

namespace bigdansing {

class ScopedSpan;

/// How the physical Iterate enumerates candidate unit pairs (§4.1/§4.2).
/// kCrossProduct is the wrapper translation; the others are enhancers.
enum class IterateStrategy {
  /// All ordered pairs (n² - n per block). Baseline wrapper.
  kCrossProduct,
  /// Unordered pairs (n(n-1)/2 per block); legal when the rule is
  /// symmetric. The UCrossProduct enhancer.
  kUCrossProduct,
  /// Range-partitioned sort-merge join on ordering conditions (§4.3).
  kOCJoin,
  /// No pairing — arity-1 rules feed units straight to Detect.
  kSingle,
};

/// Returns "CrossProduct", "UCrossProduct", "OCJoin" or "Single".
const char* IterateStrategyName(IterateStrategy strategy);

/// The physical plan for one rule: wrappers plus the enhancer choices made
/// by the optimizer. All attribute references are resolved against the
/// schema Detect will see (after Scope).
struct PhysicalRulePlan {
  RulePtr rule;

  /// Base-table columns kept by PScope; empty means no scoping (all
  /// columns pass through).
  std::vector<size_t> scope_columns;
  /// Schema after PScope — the schema the rule was bound against.
  Schema detect_schema;

  /// Columns of `detect_schema` forming the blocking key; empty when the
  /// rule has no blocking attributes.
  std::vector<size_t> blocking_columns;
  /// Optional procedural blocking key (UdfRule); overrides
  /// `blocking_columns` when set.
  UdfRule::BlockKeyFn block_key_fn;

  IterateStrategy strategy = IterateStrategy::kCrossProduct;

  /// Bound ordering conditions when strategy == kOCJoin.
  std::vector<OrderingCondition> ocjoin_conditions;

  /// One-line description for plan tests and EXPLAIN-style output.
  std::string ToString() const;

  /// Attaches the plan's static choices (strategy, scope/blocking columns)
  /// to a trace span so the runtime EXPLAIN shows plan next to measurement.
  void AnnotateSpan(ScopedSpan* span) const;
};

/// Optimizer options; benches toggle these to ablate individual
/// optimizations (Fig 11(c), Fig 12(a)).
struct PlannerOptions {
  bool enable_scope = true;
  bool enable_blocking = true;
  bool enable_ucross_product = true;
  bool enable_ocjoin = true;
  /// Let OCJoin reorder its conditions by sampled selectivity (§4.3).
  bool ocjoin_selectivity_ordering = true;
  /// Use IEJoin (the sort/permutation/bit-array follow-on algorithm)
  /// instead of OCJoin's partitioned sort-merge when a rule has two or
  /// more ordering conditions.
  bool use_iejoin = false;
};

/// Translates a rule into its optimized physical plan (§4.2 "operators
/// translation"): binds the rule against the scoped schema and picks the
/// Iterate enhancer from the rule's hints.
Result<PhysicalRulePlan> BuildPhysicalPlan(const RulePtr& rule,
                                           const Schema& base_schema,
                                           const PlannerOptions& options);

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_PHYSICAL_PLAN_H_
