#ifndef BIGDANSING_CORE_STREAM_SESSION_H_
#define BIGDANSING_CORE_STREAM_SESSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/bigdansing.h"
#include "core/physical_plan.h"
#include "data/dictionary.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "obs/stream_stats.h"
#include "rules/detect_kernel.h"
#include "rules/rule.h"

namespace bigdansing {

struct QualityIterationSample;

/// Options for a streaming cleanse session (BigDansing::OpenStream).
struct StreamOptions {
  /// Planner/repair/freeze knobs shared with the one-shot path. The
  /// session's windowed fix-point uses clean.max_iterations as its
  /// per-window iteration cap unless max_window_iterations overrides it,
  /// and clean.fault_policy scopes every window's stages.
  CleanOptions clean;

  /// Rows per micro-batch; Append() splits larger row vectors. 0 inherits
  /// DefaultBatchRows() (BD_STREAM_BATCH_ROWS, default 4096).
  size_t batch_rows = 0;

  /// Bound on queued (not yet processed) micro-batches. 0 inherits
  /// DefaultMaxInflight() (BD_STREAM_MAX_INFLIGHT, default 4).
  size_t max_inflight_batches = 0;

  /// Backpressure contract when Append() would exceed the in-flight bound:
  /// true  -> Append() drains queued batches inline (the caller's thread
  ///          runs Poll()) until the queue fits — it blocks, never fails;
  /// false -> Append() rejects the whole call with ResourceExhausted
  ///          before enqueueing anything; the caller Poll()s and retries.
  bool block_on_backpressure = true;

  /// Per-window fix-point iteration cap; 0 inherits clean.max_iterations.
  size_t max_window_iterations = 0;

  /// When true (default), Flush() ends with full-table verification
  /// windows, so a drained session converges to the same fix-point
  /// contract as one-shot Clean(). Disable for latency-only measurements.
  bool verify_on_flush = true;

  /// Observability namespace (the /streams record name, the /stages
  /// context label, the /quality run session). Empty -> "stream-<id>".
  std::string session_name;

  /// BD_STREAM_BATCH_ROWS when set and positive, else 4096.
  static size_t DefaultBatchRows();
  /// BD_STREAM_MAX_INFLIGHT when set and positive, else 4.
  static size_t DefaultMaxInflight();
};

/// Outcome of one processed window (one Poll(), or one verification pass
/// during Flush()).
struct StreamWindowReport {
  uint64_t window_id = 0;
  size_t appended_rows = 0;
  size_t retracted_rows = 0;
  /// Dirty blocks this window touched (across rules) and the candidate
  /// rows the incremental index fed into detection.
  size_t dirty_blocks = 0;
  size_t candidate_rows = 0;
  size_t violations = 0;
  size_t applied_fixes = 0;
  size_t iterations = 0;
  bool converged = false;
  double detect_seconds = 0.0;
  double repair_seconds = 0.0;
};

/// Outcome of Flush(): every window drained plus the verification passes.
struct StreamFlushReport {
  std::vector<StreamWindowReport> windows;
  /// True when the final full-table verification found no repairable
  /// violations (always false when verify_on_flush is off and dirt
  /// remained untouched — which Flush() never leaves behind).
  bool converged = false;
  size_t total_violations = 0;
  size_t total_applied_fixes = 0;
};

/// A long-running streaming cleanse session over one table: rows arrive via
/// Append() in bounded micro-batches, leave via Retract(), and each Poll()
/// processes one window — encode the batch against the session's persistent
/// ValuePools, update the per-rule incremental violation index
/// (blocking-key -> candidate row set), detect only inside the blocks the
/// window touched, and run repair as a windowed fix-point seeded by the
/// engine's incremental detection path. Created by BigDansing::OpenStream.
///
/// Thread-compatible like RuleEngine: one caller thread at a time; the
/// session parallelizes internally and publishes snapshots to the /streams
/// endpoint, so observability scrapes are safe from any thread.
class StreamSession {
 public:
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  const std::string& name() const { return name_; }
  const Table& table() const { return *table_; }
  size_t pending_batches() const { return pending_.size(); }

  /// Enqueues rows as micro-batches. Rows with id -1 get fresh sequential
  /// ids; rows carrying ids must not collide with live or queued rows.
  /// Applies the backpressure contract (see StreamOptions).
  Status Append(std::vector<Row> rows);

  /// Convenience Append of plain value tuples (ids assigned).
  Status AppendValues(std::vector<std::vector<Value>> rows);

  /// Removes rows by id: queued rows never enter the table; live rows leave
  /// the table and the violation index immediately, and their former blocks
  /// are re-verified by the next processed window. Unknown ids are ignored
  /// (retracting twice is not an error).
  Status Retract(const std::vector<RowId>& row_ids);

  /// Processes one pending window (the oldest queued batch plus any
  /// retraction dirt). A no-op returning an empty report (iterations == 0)
  /// when nothing is pending.
  Result<StreamWindowReport> Poll();

  /// Drains every pending window, then (verify_on_flush) runs full-table
  /// verification windows until convergence or the window iteration cap.
  Result<StreamFlushReport> Flush();

  /// Current observable counters (also pushed to the StreamDirectory).
  StreamSessionStats stats() const;

  /// Metrics of the session-owned ExecutionContext: every window's stages
  /// accumulate here (benches read SimulatedWallSeconds from it).
  const Metrics& metrics() const { return session_ctx_->metrics(); }

  /// Per-rule fingerprint of the incremental violation index: a stable
  /// hash over (block key -> sorted member row ids), independent of
  /// insertion order and of pool growth history — append-then-retract
  /// round-trips must reproduce a fresh build's fingerprint bit-exactly.
  std::vector<std::pair<std::string, uint64_t>> IndexFingerprints() const;

  /// Pushes the final snapshot and unregisters from /streams. Idempotent;
  /// the destructor calls it. Further mutations fail InvalidArgument.
  Status Close();

 private:
  friend class BigDansing;

  /// Per-rule incremental violation index state.
  struct RuleIndex {
    PhysicalRulePlan plan;
    /// True when the rule blocks (columns or UDF key); false -> the rule
    /// has no index and windows fall back to the engine's incremental
    /// (changed-rows) detection path.
    bool blocked = false;
    /// Base-table columns forming the key (empty for UDF keys).
    std::vector<size_t> key_cols;
    /// blocking-key -> member rows; the candidate sets detection reads.
    std::unordered_map<uint64_t, std::unordered_set<RowId>> blocks;
    /// Reverse map for retraction and repair-driven block moves.
    std::unordered_map<RowId, uint64_t> row_key;
    /// Kernel prescreen (null when the rule is not kernelizable): bound
    /// against the session pools, rebound whenever a pool it reads grows.
    std::shared_ptr<const KernelTemplate> tmpl;
    std::unique_ptr<DetectKernel> kernel;
    uint64_t kernel_pool_epoch = 0;
    /// Base column per kernel slot.
    std::vector<size_t> slot_cols;
    /// Pending dirty keys for the next window.
    std::unordered_set<uint64_t> dirty;
  };

  StreamSession(ExecutionContext* parent, Table* table,
                std::vector<RulePtr> rules, StreamOptions options);

  /// Builds plans, pools, kernels and the index over the existing table
  /// rows (all marked dirty, so the first window cleans the backlog).
  Status Init();

  ExecutionContext* ctx() { return session_ctx_.get(); }

  /// Grows the session pools to cover every indexed value of `rows`,
  /// remapping all stored codes (monotone, O(live rows) per grown group)
  /// and bumping pool_epoch_ so stale kernels rebind lazily.
  void GrowPools(const std::vector<const Row*>& rows);
  /// Dictionary-encodes the indexed columns of `row` against the session
  /// pools (GrowPools must already cover the row's values).
  void EncodeRow(const Row& row);
  /// Removes the row's stored codes.
  void DropCodes(RowId id);
  /// Key of `row` under rule index `ri`; false when the row has a null key
  /// component (the row joins no block).
  bool KeyOf(const RuleIndex& ri, const Row& row, uint64_t* key) const;

  /// Inserts/removes one live row into/out of every rule index, marking
  /// the touched keys dirty.
  void IndexInsert(const Row& row);
  void IndexRemove(RowId id);
  /// Re-keys one live row after a repair changed its cells; old and new
  /// blocks both become dirty for the current window.
  void Rekey(const Row& row);

  /// True when a window has anything to do.
  bool HasWork() const;

  /// Rebinds rule `ri`'s kernel when a pool it reads grew since last bind.
  void EnsureKernelBound(RuleIndex* ri);
  /// Kernel prescreen of one block (rows given as table positions): false
  /// only when the compiled kernel proves no ordered pair in the block can
  /// violate — exact, so skipping the block drops nothing.
  bool BlockMayViolate(RuleIndex* ri, const std::vector<size_t>& positions);

  /// Processes one window: moves the oldest batch (if any) into the table
  /// and runs the windowed detect/repair fix-point over the dirty blocks.
  Result<StreamWindowReport> ProcessWindow();

  /// Runs full-table windows until convergence (Flush verification).
  Status RunVerifyWindows(StreamFlushReport* out);

  /// Candidate sub-table of rule `ri`'s dirty blocks (kernel-prescreened),
  /// in table row order. Returns the candidate row count via `candidates`.
  Table BuildCandidateTable(RuleIndex* ri, size_t* candidates);

  /// Applies repair assignments through the session (position map, code
  /// re-encode, block re-keying, lineage/quality attribution). Returns
  /// cells actually changed. Freeze bookkeeping and dirty re-marking stay
  /// with the caller, mirroring Clean()'s ordering.
  size_t ApplyWindowAssignments(
      const std::vector<CellAssignment>& assignments,
      const std::vector<FixProvenance>& provenance, size_t iteration,
      const std::vector<ViolationWithFixes>& violations,
      QualityIterationSample* sample);

  void PushStats(bool closing = false);

  ExecutionContext* parent_ctx_;
  Table* table_;
  std::vector<RulePtr> rules_;
  StreamOptions opts_;
  std::string name_;
  uint64_t directory_id_ = 0;
  bool closed_ = false;

  /// Session-owned execution context: its Metrics carry the session label,
  /// so /stages namespaces this session's stages away from other work.
  std::unique_ptr<ExecutionContext> session_ctx_;

  /// Row id -> position in table_->rows(); maintained across retraction
  /// (Table::FindRowById degrades to a linear scan once ids stop matching
  /// positions, so the session never uses it).
  std::unordered_map<RowId, size_t> row_pos_;
  RowId next_row_id_ = 0;

  /// Queued micro-batches (rows not yet in the table) and their ids.
  std::deque<std::vector<Row>> pending_;
  std::unordered_set<RowId> pending_ids_;

  /// Indexed base columns (blocking + kernel slots), their shared-pool
  /// groups, and per-live-row codes aligned with indexed_cols_.
  std::vector<size_t> indexed_cols_;
  std::unordered_map<size_t, size_t> col_slot_;   // base col -> slot
  std::vector<size_t> col_group_;                 // slot -> pool group
  std::vector<std::shared_ptr<const ValuePool>> pools_;  // per group
  std::unordered_map<RowId, std::vector<uint32_t>> row_codes_;
  /// Bumped on every pool growth; kernels rebind lazily when stale.
  uint64_t pool_epoch_ = 0;

  std::vector<RuleIndex> indexes_;
  /// Rows appended/repaired since the last processed window (seeds the
  /// incremental fallback path for unindexed rules).
  std::unordered_set<RowId> pending_changed_;

  /// Freeze bookkeeping shared across all windows of the session (same
  /// oscillation-termination contract as Clean()).
  std::unordered_map<CellRef, size_t, CellRefHash> update_counts_;
  std::unordered_set<CellRef, CellRefHash> frozen_;

  uint64_t window_seq_ = 0;
  StreamSessionStats stats_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_STREAM_SESSION_H_
