#ifndef BIGDANSING_CORE_MULTI_DC_H_
#define BIGDANSING_CORE_MULTI_DC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/rule_engine.h"
#include "data/table.h"
#include "dataflow/context.h"
#include "rules/predicate.h"
#include "rules/violation.h"

namespace bigdansing {

/// A denial constraint over three tuple variables — the Appendix E bushy
/// plan case, e.g. rule (c3):
///
///   ∀ t1, t2 ∈ L, t3 ∈ G ¬( t1.LID != t2.LID ∧ t1.LID = t2.MID ∧
///                            t1.FN != t3.FN ∧ t1.LN != t3.LN ∧
///                            t1.City = t3.City ∧ t3.Role = "M" )
///
/// t1 and t2 range over the *pair table* (L) and t3 over the *third table*
/// (G). Predicates use tuple indices 1..3; predicates on (1,2) drive the
/// self co-block of L, and an equality between (1 or 2) and 3 drives the
/// join with G — together they form the bushy plan of Figure 16.
class ThreeTupleDcRule {
 public:
  ThreeTupleDcRule(std::string name, std::vector<Predicate> predicates)
      : name_(std::move(name)), predicates_(std::move(predicates)) {}

  const std::string& name() const { return name_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// Resolves attributes: tuples 1/2 against `pair_schema`, tuple 3
  /// against `third_schema`. Fails when no equality predicate links the
  /// pair side to t3 (the plan would degenerate to a cross product, which
  /// this executor refuses).
  Status Bind(const Schema& pair_schema, const Schema& third_schema);

  /// True when (t1, t2, t3) satisfies every predicate (a violation).
  bool Matches(const Row& t1, const Row& t2, const Row& t3) const;

  /// Builds the violation for a matching triple: one cell per predicate
  /// operand, in predicate order (mirrors DcRule's layout).
  Violation MakeViolation(const Row& t1, const Row& t2, const Row& t3) const;

  /// Possible fixes: the negation of each predicate.
  std::vector<Fix> GenFixes(const Violation& violation) const;

  /// Index of the t1-t2 equality predicate chosen as the self co-block
  /// key (valid after Bind; Bind fails when absent).
  size_t pair_link() const { return pair_link_; }
  /// Index of the equality predicate linking the pair side to t3.
  size_t third_link() const { return third_link_; }

 private:
  friend Result<std::vector<ViolationWithFixes>> DetectThreeTuple(
      ExecutionContext* ctx, const Table& pair_table, const Table& third_table,
      const std::shared_ptr<ThreeTupleDcRule>& rule, uint64_t* probes);

  static constexpr size_t kNoLink = static_cast<size_t>(-1);

  std::string name_;
  std::vector<Predicate> predicates_;
  /// Resolved column of each predicate's left/right operand (right unused
  /// for constants), against the schema of the tuple that operand names.
  std::vector<size_t> left_columns_;
  std::vector<size_t> right_columns_;
  Schema pair_schema_;
  Schema third_schema_;
  size_t pair_link_ = kNoLink;   // Index of the t1-t2 equality predicate.
  size_t third_link_ = kNoLink;  // Index of the (t1|t2)-t3 equality predicate.
};

/// Parses a three-tuple DC: "DC3: t1.LID != t2.LID & t1.LID = t2.MID &
/// t1.City = t3.City & t3.Role = \"M\"" (same predicate grammar as DC:,
/// plus t3 references; an optional "name:" prefix applies as usual).
Result<std::shared_ptr<ThreeTupleDcRule>> ParseThreeTupleDc(
    const std::string& text);

/// Executes the bushy plan (Figure 16): co-blocks the pair table on the
/// t1-t2 equality link, joins the surviving pairs with the third table on
/// the t3 equality link, evaluates the residual predicates per triple, and
/// returns violations with fixes. `probes` (optional) receives the number
/// of triples evaluated.
Result<std::vector<ViolationWithFixes>> DetectThreeTuple(
    ExecutionContext* ctx, const Table& pair_table, const Table& third_table,
    const std::shared_ptr<ThreeTupleDcRule>& rule, uint64_t* probes = nullptr);

}  // namespace bigdansing

#endif  // BIGDANSING_CORE_MULTI_DC_H_
