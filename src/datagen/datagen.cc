#include "datagen/datagen.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace bigdansing {

namespace {

/// 50 US state codes for synthetic addresses.
const char* const kStates[] = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY"};
constexpr size_t kNumStates = 50;

/// Deterministic city name for a zipcode (the clean FD zipcode -> city).
std::string CityOf(uint64_t zipcode) {
  return "city_" + std::to_string(zipcode % 1000);
}

/// Deterministic state for a zipcode (clean FD zipcode -> state).
std::string StateOf(uint64_t zipcode) {
  return kStates[zipcode % kNumStates];
}

/// Appends short random text — the paper's error model for TaxA city/state.
std::string CorruptText(const std::string& base, Random* rng) {
  return base + "_" + rng->NextString(3);
}

/// Random edit of a string: substitute, delete or insert one character at a
/// random position (the dedup error model: "random edits on name/phone").
std::string RandomEdit(const std::string& base, Random* rng) {
  if (base.empty()) return rng->NextString(1);
  std::string s = base;
  size_t pos = rng->NextBounded(s.size());
  switch (rng->NextBounded(3)) {
    case 0:  // Substitute.
      s[pos] = static_cast<char>('a' + rng->NextBounded(26));
      break;
    case 1:  // Delete.
      s.erase(pos, 1);
      break;
    default:  // Insert.
      s.insert(pos, 1, static_cast<char>('a' + rng->NextBounded(26)));
      break;
  }
  return s;
}

std::string PhoneOf(Random* rng) {
  return std::to_string(100 + rng->NextBounded(900)) + "-" +
         std::to_string(1000 + rng->NextBounded(9000));
}

}  // namespace

GeneratedData GenerateTaxA(size_t rows, double error_rate, uint64_t seed) {
  Random rng(seed);
  Schema schema({"name", "zipcode", "city", "state", "salary", "rate"});
  GeneratedData data{Table(schema), Table(schema)};
  // ~10 rows per zipcode block so majority repair can win.
  size_t num_zips = std::max<size_t>(1, rows / 10);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t zip = 10000 + rng.NextBounded(num_zips);
    int64_t salary = 20000 + static_cast<int64_t>(rng.NextBounded(180000));
    int64_t rate = salary / 10000;
    std::vector<Value> clean = {Value(rng.NextString(8)),
                                Value(static_cast<int64_t>(zip)),
                                Value(CityOf(zip)),
                                Value(StateOf(zip)),
                                Value(salary),
                                Value(rate)};
    std::vector<Value> dirty = clean;
    if (rng.NextBool(error_rate)) {
      // Corrupt city or state (50/50), the FD right-hand sides.
      size_t col = rng.NextBool(0.5) ? 2 : 3;
      dirty[col] = Value(CorruptText(dirty[col].ToString(), &rng));
    }
    data.clean.AppendRow(std::move(clean));
    data.dirty.AppendRow(std::move(dirty));
  }
  return data;
}

GeneratedData GenerateTaxB(size_t rows, double error_rate, uint64_t seed) {
  Random rng(seed);
  Schema schema({"name", "zipcode", "city", "state", "salary", "rate"});
  GeneratedData data{Table(schema), Table(schema)};
  // Distinct salaries via a random permutation of ranks; the clean rate is
  // strictly monotone in salary so the DC holds exactly.
  std::vector<uint64_t> ranks(rows);
  std::iota(ranks.begin(), ranks.end(), 0);
  for (size_t i = rows; i > 1; --i) {
    std::swap(ranks[i - 1], ranks[rng.NextBounded(i)]);
  }
  const double kRatePerRank = 0.01;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t rank = ranks[i];
    int64_t salary = 20000 + static_cast<int64_t>(rank) * 3;
    double rate = 5.0 + static_cast<double>(rank) * kRatePerRank;
    uint64_t zip = 10000 + rng.NextBounded(std::max<size_t>(1, rows / 10));
    std::vector<Value> clean = {Value(rng.NextString(8)),
                                Value(static_cast<int64_t>(zip)),
                                Value(CityOf(zip)),
                                Value(StateOf(zip)),
                                Value(salary),
                                Value(rate)};
    std::vector<Value> dirty = clean;
    if (rng.NextBool(error_rate)) {
      // Lower the rate by ~kTaxBViolationBand ranks: the row now pays less
      // than peers with smaller salaries, creating a bounded band of
      // violating pairs for DC ϕ2.
      dirty[5] = Value(rate - static_cast<double>(kTaxBViolationBand) *
                                  kRatePerRank);
    }
    data.clean.AppendRow(std::move(clean));
    data.dirty.AppendRow(std::move(dirty));
  }
  return data;
}

GeneratedData GenerateTpch(size_t rows, double error_rate, uint64_t seed) {
  Random rng(seed);
  Schema schema({"orderkey", "o_custkey", "c_address", "quantity", "price"});
  GeneratedData data{Table(schema), Table(schema)};
  size_t num_custs = std::max<size_t>(1, rows / 10);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t cust = 1 + rng.NextBounded(num_custs);
    std::string address = "addr_" + std::to_string(cust * 7919 % 100000);
    std::vector<Value> clean = {
        Value(static_cast<int64_t>(i + 1)), Value(static_cast<int64_t>(cust)),
        Value(address), Value(static_cast<int64_t>(1 + rng.NextBounded(50))),
        Value(static_cast<double>(rng.NextBounded(100000)) / 100.0)};
    std::vector<Value> dirty = clean;
    if (rng.NextBool(error_rate)) {
      dirty[2] = Value(CorruptText(address, &rng));
    }
    data.clean.AppendRow(std::move(clean));
    data.dirty.AppendRow(std::move(dirty));
  }
  return data;
}

DedupData GenerateCustomerDedup(size_t base_rows, int exact_copies,
                                double fuzzy_rate, uint64_t seed) {
  Random rng(seed);
  Schema schema({"custkey", "name", "address", "phone", "acctbal"});
  DedupData data;
  data.table = Table(schema);
  // Base rows.
  std::vector<std::vector<Value>> base;
  base.reserve(base_rows);
  for (size_t i = 0; i < base_rows; ++i) {
    base.push_back({Value(static_cast<int64_t>(i + 1)),
                    Value(rng.NextString(10)), Value("addr_" + rng.NextString(6)),
                    Value(PhoneOf(&rng)),
                    Value(static_cast<double>(rng.NextBounded(1000000)) / 100.0)});
  }
  for (const auto& row : base) {
    data.table.AppendRow(row);
  }
  // Exact duplicates: `exact_copies` byte-identical copies per base row.
  for (int c = 0; c < exact_copies; ++c) {
    for (size_t i = 0; i < base_rows; ++i) {
      RowId orig = static_cast<RowId>(i);
      RowId dup = static_cast<RowId>(data.table.num_rows());
      data.table.AppendRow(base[i]);
      data.exact_pairs.emplace_back(orig, dup);
    }
  }
  // Fuzzy duplicates: sample `fuzzy_rate` of current tuples, copy with
  // random edits on name and phone.
  size_t current = data.table.num_rows();
  for (size_t i = 0; i < current; ++i) {
    if (!rng.NextBool(fuzzy_rate)) continue;
    std::vector<Value> copy = data.table.row(i).values();
    copy[1] = Value(RandomEdit(copy[1].ToString(), &rng));
    copy[3] = Value(RandomEdit(copy[3].ToString(), &rng));
    RowId dup = static_cast<RowId>(data.table.num_rows());
    data.table.AppendRow(std::move(copy));
    data.fuzzy_pairs.emplace_back(static_cast<RowId>(i), dup);
  }
  return data;
}

DedupData GenerateNcVoter(size_t rows, double dup_rate, uint64_t seed) {
  Random rng(seed);
  Schema schema({"voter_id", "name", "city", "county", "phone", "age"});
  DedupData data;
  data.table = Table(schema);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t zip = rng.NextBounded(1000);
    data.table.AppendRow({Value(static_cast<int64_t>(i + 1)),
                          Value(rng.NextString(9)), Value(CityOf(zip)),
                          Value("county_" + std::to_string(zip % 100)),
                          Value(PhoneOf(&rng)),
                          Value(static_cast<int64_t>(18 + rng.NextBounded(80)))});
  }
  size_t current = data.table.num_rows();
  for (size_t i = 0; i < current; ++i) {
    if (!rng.NextBool(dup_rate)) continue;
    std::vector<Value> copy = data.table.row(i).values();
    copy[1] = Value(RandomEdit(copy[1].ToString(), &rng));
    copy[4] = Value(RandomEdit(copy[4].ToString(), &rng));
    RowId dup = static_cast<RowId>(data.table.num_rows());
    data.table.AppendRow(std::move(copy));
    data.fuzzy_pairs.emplace_back(static_cast<RowId>(i), dup);
  }
  return data;
}

GeneratedData GenerateHai(size_t rows, double error_rate, uint64_t seed,
                          const std::vector<size_t>& corrupt_columns) {
  Random rng(seed);
  Schema schema({"provider_id", "hospital", "city", "state", "zipcode",
                 "county", "phone", "measure", "score"});
  GeneratedData data{Table(schema), Table(schema)};
  size_t num_providers = std::max<size_t>(1, rows / 12);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t provider = 1000 + rng.NextBounded(num_providers);
    // Clean FDs: provider -> (city, phone, zipcode ...); phone -> zipcode;
    // zipcode -> state. Derived deterministically from the provider id.
    uint64_t zip = 10000 + provider % 997;
    // Injective in provider so the clean data satisfies phone -> zipcode.
    std::string phone = std::to_string(200 + provider / 10000) + "-" +
                        std::to_string(provider % 10000);
    std::vector<Value> clean = {
        Value(static_cast<int64_t>(provider)),
        Value("hospital_" + std::to_string(provider)),
        Value(CityOf(provider)),
        Value(StateOf(zip)),
        Value(static_cast<int64_t>(zip)),
        Value("county_" + std::to_string(provider % 321)),
        Value(phone),
        Value("HAI_" + std::to_string(1 + rng.NextBounded(6))),
        Value(static_cast<double>(rng.NextBounded(1000)) / 100.0)};
    std::vector<Value> dirty = clean;
    if (!corrupt_columns.empty() && rng.NextBool(error_rate)) {
      size_t col = corrupt_columns[rng.NextBounded(corrupt_columns.size())];
      dirty[col] = Value(CorruptText(dirty[col].ToString(), &rng));
    }
    data.clean.AppendRow(std::move(clean));
    data.dirty.AppendRow(std::move(dirty));
  }
  return data;
}

}  // namespace bigdansing
