#ifndef BIGDANSING_DATAGEN_DATAGEN_H_
#define BIGDANSING_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/table.h"

namespace bigdansing {

/// A generated workload: the dirty instance handed to BigDansing plus the
/// row-aligned ground truth used for precision/recall (Table 4). These are
/// deterministic synthetic stand-ins for the paper's datasets (Table 2);
/// schemas, error models and relative sizes follow the paper, values are
/// synthetic (see DESIGN.md §2).
struct GeneratedData {
  Table dirty;
  Table clean;
};

/// TaxA (paper §6.1 (1)): US personal tax records with schema
/// (name, zipcode, city, state, salary, rate). zipcode functionally
/// determines city and state in the clean data; errors append random text
/// to city/state in `error_rate` of the rows — the workload for FD ϕ1
/// (zipcode -> city). Blocks (zipcode groups) hold ~10 rows so majority
/// repair can recover the truth.
GeneratedData GenerateTaxA(size_t rows, double error_rate, uint64_t seed);

/// TaxB (§6.1 (2)): TaxA with numerical errors on rate. Clean rate grows
/// strictly monotonically with salary (distinct salaries), so the DC ϕ2
/// (t1.salary > t2.salary & t1.rate < t2.rate) holds exactly; errors lower
/// the rate of `error_rate` of the rows by a band of ~`kTaxBViolationBand`
/// salary ranks, so each error produces a bounded set of violating pairs.
GeneratedData GenerateTaxB(size_t rows, double error_rate, uint64_t seed);

/// Expected violating-pair band per injected TaxB error (used by tests).
inline constexpr size_t kTaxBViolationBand = 50;

/// TPCH (§6.1 (3)): the lineitem ⋈ customer join with schema
/// (orderkey, o_custkey, c_address, quantity, price); o_custkey
/// functionally determines c_address (FD ϕ3); errors mutate the address.
GeneratedData GenerateTpch(size_t rows, double error_rate, uint64_t seed);

/// A deduplication workload: a table plus the ground-truth duplicate row
/// pairs that were injected.
struct DedupData {
  Table table;
  /// Byte-identical copies of a base row (paper: cust1 has 3x, cust2 5x).
  std::vector<std::pair<RowId, RowId>> exact_pairs;
  /// Copies with random edits on name and phone (paper: 2% of tuples).
  std::vector<std::pair<RowId, RowId>> fuzzy_pairs;
};

/// Customer (§6.1 (4)): TPC-H customer with schema
/// (custkey, name, address, phone, acctbal); `exact_copies` extra exact
/// duplicates per sampled base row, then `fuzzy_rate` of all tuples
/// duplicated with random edits on name and phone.
DedupData GenerateCustomerDedup(size_t base_rows, int exact_copies,
                                double fuzzy_rate, uint64_t seed);

/// NCVoter (§6.1 (5)): voter records with schema
/// (voter_id, name, city, county, phone, age); `dup_rate` duplicate rows
/// with random edits in name and phone.
DedupData GenerateNcVoter(size_t rows, double dup_rate, uint64_t seed);

/// HAI (§6.1 (6)): hospital infection statistics with schema
/// (provider_id, hospital, city, state, zipcode, county, phone, measure,
/// score). The clean data satisfies ϕ6 (zipcode -> state), ϕ7
/// (phone -> zipcode) and ϕ8 (provider_id -> city, phone); errors corrupt
/// `error_rate` of the rows on one of `corrupt_columns` (defaults to the
/// attributes covered by all three FDs: city=2, state=3, phone=6; the paper
/// builds one dirty instance per rule combination, corrupting only the
/// attributes that combination covers).
GeneratedData GenerateHai(size_t rows, double error_rate, uint64_t seed,
                          const std::vector<size_t>& corrupt_columns = {2, 3,
                                                                        6});

}  // namespace bigdansing

#endif  // BIGDANSING_DATAGEN_DATAGEN_H_
