#include "data/storage.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.h"

namespace bigdansing {

namespace {

constexpr uint32_t kMagic = 0x42444253;  // "BDBS"

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

/// Sequential reader over a serialized buffer with bounds checking.
class Reader {
 public:
  explicit Reader(const std::string& buffer) : buffer_(buffer) {}

  template <typename T>
  bool Read(T* out) {
    if (pos_ + sizeof(T) > buffer_.size()) return false;
    std::memcpy(out, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t len = 0;
    if (!Read(&len) || pos_ + len > buffer_.size()) return false;
    out->assign(buffer_.data() + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const std::string& buffer_;
  size_t pos_ = 0;
};

}  // namespace

Result<PartitionedReplica> StorageManager::BuildReplica(
    const Schema& schema, const std::vector<Row>& rows,
    const std::string& attribute, size_t num_partitions) const {
  auto column = schema.IndexOf(attribute);
  if (!column.ok()) return column.status();
  if (num_partitions == 0) num_partitions = 1;
  PartitionedReplica replica;
  replica.attribute = attribute;
  replica.column = *column;
  replica.partitions.resize(num_partitions);
  for (const Row& row : rows) {
    size_t p = static_cast<size_t>(row.value(*column).Hash()) % num_partitions;
    replica.partitions[p].push_back(row);
  }
  return replica;
}

Status StorageManager::Store(const std::string& name, const Table& table,
                             const std::string& partition_attribute,
                             size_t num_partitions) {
  if (datasets_.count(name) > 0) {
    return Status::AlreadyExists("dataset '" + name + "' already stored");
  }
  auto replica = BuildReplica(table.schema(), table.rows(),
                              partition_attribute, num_partitions);
  if (!replica.ok()) return replica.status();
  StoredDataset stored;
  stored.schema = table.schema();
  stored.replicas.push_back(std::move(*replica));
  datasets_.emplace(name, std::move(stored));
  return Status::OK();
}

Status StorageManager::AddReplica(const std::string& name,
                                  const std::string& partition_attribute,
                                  size_t num_partitions) {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not stored");
  }
  for (const auto& r : it->second.replicas) {
    if (r.attribute == partition_attribute) {
      return Status::AlreadyExists("replica on '" + partition_attribute +
                                   "' already exists for '" + name + "'");
    }
  }
  // Rebuild the row set from the primary replica.
  std::vector<Row> rows;
  for (const auto& part : it->second.replicas[0].partitions) {
    rows.insert(rows.end(), part.begin(), part.end());
  }
  auto replica = BuildReplica(it->second.schema, rows, partition_attribute,
                              num_partitions);
  if (!replica.ok()) return replica.status();
  it->second.replicas.push_back(std::move(*replica));
  return Status::OK();
}

Result<const PartitionedReplica*> StorageManager::FindReplica(
    const std::string& name, const std::string& attribute) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not stored");
  }
  for (const auto& r : it->second.replicas) {
    if (r.attribute == attribute) return &r;
  }
  return Status::NotFound("no replica of '" + name + "' partitioned on '" +
                          attribute + "'");
}

Result<Table> StorageManager::Load(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not stored");
  }
  Table table(it->second.schema);
  for (const auto& part : it->second.replicas[0].partitions) {
    for (const Row& row : part) table.AppendRowWithId(row);
  }
  return table;
}

Result<Schema> StorageManager::GetSchema(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not stored");
  }
  return it->second.schema;
}

std::vector<std::string> StorageManager::ReplicaAttributes(
    const std::string& name) const {
  std::vector<std::string> out;
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return out;
  for (const auto& r : it->second.replicas) out.push_back(r.attribute);
  return out;
}

namespace {

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutI64(out, v.as_int());
      break;
    case ValueType::kDouble:
      PutF64(out, v.as_double());
      break;
    case ValueType::kString:
      PutString(out, v.as_string());
      break;
  }
}

bool ReadValue(Reader* reader, Value* out) {
  char tag = 0;
  if (!reader->Read(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt: {
      int64_t v = 0;
      if (!reader->Read(&v)) return false;
      *out = Value(v);
      return true;
    }
    case ValueType::kDouble: {
      double v = 0;
      if (!reader->Read(&v)) return false;
      *out = Value(v);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!reader->ReadString(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::string SerializeRow(const Row& row) {
  std::string out;
  PutI64(&out, row.id());
  PutU64(&out, row.size());
  for (size_t i = 0; i < row.size(); ++i) PutValue(&out, row.value(i));
  PutU64(&out, row.source_columns().size());
  for (size_t c : row.source_columns()) PutU64(&out, c);
  return out;
}

Result<Row> DeserializeRow(const std::string& buffer) {
  Reader reader(buffer);
  RowId id = 0;
  uint64_t size = 0;
  if (!reader.Read(&id) || !reader.Read(&size) || size > (uint64_t{1} << 24)) {
    return Status::ParseError("corrupt row header");
  }
  std::vector<Value> values;
  values.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    Value v;
    if (!ReadValue(&reader, &v)) return Status::ParseError("corrupt row value");
    values.push_back(std::move(v));
  }
  Row row(id, std::move(values));
  uint64_t num_sources = 0;
  if (!reader.Read(&num_sources) || num_sources > (uint64_t{1} << 24)) {
    return Status::ParseError("corrupt row source columns");
  }
  if (num_sources > 0) {
    std::vector<size_t> sources(num_sources);
    for (auto& s : sources) {
      uint64_t v = 0;
      if (!reader.Read(&v)) return Status::ParseError("corrupt source column");
      s = static_cast<size_t>(v);
    }
    row.set_source_columns(std::move(sources));
  }
  return row;
}

std::string SerializeTableBinary(const Table& table) {
  std::string out;
  PutU32(&out, kMagic);
  const Schema& schema = table.schema();
  PutU64(&out, schema.num_attributes());
  for (const auto& a : schema.attributes()) PutString(&out, a);
  PutU64(&out, table.num_rows());
  // Row ids.
  for (const Row& row : table.rows()) PutI64(&out, row.id());
  // Column-oriented values: per column, a type tag then the payload.
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    for (const Row& row : table.rows()) {
      const Value& v = row.value(c);
      out.push_back(static_cast<char>(v.type()));
      switch (v.type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt:
          PutI64(&out, v.as_int());
          break;
        case ValueType::kDouble:
          PutF64(&out, v.as_double());
          break;
        case ValueType::kString:
          PutString(&out, v.as_string());
          break;
      }
    }
  }
  return out;
}

Result<Table> DeserializeTableBinary(const std::string& buffer) {
  Reader reader(buffer);
  uint32_t magic = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return Status::ParseError("not a BigDansing binary table");
  }
  uint64_t num_cols = 0;
  if (!reader.Read(&num_cols) || num_cols > 1u << 20) {
    return Status::ParseError("corrupt column count");
  }
  std::vector<std::string> names(num_cols);
  for (auto& n : names) {
    if (!reader.ReadString(&n)) return Status::ParseError("corrupt schema");
  }
  uint64_t num_rows = 0;
  if (!reader.Read(&num_rows)) return Status::ParseError("corrupt row count");
  std::vector<RowId> ids(num_rows);
  for (auto& id : ids) {
    if (!reader.Read(&id)) return Status::ParseError("corrupt row ids");
  }
  std::vector<std::vector<Value>> columns(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    columns[c].reserve(num_rows);
    for (uint64_t r = 0; r < num_rows; ++r) {
      char tag = 0;
      if (!reader.Read(&tag)) return Status::ParseError("corrupt value tag");
      switch (static_cast<ValueType>(tag)) {
        case ValueType::kNull:
          columns[c].push_back(Value::Null());
          break;
        case ValueType::kInt: {
          int64_t v = 0;
          if (!reader.Read(&v)) return Status::ParseError("corrupt int");
          columns[c].push_back(Value(v));
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          if (!reader.Read(&v)) return Status::ParseError("corrupt double");
          columns[c].push_back(Value(v));
          break;
        }
        case ValueType::kString: {
          std::string s;
          if (!reader.ReadString(&s)) return Status::ParseError("corrupt string");
          columns[c].push_back(Value(std::move(s)));
          break;
        }
        default:
          return Status::ParseError("unknown value tag");
      }
    }
  }
  Table table((Schema(names)));
  for (uint64_t r = 0; r < num_rows; ++r) {
    std::vector<Value> values;
    values.reserve(num_cols);
    for (uint64_t c = 0; c < num_cols; ++c) {
      values.push_back(std::move(columns[c][r]));
    }
    table.AppendRowWithId(Row(ids[r], std::move(values)));
  }
  return table;
}

Status SaveBinary(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::string buffer = SerializeTableBinary(table);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Table> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeTableBinary(buffer.str());
}

}  // namespace bigdansing
