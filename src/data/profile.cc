#include "data/profile.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "data/dictionary.h"
#include "dataflow/dataset.h"

namespace bigdansing {

namespace {

/// Values render with their type (like the lineage ledger) so int 1 and
/// string "1" stay distinguishable in profile output; null renders as JSON
/// null.
std::string ValueJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(v.as_int());
    case ValueType::kDouble:
      return JsonDouble(v.as_double());
    case ValueType::kString:
      return "\"" + JsonEscape(v.as_string()) + "\"";
  }
  return "null";
}

/// Count-descending, value-ascending order; keeps the first `k`.
std::vector<TopValue> SelectTopK(std::vector<TopValue> all, size_t k) {
  std::sort(all.begin(), all.end(), [](const TopValue& a, const TopValue& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.value < b.value;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Fills distinct/min/max/top of `prof` from a raw frequency map — shared
/// by the scan stage and the small-table inline path so they cannot drift.
void FinalizeFromCounts(const std::unordered_map<Value, uint64_t>& counts,
                        size_t top_k, ColumnProfile* prof) {
  prof->distinct = counts.size();
  std::vector<TopValue> all;
  all.reserve(counts.size());
  for (const auto& [v, n] : counts) {
    if (prof->min.is_null() || v < prof->min) prof->min = v;
    if (prof->max.is_null() || v > prof->max) prof->max = v;
    all.push_back({v, n});
  }
  prof->top = SelectTopK(std::move(all), top_k);
}

}  // namespace

std::string ColumnProfile::ToJson() const {
  std::string out = "{\"name\":\"" + JsonEscape(name) + "\"";
  out += ",\"index\":" + std::to_string(index);
  out += ",\"rows\":" + std::to_string(rows);
  out += ",\"nulls\":" + std::to_string(nulls);
  out += ",\"null_rate\":" + JsonDouble(null_rate());
  out += ",\"distinct\":" + std::to_string(distinct);
  out += ",\"min\":" + ValueJson(min);
  out += ",\"max\":" + ValueJson(max);
  out += ",\"top\":[";
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"value\":" + ValueJson(top[i].value) +
           ",\"count\":" + std::to_string(top[i].count) + "}";
  }
  out += "]}";
  return out;
}

const ColumnProfile* TableProfile::Find(const std::string& name) const {
  for (const ColumnProfile& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string TableProfile::ToJson() const {
  std::string out = "{\"rows\":" + std::to_string(rows) + ",\"columns\":[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ",";
    out += columns[i].ToJson();
  }
  out += "]}";
  return out;
}

TableProfile ProfileTable(ExecutionContext* ctx, const Table& table,
                          const ProfileOptions& options) {
  TableProfile out;
  const Schema& schema = table.schema();
  const size_t num_cols = schema.num_attributes();
  out.rows = table.num_rows();
  out.columns.resize(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    out.columns[c].name = schema.attribute(c);
    out.columns[c].index = c;
    out.columns[c].rows = out.rows;
  }
  if (num_cols == 0 || ctx == nullptr) return out;

  std::optional<ScopedSpan> span;
  if (TraceRecorder::Instance().enabled()) {
    span.emplace("profile", "phase");
    span->Annotate("rows", out.rows);
    span->Annotate("columns", static_cast<uint64_t>(num_cols));
  }

  if (table.num_rows() < options.stage_min_rows) {
    // Small-table fast path: a driver-side loop with no stage dispatch —
    // below this size the dispatch overhead exceeds the profiling work
    // (the same economics as the morsel-size cutoff). Output is identical
    // to the staged paths.
    std::vector<std::unordered_map<Value, uint64_t>> counts(num_cols);
    for (const Row& row : table.rows()) {
      for (size_t c = 0; c < num_cols; ++c) {
        const Value& v = row.value(row.source_column(c));
        if (v.is_null()) {
          ++out.columns[c].nulls;
        } else {
          ++counts[c][v];
        }
      }
    }
    for (size_t c = 0; c < num_cols; ++c) {
      FinalizeFromCounts(counts[c], options.top_k, &out.columns[c]);
    }
    return out;
  }

  Dataset<Row> data = Dataset<Row>::FromVector(
      ctx, std::vector<Row>(table.rows().begin(), table.rows().end()));
  const auto& parts = data.partitions();

  if (options.use_encoding && table.num_rows() >= options.encode_min_rows) {
    // Encoded path: the sorted pools give distinct/min/max for free
    // (every pooled value occurs in the data, and code order is Value
    // order); only null counts and the frequency histogram need a pass,
    // and that pass touches dense u32 codes, never a Value.
    std::vector<std::vector<size_t>> groups(num_cols);
    for (size_t c = 0; c < num_cols; ++c) groups[c] = {c};
    EncodedColumnSet encoded = EncodeColumns(data, groups);

    struct ColumnCounts {
      std::vector<uint64_t> counts;
      uint64_t nulls = 0;
    };
    using Piece = std::vector<ColumnCounts>;
    std::vector<Piece> hist = data.RunStageMorsels<Piece>(
        "profile:histogram", [&](size_t p) { return parts[p].size(); },
        [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
          Piece piece(num_cols);
          for (size_t c = 0; c < num_cols; ++c) {
            const EncodedColumn& col = encoded.columns.at(c);
            piece[c].counts.assign(col.pool->size(), 0);
            const std::vector<uint32_t>& codes = col.codes[p];
            for (size_t i = begin; i < end; ++i) {
              const uint32_t code = codes[i];
              if (code >= col.pool->size()) {
                ++piece[c].nulls;
              } else {
                ++piece[c].counts[code];
              }
            }
          }
          tc.records_in = end - begin;
          return piece;
        },
        [&](size_t, std::vector<Piece>&& pieces) {
          Piece merged(num_cols);
          for (size_t c = 0; c < num_cols; ++c) {
            merged[c].counts.assign(encoded.columns.at(c).pool->size(), 0);
          }
          for (const Piece& piece : pieces) {
            for (size_t c = 0; c < num_cols; ++c) {
              merged[c].nulls += piece[c].nulls;
              for (size_t k = 0; k < piece[c].counts.size(); ++k) {
                merged[c].counts[k] += piece[c].counts[k];
              }
            }
          }
          return merged;
        });

    for (size_t c = 0; c < num_cols; ++c) {
      const ValuePool& pool = *encoded.columns.at(c).pool;
      ColumnProfile& prof = out.columns[c];
      std::vector<uint64_t> counts(pool.size(), 0);
      for (const Piece& part : hist) {
        prof.nulls += part[c].nulls;
        for (size_t k = 0; k < part[c].counts.size(); ++k) {
          counts[k] += part[c].counts[k];
        }
      }
      prof.distinct = pool.size();
      if (pool.size() > 0) {
        prof.min = pool.value(0);
        prof.max = pool.value(static_cast<uint32_t>(pool.size() - 1));
      }
      std::vector<TopValue> all;
      all.reserve(counts.size());
      for (uint32_t code = 0; code < counts.size(); ++code) {
        if (counts[code] > 0) all.push_back({pool.value(code), counts[code]});
      }
      prof.top = SelectTopK(std::move(all), options.top_k);
    }
    return out;
  }

  // Scan path for un-encoded use: one morselized pass accumulating raw
  // Value frequencies per column. Identical output to the encoded path
  // (same Value equivalence, same tie-breaks).
  struct ScanAcc {
    std::unordered_map<Value, uint64_t> counts;
    uint64_t nulls = 0;
  };
  using Piece = std::vector<ScanAcc>;
  std::vector<Piece> scanned = data.RunStageMorsels<Piece>(
      "profile:scan", [&](size_t p) { return parts[p].size(); },
      [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
        Piece piece(num_cols);
        for (size_t i = begin; i < end; ++i) {
          const Row& row = parts[p][i];
          for (size_t c = 0; c < num_cols; ++c) {
            const Value& v = row.value(row.source_column(c));
            if (v.is_null()) {
              ++piece[c].nulls;
            } else {
              ++piece[c].counts[v];
            }
          }
        }
        tc.records_in = end - begin;
        return piece;
      },
      [&](size_t, std::vector<Piece>&& pieces) {
        Piece merged(num_cols);
        for (Piece& piece : pieces) {
          for (size_t c = 0; c < num_cols; ++c) {
            merged[c].nulls += piece[c].nulls;
            for (auto& [v, n] : piece[c].counts) merged[c].counts[v] += n;
          }
        }
        return merged;
      });

  for (size_t c = 0; c < num_cols; ++c) {
    ColumnProfile& prof = out.columns[c];
    std::unordered_map<Value, uint64_t> counts;
    for (Piece& part : scanned) {
      prof.nulls += part[c].nulls;
      for (auto& [v, n] : part[c].counts) counts[v] += n;
    }
    FinalizeFromCounts(counts, options.top_k, &prof);
  }
  return out;
}

}  // namespace bigdansing
