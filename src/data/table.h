#ifndef BIGDANSING_DATA_TABLE_H_
#define BIGDANSING_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/row.h"
#include "data/schema.h"

namespace bigdansing {

/// An in-memory relation: a schema plus rows with stable ids. This is the
/// dirty-dataset container handed to BigDansing and the repaired-dataset
/// container it returns.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  const Row& row(size_t index) const { return rows_[index]; }
  Row& mutable_row(size_t index) { return rows_[index]; }

  /// Appends `row`, assigning it the next sequential id.
  void AppendRow(std::vector<Value> values);

  /// Appends a row preserving its id (ids must stay unique).
  void AppendRowWithId(Row row) { rows_.push_back(std::move(row)); }

  /// Looks up a cell by row id (ids are positions for generator-built
  /// tables; falls back to a scan otherwise). Returns nullptr if absent.
  const Row* FindRowById(RowId id) const;
  Row* FindMutableRowById(RowId id);

  /// Value of attribute `name` in row `index`.
  Result<Value> ValueAt(size_t index, const std::string& name) const;

  /// Counts cells whose value differs from the same cell in `other`
  /// (tables must be row-aligned with identical schemas).
  Result<size_t> CountDifferingCells(const Table& other) const;

  bool operator==(const Table& other) const {
    return schema_ == other.schema_ && rows_ == other.rows_;
  }

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_TABLE_H_
