#ifndef BIGDANSING_DATA_RDF_H_
#define BIGDANSING_DATA_RDF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace bigdansing {

/// An RDF triple. BigDansing's data model is not tied to relations: triples
/// are data units whose elements are subject / predicate / object
/// (paper §2.1 and Appendix C).
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;

  bool operator==(const Triple& other) const = default;
};

/// A set of triples with conversion to/from the tabular data-unit form used
/// by the rule engine (columns: subject, predicate, object).
class TripleStore {
 public:
  TripleStore() = default;
  explicit TripleStore(std::vector<Triple> triples)
      : triples_(std::move(triples)) {}

  void Add(Triple t) { triples_.push_back(std::move(t)); }
  size_t size() const { return triples_.size(); }
  const std::vector<Triple>& triples() const { return triples_; }

  /// Triples whose predicate equals `predicate`.
  std::vector<Triple> WithPredicate(const std::string& predicate) const;

  /// Tabular view: one row per triple, schema (subject, predicate, object).
  Table ToTable() const;

  /// Rebuilds a store from a tabular view produced by ToTable().
  static Result<TripleStore> FromTable(const Table& table);

 private:
  std::vector<Triple> triples_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_RDF_H_
