#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace bigdansing {

namespace {

/// Splits one CSV record honoring double-quote quoting. Returns false on a
/// malformed record (unterminated quote).
bool SplitCsvRecord(const std::string& line, char delim,
                    std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      fields->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(current));
  return true;
}

bool NeedsQuoting(const std::string& field, char delim) {
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> fields;
  bool first = true;
  Schema schema;
  Table table;
  size_t line_no = 0;
  size_t width = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && in.eof()) break;
    if (!SplitCsvRecord(line, options.delimiter, &fields)) {
      return Status::ParseError("unterminated quote at line " +
                                std::to_string(line_no));
    }
    if (first) {
      first = false;
      if (options.has_header) {
        schema = Schema(fields);
        width = fields.size();
        table = Table(schema);
        continue;
      }
      std::vector<std::string> names;
      names.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        names.push_back("c" + std::to_string(i));
      }
      schema = Schema(std::move(names));
      width = fields.size();
      table = Table(schema);
    }
    if (fields.size() != width) {
      return Status::ParseError("line " + std::to_string(line_no) + " has " +
                                std::to_string(fields.size()) +
                                " fields, expected " + std::to_string(width));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (auto& f : fields) {
      values.push_back(options.infer_types
                           ? Value::Parse(f)
                           : (f.empty() ? Value::Null() : Value(f)));
    }
    table.AppendRow(std::move(values));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      out += schema.attribute(i);
    }
    out.push_back('\n');
  }
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      std::string field = row.value(i).ToString();
      out += NeedsQuoting(field, options.delimiter) ? QuoteField(field) : field;
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsvString(table, options);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace bigdansing
