#include "data/rdf.h"

namespace bigdansing {

std::vector<Triple> TripleStore::WithPredicate(
    const std::string& predicate) const {
  std::vector<Triple> out;
  for (const auto& t : triples_) {
    if (t.predicate == predicate) out.push_back(t);
  }
  return out;
}

Table TripleStore::ToTable() const {
  Table table(Schema({"subject", "predicate", "object"}));
  for (const auto& t : triples_) {
    table.AppendRow({Value(t.subject), Value(t.predicate), Value(t.object)});
  }
  return table;
}

Result<TripleStore> TripleStore::FromTable(const Table& table) {
  const Schema& s = table.schema();
  if (s.num_attributes() != 3 || !s.Contains("subject") ||
      !s.Contains("predicate") || !s.Contains("object")) {
    return Status::InvalidArgument(
        "expected schema (subject, predicate, object), got " + s.ToString());
  }
  TripleStore store;
  for (const Row& row : table.rows()) {
    store.Add(Triple{row.value(0).ToString(), row.value(1).ToString(),
                     row.value(2).ToString()});
  }
  return store;
}

}  // namespace bigdansing
