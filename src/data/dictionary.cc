#include "data/dictionary.h"

#include <algorithm>

#include "obs/profiler.h"

namespace bigdansing {

namespace {

bool ValueLess(const Value& a, const Value& b) { return a.Compare(b) < 0; }

uint64_t NextPow2(uint64_t n) {
  uint64_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

/// Flat open-addressing set of distinct Values, used for the per-partition
/// dedup in the encode stage. Slots hold value-index+1 (0 = empty) into a
/// parallel (value, hash) store; probing compares cached hashes before
/// falling back to Value equality, and nothing allocates per element —
/// the node-per-insert cost of std::unordered_set is what this replaces in
/// the hottest encode loop.
class FlatValueSet {
 public:
  void Reserve(size_t n) {
    values_.reserve(n);
    hashes_.reserve(n);
    Rehash(NextPow2(2 * n + 16));
  }

  void Insert(Value v) {
    if ((values_.size() + 1) * 2 > slots_.size()) Rehash(2 * slots_.size());
    const uint64_t h = v.Hash();
    uint64_t i = h & mask_;
    while (uint32_t slot = slots_[i]) {
      const uint32_t idx = slot - 1;
      if (hashes_[idx] == h && values_[idx] == v) return;
      i = (i + 1) & mask_;
    }
    slots_[i] = static_cast<uint32_t>(values_.size()) + 1;
    values_.push_back(std::move(v));
    hashes_.push_back(h);
  }

  std::vector<Value> Take() { return std::move(values_); }

 private:
  void Rehash(uint64_t size) {
    slots_.assign(size, 0);
    mask_ = size - 1;
    for (uint32_t idx = 0; idx < values_.size(); ++idx) {
      uint64_t i = hashes_[idx] & mask_;
      while (slots_[i]) i = (i + 1) & mask_;
      slots_[i] = idx + 1;
    }
  }

  std::vector<uint32_t> slots_;
  uint64_t mask_ = 0;
  std::vector<Value> values_;
  std::vector<uint64_t> hashes_;
};

}  // namespace

ValuePool::ValuePool(std::vector<Value> values)
    : values_(std::move(values)) {
  hashes_.reserve(values_.size());
  for (const Value& v : values_) hashes_.push_back(v.Hash());
  const uint64_t size = NextPow2(2 * values_.size() + 16);
  index_.assign(size, 0);
  index_mask_ = size - 1;
  for (uint32_t code = 0; code < values_.size(); ++code) {
    uint64_t i = hashes_[code] & index_mask_;
    while (index_[i]) i = (i + 1) & index_mask_;
    index_[i] = code + 1;
  }
}

uint32_t ValuePool::CodeOf(const Value& v) const {
  if (v.is_null()) return kNullCode;
  const uint64_t h = v.Hash();
  uint64_t i = h & index_mask_;
  while (uint32_t slot = index_[i]) {
    const uint32_t code = slot - 1;
    if (hashes_[code] == h && values_[code] == v) return code;
    i = (i + 1) & index_mask_;
  }
  return kAbsentCode;
}

uint32_t ValuePool::LowerBound(const Value& v) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), v, ValueLess);
  return static_cast<uint32_t>(it - values_.begin());
}

uint32_t ValuePool::UpperBound(const Value& v) const {
  auto it = std::upper_bound(values_.begin(), values_.end(), v, ValueLess);
  return static_cast<uint32_t>(it - values_.begin());
}

EncodedColumnSet EncodeColumns(
    const Dataset<Row>& data, const std::vector<std::vector<size_t>>& groups) {
  EncodedColumnSet out;
  const auto& parts = data.partitions();
  const size_t num_parts = parts.size();

  // Flat column order (group-major) fixes the layout of both stage outputs.
  std::vector<size_t> flat_cols;
  std::vector<size_t> flat_group;  // flat slot -> group index
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t c : groups[g]) {
      flat_cols.push_back(c);
      flat_group.push_back(g);
    }
  }

  // Stage 1: per-partition distinct non-null values per group via flat hash
  // dedup (one Hash + O(1) probe per cell — cheaper than sorting every
  // cell; only the final distinct sets get sorted). Columns may carry
  // per-row source mappings (scoped rows), honoured via source_column.
  std::vector<std::vector<std::vector<Value>>> distinct =
      data.RunStageProducing<std::vector<std::vector<Value>>>(
          "kernel:encode:pool", [&](size_t p, TaskContext& tc) {
            std::vector<std::vector<Value>> per_group(groups.size());
            for (size_t g = 0; g < groups.size(); ++g) {
              FlatValueSet seen;
              seen.Reserve(parts[p].size() / 4 + 16);
              for (size_t c : groups[g]) {
                for (const Row& row : parts[p]) {
                  const Value& v = row.value(row.source_column(c));
                  if (!v.is_null()) seen.Insert(v);
                }
              }
              per_group[g] = seen.Take();
            }
            tc.records_in = parts[p].size();
            return per_group;
          });

  std::vector<std::shared_ptr<const ValuePool>> pools(groups.size());
  {
    // Driver-serial pool construction (merge + sort + index build between
    // the two parallel stages); published so profiled runs attribute it.
    ScopedActivity pool_activity(
        Profiler::Instance().Intern("kernel:encode:pool", "driver"), 0, 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      FlatValueSet merged;
      size_t total = 0;
      for (const auto& per_group : distinct) total += per_group[g].size();
      merged.Reserve(total);
      for (auto& per_group : distinct) {
        for (Value& v : per_group[g]) merged.Insert(std::move(v));
      }
      // Sorted so code order equals Value order (ordering predicates
      // compile to u32 range tests against LowerBound/UpperBound).
      std::vector<Value> sorted = merged.Take();
      std::sort(sorted.begin(), sorted.end(), ValueLess);
      pools[g] = std::make_shared<ValuePool>(std::move(sorted));
    }
  }

  // Stage 2: encode every requested column morsel-wise against its group's
  // pool (O(1) probes against the pool's flat index); morsel pieces
  // concatenate in row order, giving partition-aligned code vectors.
  using CodesPiece = std::vector<std::vector<uint32_t>>;  // flat slot-major
  std::vector<CodesPiece> encoded = data.RunStageMorsels<CodesPiece>(
      "kernel:encode:codes",
      [&](size_t p) { return parts[p].size(); },
      [&](size_t p, size_t begin, size_t end, TaskContext& tc) {
        CodesPiece piece(flat_cols.size());
        for (size_t s = 0; s < flat_cols.size(); ++s) {
          const ValuePool& pool = *pools[flat_group[s]];
          const size_t c = flat_cols[s];
          std::vector<uint32_t>& codes = piece[s];
          codes.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            const Row& row = parts[p][i];
            codes.push_back(pool.CodeOf(row.value(row.source_column(c))));
          }
        }
        tc.records_in = end - begin;
        tc.records_out = end - begin;
        return piece;
      },
      [&](size_t, std::vector<CodesPiece>&& pieces) {
        CodesPiece merged(flat_cols.size());
        for (auto& piece : pieces) {
          for (size_t s = 0; s < flat_cols.size(); ++s) {
            merged[s].insert(merged[s].end(), piece[s].begin(),
                             piece[s].end());
          }
        }
        return merged;
      });

  for (size_t s = 0; s < flat_cols.size(); ++s) {
    EncodedColumn col;
    col.pool = pools[flat_group[s]];
    col.codes.resize(num_parts);
    for (size_t p = 0; p < num_parts; ++p) {
      col.codes[p] = std::move(encoded[p][s]);
    }
    out.columns.emplace(flat_cols[s], std::move(col));
  }
  for (const auto& part : parts) out.rows += part.size();
  return out;
}

std::shared_ptr<const ValuePool> GrowPool(
    std::shared_ptr<const ValuePool> base, const std::vector<Value>& fresh,
    std::vector<uint32_t>* old_to_new) {
  // Distinct genuinely-new values, sorted.
  FlatValueSet seen;
  seen.Reserve(fresh.size());
  for (const Value& v : fresh) {
    if (v.is_null()) continue;
    if (base->CodeOf(v) == ValuePool::kAbsentCode) seen.Insert(v);
  }
  std::vector<Value> added = seen.Take();
  if (added.empty()) {
    if (old_to_new != nullptr) {
      old_to_new->resize(base->size());
      for (uint32_t c = 0; c < base->size(); ++c) (*old_to_new)[c] = c;
    }
    return base;
  }
  std::sort(added.begin(), added.end(), ValueLess);

  // Merge the two sorted runs; record where each old code lands.
  std::vector<Value> merged;
  merged.reserve(base->size() + added.size());
  if (old_to_new != nullptr) {
    old_to_new->assign(base->size(), 0);
  }
  size_t a = 0;
  for (uint32_t c = 0; c < base->size(); ++c) {
    const Value& old = base->value(c);
    while (a < added.size() && ValueLess(added[a], old)) {
      merged.push_back(added[a++]);
    }
    if (old_to_new != nullptr) {
      (*old_to_new)[c] = static_cast<uint32_t>(merged.size());
    }
    merged.push_back(old);
  }
  while (a < added.size()) merged.push_back(added[a++]);
  return std::make_shared<ValuePool>(std::move(merged));
}

}  // namespace bigdansing
