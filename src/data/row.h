#ifndef BIGDANSING_DATA_ROW_H_
#define BIGDANSING_DATA_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/value.h"

namespace bigdansing {

/// Identifier of a data unit. Row ids are stable through Scope/Block/Iterate
/// so violations and fixes can point back into the original dataset.
using RowId = int64_t;

/// A data unit in the relational model (paper §2.1): a row id plus its
/// element values. Scoped rows may carry fewer values than the base schema;
/// `source_columns` then records which base column each element came from.
class Row {
 public:
  Row() : id_(-1) {}
  Row(RowId id, std::vector<Value> values)
      : id_(id), values_(std::move(values)) {}

  RowId id() const { return id_; }
  void set_id(RowId id) { id_ = id; }

  size_t size() const { return values_.size(); }
  const Value& value(size_t index) const { return values_[index]; }
  Value& value(size_t index) { return values_[index]; }
  const std::vector<Value>& values() const { return values_; }

  void set_value(size_t index, Value v) { values_[index] = std::move(v); }
  void AddValue(Value v) { values_.push_back(std::move(v)); }

  /// Original column index of element `index`; identity unless scoped.
  size_t source_column(size_t index) const {
    return source_columns_.empty() ? index : source_columns_[index];
  }
  void set_source_columns(std::vector<size_t> cols) {
    source_columns_ = std::move(cols);
  }
  const std::vector<size_t>& source_columns() const { return source_columns_; }

  bool operator==(const Row& other) const {
    return id_ == other.id_ && values_ == other.values_;
  }

  /// "#id[v0|v1|...]" for debugging.
  std::string ToString() const;

 private:
  RowId id_;
  std::vector<Value> values_;
  std::vector<size_t> source_columns_;
};

/// A pair of data units flowing from Iterate to Detect.
struct RowPair {
  Row left;
  Row right;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_ROW_H_
