#include "data/row.h"

namespace bigdansing {

std::string Row::ToString() const {
  std::string out = "#" + std::to_string(id_) + "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += "|";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace bigdansing
