#include "data/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace bigdansing {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  return 0.0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[64];
      // %.17g round-trips doubles; trim to shortest with %g first.
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case ValueType::kString:
      return as_string();
  }
  return "";
}

Value Value::Parse(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return Value::Null();
  if (LooksLikeInt(trimmed)) {
    int64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), v);
    if (ec == std::errc() && ptr == trimmed.data() + trimmed.size()) {
      return Value(v);
    }
    // Overflow: fall through to string.
    return Value(std::string(text));
  }
  if (LooksLikeDouble(trimmed)) {
    return Value(std::strtod(std::string(trimmed).c_str(), nullptr));
  }
  return Value(std::string(text));
}

int Value::Compare(const Value& other) const {
  // Nulls first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Cross-numeric comparison.
  if (is_numeric() && other.is_numeric()) {
    double a = AsNumber();
    double b = other.AsNumber();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Numerics sort before strings.
  if (is_numeric() != other.is_numeric()) return is_numeric() ? -1 : 1;
  // Both strings.
  return as_string().compare(other.as_string());
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x4E554C4CULL;  // "NULL"
    case ValueType::kInt:
      return StableHashUint64(static_cast<uint64_t>(as_int()));
    case ValueType::kDouble: {
      double d = as_double();
      // Integral doubles hash like ints so 1 == 1.0 implies equal hashes.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return StableHashUint64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return StableHashUint64(bits);
    }
    case ValueType::kString:
      return StableHashBytes(as_string());
  }
  return 0;
}

}  // namespace bigdansing
