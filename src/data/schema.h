#ifndef BIGDANSING_DATA_SCHEMA_H_
#define BIGDANSING_DATA_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace bigdansing {

/// Ordered list of attribute names; maps names to column indices.
/// BigDansing data units are rows whose elements are identified by these
/// attributes (paper §2.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attributes);

  /// Parses "name,zipcode,city" into a schema.
  static Schema FromCsvHeader(const std::string& header);

  size_t num_attributes() const { return attributes_.size(); }
  const std::vector<std::string>& attributes() const { return attributes_; }
  const std::string& attribute(size_t index) const { return attributes_[index]; }

  /// Index of `name`, or error if absent.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if `name` is an attribute of this schema.
  bool Contains(const std::string& name) const;

  /// Schema restricted to the given attribute indices (used by Scope).
  Schema Project(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  /// "(a, b, c)" for debugging.
  std::string ToString() const;

 private:
  std::vector<std::string> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_SCHEMA_H_
