#ifndef BIGDANSING_DATA_VALUE_H_
#define BIGDANSING_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"

namespace bigdansing {

/// Physical type of a Value.
enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

/// Returns a stable name for `type` ("null", "int", "double", "string").
const char* ValueTypeName(ValueType type);

/// A dynamically typed cell value: null, 64-bit integer, double, or string.
/// Values form a total order (null < numerics < strings; int and double
/// compare numerically against each other) so they can key sorted joins.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Accessors; behaviour is undefined unless the type matches.
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: int or double widened to double. Null/strings return 0.
  double AsNumber() const;

  /// Renders the value for CSV output / debugging. Null renders as "".
  std::string ToString() const;

  /// Parses `text` with type sniffing: integer-looking text becomes kInt,
  /// float-looking text kDouble, empty text kNull, anything else kString.
  static Value Parse(std::string_view text);

  /// Three-way comparison defining the total order described above.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Platform-stable hash; equal values (including int 1 == double 1.0)
  /// hash identically.
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace bigdansing

namespace std {
template <>
struct hash<bigdansing::Value> {
  size_t operator()(const bigdansing::Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
}  // namespace std

#endif  // BIGDANSING_DATA_VALUE_H_
