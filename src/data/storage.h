#ifndef BIGDANSING_DATA_STORAGE_H_
#define BIGDANSING_DATA_STORAGE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace bigdansing {

/// One replica of a stored dataset, logically partitioned on an attribute:
/// every row lives in the partition selected by the hash of its value of
/// that attribute, so all rows sharing a blocking key are co-located.
struct PartitionedReplica {
  std::string attribute;
  size_t column = 0;
  std::vector<std::vector<Row>> partitions;
};

/// The data storage manager of Appendix F. Three optimizations:
///
/// 1. **Partitioning** — datasets are split by *content* (attribute value),
///    not by size, so the Block operator can be pushed down to storage:
///    units sharing a blocking key are already co-located and detection
///    needs no shuffle (see RuleEngine::DetectWithStorage).
/// 2. **Replication** — different cleansing tasks block on different keys,
///    so a dataset may be stored several times, each replica partitioned
///    on a different attribute ("heterogeneous replication").
/// 3. **Layout** — tables serialize to a binary column-oriented format
///    (SaveBinary/LoadBinary), avoiding string parsing on reload and
///    letting Scope read only the projected columns.
///
/// The manager also records each dataset's "upload plan" (which replicas
/// exist, how each is partitioned) — the metadata BigDansing consults at
/// query time to pick an access path.
class StorageManager {
 public:
  /// Stores `table` under `name` with a primary replica partitioned on
  /// `partition_attribute` into `num_partitions` parts. Fails if `name`
  /// already exists or the attribute is unknown.
  Status Store(const std::string& name, const Table& table,
               const std::string& partition_attribute, size_t num_partitions);

  /// Adds another replica of `name`, partitioned on a different attribute.
  Status AddReplica(const std::string& name,
                    const std::string& partition_attribute,
                    size_t num_partitions);

  /// The replica of `name` partitioned on `attribute`, or NotFound.
  Result<const PartitionedReplica*> FindReplica(
      const std::string& name, const std::string& attribute) const;

  /// Reassembles the full table from the primary replica.
  Result<Table> Load(const std::string& name) const;

  /// The schema of dataset `name`.
  Result<Schema> GetSchema(const std::string& name) const;

  /// The attributes on which replicas of `name` exist (the upload plan).
  std::vector<std::string> ReplicaAttributes(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return datasets_.count(name) > 0;
  }

 private:
  struct StoredDataset {
    Schema schema;
    std::vector<PartitionedReplica> replicas;
  };
  Result<PartitionedReplica> BuildReplica(const Schema& schema,
                                          const std::vector<Row>& rows,
                                          const std::string& attribute,
                                          size_t num_partitions) const;

  std::map<std::string, StoredDataset> datasets_;
};

/// Serializes one row (id + values) into the binary layout; the row-level
/// unit the MapReduce execution layer ships between phases.
std::string SerializeRow(const Row& row);

/// Parses a buffer produced by SerializeRow.
Result<Row> DeserializeRow(const std::string& buffer);

/// Serializes `table` into the binary column-oriented layout. The format is
/// self-describing: magic, schema, row count, then per column a type tag
/// per value followed by the packed values.
std::string SerializeTableBinary(const Table& table);

/// Parses a buffer produced by SerializeTableBinary.
Result<Table> DeserializeTableBinary(const std::string& buffer);

/// Writes/reads the binary layout to/from a file.
Status SaveBinary(const Table& table, const std::string& path);
Result<Table> LoadBinary(const std::string& path);

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_STORAGE_H_
