#include "data/schema.h"

#include <utility>

#include "common/string_util.h"

namespace bigdansing {

Schema::Schema(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i], i);
  }
}

Schema Schema::FromCsvHeader(const std::string& header) {
  std::vector<std::string> names;
  for (auto& part : Split(header, ',')) {
    names.emplace_back(Trim(part));
  }
  return Schema(std::move(names));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not in schema " +
                            ToString());
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<std::string> names;
  names.reserve(indices.size());
  for (size_t i : indices) names.push_back(attributes_[i]);
  return Schema(std::move(names));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i];
  }
  out += ")";
  return out;
}

}  // namespace bigdansing
