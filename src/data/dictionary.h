#ifndef BIGDANSING_DATA_DICTIONARY_H_
#define BIGDANSING_DATA_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "data/row.h"
#include "data/value.h"
#include "dataflow/dataset.h"

namespace bigdansing {

/// An interned pool of distinct non-null values, sorted by Value's total
/// order. Code order equals Value order, so every ordering comparison over
/// encoded columns is a u32 compare, and per-code hashes are precomputed so
/// block keys can be rebuilt from codes without touching a Value.
///
/// Values that compare equal across physical types (int 1 == double 1.0)
/// intern to one code; which representative the pool keeps is
/// unspecified, which is safe because kernels only *decide* over codes —
/// violation cells are always materialized from the original rows.
class ValuePool {
 public:
  /// Code of a null cell. Larger than any valid code, so a single
  /// `code >= size()` test rejects both sentinels.
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;
  /// Code for a value absent from the pool (constants never seen in the
  /// data).
  static constexpr uint32_t kAbsentCode = 0xFFFFFFFEu;

  /// Takes ownership of `values`, which must be sorted by Value::Compare
  /// and deduplicated (EncodeColumns guarantees this).
  explicit ValuePool(std::vector<Value> values);

  size_t size() const { return values_.size(); }
  const Value& value(uint32_t code) const { return values_[code]; }
  /// Precomputed Value::Hash() of `value(code)`.
  uint64_t hash(uint32_t code) const { return hashes_[code]; }

  /// Code of `v`: kNullCode for null, kAbsentCode when no pooled value
  /// compares equal, else the dense code. O(1): served from a hash index
  /// built once at construction.
  uint32_t CodeOf(const Value& v) const;

  /// First code whose value is >= `v` (clamped to size()). Together with
  /// UpperBound this turns constant range predicates into code compares:
  ///   value <  c  ⟺  code < LowerBound(c)
  ///   value <= c  ⟺  code < UpperBound(c)
  uint32_t LowerBound(const Value& v) const;
  /// First code whose value is > `v` (clamped to size()).
  uint32_t UpperBound(const Value& v) const;

 private:
  std::vector<Value> values_;
  std::vector<uint64_t> hashes_;
  /// value -> code, for O(1) CodeOf (equality lookups dominate: every row
  /// of every encoded column makes one). Open-addressing over code+1 slots
  /// (0 = empty) — probing touches a flat array and compares precomputed
  /// hashes before ever touching a Value, with no per-node allocation.
  std::vector<uint32_t> index_;
  uint64_t index_mask_ = 0;
};

/// One dictionary-encoded column: a shared pool plus per-partition dense
/// code vectors aligned with the source dataset's partitions.
struct EncodedColumn {
  std::shared_ptr<const ValuePool> pool;
  std::vector<std::vector<uint32_t>> codes;
};

/// The encoded columns of one scoped dataset, keyed by detect-schema column
/// index.
struct EncodedColumnSet {
  std::unordered_map<size_t, EncodedColumn> columns;
  uint64_t rows = 0;
};

/// Dictionary-encodes the given columns of `data` in two stages
/// ("kernel:encode:pool" builds per-group pools from per-partition distinct
/// sets, "kernel:encode:codes" encodes rows morsel-wise). Each inner vector
/// of `groups` is a set of detect-schema column indices that share one pool
/// (required whenever a kernel compares codes *across* two columns); every
/// requested column appears in exactly one group.
EncodedColumnSet EncodeColumns(const Dataset<Row>& data,
                               const std::vector<std::vector<size_t>>& groups);

/// Pool-growth policy for long-lived encodings (stream sessions): pools are
/// append-only in *value set* but not in *code assignment* — growing merges
/// the fresh values into the sorted order, producing a new pool whose codes
/// are a monotone remap of the old ones. `old_to_new[c]` is the new code of
/// old code `c` (old-code order is preserved, codes only shift upward), so a
/// holder of per-row code vectors re-encodes in O(rows) without touching a
/// Value, and bound kernels simply re-Bind against the new pool (constant
/// positions shift with the same map). `fresh` may contain nulls and
/// duplicates (both ignored); values already pooled are ignored. Returns the
/// old pool unchanged (and an identity map) when nothing new was added.
std::shared_ptr<const ValuePool> GrowPool(
    std::shared_ptr<const ValuePool> base, const std::vector<Value>& fresh,
    std::vector<uint32_t>* old_to_new);

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_DICTIONARY_H_
