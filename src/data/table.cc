#include "data/table.h"

namespace bigdansing {

void Table::AppendRow(std::vector<Value> values) {
  rows_.emplace_back(static_cast<RowId>(rows_.size()), std::move(values));
}

const Row* Table::FindRowById(RowId id) const {
  if (id >= 0 && static_cast<size_t>(id) < rows_.size() &&
      rows_[static_cast<size_t>(id)].id() == id) {
    return &rows_[static_cast<size_t>(id)];
  }
  for (const auto& r : rows_) {
    if (r.id() == id) return &r;
  }
  return nullptr;
}

Row* Table::FindMutableRowById(RowId id) {
  return const_cast<Row*>(
      static_cast<const Table*>(this)->FindRowById(id));
}

Result<Value> Table::ValueAt(size_t index, const std::string& name) const {
  if (index >= rows_.size()) {
    return Status::OutOfRange("row index " + std::to_string(index));
  }
  auto col = schema_.IndexOf(name);
  if (!col.ok()) return col.status();
  return rows_[index].value(*col);
}

Result<size_t> Table::CountDifferingCells(const Table& other) const {
  if (!(schema_ == other.schema_) || num_rows() != other.num_rows()) {
    return Status::InvalidArgument(
        "CountDifferingCells requires aligned tables");
  }
  size_t diff = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      if (rows_[i].value(c) != other.rows_[i].value(c)) ++diff;
    }
  }
  return diff;
}

}  // namespace bigdansing
