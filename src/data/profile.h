#ifndef BIGDANSING_DATA_PROFILE_H_
#define BIGDANSING_DATA_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "data/value.h"
#include "dataflow/context.h"

namespace bigdansing {

/// One frequent value of a column with its occurrence count.
struct TopValue {
  Value value;
  uint64_t count = 0;
};

/// Distribution statistics of one table column. `distinct`, `min` and `max`
/// cover non-null values only; `min`/`max` are null Values when the column
/// has no non-null cell. `top` is ordered by count descending, ties broken
/// by Value order ascending, so the rendering is deterministic.
struct ColumnProfile {
  std::string name;
  size_t index = 0;
  uint64_t rows = 0;
  uint64_t nulls = 0;
  uint64_t distinct = 0;
  Value min;
  Value max;
  std::vector<TopValue> top;

  double null_rate() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(nulls) / static_cast<double>(rows);
  }

  /// One strict-JSON object.
  std::string ToJson() const;
};

/// A full table quality snapshot: per-column profiles plus the row count.
struct TableProfile {
  uint64_t rows = 0;
  std::vector<ColumnProfile> columns;

  /// Profile of the column named `name`, or null when absent.
  const ColumnProfile* Find(const std::string& name) const;

  /// One strict-JSON object ({"rows":N,"columns":[...]}).
  std::string ToJson() const;
};

struct ProfileOptions {
  /// How many frequent values to keep per column.
  size_t top_k = 5;
  /// Dictionary-encode the columns first (PR 8 ValuePools) so distinct /
  /// min / max fall out of the sorted pools for free and the frequency
  /// histogram runs over dense u32 codes. With `false` the profiler scans
  /// raw Values instead — the path for columns that are never encoded.
  /// Both paths produce identical profiles.
  bool use_encoding = true;
  /// Encoding pays one encode stage per column before the histogram pass;
  /// below this many rows the single-stage scan path is cheaper than that
  /// fixed stage cost (and the output is identical anyway), so encoding
  /// only kicks in at this size. 0 forces encoding whenever
  /// `use_encoding` is set.
  size_t encode_min_rows = 8192;
  /// Below this many rows even one stage dispatch costs more than the
  /// profiling work itself, so the profiler runs a plain driver-side loop
  /// with no stages at all (same output, like the morsel-size cutoff).
  /// 0 always dispatches stages.
  size_t stage_min_rows = 4096;
};

/// Profiles every column of `table`, morselized via the StageExecutor.
/// The encoded path runs the kernel encode stages plus one
/// "profile:histogram" stage over the code vectors; the scan path runs one
/// "profile:scan" stage over raw Values; tables under
/// `ProfileOptions::stage_min_rows` are profiled inline on the calling
/// thread with no stages at all. All paths produce identical profiles.
/// Dispatched stages publish through stage reports, trace spans, EXPLAIN
/// and the sampling profiler like any other engine stage.
TableProfile ProfileTable(ExecutionContext* ctx, const Table& table,
                          const ProfileOptions& options = ProfileOptions());

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_PROFILE_H_
