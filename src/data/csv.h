#ifndef BIGDANSING_DATA_CSV_H_
#define BIGDANSING_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace bigdansing {

/// CSV parsing options. The dialect is deliberately simple (BigDansing's
/// parsers produce data units from flat files): comma-separated, optional
/// double-quote quoting with "" escapes, first line optionally a header.
struct CsvOptions {
  bool has_header = true;
  char delimiter = ',';
  /// When true, fields are type-sniffed into int/double/string; when false
  /// every non-empty field stays a string.
  bool infer_types = true;
};

/// Parses CSV text into a Table. With `has_header` false, columns are named
/// c0, c1, ....
Result<Table> ReadCsvString(const std::string& text, const CsvOptions& options);

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options);

/// Serializes `table` to CSV text (header included), quoting fields that
/// contain the delimiter, quotes, or newlines.
std::string WriteCsvString(const Table& table, const CsvOptions& options);

/// Writes `table` to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options);

}  // namespace bigdansing

#endif  // BIGDANSING_DATA_CSV_H_
