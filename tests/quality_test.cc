// Data-quality plane tests: the disabled recorder is inert; a real FD
// cleanse reconciles bit-exactly with the lineage ledger and the
// CleanReport (violations, fixes, unresolved, per-rule totals, per-
// iteration curve); provenance flows with the ledger off (quality-only
// runs); the drift report diffs two snapshots; and the JSONL export's
// records are byte-identical to the /quality snapshot's embedded runs.
#include "obs/quality.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/lineage.h"
#include "core/bigdansing.h"
#include "data/profile.h"
#include "datagen/datagen.h"
#include "rules/parser.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

/// RAII guard: enables the quality recorder for one test and restores the
/// disabled-and-empty state afterwards so tests stay order-independent.
struct QualityOn {
  QualityOn() {
    QualityRecorder::Instance().Clear();
    QualityRecorder::Instance().set_enabled(true);
  }
  ~QualityOn() {
    QualityRecorder::Instance().set_enabled(false);
    QualityRecorder::Instance().Clear();
  }
};

struct LineageOn {
  LineageOn() {
    LineageRecorder::Instance().Clear();
    LineageRecorder::Instance().set_enabled(true);
  }
  ~LineageOn() {
    LineageRecorder::Instance().set_enabled(false);
    LineageRecorder::Instance().Clear();
  }
};

TEST(QualityRecorder, DisabledRecorderIsInert) {
  QualityRecorder& quality = QualityRecorder::Instance();
  quality.set_enabled(false);
  quality.Clear();
  EXPECT_EQ(quality.BeginRun(1, 100), 0u);
  QualityIterationSample sample;
  sample.iteration = 1;
  sample.fixes["phi1"]["city"] = 3;
  quality.RecordIteration(7, sample);
  EXPECT_EQ(quality.RunsBegun(), 0u);
  EXPECT_TRUE(quality.Runs().empty());
  EXPECT_EQ(quality.ToJsonl(), "");
  EXPECT_FALSE(ProvenanceTrackingEnabled() &&
               !LineageRecorder::Instance().enabled());
}

TEST(QualityRecorder, FoldsIterationsIntoRunRecord) {
  QualityOn on;
  QualityRecorder& quality = QualityRecorder::Instance();
  const uint64_t run = quality.BeginRun(2, 50);
  ASSERT_NE(run, 0u);
  EXPECT_TRUE(ProvenanceTrackingEnabled());

  QualityIterationSample first;
  first.iteration = 1;
  first.violations["phi1"]["city"] = 4;
  first.violations["phi2"]["state"] = 2;
  first.fixes["phi1"]["city"] = 3;
  first.unresolved["phi2"]["state"] = 2;
  quality.RecordIteration(run, first);

  QualityIterationSample second;
  second.iteration = 2;
  second.violations["phi1"]["city"] = 1;
  second.fixes["phi1"]["city"] = 1;
  second.frozen_cells = 1;
  second.oscillating_cells = 1;
  quality.RecordIteration(run, second);
  quality.EndRun(run, /*converged=*/true);

  QualityRunRecord rec;
  ASSERT_TRUE(quality.LatestRun(&rec));
  EXPECT_EQ(rec.run_id, run);
  EXPECT_FALSE(rec.in_progress);
  EXPECT_TRUE(rec.converged);
  EXPECT_TRUE(rec.oscillation);
  EXPECT_EQ(rec.TotalViolations(), 7u);
  EXPECT_EQ(rec.TotalFixes(), 4u);
  EXPECT_EQ(rec.TotalUnresolved(), 2u);
  EXPECT_EQ(rec.RuleTotals("phi1").violations, 5u);
  EXPECT_EQ(rec.RuleTotals("phi1").fixes, 4u);
  EXPECT_EQ(rec.RuleTotals("phi2").unresolved, 2u);
  ASSERT_EQ(rec.curve.size(), 2u);
  EXPECT_EQ(rec.curve[0].violations, 6u);
  EXPECT_EQ(rec.curve[0].cells_changed, 3u);
  EXPECT_EQ(rec.curve[1].violations, 1u);
  EXPECT_EQ(rec.curve[1].oscillating_cells, 1u);

  JsonValue doc;
  ASSERT_TRUE(ParsesStrictly(rec.ToJson(), &doc));
  EXPECT_EQ(doc.Find("run_id")->number, static_cast<double>(run));
  EXPECT_EQ(doc.Find("iterations")->number, 2.0);
  EXPECT_EQ(doc.Find("violations")->number, 7.0);
  EXPECT_EQ(doc.Find("fixes")->number, 4.0);
  EXPECT_EQ(doc.Find("unresolved")->number, 2.0);
  EXPECT_TRUE(doc.Find("oscillation")->boolean);
  ASSERT_EQ(doc.Find("curve")->array.size(), 2u);
  ASSERT_EQ(doc.Find("rules_breakdown")->array.size(), 2u);
  const JsonValue& phi1 = doc.Find("rules_breakdown")->array[0];
  EXPECT_EQ(phi1.Find("rule")->str, "phi1");
  EXPECT_EQ(phi1.Find("violations")->number, 5.0);
  ASSERT_EQ(phi1.Find("columns")->array.size(), 1u);
  EXPECT_EQ(phi1.Find("columns")->array[0].Find("column")->str, "city");
  EXPECT_EQ(doc.Find("profile")->kind, JsonValue::kNull);
}

TEST(QualityIntegration, CleanReconcilesBitExactWithLedgerAndReport) {
  QualityOn quality_on;
  LineageOn lineage_on;
  QualityRecorder& quality = QualityRecorder::Instance();
  LineageRecorder& lineage = LineageRecorder::Instance();

  auto data = GenerateTaxA(1500, 0.1, /*seed=*/7);
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  QualityRunRecord rec;
  ASSERT_TRUE(quality.LatestRun(&rec));
  EXPECT_FALSE(rec.in_progress);
  EXPECT_EQ(rec.converged, report->converged);
  EXPECT_EQ(rec.rows, data.dirty.num_rows());
  EXPECT_EQ(rec.rules, 1u);

  // The ledger and the quality record describe the same run bit-exactly.
  auto by_rule = lineage.SummaryByRule();
  ASSERT_EQ(by_rule.count("phi1"), 1u);
  EXPECT_EQ(rec.RuleTotals("phi1").fixes, by_rule["phi1"].applied_fixes);
  EXPECT_EQ(rec.RuleTotals("phi1").unresolved, by_rule["phi1"].unresolved);
  EXPECT_EQ(rec.by_rule_column.size(), by_rule.size());
  EXPECT_EQ(rec.TotalFixes(), by_rule["phi1"].applied_fixes);
  EXPECT_EQ(rec.TotalUnresolved(), by_rule["phi1"].unresolved);

  // The convergence curve matches the CleanReport iteration by iteration.
  size_t report_fixes = 0;
  size_t report_violations = 0;
  ASSERT_EQ(rec.curve.size(), report->iterations.size());
  for (size_t i = 0; i < report->iterations.size(); ++i) {
    EXPECT_EQ(rec.curve[i].iteration, i + 1);
    EXPECT_EQ(rec.curve[i].violations, report->iterations[i].violations);
    EXPECT_EQ(rec.curve[i].cells_changed, report->iterations[i].applied_fixes);
    report_fixes += report->iterations[i].applied_fixes;
    report_violations += report->iterations[i].violations;
  }
  ASSERT_GT(report_fixes, 0u) << "the 10% error rate must force repairs";
  EXPECT_EQ(rec.TotalFixes(), report_fixes);
  EXPECT_EQ(rec.TotalViolations(), report_violations);

  // The profiler observed the dirty input.
  ASSERT_TRUE(rec.has_profile);
  EXPECT_EQ(rec.profile.rows, data.dirty.num_rows());
  EXPECT_EQ(rec.profile.columns.size(),
            data.dirty.schema().num_attributes());
  const ColumnProfile* city = rec.profile.Find("city");
  ASSERT_NE(city, nullptr);
  EXPECT_GT(city->distinct, 0u);

  // Every fix attributed to the FD's right-hand side column.
  const auto& phi1_cols = rec.by_rule_column.at("phi1");
  ASSERT_EQ(phi1_cols.count("city"), 1u);
  EXPECT_EQ(phi1_cols.at("city").fixes, report_fixes);
}

TEST(QualityIntegration, QualityOnlyRunTracksProvenanceWithLedgerOff) {
  QualityOn on;
  LineageRecorder& lineage = LineageRecorder::Instance();
  ASSERT_FALSE(lineage.enabled());

  auto data = GenerateTaxA(800, 0.1, /*seed=*/13);
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The ledger stayed empty, but the quality record still has rule- and
  // column-attributed fixes: provenance tracking follows the quality
  // recorder too, not the lineage toggle alone.
  EXPECT_EQ(lineage.EntryCount(), 0u);
  size_t report_fixes = 0;
  for (const auto& iter : report->iterations) {
    report_fixes += iter.applied_fixes;
  }
  ASSERT_GT(report_fixes, 0u);
  QualityRunRecord rec;
  ASSERT_TRUE(QualityRecorder::Instance().LatestRun(&rec));
  EXPECT_EQ(rec.TotalFixes(), report_fixes);
  EXPECT_EQ(rec.RuleTotals("phi1").fixes, report_fixes);
}

TEST(QualityDrift, DiffsTwoSnapshots) {
  QualityOn on;
  QualityRecorder& quality = QualityRecorder::Instance();
  ExecutionContext ctx(4);

  auto run_once = [&](double error_rate, uint64_t seed) {
    auto data = GenerateTaxA(600, error_rate, seed);
    BigDansing system(&ctx);
    Table working = data.dirty;
    auto report =
        system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  };
  run_once(0.05, 21);
  run_once(0.30, 22);

  std::vector<QualityRunRecord> runs = quality.Runs();
  ASSERT_EQ(runs.size(), 2u);
  const std::string drift = QualityDriftJson(runs[0], runs[1]);
  JsonValue doc;
  ASSERT_TRUE(ParsesStrictly(drift, &doc));
  EXPECT_EQ(doc.Find("before_run")->number,
            static_cast<double>(runs[0].run_id));
  EXPECT_EQ(doc.Find("after_run")->number,
            static_cast<double>(runs[1].run_id));
  // 6x the error rate must show up as a violation increase.
  EXPECT_GT(doc.Find("violations")->Find("delta")->number, 0.0);
  ASSERT_GE(doc.Find("rules")->array.size(), 1u);
  EXPECT_EQ(doc.Find("rules")->array[0].Find("rule")->str, "phi1");
  // Both runs profiled the same schema, so every column is diffed.
  EXPECT_EQ(doc.Find("columns")->array.size(),
            runs[0].profile.columns.size());

  // The snapshot embeds the same drift (between the two completed runs).
  JsonValue snapshot;
  ASSERT_TRUE(ParsesStrictly(quality.SnapshotJson(), &snapshot));
  ASSERT_NE(snapshot.Find("drift"), nullptr);
  EXPECT_EQ(snapshot.Find("drift")->kind, JsonValue::kObject);
  EXPECT_EQ(snapshot.Find("drift")->Find("after_run")->number,
            static_cast<double>(runs[1].run_id));
}

TEST(QualityRecorder, JsonlMatchesSnapshotByteExactly) {
  QualityOn on;
  QualityRecorder& quality = QualityRecorder::Instance();
  ExecutionContext ctx(4);
  auto data = GenerateTaxA(500, 0.1, /*seed=*/5);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::string path = testing::TempDir() + "bd_quality_test.jsonl";
  ASSERT_TRUE(quality.WriteJsonl(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line, last;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    last = line;
    JsonValue doc;
    StrictJsonParser parser(line);
    ASSERT_TRUE(parser.Parse(&doc)) << parser.error() << " in: " << line;
  }
  in.close();
  std::remove(path.c_str());
  ASSERT_EQ(lines, 1u);

  // The JSONL line and the snapshot's embedded run render byte-identically
  // (the reconciliation contract /quality inherits from /stages).
  QualityRunRecord rec;
  ASSERT_TRUE(quality.LatestRun(&rec));
  EXPECT_EQ(last, rec.ToJson());
  EXPECT_NE(quality.SnapshotJson().find(last), std::string::npos);
}

}  // namespace
}  // namespace bigdansing
