#include "dataflow/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <numeric>

namespace bigdansing {
namespace {

std::vector<int> Range(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Dataset, FromVectorPreservesAllRecords) {
  ExecutionContext ctx(4);
  auto ds = Dataset<int>::FromVector(&ctx, Range(101));
  EXPECT_EQ(ds.Count(), 101u);
  auto collected = ds.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Range(101));
}

TEST(Dataset, ExplicitPartitionCount) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(10), 3);
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.Count(), 10u);
}

TEST(Dataset, MapAndFilterCompose) {
  ExecutionContext ctx(3);
  auto ds = Dataset<int>::FromVector(&ctx, Range(100));
  auto out = ds.Map([](const int& x) { return x * 3; })
                 .Filter([](const int& x) { return x % 2 == 0; });
  auto collected = out.Collect();
  std::sort(collected.begin(), collected.end());
  std::vector<int> expected;
  for (int x = 0; x < 100; ++x) {
    if ((x * 3) % 2 == 0) expected.push_back(x * 3);
  }
  EXPECT_EQ(collected, expected);
}

TEST(Dataset, FlatMapExpandsAndDrops) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(10));
  auto out = ds.FlatMap([](const int& x) {
    std::vector<int> v;
    for (int k = 0; k < x % 3; ++k) v.push_back(x);
    return v;
  });
  size_t expected = 0;
  for (int x = 0; x < 10; ++x) expected += static_cast<size_t>(x % 3);
  EXPECT_EQ(out.Count(), expected);
}

TEST(Dataset, MapPartitionsSeesWholePartition) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(20), 4);
  auto sums = ds.MapPartitions<int>([](const std::vector<int>& part) {
    return std::vector<int>{
        std::accumulate(part.begin(), part.end(), 0)};
  });
  int total = 0;
  for (int s : sums.Collect()) total += s;
  EXPECT_EQ(total, 190);
}

TEST(Dataset, RepartitionKeepsRecords) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(50), 2);
  auto re = ds.Repartition(7);
  EXPECT_EQ(re.num_partitions(), 7u);
  auto collected = re.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Range(50));
}

TEST(Dataset, UnionConcatenates) {
  ExecutionContext ctx(2);
  auto a = Dataset<int>::FromVector(&ctx, {1, 2}, 1);
  auto b = Dataset<int>::FromVector(&ctx, {3}, 1);
  auto u = a.Union(b);
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_EQ(u.num_partitions(), 2u);
}

TEST(Dataset, CartesianProducesAllPairs) {
  ExecutionContext ctx(2);
  auto a = Dataset<int>::FromVector(&ctx, {1, 2, 3}, 2);
  auto b = Dataset<int>::FromVector(&ctx, {10, 20}, 1);
  auto pairs = a.Cartesian(b).Collect();
  EXPECT_EQ(pairs.size(), 6u);
  std::set<std::pair<int, int>> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), 6u);
  EXPECT_TRUE(got.count({3, 20}));
}

TEST(Dataset, GroupByKeyGroupsEverything) {
  ExecutionContext ctx(4);
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 100; ++i) records.emplace_back(i % 7, i);
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
  auto grouped = GroupByKey(ds).Collect();
  EXPECT_EQ(grouped.size(), 7u);
  std::map<int, size_t> sizes;
  size_t total = 0;
  for (const auto& [key, values] : grouped) {
    sizes[key] = values.size();
    total += values.size();
    for (int v : values) EXPECT_EQ(v % 7, key);
  }
  EXPECT_EQ(total, 100u);
}

TEST(Dataset, ReduceByKeyMatchesSerialFold) {
  ExecutionContext ctx(3);
  std::vector<std::pair<int, int>> records;
  std::map<int, int> expected;
  for (int i = 0; i < 500; ++i) {
    records.emplace_back(i % 13, i);
    expected[i % 13] += i;
  }
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
  std::map<int, int> got;
  for (const auto& [k, v] : reduced.Collect()) got[k] = v;
  EXPECT_EQ(got, expected);
}

TEST(Dataset, JoinMatchesNestedLoops) {
  ExecutionContext ctx(2);
  std::vector<std::pair<int, std::string>> left = {
      {1, "a"}, {2, "b"}, {2, "c"}, {3, "d"}};
  std::vector<std::pair<int, int>> right = {{2, 20}, {2, 21}, {3, 30}, {4, 40}};
  auto l = Dataset<std::pair<int, std::string>>::FromVector(&ctx, left);
  auto r = Dataset<std::pair<int, int>>::FromVector(&ctx, right);
  auto joined = Join(l, r).Collect();
  // Key 2: 2x2 = 4 results; key 3: 1. Keys 1 and 4 drop.
  EXPECT_EQ(joined.size(), 5u);
  for (const auto& [k, vw] : joined) {
    EXPECT_TRUE(k == 2 || k == 3);
  }
}

TEST(Dataset, CoGroupCollectsBothSides) {
  ExecutionContext ctx(2);
  auto l = Dataset<std::pair<int, int>>::FromVector(
      &ctx, {{1, 10}, {1, 11}, {2, 20}});
  auto r = Dataset<std::pair<int, int>>::FromVector(&ctx, {{1, 100}, {3, 300}});
  auto groups = CoGroup(l, r).Collect();
  std::map<int, std::pair<size_t, size_t>> sizes;
  for (const auto& [k, bags] : groups) {
    sizes[k] = {bags.first.size(), bags.second.size()};
  }
  EXPECT_EQ(sizes[1], (std::pair<size_t, size_t>{2, 1}));
  EXPECT_EQ(sizes[2], (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(sizes[3], (std::pair<size_t, size_t>{0, 1}));
}

TEST(Dataset, HadoopBackendProducesSameResults) {
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 200; ++i) records.emplace_back(i % 5, i);
  auto run = [&](Backend backend) {
    ExecutionContext ctx(4, backend);
    auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
    auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
    std::map<int, int> out;
    for (const auto& [k, v] : reduced.Collect()) out[k] = v;
    return out;
  };
  EXPECT_EQ(run(Backend::kSpark), run(Backend::kHadoop));
}

TEST(Dataset, MetricsTrackShuffles) {
  ExecutionContext ctx(2);
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 60; ++i) records.emplace_back(i, i);
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
  uint64_t before = ctx.metrics().shuffled_records();
  GroupByKey(ds);
  EXPECT_EQ(ctx.metrics().shuffled_records() - before, 60u);
  EXPECT_GT(ctx.metrics().stages(), 0u);
}

TEST(Dataset, WorkerCountDoesNotChangeResults) {
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 333; ++i) records.emplace_back(i % 11, 1);
  std::map<int, int> reference;
  for (const auto& [k, v] : records) reference[k] += v;
  for (size_t workers : {1u, 2u, 5u, 16u}) {
    ExecutionContext ctx(workers);
    auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
    auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
    std::map<int, int> got;
    for (const auto& [k, v] : reduced.Collect()) got[k] = v;
    EXPECT_EQ(got, reference) << workers << " workers";
  }
}

// --- Deferred pipelines and operator fusion ---

// Applies the reference chain (x -> x*2, keep odd, duplicate) to one
// partition the eager way: one full pass and one intermediate vector per
// step, exactly what the engine did before pipelines became deferred.
std::vector<int> EagerReference(const std::vector<int>& part) {
  std::vector<int> mapped;
  for (int x : part) mapped.push_back(x * 2);
  std::vector<int> filtered;
  for (int x : mapped) {
    if (x % 4 != 0) filtered.push_back(x);
  }
  std::vector<int> out;
  for (int x : filtered) {
    out.push_back(x);
    out.push_back(x + 1);
  }
  return out;
}

Dataset<int> ApplyChain(const Dataset<int>& ds) {
  return ds.Map([](const int& x) { return x * 2; })
      .Filter([](const int& x) { return x % 4 != 0; })
      .FlatMap([](const int& x) { return std::vector<int>{x, x + 1}; });
}

TEST(DatasetFusion, FusedChainMatchesEagerPartitionByPartition) {
  // Empty input, single partition, and skewed partitions (including empty
  // ones in the middle) must all produce identical partitions in identical
  // order to the per-step eager evaluation.
  std::vector<std::vector<std::vector<int>>> shapes = {
      {},
      {{}},
      {Range(17)},
      {Range(1000), {}, {5, 3, 1}, Range(2), {}},
  };
  for (auto& shape : shapes) {
    ExecutionContext ctx(4);
    auto input = Dataset<int>(&ctx, shape);
    auto fused = ApplyChain(input);
    EXPECT_FALSE(fused.materialized());
    const auto& got = fused.partitions();
    ASSERT_EQ(got.size(), shape.size());
    for (size_t p = 0; p < shape.size(); ++p) {
      EXPECT_EQ(got[p], EagerReference(shape[p])) << "partition " << p;
    }
  }
}

TEST(DatasetFusion, ThreeStepChainRecordsExactlyOneStage) {
  ExecutionContext ctx(4);
  auto ds = Dataset<int>::FromVector(&ctx, Range(1000), 4);
  auto chain = ds.Map([](const int& x) { return x + 1; }, "inc")
                   .Filter([](const int& x) { return x % 2 == 0; })
                   .Map([](const int& x) { return x * 10; }, "scale");
  EXPECT_EQ(chain.pipeline_label(), "inc|filter|scale");
  uint64_t stages_before = ctx.metrics().stages();
  chain.Collect();
  EXPECT_EQ(ctx.metrics().stages() - stages_before, 1u);
  // A second action reuses the materialized result: no new stage.
  chain.Count();
  EXPECT_EQ(ctx.metrics().stages() - stages_before, 1u);
}

TEST(DatasetFusion, EagerForcingRecordsThreeStages) {
  ExecutionContext ctx(4);
  auto ds = Dataset<int>::FromVector(&ctx, Range(1000), 4);
  uint64_t stages_before = ctx.metrics().stages();
  auto a = ds.Map([](const int& x) { return x + 1; });
  a.Count();
  auto b = a.Filter([](const int& x) { return x % 2 == 0; });
  b.Count();
  auto c = b.Map([](const int& x) { return x * 10; });
  c.Count();
  EXPECT_EQ(ctx.metrics().stages() - stages_before, 3u);
}

TEST(DatasetFusion, CopiesShareMaterializedState) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(10), 2)
                .Map([](const int& x) { return x + 1; });
  Dataset<int> copy = ds;
  uint64_t stages_before = ctx.metrics().stages();
  copy.Count();
  EXPECT_TRUE(ds.materialized());
  ds.Collect();
  EXPECT_EQ(ctx.metrics().stages() - stages_before, 1u);
}

// --- Per-stage structured metrics ---

bool HasStage(const std::vector<StageReport>& reports,
              const std::string& suffix, uint64_t min_tasks) {
  for (const auto& r : reports) {
    if (r.name.size() >= suffix.size() &&
        r.name.compare(r.name.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      return r.tasks >= min_tasks;
    }
  }
  return false;
}

TEST(StageMetrics, ShufflesReportMapAndReduceStages) {
  ExecutionContext ctx(4);
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 100; ++i) records.emplace_back(i % 7, i);
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records, 4);

  GroupByKey(ds).Collect();
  auto reports = ctx.metrics().StageReports();
  EXPECT_TRUE(HasStage(reports, "groupByKey:map", 1));
  EXPECT_TRUE(HasStage(reports, "groupByKey:merge", 1));
  EXPECT_TRUE(HasStage(reports, "groupByKey:reduce", 1));

  ctx.metrics().Reset();
  ReduceByKey(ds, [](int a, int b) { return a + b; }).Collect();
  reports = ctx.metrics().StageReports();
  EXPECT_TRUE(HasStage(reports, "reduceByKey:map", 1));
  EXPECT_TRUE(HasStage(reports, "reduceByKey:reduce", 1));

  ctx.metrics().Reset();
  Join(ds, ds).Collect();
  EXPECT_TRUE(HasStage(ctx.metrics().StageReports(), "join:probe", 1));

  ctx.metrics().Reset();
  CoGroup(ds, ds).Collect();
  EXPECT_TRUE(HasStage(ctx.metrics().StageReports(), "cogroup:merge", 1));
}

TEST(StageMetrics, ReportsCarryRecordCountsAndJson) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(100), 2);
  ds.Filter([](const int& x) { return x < 40; }).Collect();
  auto reports = ctx.metrics().StageReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "filter");
  EXPECT_EQ(reports[0].tasks, 2u);
  EXPECT_EQ(reports[0].records_in, 100u);
  EXPECT_EQ(reports[0].records_out, 40u);
  EXPECT_EQ(reports[0].task_seconds.size(), 2u);
  std::string json = ctx.metrics().ToJson();
  EXPECT_NE(json.find("\"stage_reports\":[{\"name\":\"filter\""),
            std::string::npos);
  EXPECT_NE(json.find("\"records_in\":100"), std::string::npos);
  EXPECT_NE(json.find("\"simulated_wall_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"task_seconds_min\":"), std::string::npos);
  EXPECT_NE(json.find("\"task_seconds_p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"task_seconds_max\":"), std::string::npos);
  EXPECT_NE(json.find("\"straggler_ratio\":"), std::string::npos);
}

TEST(StageMetrics, SimulatedWallIncludesReduceSideTime) {
  // Every key appears exactly once per input partition, so the map-side
  // combine never invokes the reduce function — ALL reduce work happens in
  // the reduce-side stage. Before stages ran through the StageExecutor that
  // time was invisible to SimulatedWallSeconds().
  const size_t kPartitions = 4;
  const int kKeys = 64;
  std::vector<std::vector<std::pair<int, int>>> parts(kPartitions);
  for (size_t p = 0; p < kPartitions; ++p) {
    for (int k = 0; k < kKeys; ++k) parts[p].emplace_back(k, 1);
  }
  ExecutionContext ctx(1);
  auto ds = Dataset<std::pair<int, int>>(&ctx, parts);
  auto heavy = [](int a, int b) {
    volatile int acc = 0;
    for (int i = 0; i < 50000; ++i) acc += i;
    return a + b + (acc - acc);
  };
  auto reduced = ReduceByKey(ds, heavy);
  std::map<int, int> got;
  for (const auto& [k, v] : reduced.Collect()) got[k] = v;
  ASSERT_EQ(got.size(), static_cast<size_t>(kKeys));
  for (const auto& [k, v] : got) EXPECT_EQ(v, 4) << "key " << k;

  double reduce_busy = 0.0;
  for (const auto& r : ctx.metrics().StageReports()) {
    if (r.name == "reduceByKey:reduce") reduce_busy = r.busy_seconds;
  }
  EXPECT_GT(reduce_busy, 0.0);
  // One worker: the simulated cluster time is the sum of every task's CPU
  // time, so it must cover the reduce-side stage entirely.
  EXPECT_GE(ctx.metrics().SimulatedWallSeconds(), reduce_busy);
}

// Deterministic per-row work heavy enough for stage CPU timings to track
// the row split rather than scheduler noise.
uint64_t BurnHash(uint64_t x) {
  uint64_t h = x * 0x9E3779B97F4A7C15ULL + 1;
  for (int i = 0; i < 2000; ++i) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
  }
  return h;
}

TEST(MorselScheduling, SkewedPartitionStopsDominatingUnderMorsels) {
  // One partition 100x the size of the others. At partition granularity the
  // big partition is one task and dominates the stage (straggler ratio =
  // max/mean task time well above the even-split value); at morsel
  // granularity the same rows become many same-sized work units and the
  // quantile spread collapses. Outputs must match bit-for-bit either way.
  std::vector<std::vector<uint64_t>> parts(9);
  uint64_t next = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const size_t n = p == 0 ? 10000 : 100;
    for (size_t i = 0; i < n; ++i) parts[p].push_back(next++);
  }

  auto run = [&](size_t morsel_rows, StageReport* report) {
    ExecutionContext ctx(4);
    ctx.set_morsel_rows(morsel_rows);
    auto ds = Dataset<uint64_t>(&ctx, parts).Map([](const uint64_t& x) {
      return BurnHash(x);
    });
    std::vector<uint64_t> out = ds.Collect();
    const auto reports = ctx.metrics().StageReports();
    EXPECT_EQ(reports.size(), 1u);
    if (!reports.empty()) *report = reports.front();
    return out;
  };

  StageReport partition_report;
  std::vector<uint64_t> partition_out = run(0, &partition_report);
  StageReport morsel_report;
  std::vector<uint64_t> morsel_out = run(100, &morsel_report);

  EXPECT_EQ(partition_out, morsel_out);

  // Partition path: 9 tasks, no morsels; the 10000-row task dominates
  // (ideal ratio 10000 / (10800/9) = 8.3).
  EXPECT_EQ(partition_report.tasks, 9u);
  EXPECT_EQ(partition_report.morsels, 0u);
  EXPECT_GT(partition_report.StragglerRatio(), 3.0);

  // Morsel path: 100-row units, so the heavy partition becomes 100 units
  // the scheduler spreads across workers. Every unit does the same work,
  // so max/p50 busy time sits near 1 (3.0 leaves slack for timer jitter).
  EXPECT_EQ(morsel_report.tasks, 9u);
  EXPECT_EQ(morsel_report.morsels, 108u);
  ASSERT_GT(morsel_report.TaskP50Seconds(), 0.0);
  EXPECT_LT(morsel_report.TaskMaxSeconds() / morsel_report.TaskP50Seconds(),
            3.0);
}

TEST(MorselScheduling, MorselPathMatchesPartitionPathOnChains) {
  // Fused Map/Filter/FlatMap chains and shuffles must produce identical
  // results with morsels on and off.
  auto build = [](ExecutionContext* ctx) {
    auto ds = Dataset<int>::FromVector(ctx, Range(5000), 7);
    return ds.Map([](const int& x) { return x * 3 - 1; })
        .Filter([](const int& x) { return x % 5 != 0; })
        .FlatMap([](const int& x) {
          std::vector<int> v;
          for (int k = 0; k <= x % 3; ++k) v.push_back(x + k);
          return v;
        });
  };
  ExecutionContext ctx_morsel(4);
  ctx_morsel.set_morsel_rows(64);
  ExecutionContext ctx_partition(4);
  ctx_partition.set_morsel_rows(0);
  auto morsel = build(&ctx_morsel);
  auto partition = build(&ctx_partition);
  EXPECT_EQ(morsel.partitions(), partition.partitions());
  auto keyed = [](const Dataset<int>& ds) {
    return GroupByKey(ds.Map([](const int& x) {
             return std::make_pair(x % 11, x);
           })).Collect();
  };
  EXPECT_EQ(keyed(morsel), keyed(partition));
  EXPECT_GT(ctx_morsel.metrics().morsels(), 0u);
  EXPECT_EQ(ctx_partition.metrics().morsels(), 0u);
}

TEST(DatasetFusion, RepartitionMatchesDriverSideRoundRobin) {
  // The parallel repartition must reproduce the seed semantics exactly:
  // records in global Collect() order dealt round-robin over the new
  // partitions.
  std::vector<std::vector<int>> skewed = {Range(41), {}, {100, 99}, Range(7)};
  ExecutionContext ctx(4);
  auto ds = Dataset<int>(&ctx, skewed);
  auto flat = ds.Collect();
  for (size_t n : {1u, 3u, 8u}) {
    std::vector<std::vector<int>> expected(n);
    for (size_t g = 0; g < flat.size(); ++g) {
      expected[g % n].push_back(flat[g]);
    }
    EXPECT_EQ(ds.Repartition(n).partitions(), expected) << n << " targets";
  }
}

}  // namespace
}  // namespace bigdansing
