#include "dataflow/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <numeric>

namespace bigdansing {
namespace {

std::vector<int> Range(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Dataset, FromVectorPreservesAllRecords) {
  ExecutionContext ctx(4);
  auto ds = Dataset<int>::FromVector(&ctx, Range(101));
  EXPECT_EQ(ds.Count(), 101u);
  auto collected = ds.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Range(101));
}

TEST(Dataset, ExplicitPartitionCount) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(10), 3);
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.Count(), 10u);
}

TEST(Dataset, MapAndFilterCompose) {
  ExecutionContext ctx(3);
  auto ds = Dataset<int>::FromVector(&ctx, Range(100));
  auto out = ds.Map([](const int& x) { return x * 3; })
                 .Filter([](const int& x) { return x % 2 == 0; });
  auto collected = out.Collect();
  std::sort(collected.begin(), collected.end());
  std::vector<int> expected;
  for (int x = 0; x < 100; ++x) {
    if ((x * 3) % 2 == 0) expected.push_back(x * 3);
  }
  EXPECT_EQ(collected, expected);
}

TEST(Dataset, FlatMapExpandsAndDrops) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(10));
  auto out = ds.FlatMap([](const int& x) {
    std::vector<int> v;
    for (int k = 0; k < x % 3; ++k) v.push_back(x);
    return v;
  });
  size_t expected = 0;
  for (int x = 0; x < 10; ++x) expected += static_cast<size_t>(x % 3);
  EXPECT_EQ(out.Count(), expected);
}

TEST(Dataset, MapPartitionsSeesWholePartition) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(20), 4);
  auto sums = ds.MapPartitions<int>([](const std::vector<int>& part) {
    return std::vector<int>{
        std::accumulate(part.begin(), part.end(), 0)};
  });
  int total = 0;
  for (int s : sums.Collect()) total += s;
  EXPECT_EQ(total, 190);
}

TEST(Dataset, RepartitionKeepsRecords) {
  ExecutionContext ctx(2);
  auto ds = Dataset<int>::FromVector(&ctx, Range(50), 2);
  auto re = ds.Repartition(7);
  EXPECT_EQ(re.num_partitions(), 7u);
  auto collected = re.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Range(50));
}

TEST(Dataset, UnionConcatenates) {
  ExecutionContext ctx(2);
  auto a = Dataset<int>::FromVector(&ctx, {1, 2}, 1);
  auto b = Dataset<int>::FromVector(&ctx, {3}, 1);
  auto u = a.Union(b);
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_EQ(u.num_partitions(), 2u);
}

TEST(Dataset, CartesianProducesAllPairs) {
  ExecutionContext ctx(2);
  auto a = Dataset<int>::FromVector(&ctx, {1, 2, 3}, 2);
  auto b = Dataset<int>::FromVector(&ctx, {10, 20}, 1);
  auto pairs = a.Cartesian(b).Collect();
  EXPECT_EQ(pairs.size(), 6u);
  std::set<std::pair<int, int>> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), 6u);
  EXPECT_TRUE(got.count({3, 20}));
}

TEST(Dataset, GroupByKeyGroupsEverything) {
  ExecutionContext ctx(4);
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 100; ++i) records.emplace_back(i % 7, i);
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
  auto grouped = GroupByKey(ds).Collect();
  EXPECT_EQ(grouped.size(), 7u);
  std::map<int, size_t> sizes;
  size_t total = 0;
  for (const auto& [key, values] : grouped) {
    sizes[key] = values.size();
    total += values.size();
    for (int v : values) EXPECT_EQ(v % 7, key);
  }
  EXPECT_EQ(total, 100u);
}

TEST(Dataset, ReduceByKeyMatchesSerialFold) {
  ExecutionContext ctx(3);
  std::vector<std::pair<int, int>> records;
  std::map<int, int> expected;
  for (int i = 0; i < 500; ++i) {
    records.emplace_back(i % 13, i);
    expected[i % 13] += i;
  }
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
  std::map<int, int> got;
  for (const auto& [k, v] : reduced.Collect()) got[k] = v;
  EXPECT_EQ(got, expected);
}

TEST(Dataset, JoinMatchesNestedLoops) {
  ExecutionContext ctx(2);
  std::vector<std::pair<int, std::string>> left = {
      {1, "a"}, {2, "b"}, {2, "c"}, {3, "d"}};
  std::vector<std::pair<int, int>> right = {{2, 20}, {2, 21}, {3, 30}, {4, 40}};
  auto l = Dataset<std::pair<int, std::string>>::FromVector(&ctx, left);
  auto r = Dataset<std::pair<int, int>>::FromVector(&ctx, right);
  auto joined = Join(l, r).Collect();
  // Key 2: 2x2 = 4 results; key 3: 1. Keys 1 and 4 drop.
  EXPECT_EQ(joined.size(), 5u);
  for (const auto& [k, vw] : joined) {
    EXPECT_TRUE(k == 2 || k == 3);
  }
}

TEST(Dataset, CoGroupCollectsBothSides) {
  ExecutionContext ctx(2);
  auto l = Dataset<std::pair<int, int>>::FromVector(
      &ctx, {{1, 10}, {1, 11}, {2, 20}});
  auto r = Dataset<std::pair<int, int>>::FromVector(&ctx, {{1, 100}, {3, 300}});
  auto groups = CoGroup(l, r).Collect();
  std::map<int, std::pair<size_t, size_t>> sizes;
  for (const auto& [k, bags] : groups) {
    sizes[k] = {bags.first.size(), bags.second.size()};
  }
  EXPECT_EQ(sizes[1], (std::pair<size_t, size_t>{2, 1}));
  EXPECT_EQ(sizes[2], (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(sizes[3], (std::pair<size_t, size_t>{0, 1}));
}

TEST(Dataset, HadoopBackendProducesSameResults) {
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 200; ++i) records.emplace_back(i % 5, i);
  auto run = [&](Backend backend) {
    ExecutionContext ctx(4, backend);
    auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
    auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
    std::map<int, int> out;
    for (const auto& [k, v] : reduced.Collect()) out[k] = v;
    return out;
  };
  EXPECT_EQ(run(Backend::kSpark), run(Backend::kHadoop));
}

TEST(Dataset, MetricsTrackShuffles) {
  ExecutionContext ctx(2);
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 60; ++i) records.emplace_back(i, i);
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
  uint64_t before = ctx.metrics().shuffled_records();
  GroupByKey(ds);
  EXPECT_EQ(ctx.metrics().shuffled_records() - before, 60u);
  EXPECT_GT(ctx.metrics().stages(), 0u);
}

TEST(Dataset, WorkerCountDoesNotChangeResults) {
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 333; ++i) records.emplace_back(i % 11, 1);
  std::map<int, int> reference;
  for (const auto& [k, v] : records) reference[k] += v;
  for (size_t workers : {1u, 2u, 5u, 16u}) {
    ExecutionContext ctx(workers);
    auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records);
    auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
    std::map<int, int> got;
    for (const auto& [k, v] : reduced.Collect()) got[k] = v;
    EXPECT_EQ(got, reference) << workers << " workers";
  }
}

}  // namespace
}  // namespace bigdansing
