#include "core/rule_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/csv.h"
#include "rules/parser.h"
#include "rules/similarity.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

/// The running example of the paper (Table 1), with numbers adjusted so the
/// described violations hold exactly.
Table PaperTable() {
  const char* csv =
      "name,zipcode,city,state,salary,rate\n"
      "Annie,10011,NY,NY,24000,15\n"
      "Laure,90210,LA,CA,25000,10\n"
      "John,60601,CH,IL,40000,25\n"
      "Mark,90210,SF,CA,88000,30\n"
      "Robert,68027,CH,IL,30000,5\n"
      "Mary,90210,LA,CA,88000,30\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return *table;
}

/// Unordered row-id pair set of a detection result.
std::set<std::pair<RowId, RowId>> PairSet(const DetectionResult& result) {
  std::set<std::pair<RowId, RowId>> pairs;
  for (const auto& vf : result.violations) {
    auto ids = vf.violation.RowIds();
    EXPECT_EQ(ids.size(), 2u);
    RowId a = std::min(ids[0], ids[1]);
    RowId b = std::max(ids[0], ids[1]);
    pairs.insert({a, b});
  }
  return pairs;
}

TEST(RuleEngine, FdDetectsPaperViolations) {
  Table table = PaperTable();
  auto rule = ParseRule("phiF: FD: zipcode -> city");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(table, *rule);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // zipcode 90210 block: {t1=Laure(LA), t3=Mark(SF), t5=Mary(LA)} (0-based
  // ids 1, 3, 5). Violations: (1,3) and (3,5); (1,5) agree on city.
  std::set<std::pair<RowId, RowId>> expected = {{1, 3}, {3, 5}};
  EXPECT_EQ(PairSet(*result), expected);
  // Blocking means only the 3 pairs inside the 90210 block are probed.
  EXPECT_EQ(result->detect_calls, 3u);
}

TEST(RuleEngine, FdGenFixEquatesCities) {
  Table table = PaperTable();
  auto rule = ParseRule("phiF: FD: zipcode -> city");
  ASSERT_TRUE(rule.ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(table, *rule);
  ASSERT_TRUE(result.ok());
  for (const auto& vf : result->violations) {
    ASSERT_EQ(vf.fixes.size(), 1u);
    const Fix& fix = vf.fixes[0];
    EXPECT_EQ(fix.op, FixOp::kEq);
    EXPECT_EQ(fix.left.attribute, "city");
    ASSERT_TRUE(fix.right.is_cell);
    EXPECT_EQ(fix.right.cell.attribute, "city");
    // Cells must reference the original column index of `city` (2).
    EXPECT_EQ(fix.left.ref.column, 2u);
  }
}

TEST(RuleEngine, DcMatchesBruteForce) {
  Table table = PaperTable();
  auto rule = ParseRule("phiD: DC: t1.rate > t2.rate & t1.salary < t2.salary");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(table, *rule);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Reference: brute-force ordered pairs.
  std::set<std::pair<RowId, RowId>> expected;
  for (const auto& a : table.rows()) {
    for (const auto& b : table.rows()) {
      if (a.id() == b.id()) continue;
      double ra = a.value(5).AsNumber(), rb = b.value(5).AsNumber();
      double sa = a.value(4).AsNumber(), sb = b.value(4).AsNumber();
      if (ra > rb && sa < sb) {
        expected.insert({std::min(a.id(), b.id()), std::max(a.id(), b.id())});
      }
    }
  }
  // The paper's example: (t1, t2) and (t2, t5) violate φD.
  EXPECT_TRUE(expected.count({0, 1}));
  EXPECT_TRUE(expected.count({1, 4}));
  EXPECT_EQ(PairSet(*result), expected);
  // OCJoin was selected.
  EXPECT_NE(result->plan_description.find("OCJoin"),
            std::string::npos);
}

TEST(RuleEngine, DcGenFixNegatesPredicates) {
  Table table = PaperTable();
  auto rule = ParseRule("phiD: DC: t1.rate > t2.rate & t1.salary < t2.salary");
  ASSERT_TRUE(rule.ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(table, *rule);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->violations.empty());
  for (const auto& vf : result->violations) {
    ASSERT_EQ(vf.fixes.size(), 2u);
    EXPECT_EQ(vf.fixes[0].op, FixOp::kLeq);  // negation of >
    EXPECT_EQ(vf.fixes[1].op, FixOp::kGeq);  // negation of <
  }
}

TEST(RuleEngine, UdfDedupWithBlocking) {
  const char* csv =
      "name,phone\n"
      "john smith,555-1234\n"
      "jon smith,555-1234\n"
      "mary jones,555-9999\n"
      "completely different,111-0000\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule = std::make_shared<UdfRule>("dedup");
  rule->set_symmetric(true)
      .set_block_key([](const Schema& schema, const Row& row) {
        // Block on the first character of the name.
        std::string name = row.value(0).ToString();
        return name.empty() ? Value() : Value(name.substr(0, 1));
      })
      .set_detect([](const Schema& schema, const Row& a, const Row& b,
                     std::vector<Violation>* out) {
        if (LevenshteinSimilarity(a.value(0).ToString(),
                                  b.value(0).ToString()) >= 0.8) {
          Violation v;
          v.rule_name = "dedup";
          v.cells.push_back(UdfRule::MakeUdfCell(a, 0, schema));
          v.cells.push_back(UdfRule::MakeUdfCell(b, 0, schema));
          out->push_back(std::move(v));
        }
      })
      .set_gen_fix([](const Schema& schema, const Violation& v,
                      std::vector<Fix>* out) {
        Fix fix;
        fix.left = v.cells[0];
        fix.op = FixOp::kEq;
        fix.right = FixTerm::MakeCell(v.cells[1]);
        out->push_back(std::move(fix));
      });
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, rule);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->violations.size(), 1u);
  auto ids = result->violations[0].violation.RowIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<RowId>{0, 1}));
  // Only the j-block pair was probed (blocking pruned the rest).
  EXPECT_EQ(result->detect_calls, 1u);
}

TEST(RuleEngine, CheckRuleSingleUnit) {
  const char* csv = "salary,rate\n100,5\n-50,3\n200,0\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule = ParseRule("nonneg: CHECK: t1.salary < 0");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, *rule);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->violations.size(), 1u);
  EXPECT_EQ(result->violations[0].violation.cells[0].ref.row_id, 1);
  ASSERT_EQ(result->violations[0].fixes.size(), 1u);
  EXPECT_EQ(result->violations[0].fixes[0].op, FixOp::kGeq);
}

TEST(RuleEngine, CrossTableCoBlock) {
  // The paper's DC (1): same name+phone across tables implies same city.
  const char* customers =
      "c_name,c_phone,c_city\n"
      "acme,111,NYC\n"
      "blue,222,LA\n"
      "core,333,SF\n";
  const char* suppliers =
      "s_name,s_phone,s_city\n"
      "acme,111,BOSTON\n"
      "blue,222,LA\n"
      "delta,444,SF\n";
  auto left = ReadCsvString(customers, CsvOptions{});
  auto right = ReadCsvString(suppliers, CsvOptions{});
  ASSERT_TRUE(left.ok() && right.ok());
  auto parsed = ParseRule(
      "dc1: DC: t1.c_name = t2.s_name & t1.c_phone = t2.s_phone & "
      "t1.c_city != t2.s_city");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto dc = std::dynamic_pointer_cast<DcRule>(*parsed);
  ASSERT_NE(dc, nullptr);
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  DetectRequest request;
  request.table = &*left;
  request.right = &*right;
  request.rules = {dc};
  auto results = engine.Detect(request);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const DetectionResult& result = results->front();
  // Only (acme, acme) has equal name+phone but different city.
  ASSERT_EQ(result.violations.size(), 1u);
  // CoBlock limits probes to co-blocks: acme-acme and blue-blue.
  EXPECT_EQ(result.detect_calls, 2u);
}

TEST(RuleEngine, StrategiesAgreeOnViolationSet) {
  Table table = PaperTable();
  ExecutionContext ctx(3);
  auto make_rule = [] {
    return *ParseRule("phiD: DC: t1.rate > t2.rate & t1.salary < t2.salary");
  };

  PlannerOptions with_ocjoin;
  PlannerOptions no_ocjoin;
  no_ocjoin.enable_ocjoin = false;
  PlannerOptions nothing;
  nothing.enable_ocjoin = false;
  nothing.enable_ucross_product = false;
  nothing.enable_blocking = false;
  nothing.enable_scope = false;

  auto run = [&](const PlannerOptions& opts) {
    RuleEngine engine(&ctx, opts);
    auto result = engine.Detect(table, make_rule());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return PairSet(*result);
  };
  auto a = run(with_ocjoin);
  auto b = run(no_ocjoin);
  auto c = run(nothing);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace bigdansing
