#include "data/storage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

/// Storage-backed detection through the unified request API.
Result<DetectionResult> DetectWithStorage(const RuleEngine& engine,
                                          const StorageManager& storage,
                                          const std::string& name,
                                          const RulePtr& rule) {
  DetectRequest request;
  request.storage = &storage;
  request.dataset = name;
  request.rules = {rule};
  auto results = engine.Detect(request);
  if (!results.ok()) return results.status();
  return std::move(results->front());
}

Table SmallTable() {
  Table t(Schema({"zipcode", "city", "state"}));
  t.AppendRow({Value(static_cast<int64_t>(90210)), Value("LA"), Value("CA")});
  t.AppendRow({Value(static_cast<int64_t>(90210)), Value("SF"), Value("CA")});
  t.AppendRow({Value(static_cast<int64_t>(10011)), Value("NY"), Value("NY")});
  t.AppendRow({Value(static_cast<int64_t>(90210)), Value("LA"), Value("CA")});
  return t;
}

TEST(StorageManager, StoreAndLoadRoundTrip) {
  StorageManager storage;
  Table t = SmallTable();
  ASSERT_TRUE(storage.Store("tax", t, "zipcode", 4).ok());
  auto loaded = storage.Load("tax");
  ASSERT_TRUE(loaded.ok());
  // Same rows, possibly reordered by partitioning.
  EXPECT_EQ(loaded->num_rows(), t.num_rows());
  for (const Row& row : t.rows()) {
    const Row* found = loaded->FindRowById(row.id());
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->values(), row.values());
  }
}

TEST(StorageManager, PartitioningColocatesKeys) {
  StorageManager storage;
  ASSERT_TRUE(storage.Store("tax", SmallTable(), "zipcode", 3).ok());
  auto replica = storage.FindReplica("tax", "zipcode");
  ASSERT_TRUE(replica.ok());
  // Every partition must be internally homogeneous-by-hash: all rows of a
  // given zipcode live in exactly one partition.
  std::map<int64_t, std::set<size_t>> zip_parts;
  for (size_t p = 0; p < (*replica)->partitions.size(); ++p) {
    for (const Row& row : (*replica)->partitions[p]) {
      zip_parts[row.value(0).as_int()].insert(p);
    }
  }
  for (const auto& [zip, parts] : zip_parts) {
    EXPECT_EQ(parts.size(), 1u) << "zipcode " << zip << " spread over parts";
  }
}

TEST(StorageManager, HeterogeneousReplication) {
  StorageManager storage;
  ASSERT_TRUE(storage.Store("tax", SmallTable(), "zipcode", 2).ok());
  ASSERT_TRUE(storage.AddReplica("tax", "state", 2).ok());
  EXPECT_EQ(storage.ReplicaAttributes("tax"),
            (std::vector<std::string>{"zipcode", "state"}));
  EXPECT_TRUE(storage.FindReplica("tax", "state").ok());
  EXPECT_FALSE(storage.FindReplica("tax", "city").ok());
  // Duplicate replica rejected.
  EXPECT_EQ(storage.AddReplica("tax", "state", 2).code(),
            StatusCode::kAlreadyExists);
}

TEST(StorageManager, ErrorCases) {
  StorageManager storage;
  Table t = SmallTable();
  EXPECT_FALSE(storage.Store("x", t, "nope", 2).ok());  // Unknown attribute.
  ASSERT_TRUE(storage.Store("x", t, "zipcode", 2).ok());
  EXPECT_EQ(storage.Store("x", t, "zipcode", 2).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(storage.Load("missing").ok());
  EXPECT_FALSE(storage.AddReplica("missing", "zipcode", 2).ok());
  EXPECT_FALSE(storage.FindReplica("missing", "zipcode").ok());
}

TEST(BinaryLayout, RoundTripsAllTypes) {
  Table t(Schema({"i", "d", "s", "n"}));
  t.AppendRow({Value(static_cast<int64_t>(-42)), Value(3.25),
               Value("hello, \"world\"\n"), Value::Null()});
  t.AppendRow({Value(static_cast<int64_t>(1)), Value(0.0), Value(""),
               Value::Null()});
  std::string buffer = SerializeTableBinary(t);
  auto back = DeserializeTableBinary(buffer);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
}

TEST(BinaryLayout, RejectsCorruptBuffers) {
  Table t = SmallTable();
  std::string buffer = SerializeTableBinary(t);
  EXPECT_FALSE(DeserializeTableBinary("garbage").ok());
  EXPECT_FALSE(DeserializeTableBinary(buffer.substr(0, 10)).ok());
  std::string truncated = buffer.substr(0, buffer.size() - 3);
  EXPECT_FALSE(DeserializeTableBinary(truncated).ok());
}

TEST(BinaryLayout, FileRoundTrip) {
  Table t = SmallTable();
  std::string path = ::testing::TempDir() + "/bigdansing_table.bin";
  ASSERT_TRUE(SaveBinary(t, path).ok());
  auto back = LoadBinary(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
}

TEST(BlockPushdown, SkipsShuffleAndMatchesOrdinaryDetection) {
  auto data = GenerateTaxA(5000, 0.1, 21);
  auto rule_text = "phi1: FD: zipcode -> city";

  // Ordinary path.
  ExecutionContext plain_ctx(4);
  RuleEngine plain_engine(&plain_ctx);
  auto reference = plain_engine.Detect(data.dirty, *ParseRule(rule_text));
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(plain_ctx.metrics().shuffled_records(), 0u);

  // Storage path with a replica partitioned on the blocking attribute.
  StorageManager storage;
  ASSERT_TRUE(storage.Store("taxa", data.dirty, "zipcode", 8).ok());
  ExecutionContext storage_ctx(4);
  RuleEngine storage_engine(&storage_ctx);
  auto pushed = DetectWithStorage(storage_engine, storage, "taxa",
                                  *ParseRule(rule_text));
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();

  // Same violation count, zero shuffled records.
  EXPECT_EQ(pushed->violations.size(), reference->violations.size());
  EXPECT_EQ(storage_ctx.metrics().shuffled_records(), 0u);
  EXPECT_NE(pushed->plan_description.find("pushed down"), std::string::npos);
}

TEST(BlockPushdown, FallsBackWithoutMatchingReplica) {
  auto data = GenerateTaxA(1000, 0.1, 22);
  StorageManager storage;
  // Partitioned on state, but the rule blocks on zipcode.
  ASSERT_TRUE(storage.Store("taxa", data.dirty, "state", 4).ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = DetectWithStorage(engine, storage, "taxa",
                                  *ParseRule("phi1: FD: zipcode -> city"));
  ASSERT_TRUE(result.ok());
  // Fallback shuffled (ordinary path).
  EXPECT_GT(ctx.metrics().shuffled_records(), 0u);
  // And still found the violations.
  RuleEngine plain(&ctx);
  auto reference = plain.Detect(data.dirty, *ParseRule("phi1: FD: zipcode -> city"));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result->violations.size(), reference->violations.size());
}

}  // namespace
}  // namespace bigdansing
