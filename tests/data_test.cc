#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/rdf.h"
#include "data/row.h"
#include "data/schema.h"
#include "data/table.h"

namespace bigdansing {
namespace {

TEST(Schema, IndexLookup) {
  Schema s({"a", "b", "c"});
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(*s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
  EXPECT_TRUE(s.Contains("c"));
  EXPECT_FALSE(s.Contains("d"));
}

TEST(Schema, FromCsvHeaderTrims) {
  Schema s = Schema::FromCsvHeader(" name , zipcode,city ");
  EXPECT_EQ(s.attributes(),
            (std::vector<std::string>{"name", "zipcode", "city"}));
}

TEST(Schema, Project) {
  Schema s({"a", "b", "c", "d"});
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.attributes(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(*p.IndexOf("a"), 1u);
}

TEST(Row, SourceColumnsDefaultToIdentity) {
  Row r(7, {Value("x"), Value("y")});
  EXPECT_EQ(r.source_column(0), 0u);
  EXPECT_EQ(r.source_column(1), 1u);
  r.set_source_columns({3, 1});
  EXPECT_EQ(r.source_column(0), 3u);
  EXPECT_EQ(r.source_column(1), 1u);
}

TEST(Table, AppendAssignsSequentialIds) {
  Table t(Schema({"a"}));
  t.AppendRow({Value(static_cast<int64_t>(10))});
  t.AppendRow({Value(static_cast<int64_t>(20))});
  EXPECT_EQ(t.row(0).id(), 0);
  EXPECT_EQ(t.row(1).id(), 1);
  EXPECT_EQ(t.FindRowById(1)->value(0).as_int(), 20);
  EXPECT_EQ(t.FindRowById(99), nullptr);
}

TEST(Table, FindRowByIdAfterNonSequentialIds) {
  Table t(Schema({"a"}));
  Row r(42, {Value("x")});
  t.AppendRowWithId(r);
  ASSERT_NE(t.FindRowById(42), nullptr);
  EXPECT_EQ(t.FindRowById(42)->value(0), Value("x"));
  EXPECT_EQ(t.FindRowById(0), nullptr);
}

TEST(Table, ValueAtChecksBounds) {
  Table t(Schema({"a", "b"}));
  t.AppendRow({Value("x"), Value("y")});
  EXPECT_EQ(*t.ValueAt(0, "b"), Value("y"));
  EXPECT_FALSE(t.ValueAt(5, "b").ok());
  EXPECT_FALSE(t.ValueAt(0, "zz").ok());
}

TEST(Table, CountDifferingCells) {
  auto a = ReadCsvString("x,y\n1,2\n3,4\n", CsvOptions{});
  auto b = ReadCsvString("x,y\n1,9\n3,4\n", CsvOptions{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a->CountDifferingCells(*b), 1u);
  auto c = ReadCsvString("x,y\n1,2\n", CsvOptions{});
  EXPECT_FALSE(a->CountDifferingCells(*c).ok());  // Misaligned.
}

TEST(Csv, QuotedFields) {
  auto t = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n", CsvOptions{});
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->row(0).value(0).as_string(), "x,y");
  EXPECT_EQ(t->row(0).value(1).as_string(), "he said \"hi\"");
}

TEST(Csv, UnterminatedQuoteIsError) {
  auto t = ReadCsvString("a\n\"oops\n", CsvOptions{});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST(Csv, FieldCountMismatchIsError) {
  auto t = ReadCsvString("a,b\n1,2\n3\n", CsvOptions{});
  EXPECT_FALSE(t.ok());
}

TEST(Csv, NoHeaderNamesColumns) {
  CsvOptions options;
  options.has_header = false;
  auto t = ReadCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().attributes(), (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(Csv, TypeInferenceToggle) {
  CsvOptions typed;
  auto t1 = ReadCsvString("a\n42\n", typed);
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(t1->row(0).value(0).is_int());

  CsvOptions untyped;
  untyped.infer_types = false;
  auto t2 = ReadCsvString("a\n42\n", untyped);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->row(0).value(0).is_string());
}

TEST(Csv, EmptyFieldIsNull) {
  auto t = ReadCsvString("a,b\n,x\n", CsvOptions{});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->row(0).value(0).is_null());
}

TEST(Csv, WriteRoundTrip) {
  auto t = ReadCsvString("a,b\n1,hello\n2,\"x,y\"\n", CsvOptions{});
  ASSERT_TRUE(t.ok());
  std::string text = WriteCsvString(*t, CsvOptions{});
  auto t2 = ReadCsvString(text, CsvOptions{});
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t, *t2);
}

TEST(Csv, FileRoundTrip) {
  auto t = ReadCsvString("a,b\n1,x\n", CsvOptions{});
  ASSERT_TRUE(t.ok());
  std::string path = ::testing::TempDir() + "/bigdansing_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path, CsvOptions{}).ok());
  auto t2 = ReadCsvFile(path, CsvOptions{});
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_EQ(*t, *t2);
}

TEST(Csv, MissingFileIsIoError) {
  auto t = ReadCsvFile("/nonexistent/nope.csv", CsvOptions{});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
}

TEST(Rdf, TableRoundTrip) {
  TripleStore store({{"s1", "p1", "o1"}, {"s2", "p2", "o2"}});
  Table t = store.ToTable();
  EXPECT_EQ(t.num_rows(), 2u);
  auto back = TripleStore::FromTable(t);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->triples(), store.triples());
}

TEST(Rdf, WithPredicateFilters) {
  TripleStore store({{"a", "knows", "b"}, {"a", "likes", "c"},
                     {"b", "knows", "c"}});
  auto knows = store.WithPredicate("knows");
  EXPECT_EQ(knows.size(), 2u);
}

TEST(Rdf, FromTableRejectsWrongSchema) {
  Table t(Schema({"x", "y", "z"}));
  EXPECT_FALSE(TripleStore::FromTable(t).ok());
}

}  // namespace
}  // namespace bigdansing
