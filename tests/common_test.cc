#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>

#include "common/hash.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace bigdansing {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("thing");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing");
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(Status, ResultValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::Internal("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(Status, ReturnNotOkMacro) {
  auto helper = [](bool fail) -> Status {
    BIGDANSING_RETURN_NOT_OK(fail ? Status::IoError("x") : Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(helper(true).code(), StatusCode::kIoError);
  EXPECT_EQ(helper(false).code(), StatusCode::kAlreadyExists);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtil, JoinInvertsSplit) {
  std::vector<std::string> parts = {"a", "bb", "", "c"};
  EXPECT_EQ(Split(Join(parts, '|'), '|'), parts);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtil, CaseAndPrefix) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtil, NumericSniffing) {
  EXPECT_TRUE(LooksLikeInt("42"));
  EXPECT_TRUE(LooksLikeInt("-1"));
  EXPECT_FALSE(LooksLikeInt("1.5"));
  EXPECT_FALSE(LooksLikeInt("x"));
  EXPECT_FALSE(LooksLikeInt(""));
  EXPECT_FALSE(LooksLikeInt("-"));
  EXPECT_TRUE(LooksLikeDouble("1.5"));
  EXPECT_TRUE(LooksLikeDouble("-2e10"));
  EXPECT_FALSE(LooksLikeDouble("1.5x"));
}

TEST(Random, DeterministicAcrossInstances) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Random, BoundsRespected) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, NextBoolTracksProbability) {
  Random rng(99);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

TEST(Hash, StableValuesArePinned) {
  // These constants must never change: blocking keys and partition
  // assignments of persisted data depend on them.
  EXPECT_EQ(StableHashBytes("abc"), StableHashBytes("abc"));
  EXPECT_NE(StableHashBytes("abc"), StableHashBytes("abd"));
  EXPECT_NE(StableHashUint64(1), StableHashUint64(2));
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(), [&](size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The regression this guards: a ParallelFor inside a pool task must not
  // block waiting for workers that are all busy (the k-way split repair
  // nests exactly like this).
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { done++; });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SubmitFromWorkerTaskRunsEverything) {
  // Tasks submitted from inside a pool task land on the submitting
  // worker's own deque and must still all run — including with a single
  // worker, where nobody else can steal them.
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&] {
        for (int j = 0; j < 16; ++j) {
          pool.Submit([&] { done++; });
        }
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(done.load(), 8 * 16) << threads << " threads";
  }
}

TEST(ThreadPool, WaitIdleFromWorkerHelpsDrain) {
  // A task that blocks on WaitIdle for work it just submitted must help
  // execute that work rather than deadlock the (single) worker slot.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  std::atomic<bool> outer_done{false};
  pool.Submit([&] {
    for (int j = 0; j < 10; ++j) {
      pool.Submit([&] { inner++; });
    }
    pool.WaitIdle();
    EXPECT_EQ(inner.load(), 10);
    outer_done = true;
  });
  pool.WaitIdle();
  EXPECT_TRUE(outer_done.load());
  EXPECT_EQ(inner.load(), 10);
}

TEST(ThreadPool, TryRunOneTaskDrainsFromOutside) {
  // Non-pool threads can steal queued work one task at a time.
  ThreadPool pool(2);
  std::atomic<bool> gate{false};
  std::atomic<int> done{0};
  // Park both workers so submitted work stays queued.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      while (!gate.load()) std::this_thread::yield();
    });
  }
  // Give the workers a moment to pick up the parking tasks, then queue
  // work only this thread can reach until the gate opens.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&] { done++; });
  }
  int ran = 0;
  while (pool.TryRunOneTask()) ++ran;
  EXPECT_GE(ran, 1);
  gate = true;
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 5);
}

TEST(ThreadPool, GaugesNetToZeroUnderStealingAndReentrantParallelFor) {
  // The queue-depth / active-worker gauges must return exactly to zero
  // after WaitIdle() even when the workload maximizes cross-worker
  // stealing (external submissions land round-robin, so busy deques get
  // robbed by idle workers) and tasks re-enter the pool with their own
  // nested ParallelFor.
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Gauge& queue_depth = reg.GetGauge("threadpool.queue_depth");
  Gauge& active = reg.GetGauge("threadpool.active_workers");
  Counter& steals = reg.GetCounter("threadpool.steals");
  const uint64_t steals_before = steals.Value();

  ThreadPool pool(4);
  pool.WaitIdle();
  const int64_t queue_baseline = queue_depth.Value();
  const int64_t active_baseline = active.Value();

  std::atomic<uint64_t> work_done{0};
  for (int round = 0; round < 8; ++round) {
    // External submissions with wildly uneven cost: round-robin placement
    // plus skew forces idle workers to steal from the loaded deques.
    for (int i = 0; i < 64; ++i) {
      const int spin = (i % 8 == 0) ? 20000 : 50;
      pool.Submit([&work_done, spin, &pool] {
        volatile uint64_t sink = 0;
        for (int k = 0; k < spin; ++k) sink = sink + k;
        // Re-entrant ParallelFor from inside a pool task: the caller
        // help-drains, which itself pops (and steals) queued tasks.
        pool.ParallelFor(16, [&work_done](size_t) {
          work_done.fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(queue_depth.Value(), queue_baseline)
        << "queue depth did not net to zero after round " << round;
    EXPECT_EQ(active.Value(), active_baseline)
        << "active workers did not net to zero after round " << round;
  }
  EXPECT_EQ(work_done.load(), 8u * 64u * 16u);
  // The skewed round-robin workload must actually have exercised the
  // steal path, otherwise this test is not testing what it claims.
  EXPECT_GT(steals.Value(), steals_before);
}

TEST(ThreadPool, EnvThreadsOverridesDefault) {
  ASSERT_EQ(setenv("BD_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::EnvThreadsOr(8), 3u);
  ThreadPool pool(ThreadPool::EnvThreadsOr(8));
  EXPECT_EQ(pool.num_threads(), 3u);
  ASSERT_EQ(setenv("BD_THREADS", "0", 1), 0);  // Invalid: fall back.
  EXPECT_EQ(ThreadPool::EnvThreadsOr(8), 8u);
  ASSERT_EQ(setenv("BD_THREADS", "junk", 1), 0);
  EXPECT_EQ(ThreadPool::EnvThreadsOr(8), 8u);
  ASSERT_EQ(unsetenv("BD_THREADS"), 0);
  EXPECT_EQ(ThreadPool::EnvThreadsOr(8), 8u);
}

}  // namespace
}  // namespace bigdansing
