// MetricsRegistry tests: histogram bucketing at exact boundaries, empty
// and single-sample quantiles, counter/gauge semantics, strict-JSON and
// Prometheus exports, and the wiring into the ThreadPool (gauges net to
// zero once WaitIdle returns) and the shuffle path (byte counters move
// when a GroupByKey runs).
#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "dataflow/dataset.h"
#include "prom_lint_test_util.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucketing: bucket i spans (BucketBound(i-1), BucketBound(i)].
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundsDoubleFromBase) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), Histogram::kBase);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), Histogram::kBase * 2);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), Histogram::kBase * 1024);
}

TEST(Histogram, BucketIndexAtExactBoundaries) {
  // Upper bounds are inclusive: a sample equal to BucketBound(i) lands in
  // bucket i, and the smallest value above it lands in bucket i + 1.
  for (size_t i : {size_t{0}, size_t{1}, size_t{5}, size_t{20}, size_t{40}}) {
    const double bound = Histogram::BucketBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(bound * 1.0000001), i + 1)
        << "just above bucket " << i;
  }
  // Bucket 0 absorbs everything at or below the base, including zero and
  // (defensively) negative samples.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kBase / 2), 0u);
  // The last bucket is unbounded above.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(Histogram, EmptyHistogramQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreItsBucketBound) {
  Histogram h;
  const double sample = 0.005;  // 5 ms.
  h.Observe(sample);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Sum(), sample);
  const double bound = Histogram::BucketBound(Histogram::BucketIndex(sample));
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), bound) << "q=" << q;
  }
  // Out-of-range q is clamped, not undefined behaviour.
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(Histogram, QuantilesSeparateWellSpacedSamples) {
  Histogram h;
  // 9 samples at ~1 ms, 1 sample at ~1 s: p50 must report the small
  // bucket's bound, p99/max the big one's.
  for (int i = 0; i < 9; ++i) h.Observe(0.001);
  h.Observe(1.0);
  EXPECT_EQ(h.Count(), 10u);
  EXPECT_NEAR(h.Sum(), 1.009, 1e-9);
  const double small = Histogram::BucketBound(Histogram::BucketIndex(0.001));
  const double big = Histogram::BucketBound(Histogram::BucketIndex(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), small);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), small);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), big);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), big);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Counter / Gauge semantics.
// ---------------------------------------------------------------------------

TEST(CounterGauge, BasicOperations) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);

  Gauge g;
  g.Add(5);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 3);
  g.Set(-7);
  EXPECT_EQ(g.Value(), -7);
  g.Set(10);
  g.UpdateMax(4);  // Smaller value must not lower the gauge.
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(25);
  EXPECT_EQ(g.Value(), 25);
}

// ---------------------------------------------------------------------------
// Registry: stable handles, strict JSON, Prometheus text.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAcrossLookupsAndReset) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& c1 = reg.GetCounter("test.stable_counter");
  Counter& c2 = reg.GetCounter("test.stable_counter");
  EXPECT_EQ(&c1, &c2);
  c1.Add(3);
  EXPECT_EQ(c2.Value(), 3u);
  reg.ResetAll();
  EXPECT_EQ(c1.Value(), 0u);  // Reset zeroes, pointer stays valid.
  EXPECT_EQ(&reg.GetCounter("test.stable_counter"), &c1);
}

TEST(MetricsRegistry, ToJsonIsStrictAndCarriesValues) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.ResetAll();
  reg.GetCounter("test.json_counter").Add(7);
  reg.GetGauge("test.json_gauge").Set(-3);
  reg.GetHistogram("test.json_histogram").Observe(0.5);

  JsonValue doc;
  StrictJsonParser parser(reg.ToJson());
  ASSERT_TRUE(parser.Parse(&doc)) << parser.error();
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("test.json_counter"), nullptr);
  EXPECT_EQ(counters->Find("test.json_counter")->number, 7.0);
  const JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("test.json_gauge")->number, -3.0);
  const JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* hist = histograms->Find("test.json_histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 1.0);
  EXPECT_NEAR(hist->Find("sum")->number, 0.5, 1e-6);
  ASSERT_NE(hist->Find("bucket_bounds"), nullptr);
  ASSERT_NE(hist->Find("bucket_counts"), nullptr);
  EXPECT_EQ(hist->Find("bucket_bounds")->array.size(),
            hist->Find("bucket_counts")->array.size());
}

TEST(MetricsRegistry, PrometheusTextRenamesDotsAndRendersSeries) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.ResetAll();
  reg.GetCounter("test.prom_counter").Add(2);
  reg.GetHistogram("test.prom_histogram").Observe(0.25);
  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("test_prom_counter 2"), std::string::npos) << text;
  EXPECT_NE(text.find("test_prom_histogram_count 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_sum"), std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(text.find("test.prom_counter"), std::string::npos)
      << "dots must be rewritten for Prometheus";
}

TEST(MetricsRegistry, PrometheusExpositionPassesLint) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.ResetAll();
  reg.GetCounter("lint.counter").Add(42);
  reg.GetGauge("lint.gauge").Set(-17);
  Histogram& hist = reg.GetHistogram("lint.hist");
  // Samples spanning many buckets so the cumulative series is non-trivial.
  for (int i = 0; i < 500; ++i) {
    hist.Observe(1e-6 * static_cast<double>(1 << (i % 20)));
  }
  std::vector<std::string> errors;
  const bool ok =
      testing::ValidatePrometheusExposition(reg.ToPrometheusText(), &errors);
  EXPECT_TRUE(ok) << (errors.empty() ? std::string() : errors.front());
  // The linter itself enforces: le series cumulative monotone, +Inf bucket
  // present and equal to _count, _sum present, TYPE lines for every family.
}

TEST(MetricsRegistry, PrometheusSnapshotStaysValidUnderConcurrentObserve) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.ResetAll();
  Histogram& hist = reg.GetHistogram("lint.concurrent_hist");
  Counter& counter = reg.GetCounter("lint.concurrent_counter");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&hist, &counter, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        hist.Observe(1e-6 * static_cast<double>(1 + (i + w) % 4096));
        counter.Add(1);
        ++i;
      }
    });
  }
  // Each scrape must be internally consistent even though Observe() is
  // mid-flight: cumulative monotone buckets, +Inf == _count. The separate
  // count_ atomic is deliberately NOT the source of truth for the series.
  for (int scrape = 0; scrape < 50; ++scrape) {
    std::vector<std::string> errors;
    const bool ok = testing::ValidatePrometheusExposition(
        reg.ToPrometheusText(), &errors);
    EXPECT_TRUE(ok) << (errors.empty() ? std::string() : errors.front());
    if (!ok) break;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

// ---------------------------------------------------------------------------
// ThreadPool wiring: the gauges net to zero once the pool drains.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ThreadPoolGaugesReadZeroAfterWaitIdle) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.ResetAll();
  Gauge& queue_depth = reg.GetGauge("threadpool.queue_depth");
  Gauge& active = reg.GetGauge("threadpool.active_workers");
  Counter& executed = reg.GetCounter("threadpool.tasks_executed");

  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 64);
  // Gauge updates happen before the in-flight count that WaitIdle watches
  // is decremented, so by the time WaitIdle returns both levels are zero.
  EXPECT_EQ(queue_depth.Value(), 0);
  EXPECT_EQ(active.Value(), 0);
  EXPECT_GE(executed.Value(), 64u);

  // ParallelFor may batch indices into fewer task closures; the counter
  // tracks executed closures, so just require it to have moved. It can
  // also return while unclaimed helper closures still sit in the queue
  // (all indices are done; the helpers will find nothing to do), so the
  // zero-gauge guarantee is, as documented, only after WaitIdle().
  const uint64_t executed_before = executed.Value();
  pool.ParallelFor(32, [&ran](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 96);
  EXPECT_EQ(queue_depth.Value(), 0);
  EXPECT_EQ(active.Value(), 0);
  EXPECT_GT(executed.Value(), executed_before);
}

// ---------------------------------------------------------------------------
// Dataflow wiring: shuffle byte counters move when a shuffle runs.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ShuffleBytesCountedDuringGroupByKey) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.ResetAll();
  Counter& shuffle_bytes = reg.GetCounter("dataflow.shuffle_bytes");
  Gauge& peak_partition = reg.GetGauge("dataflow.peak_partition_bytes");

  ExecutionContext ctx(4);
  std::vector<std::pair<int, int>> records;
  for (int i = 0; i < 1000; ++i) records.emplace_back(i % 13, i);
  auto ds = Dataset<std::pair<int, int>>::FromVector(&ctx, records, 4);
  auto grouped = GroupByKey(ds).Collect();
  EXPECT_EQ(grouped.size(), 13u);
  // Every record crossed the shuffle, so at least records * pair-size bytes
  // were charged, and some partition held at least one record's worth.
  EXPECT_GE(shuffle_bytes.Value(), 1000 * sizeof(std::pair<int, int>));
  EXPECT_GE(peak_partition.Value(),
            static_cast<int64_t>(sizeof(std::pair<int, int>)));
}

}  // namespace
}  // namespace bigdansing
