// Column profiler tests: known-table statistics (null rate, distinct,
// min/max, top-k with deterministic tie-breaks), byte-identical output
// between the dictionary-encoded path and the raw-value scan path, strict
// JSON rendering, and the profile stages publishing through the metrics
// plane like any other engine stage.
#include "data/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/table.h"
#include "dataflow/context.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

Table MakeMixedTable() {
  Table t(Schema({"city", "salary"}));
  t.AppendRow({Value("paris"), Value(int64_t{100})});
  t.AppendRow({Value("paris"), Value(int64_t{200})});
  t.AppendRow({Value("oslo"), Value::Null()});
  t.AppendRow({Value(), Value(int64_t{100})});
  t.AppendRow({Value("lima"), Value(int64_t{50})});
  t.AppendRow({Value("paris"), Value(int64_t{200})});
  return t;
}

TEST(ColumnProfiler, ProfilesKnownTable) {
  ExecutionContext ctx(4);
  const Table t = MakeMixedTable();
  TableProfile profile = ProfileTable(&ctx, t);

  ASSERT_EQ(profile.rows, 6u);
  ASSERT_EQ(profile.columns.size(), 2u);

  const ColumnProfile* city = profile.Find("city");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ(city->index, 0u);
  EXPECT_EQ(city->rows, 6u);
  EXPECT_EQ(city->nulls, 1u);
  EXPECT_DOUBLE_EQ(city->null_rate(), 1.0 / 6.0);
  EXPECT_EQ(city->distinct, 3u);
  EXPECT_EQ(city->min, Value("lima"));
  EXPECT_EQ(city->max, Value("paris"));
  // Top-k: count-descending, ties broken by ascending Value order.
  ASSERT_GE(city->top.size(), 3u);
  EXPECT_EQ(city->top[0].value, Value("paris"));
  EXPECT_EQ(city->top[0].count, 3u);
  EXPECT_EQ(city->top[1].value, Value("lima"));
  EXPECT_EQ(city->top[1].count, 1u);
  EXPECT_EQ(city->top[2].value, Value("oslo"));
  EXPECT_EQ(city->top[2].count, 1u);

  const ColumnProfile* salary = profile.Find("salary");
  ASSERT_NE(salary, nullptr);
  EXPECT_EQ(salary->nulls, 1u);
  EXPECT_EQ(salary->distinct, 3u);
  EXPECT_EQ(salary->min, Value(int64_t{50}));
  EXPECT_EQ(salary->max, Value(int64_t{200}));
  ASSERT_GE(salary->top.size(), 3u);
  // 100 and 200 both occur twice: the smaller value leads the tie.
  EXPECT_EQ(salary->top[0].value, Value(int64_t{100}));
  EXPECT_EQ(salary->top[0].count, 2u);
  EXPECT_EQ(salary->top[1].value, Value(int64_t{200}));
  EXPECT_EQ(salary->top[1].count, 2u);

  EXPECT_EQ(profile.Find("missing"), nullptr);
}

TEST(ColumnProfiler, TopKTruncates) {
  ExecutionContext ctx(2);
  Table t(Schema({"v"}));
  for (int i = 0; i < 10; ++i) {
    for (int reps = 0; reps <= i; ++reps) {
      t.AppendRow({Value(int64_t{i})});
    }
  }
  ProfileOptions options;
  options.top_k = 3;
  TableProfile profile = ProfileTable(&ctx, t, options);
  ASSERT_EQ(profile.columns.size(), 1u);
  ASSERT_EQ(profile.columns[0].top.size(), 3u);
  EXPECT_EQ(profile.columns[0].top[0].value, Value(int64_t{9}));
  EXPECT_EQ(profile.columns[0].top[0].count, 10u);
  EXPECT_EQ(profile.columns[0].top[2].value, Value(int64_t{7}));
  EXPECT_EQ(profile.columns[0].distinct, 10u);
}

TEST(ColumnProfiler, AllThreePathsRenderIdentically) {
  ExecutionContext ctx(4);
  const Table t = MakeMixedTable();
  ProfileOptions encoded;
  encoded.use_encoding = true;
  encoded.encode_min_rows = 0;
  encoded.stage_min_rows = 0;
  ProfileOptions scan;
  scan.use_encoding = false;
  scan.stage_min_rows = 0;
  ProfileOptions inline_path;  // tiny table -> driver-side loop
  // Byte-identical JSON, not just equal stats: the fallback paths must be
  // indistinguishable to every downstream consumer (drift diff, JSONL).
  const std::string expected = ProfileTable(&ctx, t, encoded).ToJson();
  EXPECT_EQ(expected, ProfileTable(&ctx, t, scan).ToJson());
  EXPECT_EQ(expected, ProfileTable(&ctx, t, inline_path).ToJson());
}

TEST(ColumnProfiler, EmptyTableAndNullContext) {
  ExecutionContext ctx(2);
  Table empty(Schema({"a", "b"}));
  TableProfile profile = ProfileTable(&ctx, empty);
  EXPECT_EQ(profile.rows, 0u);
  ASSERT_EQ(profile.columns.size(), 2u);
  EXPECT_EQ(profile.columns[0].nulls, 0u);
  EXPECT_EQ(profile.columns[0].distinct, 0u);
  EXPECT_DOUBLE_EQ(profile.columns[0].null_rate(), 0.0);
  EXPECT_TRUE(profile.columns[0].min.is_null());

  // Null context degrades to the name-only shell instead of crashing.
  TableProfile no_ctx = ProfileTable(nullptr, MakeMixedTable());
  ASSERT_EQ(no_ctx.columns.size(), 2u);
  EXPECT_EQ(no_ctx.columns[0].name, "city");
  EXPECT_EQ(no_ctx.columns[0].distinct, 0u);
}

TEST(ColumnProfiler, ToJsonIsStrictAndTyped) {
  ExecutionContext ctx(4);
  Table t(Schema({"na\"me"}));
  t.AppendRow({Value("a\nb")});
  t.AppendRow({Value()});
  TableProfile profile = ProfileTable(&ctx, t);

  JsonValue doc;
  ASSERT_TRUE(ParsesStrictly(profile.ToJson(), &doc));
  EXPECT_EQ(doc.Find("rows")->number, 2.0);
  const JsonValue* columns = doc.Find("columns");
  ASSERT_NE(columns, nullptr);
  ASSERT_EQ(columns->array.size(), 1u);
  const JsonValue& col = columns->array[0];
  EXPECT_EQ(col.Find("name")->str, "na\"me");
  EXPECT_EQ(col.Find("nulls")->number, 1.0);
  EXPECT_EQ(col.Find("distinct")->number, 1.0);
  EXPECT_EQ(col.Find("min")->str, "a\nb");
  ASSERT_EQ(col.Find("top")->array.size(), 1u);
  EXPECT_EQ(col.Find("top")->array[0].Find("value")->str, "a\nb");
  EXPECT_EQ(col.Find("top")->array[0].Find("count")->number, 1.0);
}

TEST(ColumnProfiler, PublishesProfileStages) {
  ExecutionContext ctx(4);
  const Table t = MakeMixedTable();
  ProfileOptions encoded;
  encoded.encode_min_rows = 0;  // tiny table would auto-pick inline/scan
  encoded.stage_min_rows = 0;
  ProfileTable(&ctx, t, encoded);
  bool saw_histogram = false;
  for (const StageReport& r : ctx.metrics().StageReports()) {
    if (r.name == "profile:histogram") {
      saw_histogram = true;
      EXPECT_TRUE(r.finished);
      EXPECT_EQ(r.records_in, t.num_rows());
      EXPECT_GT(r.start_ms, 0u);
      EXPECT_GE(r.end_ms, r.start_ms);
    }
  }
  EXPECT_TRUE(saw_histogram);

  ProfileOptions scan;
  scan.use_encoding = false;
  scan.stage_min_rows = 0;
  ProfileTable(&ctx, t, scan);
  bool saw_scan = false;
  for (const StageReport& r : ctx.metrics().StageReports()) {
    saw_scan = saw_scan || r.name == "profile:scan";
  }
  EXPECT_TRUE(saw_scan);
}

}  // namespace
}  // namespace bigdansing
