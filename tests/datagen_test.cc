#include "datagen/datagen.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/rule_engine.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

class TaxAParamTest : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(TaxAParamTest, CleanSatisfiesFdAndErrorsMatchRate) {
  auto [rows, rate] = GetParam();
  auto data = GenerateTaxA(rows, rate, /*seed=*/7);
  ASSERT_EQ(data.dirty.num_rows(), rows);
  ASSERT_EQ(data.clean.num_rows(), rows);

  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto rule_city = *ParseRule("phi1: FD: zipcode -> city");
  auto clean_check = engine.Detect(data.clean, rule_city);
  ASSERT_TRUE(clean_check.ok());
  EXPECT_TRUE(clean_check->violations.empty())
      << "clean TaxA must satisfy zipcode -> city";
  auto rule_state = *ParseRule("phi6: FD: zipcode -> state");
  auto clean_check2 = engine.Detect(data.clean, rule_state);
  ASSERT_TRUE(clean_check2.ok());
  EXPECT_TRUE(clean_check2->violations.empty());

  // Injected error count tracks the rate (binomial; allow wide slack).
  auto diff = data.dirty.CountDifferingCells(data.clean);
  ASSERT_TRUE(diff.ok());
  double expected = static_cast<double>(rows) * rate;
  EXPECT_GE(*diff, static_cast<size_t>(expected * 0.5));
  EXPECT_LE(*diff, static_cast<size_t>(expected * 1.5) + 5);

  // Dirty data has violations iff errors were injected.
  if (rate > 0.0 && *diff > 0) {
    auto dirty_check = engine.Detect(data.dirty, rule_city);
    auto dirty_check2 = engine.Detect(data.dirty, rule_state);
    ASSERT_TRUE(dirty_check.ok() && dirty_check2.ok());
    EXPECT_GT(dirty_check->violations.size() + dirty_check2->violations.size(),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TaxAParamTest,
    ::testing::Values(std::make_tuple(200, 0.1), std::make_tuple(1000, 0.1),
                      std::make_tuple(1000, 0.01), std::make_tuple(500, 0.5),
                      std::make_tuple(300, 0.0)));

TEST(TaxB, CleanSatisfiesDcAndErrorsAreBandLimited) {
  const size_t rows = 2000;
  auto data = GenerateTaxB(rows, 0.05, /*seed=*/11);
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto rule = *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  auto clean_check = engine.Detect(data.clean, rule);
  ASSERT_TRUE(clean_check.ok());
  EXPECT_TRUE(clean_check->violations.empty())
      << "clean TaxB must satisfy the salary/rate DC";

  auto dirty_check = engine.Detect(data.dirty, rule);
  ASSERT_TRUE(dirty_check.ok());
  auto errors = data.dirty.CountDifferingCells(data.clean);
  ASSERT_TRUE(errors.ok());
  ASSERT_GT(*errors, 0u);
  // Each error produces at most ~kTaxBViolationBand violating pairs (x2 for
  // interactions between nearby errors).
  EXPECT_GT(dirty_check->violations.size(), 0u);
  EXPECT_LE(dirty_check->violations.size(),
            *errors * kTaxBViolationBand * 2);
}

TEST(TaxB, SalariesAreDistinct) {
  auto data = GenerateTaxB(500, 0.1, 3);
  std::set<int64_t> salaries;
  for (const auto& row : data.clean.rows()) {
    EXPECT_TRUE(salaries.insert(row.value(4).as_int()).second);
  }
}

TEST(Tpch, CleanSatisfiesCustkeyAddressFd) {
  auto data = GenerateTpch(1500, 0.1, 5);
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto rule = *ParseRule("phi3: FD: o_custkey -> c_address");
  auto clean_check = engine.Detect(data.clean, rule);
  ASSERT_TRUE(clean_check.ok());
  EXPECT_TRUE(clean_check->violations.empty());
  auto dirty_check = engine.Detect(data.dirty, rule);
  ASSERT_TRUE(dirty_check.ok());
  EXPECT_GT(dirty_check->violations.size(), 0u);
}

TEST(CustomerDedup, InjectedPairsAreTracked) {
  auto data = GenerateCustomerDedup(200, /*exact_copies=*/2, /*fuzzy_rate=*/0.05,
                                    9);
  // 200 base + 400 exact + ~30 fuzzy.
  EXPECT_EQ(data.exact_pairs.size(), 400u);
  EXPECT_GT(data.fuzzy_pairs.size(), 5u);
  EXPECT_EQ(data.table.num_rows(),
            600u + data.fuzzy_pairs.size());
  // Exact pairs really are byte-identical.
  for (const auto& [a, b] : data.exact_pairs) {
    EXPECT_EQ(data.table.row(static_cast<size_t>(a)).values(),
              data.table.row(static_cast<size_t>(b)).values());
  }
  // Fuzzy pairs differ in name or phone but share custkey.
  for (const auto& [a, b] : data.fuzzy_pairs) {
    EXPECT_EQ(data.table.row(static_cast<size_t>(a)).value(0),
              data.table.row(static_cast<size_t>(b)).value(0));
  }
}

TEST(NcVoter, DuplicateRateRespected) {
  auto data = GenerateNcVoter(1000, 0.02, 13);
  EXPECT_GE(data.fuzzy_pairs.size(), 5u);
  EXPECT_LE(data.fuzzy_pairs.size(), 60u);
  EXPECT_EQ(data.table.num_rows(), 1000 + data.fuzzy_pairs.size());
}

TEST(Hai, CleanSatisfiesAllThreeFds) {
  auto data = GenerateHai(2000, 0.1, 17);
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  for (const char* text :
       {"phi6: FD: zipcode -> state", "phi7: FD: phone -> zipcode",
        "phi8: FD: provider_id -> city, phone"}) {
    auto rule = ParseRule(text);
    ASSERT_TRUE(rule.ok()) << rule.status().ToString();
    auto check = engine.Detect(data.clean, *rule);
    ASSERT_TRUE(check.ok());
    EXPECT_TRUE(check->violations.empty()) << text;
  }
  auto dirty_check =
      engine.Detect(data.dirty, *ParseRule("phi6: FD: zipcode -> state"));
  ASSERT_TRUE(dirty_check.ok());
  EXPECT_GT(dirty_check->violations.size(), 0u);
}

TEST(Determinism, SameSeedSameData) {
  auto a = GenerateTaxA(300, 0.1, 42);
  auto b = GenerateTaxA(300, 0.1, 42);
  EXPECT_EQ(a.dirty, b.dirty);
  EXPECT_EQ(a.clean, b.clean);
  auto c = GenerateTaxA(300, 0.1, 43);
  EXPECT_FALSE(c.dirty == a.dirty);
}

}  // namespace
}  // namespace bigdansing
