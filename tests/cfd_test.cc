#include "rules/cfd_rule.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "data/csv.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

Table PhoneTable() {
  // country-conditioned FD: inside UK, zipcode determines city; other
  // countries are exempt (rows 3/4 share a zipcode with different cities
  // but are in DE — no violation).
  const char* csv =
      "country,zipcode,city\n"
      "UK,E1,London\n"
      "UK,E1,Leeds\n"
      "UK,G1,Glasgow\n"
      "DE,X1,Berlin\n"
      "DE,X1,Munich\n";
  return *ReadCsvString(csv, CsvOptions{});
}

TEST(CfdParser, VariableCfd) {
  auto rule = ParseRule("c: CFD: country=\"UK\", zipcode -> city");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* cfd = dynamic_cast<CfdRule*>(rule->get());
  ASSERT_NE(cfd, nullptr);
  EXPECT_FALSE(cfd->is_constant_cfd());
  EXPECT_EQ((*rule)->arity(), 2);
  ASSERT_EQ(cfd->lhs().size(), 2u);
  EXPECT_TRUE(cfd->lhs()[0].constant.has_value());
  EXPECT_FALSE(cfd->lhs()[1].constant.has_value());
  // Blocks on the wildcard attribute only.
  EXPECT_EQ(cfd->BlockingAttributes(), (std::vector<std::string>{"zipcode"}));
}

TEST(CfdParser, ConstantCfd) {
  auto rule = ParseRule("c: CFD: zipcode=\"90210\" -> city=\"LA\"");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* cfd = dynamic_cast<CfdRule*>(rule->get());
  ASSERT_NE(cfd, nullptr);
  EXPECT_TRUE(cfd->is_constant_cfd());
  EXPECT_EQ((*rule)->arity(), 1);
}

TEST(CfdParser, NumericPatternConstant) {
  auto rule = ParseRule("c: CFD: zipcode=90210 -> city");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* cfd = dynamic_cast<CfdRule*>(rule->get());
  ASSERT_TRUE(cfd->lhs()[0].constant.has_value());
  EXPECT_EQ(*cfd->lhs()[0].constant, Value(static_cast<int64_t>(90210)));
}

TEST(CfdParser, Errors) {
  EXPECT_FALSE(ParseRule("CFD: a b").ok());           // No arrow.
  EXPECT_FALSE(ParseRule("CFD: -> city").ok());       // Empty LHS.
  EXPECT_FALSE(ParseRule("CFD: a -> b, c").ok());     // Two RHS attrs.
  EXPECT_FALSE(ParseRule("CFD: a=t2.b -> c").ok());   // Non-constant pattern.
}

TEST(CfdRule, VariableCfdDetectsOnlyInsidePattern) {
  Table table = PhoneTable();
  auto rule = *ParseRule("uk: CFD: country=\"UK\", zipcode -> city");
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(table, rule);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only the UK E1 pair violates; the DE X1 pair is outside the pattern.
  ASSERT_EQ(result->violations.size(), 1u);
  auto ids = result->violations[0].violation.RowIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<RowId>{0, 1}));
  // GenFix equates the two city cells.
  ASSERT_EQ(result->violations[0].fixes.size(), 1u);
  EXPECT_EQ(result->violations[0].fixes[0].left.attribute, "city");
}

TEST(CfdRule, ConstantCfdDetectsAndRepairs) {
  const char* csv =
      "zipcode,city\n"
      "90210,LA\n"
      "90210,XX\n"
      "10011,NY\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule = *ParseRule("c: CFD: zipcode=90210 -> city=\"LA\"");
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, rule);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->violations.size(), 1u);
  EXPECT_EQ(result->violations[0].violation.cells[0].ref.row_id, 1);
  // Full cleanse assigns the constant.
  Table working = *table;
  BigDansing system(&ctx);
  auto report = system.Clean(&working, {rule});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->converged);
  EXPECT_EQ(working.row(1).value(1), Value("LA"));
}

TEST(CfdRule, ReducesToPlainFdWithoutPatterns) {
  Table table = PhoneTable();
  auto cfd = *ParseRule("a: CFD: zipcode -> city");
  auto fd = *ParseRule("b: FD: zipcode -> city");
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto cfd_result = engine.Detect(table, cfd);
  auto fd_result = engine.Detect(table, fd);
  ASSERT_TRUE(cfd_result.ok() && fd_result.ok());
  EXPECT_EQ(cfd_result->violations.size(), fd_result->violations.size());
}

TEST(CfdRule, AllConstantLhsStillBlocks) {
  Table table = PhoneTable();
  auto rule = *ParseRule("c: CFD: country=\"UK\" -> city");
  // Within UK, all tuples must share one city -> 3 UK rows, all distinct
  // cities -> violations among them.
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(table, rule);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->violations.size(), 3u);  // 3 unordered UK pairs.
}

}  // namespace
}  // namespace bigdansing
