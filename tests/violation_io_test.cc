#include "rules/violation_io.h"

#include <gtest/gtest.h>

#include "core/rule_engine.h"
#include "data/csv.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

std::vector<ViolationWithFixes> SampleViolations() {
  const char* csv =
      "zipcode,city\n"
      "90210,LA\n"
      "90210,SF\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ExecutionContext ctx(1);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, *ParseRule("phi1: FD: zipcode -> city"));
  EXPECT_TRUE(result.ok());
  return result->violations;
}

TEST(ViolationIo, RendersHeaderAndRows) {
  auto violations = SampleViolations();
  ASSERT_EQ(violations.size(), 1u);
  std::string csv = WriteViolationsCsv(violations);
  EXPECT_NE(csv.find("rule,rows,cells,fixes\n"), std::string::npos);
  EXPECT_NE(csv.find("phi1"), std::string::npos);
  EXPECT_NE(csv.find("0;1"), std::string::npos);
  EXPECT_NE(csv.find("t0[city]=LA"), std::string::npos);
  EXPECT_NE(csv.find("t0[city] = t1[city]"), std::string::npos);
}

TEST(ViolationIo, EmptyListYieldsHeaderOnly) {
  EXPECT_EQ(WriteViolationsCsv({}), "rule,rows,cells,fixes\n");
}

TEST(ViolationIo, QuotesFieldsContainingCommas) {
  ViolationWithFixes vf;
  vf.violation.rule_name = "has,comma";
  Cell c;
  c.ref = CellRef{0, 0};
  c.attribute = "a";
  c.value = Value("x,y");
  vf.violation.cells = {c};
  std::string csv = WriteViolationsCsv({vf});
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"t0[a]=x,y\""), std::string::npos);
  // The whole output stays a valid 4-column CSV.
  auto parsed = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema().num_attributes(), 4u);
  EXPECT_EQ(parsed->num_rows(), 1u);
}

TEST(ViolationIo, FileRoundTrip) {
  auto violations = SampleViolations();
  std::string path = ::testing::TempDir() + "/bigdansing_violations.csv";
  ASSERT_TRUE(WriteViolationsCsvFile(violations, path).ok());
  auto parsed = ReadCsvFile(path, CsvOptions{});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), violations.size());
}

TEST(ViolationIo, ConstantFixRendering) {
  ViolationWithFixes vf;
  vf.violation.rule_name = "chk";
  Cell c;
  c.ref = CellRef{3, 2};
  c.attribute = "salary";
  c.value = Value(static_cast<int64_t>(-5));
  vf.violation.cells = {c};
  Fix fix;
  fix.left = c;
  fix.op = FixOp::kGeq;
  fix.right = FixTerm::MakeConstant(Value(static_cast<int64_t>(0)));
  vf.fixes = {fix};
  std::string csv = WriteViolationsCsv({vf});
  EXPECT_NE(csv.find("t3[salary] >= 0"), std::string::npos);
}

}  // namespace
}  // namespace bigdansing
