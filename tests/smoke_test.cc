#include <gtest/gtest.h>

#include "common/status.h"
#include "data/csv.h"
#include "dataflow/dataset.h"

namespace bigdansing {
namespace {

TEST(Smoke, StatusRoundTrip) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  Status err = Status::InvalidArgument("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.ToString(), "InvalidArgument: boom");
}

TEST(Smoke, DataflowMapFilter) {
  ExecutionContext ctx(4);
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);
  auto ds = Dataset<int>::FromVector(&ctx, items);
  auto doubled = ds.Map([](const int& x) { return x * 2; });
  auto big = doubled.Filter([](const int& x) { return x >= 100; });
  EXPECT_EQ(big.Count(), 50u);
}

TEST(Smoke, CsvRoundTrip) {
  auto table = ReadCsvString("a,b\n1,x\n2,y\n", CsvOptions{});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->row(0).value(0).as_int(), 1);
  EXPECT_EQ(table->row(1).value(1).as_string(), "y");
}

}  // namespace
}  // namespace bigdansing
