#include "core/ocjoin.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/random.h"

namespace bigdansing {
namespace {

/// Random rows with `cols` numeric columns (occasionally null).
std::vector<Row> RandomRows(size_t n, size_t cols, uint64_t seed,
                            double null_rate = 0.0) {
  Random rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextBool(null_rate)) {
        values.push_back(Value::Null());
      } else {
        values.push_back(Value(static_cast<int64_t>(rng.NextBounded(50))));
      }
    }
    rows.emplace_back(static_cast<RowId>(i), std::move(values));
  }
  return rows;
}

bool EvalCondition(const Row& a, const Row& b, const OrderingCondition& c) {
  const Value& l = a.value(c.left_column);
  const Value& r = b.value(c.right_column);
  if (l.is_null() || r.is_null()) return false;
  switch (c.op) {
    case CmpOp::kLt:
      return l < r;
    case CmpOp::kGt:
      return l > r;
    case CmpOp::kLeq:
      return l <= r;
    case CmpOp::kGeq:
      return l >= r;
    default:
      return false;
  }
}

std::set<std::pair<RowId, RowId>> BruteForce(
    const std::vector<Row>& rows,
    const std::vector<OrderingCondition>& conditions) {
  std::set<std::pair<RowId, RowId>> out;
  for (const auto& a : rows) {
    for (const auto& b : rows) {
      if (a.id() == b.id()) continue;
      bool all = true;
      for (const auto& c : conditions) all = all && EvalCondition(a, b, c);
      if (all) out.insert({a.id(), b.id()});
    }
  }
  return out;
}

std::set<std::pair<RowId, RowId>> AsSet(const std::vector<RowPair>& pairs) {
  std::set<std::pair<RowId, RowId>> out;
  for (const auto& p : pairs) out.insert({p.left.id(), p.right.id()});
  return out;
}

OrderingCondition Cond(size_t left, CmpOp op, size_t right) {
  OrderingCondition c;
  c.left_column = left;
  c.op = op;
  c.right_column = right;
  return c;
}

/// Property sweep: every operator combination over random data must match
/// the brute-force self-join, across partition counts and null rates.
class OCJoinProperty
    : public ::testing::TestWithParam<std::tuple<CmpOp, CmpOp, size_t, double>> {};

TEST_P(OCJoinProperty, MatchesBruteForce) {
  auto [op0, op1, num_partitions, null_rate] = GetParam();
  std::vector<Row> rows = RandomRows(300, 3, /*seed=*/17, null_rate);
  std::vector<OrderingCondition> conditions = {Cond(0, op0, 0),
                                               Cond(1, op1, 2)};
  ExecutionContext ctx(4);
  OCJoinOptions options;
  options.num_partitions = num_partitions;
  OCJoinStats stats;
  auto pairs = OCJoin(&ctx, rows, conditions, options, &stats);
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
  EXPECT_EQ(stats.result_pairs, pairs.size());
  EXPECT_LE(stats.partition_pairs_after_pruning, stats.partition_pairs_total);
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndPartitions, OCJoinProperty,
    ::testing::Combine(
        ::testing::Values(CmpOp::kLt, CmpOp::kGt, CmpOp::kLeq, CmpOp::kGeq),
        ::testing::Values(CmpOp::kLt, CmpOp::kGeq),
        ::testing::Values(size_t{1}, size_t{4}, size_t{13}),
        ::testing::Values(0.0, 0.1)));

TEST(OCJoin, SingleConditionMatchesBruteForce) {
  std::vector<Row> rows = RandomRows(200, 2, 3);
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kGt, 1)};
  ExecutionContext ctx(2);
  auto pairs = OCJoin(&ctx, rows, conditions, OCJoinOptions());
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
}

TEST(OCJoin, ThreeConditions) {
  std::vector<Row> rows = RandomRows(150, 3, 5);
  std::vector<OrderingCondition> conditions = {
      Cond(0, CmpOp::kGt, 0), Cond(1, CmpOp::kLt, 1), Cond(2, CmpOp::kLeq, 2)};
  ExecutionContext ctx(2);
  auto pairs = OCJoin(&ctx, rows, conditions, OCJoinOptions());
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
}

TEST(OCJoin, EmptyInputs) {
  ExecutionContext ctx(2);
  EXPECT_TRUE(OCJoin(&ctx, {}, {Cond(0, CmpOp::kLt, 0)}, OCJoinOptions()).empty());
  std::vector<Row> rows = RandomRows(10, 2, 7);
  EXPECT_TRUE(OCJoin(&ctx, rows, {}, OCJoinOptions()).empty());
}

TEST(OCJoin, AllNullColumnProducesNothing) {
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.emplace_back(i, std::vector<Value>{Value::Null(), Value::Null()});
  }
  ExecutionContext ctx(2);
  auto pairs = OCJoin(&ctx, rows, {Cond(0, CmpOp::kLt, 1)}, OCJoinOptions());
  EXPECT_TRUE(pairs.empty());
}

TEST(OCJoin, PruningActuallyPrunesOnSortedData) {
  // Monotone data (rate grows with salary, like clean TaxB): the DC's
  // condition pair is unsatisfiable across most partition pairs, so
  // pruning must discard the bulk of them.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.emplace_back(i, std::vector<Value>{Value(i), Value(i * 2)});
  }
  // t1.c0 > t2.c0 & t1.c1 < t2.c1 is unsatisfiable on this data.
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kGt, 0),
                                               Cond(1, CmpOp::kLt, 1)};
  ExecutionContext ctx(4);
  OCJoinOptions options;
  options.num_partitions = 16;
  OCJoinStats stats;
  auto pairs = OCJoin(&ctx, rows, conditions, options, &stats);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(stats.num_partitions, 16u);
  // Only near-diagonal partition pairs can survive the min/max check.
  EXPECT_LT(stats.partition_pairs_after_pruning,
            stats.partition_pairs_total / 4);
}

TEST(OCJoin, DuplicateValuesHandled) {
  // Many ties on the join attribute stress the merge boundaries.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 60; ++i) {
    rows.emplace_back(i, std::vector<Value>{Value(i % 3), Value(i % 5)});
  }
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kLeq, 0),
                                               Cond(1, CmpOp::kGt, 1)};
  ExecutionContext ctx(3);
  auto pairs = OCJoin(&ctx, rows, conditions, OCJoinOptions());
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
}

TEST(OCJoin, SelectivityOrderingPicksRareCondition) {
  // Condition 0 (c0 >= c0) holds for ~half of all pairs; condition 1
  // (c1 < c1 where c1 is constant) never holds. Selectivity ordering must
  // run the never-true condition first, collapsing the candidate count.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.emplace_back(i, std::vector<Value>{Value(i), Value(static_cast<int64_t>(7))});
  }
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kGeq, 0),
                                               Cond(1, CmpOp::kLt, 1)};
  ExecutionContext ctx(2);

  OCJoinOptions plain;
  OCJoinStats plain_stats;
  auto plain_pairs = OCJoin(&ctx, rows, conditions, plain, &plain_stats);

  OCJoinOptions ordered;
  ordered.order_conditions_by_selectivity = true;
  OCJoinStats ordered_stats;
  auto ordered_pairs = OCJoin(&ctx, rows, conditions, ordered, &ordered_stats);

  // Same (empty) result either way; far fewer candidates when ordered.
  EXPECT_EQ(AsSet(plain_pairs), AsSet(ordered_pairs));
  EXPECT_EQ(ordered_stats.primary_condition, 1u);
  EXPECT_LT(ordered_stats.candidate_pairs, plain_stats.candidate_pairs / 10 + 1);
}

TEST(OCJoin, SelectivityOrderingPreservesResults) {
  std::vector<Row> rows = RandomRows(300, 3, 23);
  std::vector<OrderingCondition> conditions = {
      Cond(0, CmpOp::kGeq, 0), Cond(1, CmpOp::kLt, 2), Cond(2, CmpOp::kGt, 1)};
  ExecutionContext ctx(2);
  OCJoinOptions ordered;
  ordered.order_conditions_by_selectivity = true;
  auto pairs = OCJoin(&ctx, rows, conditions, ordered);
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
}

TEST(OCJoin, StatsCandidateCountBoundsResults) {
  std::vector<Row> rows = RandomRows(500, 2, 11);
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kGt, 0),
                                               Cond(1, CmpOp::kLt, 1)};
  ExecutionContext ctx(4);
  OCJoinStats stats;
  OCJoin(&ctx, rows, conditions, OCJoinOptions(), &stats);
  EXPECT_GE(stats.candidate_pairs, stats.result_pairs);
}

}  // namespace
}  // namespace bigdansing
