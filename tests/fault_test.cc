// Fault-tolerant stage execution: deterministic fault injection, task
// retry with budgets, speculative re-execution, and the unified
// Detect/Repair API. The headline invariant (the paper's Fig-8a-style
// workload): a Clean() run with faults injected into every registered
// stage converges to a byte-identical table vs the fault-free run, with
// recovery visible in the metrics — and with retries disabled the run
// fails with a clean Status, never a crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/metrics_registry.h"
#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "dataflow/context.h"
#include "dataflow/stage_executor.h"
#include "repair/strategy.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

/// Canonical byte rendering of a table (row ids + every cell) for
/// bit-identical comparisons across runs.
std::string Fingerprint(const Table& table) {
  std::string out;
  for (const Row& row : table.rows()) {
    out += std::to_string(row.id());
    for (size_t c = 0; c < row.size(); ++c) {
      out += '|';
      out += row.value(c).ToString();
    }
    out += "\n";
  }
  return out;
}

std::vector<RulePtr> TaxRules() {
  return {*ParseRule("phi1: FD: zipcode -> city"),
          *ParseRule("phi6: FD: zipcode -> state")};
}

/// RAII guard: clears the injector's schedule and site tracking on scope
/// exit so one test's faults never leak into the next.
struct InjectorGuard {
  ~InjectorGuard() {
    FaultInjector::Instance().Clear();
    FaultInjector::Instance().set_site_tracking(false);
    FaultInjector::Instance().ClearSeenSites();
  }
};

TEST(FaultSpec, ParsesAndRejects) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_TRUE(injector
                  .Configure("stage=mr:spill,task=3,kind=throw,prob=0.01", 42)
                  .ok());
  EXPECT_TRUE(injector.Configure("stage=*,kind=delay,ms=5;stage=x,times=2", 1)
                  .ok());
  EXPECT_TRUE(injector.Configure("", 42).ok());  // Empty spec = disabled.
  EXPECT_FALSE(injector.Configure("stage=x,kind=nonsense", 42).ok());
  EXPECT_FALSE(injector.Configure("task=1", 42).ok());  // No site filter.
  EXPECT_FALSE(injector.Configure("stage=x,prob=zebra", 42).ok());
  injector.Clear();
}

TEST(FaultSpec, DeterministicSchedule) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  // prob=1 on one site: the first attempt of every task at that site
  // throws, identically on every run with the same seed.
  ASSERT_TRUE(injector.Configure("stage=probe,prob=1,times=3", 7).ok());
  size_t thrown = 0;
  for (size_t t = 0; t < 5; ++t) {
    try {
      injector.OnSite("probe", t, 0);
    } catch (const TaskFailure& f) {
      EXPECT_EQ(f.site(), "probe");
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 3u);  // times=3 caps the schedule.
  EXPECT_EQ(injector.injected_total(), 3u);
  injector.Clear();
}

TEST(FaultRetry, TransientFaultsConvergeBitIdentical) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  auto data = GenerateTaxA(400, 0.08, /*seed=*/11);

  // Fault-free reference run, with site tracking enumerating every stage
  // the full Clean() pipeline actually executes.
  injector.set_site_tracking(true);
  std::string reference;
  {
    ExecutionContext ctx(4);
    BigDansing system(&ctx);
    Table working = data.dirty;
    auto report = system.Clean(&working, TaxRules());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->converged);
    reference = Fingerprint(working);
  }
  std::vector<std::string> sites = injector.SeenSites();
  injector.set_site_tracking(false);
  // The cleanse pipeline crosses detection, shuffle, and repair stages —
  // the acceptance bar is faults in at least 3 distinct stages.
  ASSERT_GE(sites.size(), 3u) << "expected the full pipeline to register "
                                 "several distinct fault sites";

  // Inject a transient throw into every registered site, one run per site:
  // prob < 1 means the deterministic per-attempt draws let retries through,
  // so every run must converge to the exact reference bytes. The retry
  // budget is deepened so a 0.4 per-attempt fault rate cannot plausibly
  // exhaust it (0.4^10 per task).
  CleanOptions options;
  FaultPolicy policy;
  policy.max_attempts = 10;
  policy.stage_retry_budget = 256;
  options.fault_policy = policy;
  for (const std::string& site : sites) {
    ASSERT_TRUE(
        injector.Configure("stage=" + site + ",kind=throw,prob=0.4", 1234)
            .ok());
    ExecutionContext ctx(4);
    BigDansing system(&ctx, options);
    Table working = data.dirty;
    auto report = system.Clean(&working, TaxRules());
    ASSERT_TRUE(report.ok())
        << "site " << site << ": " << report.status().ToString();
    EXPECT_TRUE(report->converged) << "site " << site;
    EXPECT_EQ(Fingerprint(working), reference)
        << "faults at site '" << site << "' changed the repaired table";
  }
  injector.Clear();
}

TEST(FaultRetry, WildcardFaultsAcrossAllStagesStillConverge) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  auto data = GenerateTaxA(400, 0.08, /*seed=*/11);

  std::string reference;
  {
    ExecutionContext ctx(4);
    BigDansing system(&ctx);
    Table working = data.dirty;
    auto report = system.Clean(&working, TaxRules());
    ASSERT_TRUE(report.ok());
    reference = Fingerprint(working);
  }

  MetricsRegistry& registry = MetricsRegistry::Instance();
  const uint64_t retries_before = registry.GetCounter("stage.retries").Value();
  ASSERT_TRUE(injector.Configure("stage=*,kind=throw,prob=0.15", 99).ok());
  ExecutionContext ctx(4);
  CleanOptions options;
  FaultPolicy policy;
  policy.max_attempts = 10;
  policy.stage_retry_budget = 256;
  options.fault_policy = policy;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto report = system.Clean(&working, TaxRules());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Fingerprint(working), reference);
  // Recovery must actually have happened (nonzero injections and retries),
  // otherwise this test proves nothing.
  EXPECT_GT(injector.injected_total(), 0u);
  EXPECT_GT(registry.GetCounter("stage.retries").Value(), retries_before);
  injector.Clear();
}

TEST(FaultRetry, ExhaustedBudgetFailsWithStatusNotCrash) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  // prob=1: every attempt at every site throws, so no retry can succeed.
  ASSERT_TRUE(injector.Configure("stage=*,kind=throw,prob=1", 5).ok());
  auto data = GenerateTaxA(200, 0.1, /*seed=*/3);
  ExecutionContext ctx(4);
  CleanOptions options;
  FaultPolicy policy;
  policy.max_attempts = 2;
  policy.stage_retry_budget = 4;
  options.fault_policy = policy;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto report = system.Clean(&working, TaxRules());
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.status().ToString().empty());
  injector.Clear();
}

TEST(FaultRetry, RetriesDisabledSurfaceFirstFault) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("stage=*,kind=throw,prob=0.4", 1234).ok());
  auto data = GenerateTaxA(200, 0.1, /*seed=*/3);
  ExecutionContext ctx(4);
  CleanOptions options;
  FaultPolicy policy;
  policy.max_attempts = 1;  // Retry disabled entirely.
  options.fault_policy = policy;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto report = system.Clean(&working, TaxRules());
  EXPECT_FALSE(report.ok());
  injector.Clear();
}

TEST(Speculation, DuplicateAttemptsNeverDoubleCount) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  ExecutionContext ctx(4);

  // Reference: a producing stage summed without faults or speculation.
  const size_t n = 16;
  auto run_sum = [&]() -> uint64_t {
    auto out = StageExecutor(&ctx).RunProducing<uint64_t>(
        "spec:sum", n, [&](size_t t, TaskContext& tc) {
          tc.records_out = 1;
          return static_cast<uint64_t>(t * t + 1);
        });
    EXPECT_TRUE(out.ok());
    uint64_t sum = 0;
    for (uint64_t v : *out) sum += v;
    return sum;
  };
  const uint64_t reference = run_sum();

  // Delay a couple of tasks and turn speculation all the way up: the
  // executor may launch duplicates, but exactly one attempt per task
  // commits, so the sum is unchanged.
  ASSERT_TRUE(
      injector.Configure("stage=spec:sum,task=3,kind=delay,ms=40;"
                         "stage=spec:sum,task=7,kind=delay,ms=40",
                         42)
          .ok());
  FaultPolicy eager;
  eager.speculation = true;
  eager.speculation_multiplier = 1.5;
  eager.speculation_min_seconds = 0.0;
  ScopedFaultPolicy scoped(&ctx, eager);
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const uint64_t committed_before =
      registry.GetCounter("stage.speculative_committed").Value();
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(run_sum(), reference);
  }
  // Whether duplicates won or lost, committed speculations never exceed
  // launches and the results above stayed exact.
  EXPECT_LE(registry.GetCounter("stage.speculative_committed").Value() -
                committed_before,
            registry.GetCounter("stage.speculative_launched").Value());
  injector.Clear();
}

TEST(UnifiedDetect, RejectsMalformedRequests) {
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto data = GenerateTaxA(50, 0.1, /*seed=*/1);
  auto rule = *ParseRule("phi1: FD: zipcode -> city");

  DetectRequest empty;
  empty.table = &data.dirty;
  // Zero rules over a plain table is trivially valid: nothing to detect.
  auto trivial = engine.Detect(empty);
  ASSERT_TRUE(trivial.ok());
  EXPECT_TRUE(trivial->empty());

  DetectRequest no_rules_incremental;
  no_rules_incremental.table = &data.dirty;
  std::unordered_set<RowId> no_rows;
  no_rules_incremental.changed_rows = &no_rows;
  EXPECT_FALSE(engine.Detect(no_rules_incremental).ok());  // Needs one rule.

  DetectRequest no_source;
  no_source.rules = {rule};
  EXPECT_FALSE(engine.Detect(no_source).ok());  // No table, no storage.

  DetectRequest dangling_dataset;
  dangling_dataset.table = &data.dirty;
  dangling_dataset.rules = {rule};
  dangling_dataset.dataset = "tax";
  EXPECT_FALSE(engine.Detect(dangling_dataset).ok());  // Dataset w/o storage.

  DetectRequest bad_across;
  bad_across.table = &data.dirty;
  bad_across.right = &data.dirty;
  bad_across.rules = {rule};  // FD, not a DC: cross-table needs a DcRule.
  EXPECT_FALSE(engine.Detect(bad_across).ok());

  DetectRequest across_incremental;
  across_incremental.table = &data.dirty;
  across_incremental.right = &data.dirty;
  std::unordered_set<RowId> changed{1};
  across_incremental.changed_rows = &changed;
  across_incremental.rules = {*ParseRule(
      "dc: DC: t1.zipcode = t2.zipcode & t1.city != t2.city")};
  EXPECT_FALSE(engine.Detect(across_incremental).ok());
}

TEST(UnifiedDetect, MatchesLegacyWrappers) {
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto data = GenerateTaxA(300, 0.1, /*seed=*/21);
  auto rules = TaxRules();

  DetectRequest request;
  request.table = &data.dirty;
  request.rules = rules;
  auto unified = engine.Detect(request);
  ASSERT_TRUE(unified.ok());
  // This test exists to prove the deprecated wrappers still match the
  // unified API bit for bit, so it calls them on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto legacy = engine.DetectAll(data.dirty, rules);
#pragma GCC diagnostic pop
  ASSERT_TRUE(legacy.ok());
  ASSERT_EQ(unified->size(), legacy->size());
  for (size_t r = 0; r < unified->size(); ++r) {
    EXPECT_EQ((*unified)[r].violations.size(), (*legacy)[r].violations.size());
    EXPECT_EQ((*unified)[r].detect_calls, (*legacy)[r].detect_calls);
    EXPECT_EQ((*unified)[r].plan_description, (*legacy)[r].plan_description);
  }

  // Incremental shape through the unified API == the legacy wrapper.
  std::unordered_set<RowId> changed;
  for (const Row& row : data.dirty.rows()) {
    if (changed.size() >= 10) break;
    changed.insert(row.id());
  }
  DetectRequest inc;
  inc.table = &data.dirty;
  inc.rules = {rules[0]};
  inc.changed_rows = &changed;
  auto inc_unified = engine.Detect(inc);
  ASSERT_TRUE(inc_unified.ok());
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto inc_legacy = engine.DetectIncremental(data.dirty, rules[0], changed);
#pragma GCC diagnostic pop
  ASSERT_TRUE(inc_legacy.ok());
  EXPECT_EQ((*inc_unified)[0].violations.size(),
            inc_legacy->violations.size());
}

TEST(UnifiedDetect, PerRequestFaultPolicyFailsFast) {
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("stage=*,kind=throw,prob=1", 17).ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto data = GenerateTaxA(100, 0.1, /*seed=*/2);

  DetectRequest request;
  request.table = &data.dirty;
  request.rules = {*ParseRule("phi1: FD: zipcode -> city")};
  FaultPolicy no_retry;
  no_retry.max_attempts = 1;
  request.fault_policy = no_retry;
  auto result = engine.Detect(request);
  EXPECT_FALSE(result.ok());

  // The scoped policy must have been restored: the context default allows
  // retries again (prob=1 still starves them, but the restore itself is
  // what we check).
  EXPECT_EQ(ctx.fault_policy().max_attempts, FaultPolicy().max_attempts);
  injector.Clear();
}

TEST(RepairStrategyFactory, DispatchesByMode) {
  EXPECT_EQ(RepairStrategyFor(RepairMode::kEquivalenceClass).name(),
            "equivalence-class");
  EXPECT_EQ(RepairStrategyFor(RepairMode::kHypergraph).name(), "hypergraph");
  EXPECT_EQ(RepairStrategyFor(RepairMode::kDistributedEquivalenceClass).name(),
            "distributed-equivalence-class");
  // Stateless singletons: repeated lookups hand back the same instance.
  EXPECT_EQ(&RepairStrategyFor(RepairMode::kHypergraph),
            &RepairStrategyFor(RepairMode::kHypergraph));
}

TEST(RepairStrategyFactory, StrategiesAgreeWithLegacyCleanModes) {
  auto data = GenerateTaxA(300, 0.1, /*seed=*/13);
  auto run_with_mode = [&](RepairMode mode) {
    ExecutionContext ctx(4);
    CleanOptions options;
    options.repair_mode = mode;
    BigDansing system(&ctx, options);
    Table working = data.dirty;
    auto report = system.Clean(&working, TaxRules());
    EXPECT_TRUE(report.ok());
    return Fingerprint(working);
  };
  // The centralized and natively distributed equivalence-class repairs are
  // equivalent by construction (Fig 12(b)'s premise).
  EXPECT_EQ(run_with_mode(RepairMode::kEquivalenceClass),
            run_with_mode(RepairMode::kDistributedEquivalenceClass));
}

}  // namespace
}  // namespace bigdansing
