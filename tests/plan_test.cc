#include <gtest/gtest.h>

#include "core/logical_plan.h"
#include "core/physical_plan.h"
#include "rules/parser.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

Schema TaxSchema() {
  return Schema({"name", "zipcode", "city", "state", "salary", "rate"});
}

TEST(LogicalPlan, FdBuildsFullPipeline) {
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->ops.size(), 5u);
  EXPECT_EQ(plan->ops[0].kind, LogicalOpKind::kScope);
  EXPECT_EQ(plan->ops[1].kind, LogicalOpKind::kBlock);
  EXPECT_EQ(plan->ops[2].kind, LogicalOpKind::kIterate);
  EXPECT_EQ(plan->ops[3].kind, LogicalOpKind::kDetect);
  EXPECT_EQ(plan->ops[4].kind, LogicalOpKind::kGenFix);
  EXPECT_EQ(plan->ops[0].input_label, "D1");
  EXPECT_EQ(plan->ops[1].input_label, plan->ops[0].output_labels[0]);
  EXPECT_NE(plan->ops[2].params.find("ucross"), std::string::npos);
  EXPECT_TRUE(ValidateLogicalPlan(*plan).ok());
}

TEST(LogicalPlan, InequalityDcSelectsOcjoinIterate) {
  auto rule = *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  ASSERT_TRUE(plan.ok());
  // No blocking key for an inequality-only DC: Scope, Iterate(ocjoin),
  // Detect, GenFix.
  ASSERT_EQ(plan->ops.size(), 4u);
  EXPECT_EQ(plan->ops[1].kind, LogicalOpKind::kIterate);
  EXPECT_NE(plan->ops[1].params.find("ocjoin"), std::string::npos);
}

TEST(LogicalPlan, Arity1RuleHasNoIterate) {
  auto rule = *ParseRule("chk: CHECK: t1.salary < 0");
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kIterate), 0u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kDetect), 1u);
}

TEST(LogicalPlan, UnknownAttributeFailsEarly) {
  auto rule = *ParseRule("bad: FD: nope -> city");
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  EXPECT_FALSE(plan.ok());
}

TEST(LogicalPlan, UdfWithoutHintsHasNoScopeOrBlock) {
  auto rule = std::make_shared<UdfRule>("blackbox");
  rule->set_detect([](const Schema&, const Row&, const Row&,
                      std::vector<Violation>*) {});
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kScope), 0u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kBlock), 0u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kDetect), 1u);
}

TEST(LogicalPlan, ValidationRejectsPlanWithoutDetect) {
  LogicalPlan plan;
  LogicalOperatorDesc scope;
  scope.kind = LogicalOpKind::kScope;
  scope.input_label = "D1";
  scope.output_labels = {"x"};
  plan.ops.push_back(scope);
  EXPECT_FALSE(ValidateLogicalPlan(plan).ok());
}

TEST(LogicalPlan, ValidationRejectsDanglingOutput) {
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  ASSERT_TRUE(plan.ok());
  // Orphan the Block output by renaming the Iterate input.
  plan->ops[2].input_label = "elsewhere";
  EXPECT_FALSE(ValidateLogicalPlan(*plan).ok());
}

TEST(LogicalPlan, ValidationRejectsDoubleGenFix) {
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto plan = BuildLogicalPlan(rule, TaxSchema(), "D1");
  ASSERT_TRUE(plan.ok());
  plan->ops.push_back(plan->ops.back());  // Second GenFix on same input.
  EXPECT_FALSE(ValidateLogicalPlan(*plan).ok());
}

TEST(LogicalPlan, ConsolidationMergesEqualParams) {
  // Two DCs over the same attributes and blocking key (the Figure 5 case).
  auto r1 = *ParseRule("c1: DC: t1.zipcode = t2.zipcode & t1.city != t2.city");
  auto r2 = *ParseRule("c2: DC: t1.zipcode = t2.zipcode & t1.city ~0.5 t2.city");
  auto p1 = BuildLogicalPlan(r1, TaxSchema(), "D1");
  auto p2 = BuildLogicalPlan(r2, TaxSchema(), "D1");
  ASSERT_TRUE(p1.ok() && p2.ok());
  LogicalPlan merged = MergePlans({*p1, *p2});
  LogicalPlan consolidated = ConsolidatePlan(merged);
  // Scope and Block merge; Iterate has equal params too (ucross) but its
  // inputs differ (each rule's own blocked label), so it stays split.
  EXPECT_LT(consolidated.ops.size(), merged.ops.size());
  EXPECT_EQ(consolidated.CountOps(LogicalOpKind::kScope), 1u);
  // The merged Scope carries both rules' labels.
  for (const auto& op : consolidated.ops) {
    if (op.kind == LogicalOpKind::kScope) {
      EXPECT_EQ(op.output_labels.size(), 2u);
    }
  }
  EXPECT_EQ(consolidated.CountOps(LogicalOpKind::kDetect), 2u);
  EXPECT_EQ(consolidated.CountOps(LogicalOpKind::kGenFix), 2u);
}

TEST(LogicalPlan, ConsolidationKeepsDifferentParamsApart) {
  auto r1 = *ParseRule("a: FD: zipcode -> city");
  auto r2 = *ParseRule("b: FD: name -> state");
  auto p1 = BuildLogicalPlan(r1, TaxSchema(), "D1");
  auto p2 = BuildLogicalPlan(r2, TaxSchema(), "D1");
  ASSERT_TRUE(p1.ok() && p2.ok());
  LogicalPlan consolidated = ConsolidatePlan(MergePlans({*p1, *p2}));
  EXPECT_EQ(consolidated.CountOps(LogicalOpKind::kScope), 2u);
  EXPECT_EQ(consolidated.CountOps(LogicalOpKind::kBlock), 2u);
}

TEST(PhysicalPlan, FdGetsBlockingAndUCross) {
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto plan = BuildPhysicalPlan(rule, TaxSchema(), PlannerOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->strategy, IterateStrategy::kUCrossProduct);
  EXPECT_EQ(plan->scope_columns, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(plan->blocking_columns, (std::vector<size_t>{0}));  // In scoped schema.
  EXPECT_EQ(plan->detect_schema.attributes(),
            (std::vector<std::string>{"zipcode", "city"}));
}

TEST(PhysicalPlan, InequalityDcGetsOcjoin) {
  auto rule = *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  auto plan = BuildPhysicalPlan(rule, TaxSchema(), PlannerOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->strategy, IterateStrategy::kOCJoin);
  ASSERT_EQ(plan->ocjoin_conditions.size(), 2u);
  // Bound against the scoped schema (salary, rate).
  EXPECT_EQ(plan->ocjoin_conditions[0].left_attr, "salary");
}

TEST(PhysicalPlan, OptionsDisableEnhancers) {
  auto rule = *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  PlannerOptions options;
  options.enable_ocjoin = false;
  auto plan = BuildPhysicalPlan(rule, TaxSchema(), options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->strategy, IterateStrategy::kUCrossProduct);
  options.enable_ucross_product = false;
  auto plan2 = BuildPhysicalPlan(rule, TaxSchema(), options);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(plan2->strategy, IterateStrategy::kCrossProduct);
}

TEST(PhysicalPlan, ScopeDisabledKeepsFullSchema) {
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  PlannerOptions options;
  options.enable_scope = false;
  auto plan = BuildPhysicalPlan(rule, TaxSchema(), options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->scope_columns.empty());
  EXPECT_EQ(plan->detect_schema.num_attributes(), 6u);
  // Blocking column resolved against the FULL schema now.
  EXPECT_EQ(plan->blocking_columns, (std::vector<size_t>{1}));
}

TEST(PhysicalPlan, ToStringMentionsStrategy) {
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto plan = BuildPhysicalPlan(rule, TaxSchema(), PlannerOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->ToString().find("UCrossProduct"), std::string::npos);
}

}  // namespace
}  // namespace bigdansing
