#include <gtest/gtest.h>

#include "baselines/nadeef_baseline.h"
#include "baselines/sql_baseline.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

TEST(SqlBaseline, FdViolationsMatchBigDansingUpToDuplicates) {
  auto data = GenerateTaxA(2000, 0.1, 1);
  auto rule_text = "phi1: FD: zipcode -> city";
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto reference = engine.Detect(data.dirty, *ParseRule(rule_text));
  ASSERT_TRUE(reference.ok());

  for (SqlEngine engine_kind :
       {SqlEngine::kPostgres, SqlEngine::kSparkSql, SqlEngine::kShark}) {
    auto result =
        SqlBaselineDetect(&ctx, data.dirty, *ParseRule(rule_text), engine_kind);
    ASSERT_TRUE(result.ok()) << SqlEngineName(engine_kind);
    // SQL self-joins report each symmetric violating pair twice (the paper:
    // "BigDansing does not generate duplicate violations, while SQL engines
    // do").
    EXPECT_EQ(result->violations, reference->violations.size() * 2)
        << SqlEngineName(engine_kind);
  }
}

TEST(SqlBaseline, DcViolationsMatchBigDansing) {
  auto data = GenerateTaxB(1500, 0.1, 2);
  auto rule_text = "phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate";
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto reference = engine.Detect(data.dirty, *ParseRule(rule_text));
  ASSERT_TRUE(reference.ok());

  // The inequality DC is asymmetric, so the cross product finds each
  // violating ordered pair exactly once — counts match BigDansing.
  for (SqlEngine engine_kind : {SqlEngine::kPostgres, SqlEngine::kSparkSql}) {
    auto result =
        SqlBaselineDetect(&ctx, data.dirty, *ParseRule(rule_text), engine_kind);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->violations, reference->violations.size());
    EXPECT_EQ(result->pairs_probed, 1500u * 1499u);
  }
}

TEST(SqlBaseline, EqualityDcUsesHashJoin) {
  auto data = GenerateTaxA(1000, 0.1, 3);
  auto rule_text = "c1: DC: t1.zipcode = t2.zipcode & t1.city != t2.city";
  ExecutionContext ctx(2);
  auto result = SqlBaselineDetect(&ctx, data.dirty, *ParseRule(rule_text),
                                  SqlEngine::kPostgres);
  ASSERT_TRUE(result.ok());
  // Hash join probes far fewer pairs than the 10^6 cross product.
  EXPECT_LT(result->pairs_probed, 200000u);
  EXPECT_GT(result->violations, 0u);
}

TEST(SqlBaseline, RejectsUdfRules) {
  auto rule = std::make_shared<UdfRule>("udf");
  rule->set_detect([](const Schema&, const Row&, const Row&,
                      std::vector<Violation>*) {});
  Table t(Schema({"a"}));
  t.AppendRow({Value("x")});
  ExecutionContext ctx(1);
  auto result = SqlBaselineDetect(&ctx, t, rule, SqlEngine::kSparkSql);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(Nadeef, DetectionMatchesBigDansing) {
  auto data = GenerateTaxA(800, 0.1, 4);
  auto rule_text = "phi1: FD: zipcode -> city";
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto reference = engine.Detect(data.dirty, *ParseRule(rule_text));
  auto nadeef = NadeefDetect(data.dirty, *ParseRule(rule_text));
  ASSERT_TRUE(reference.ok() && nadeef.ok());
  EXPECT_EQ(nadeef->violations.size(), reference->violations.size());
  // NADEEF probed every unordered pair; BigDansing only within blocks.
  EXPECT_EQ(nadeef->detect_calls, 800u * 799u / 2);
  EXPECT_LT(reference->detect_calls, nadeef->detect_calls / 10);
}

TEST(Nadeef, CleanReachesSameFixPointAsBigDansing) {
  auto data = GenerateTaxA(500, 0.1, 5);
  auto rule_text = "phi1: FD: zipcode -> city";

  Table nadeef_table = data.dirty;
  auto iterations = NadeefClean(&nadeef_table, *ParseRule(rule_text), 10);
  ASSERT_TRUE(iterations.ok());

  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto residual = engine.Detect(nadeef_table, *ParseRule(rule_text));
  ASSERT_TRUE(residual.ok());
  EXPECT_TRUE(residual->violations.empty());
}

TEST(Nadeef, Arity1RuleSupported) {
  Table t(Schema({"salary"}));
  t.AppendRow({Value(static_cast<int64_t>(-5))});
  t.AppendRow({Value(static_cast<int64_t>(10))});
  auto nadeef = NadeefDetect(t, *ParseRule("chk: CHECK: t1.salary < 0"));
  ASSERT_TRUE(nadeef.ok());
  EXPECT_EQ(nadeef->violations.size(), 1u);
  EXPECT_EQ(nadeef->detect_calls, 2u);
}

}  // namespace
}  // namespace bigdansing
