#include "dataflow/mapreduce.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/rule_engine.h"
#include "data/storage.h"
#include "data/csv.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

TEST(RowSerialization, RoundTrip) {
  Row row(42, {Value(static_cast<int64_t>(7)), Value(2.5), Value("abc"),
               Value::Null()});
  row.set_source_columns({3, 1, 0, 2});
  auto back = DeserializeRow(SerializeRow(row));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, row);
  EXPECT_EQ(back->source_columns(), row.source_columns());
}

TEST(RowSerialization, RejectsGarbage) {
  EXPECT_FALSE(DeserializeRow("").ok());
  EXPECT_FALSE(DeserializeRow("xy").ok());
  Row row(1, {Value("x")});
  std::string buffer = SerializeRow(row);
  EXPECT_FALSE(DeserializeRow(buffer.substr(0, buffer.size() - 2)).ok());
}

TEST(MapReduce, WordCount) {
  // The canonical job: counts per word, exercised across splits/reducers.
  std::vector<std::string> input = {"a", "b", "a", "c", "a", "b"};
  ExecutionContext ctx(4);
  MapReduceJob job(
      &ctx,
      [](const std::string& record,
         std::vector<std::pair<std::string, std::string>>* out) {
        out->emplace_back(record, "1");
      },
      [](const std::string& key, const std::vector<std::string>& values,
         std::vector<std::string>* out) {
        out->push_back(key + "=" + std::to_string(values.size()));
      },
      /*num_reducers=*/3);
  auto output = job.Run(input);
  std::sort(output.begin(), output.end());
  EXPECT_EQ(output, (std::vector<std::string>{"a=3", "b=2", "c=1"}));
  EXPECT_GT(job.shuffle_bytes(), 0u);
}

TEST(MapReduce, EmptyInput) {
  ExecutionContext ctx(2);
  MapReduceJob job(
      &ctx,
      [](const std::string&, std::vector<std::pair<std::string, std::string>>*) {},
      [](const std::string&, const std::vector<std::string>&,
         std::vector<std::string>*) {});
  EXPECT_TRUE(job.Run({}).empty());
}

TEST(MapReduce, MapMayDropOrMultiplyRecords) {
  std::vector<std::string> input = {"keep", "drop", "double"};
  ExecutionContext ctx(2);
  MapReduceJob job(
      &ctx,
      [](const std::string& record,
         std::vector<std::pair<std::string, std::string>>* out) {
        if (record == "drop") return;
        out->emplace_back(record, "v");
        if (record == "double") out->emplace_back(record, "v2");
      },
      [](const std::string& key, const std::vector<std::string>& values,
         std::vector<std::string>* out) {
        out->push_back(key + ":" + std::to_string(values.size()));
      });
  auto output = job.Run(input);
  std::sort(output.begin(), output.end());
  EXPECT_EQ(output, (std::vector<std::string>{"double:2", "keep:1"}));
}

TEST(MapReduceDetect, FdMatchesInMemoryEngine) {
  auto data = GenerateTaxA(4000, 0.1, 41);
  auto rule_text = "phi1: FD: zipcode -> city";
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto reference = engine.Detect(data.dirty, *ParseRule(rule_text));
  ASSERT_TRUE(reference.ok());

  auto mr = MapReduceDetect(&ctx, data.dirty, *ParseRule(rule_text));
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();
  EXPECT_EQ(mr->violations, reference->violations.size());
  EXPECT_GT(mr->shuffle_bytes, 0u);
}

TEST(MapReduceDetect, DeterministicAcrossWorkerCounts) {
  auto data = GenerateTaxA(1500, 0.1, 42);
  auto run = [&](size_t workers) {
    ExecutionContext ctx(workers);
    auto mr = MapReduceDetect(&ctx, data.dirty,
                              *ParseRule("phi1: FD: zipcode -> city"));
    EXPECT_TRUE(mr.ok());
    auto rendered = mr->rendered;
    std::sort(rendered.begin(), rendered.end());
    return rendered;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(MapReduceDetect, RejectsRulesWithoutBlocking) {
  auto data = GenerateTaxB(100, 0.1, 43);
  ExecutionContext ctx(2);
  auto mr = MapReduceDetect(
      &ctx, data.dirty,
      *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate"));
  EXPECT_FALSE(mr.ok());
  EXPECT_EQ(mr.status().code(), StatusCode::kUnimplemented);
}

TEST(MapReduceDetect, AsymmetricBlockedDcProbesBothOrientations) {
  // DC with a blocking equality and an asymmetric residual: results must
  // match the in-memory engine, which probes both orientations.
  const char* csv =
      "zipcode,salary,rate\n"
      "1,100,9\n"
      "1,200,5\n"
      "2,100,9\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule_text =
      "d: DC: t1.zipcode = t2.zipcode & t1.salary < t2.salary & "
      "t1.rate > t2.rate";
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto reference = engine.Detect(*table, *ParseRule(rule_text));
  ASSERT_TRUE(reference.ok());
  auto mr = MapReduceDetect(&ctx, *table, *ParseRule(rule_text));
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();
  EXPECT_EQ(mr->violations, reference->violations.size());
  EXPECT_EQ(mr->violations, 1u);
}

}  // namespace
}  // namespace bigdansing
