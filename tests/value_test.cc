#include "data/value.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace bigdansing {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(Value, TypedConstructors) {
  EXPECT_TRUE(Value(static_cast<int64_t>(42)).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
  EXPECT_TRUE(Value(static_cast<int64_t>(1)).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
}

TEST(Value, ParseSniffsTypes) {
  EXPECT_EQ(Value::Parse("42").type(), ValueType::kInt);
  EXPECT_EQ(Value::Parse("-17").type(), ValueType::kInt);
  EXPECT_EQ(Value::Parse("3.14").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("1e3").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("abc").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse("12ab").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse("").type(), ValueType::kNull);
  EXPECT_EQ(Value::Parse("   ").type(), ValueType::kNull);
  EXPECT_EQ(Value::Parse("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::Parse("3.14").as_double(), 3.14);
}

TEST(Value, ParseOverflowFallsBackToString) {
  // Larger than int64 range.
  Value v = Value::Parse("99999999999999999999999999");
  EXPECT_TRUE(v.is_string());
}

TEST(Value, CrossNumericEquality) {
  EXPECT_EQ(Value(static_cast<int64_t>(1)), Value(1.0));
  EXPECT_EQ(Value(static_cast<int64_t>(1)).Hash(), Value(1.0).Hash());
  EXPECT_NE(Value(static_cast<int64_t>(1)), Value(1.5));
}

TEST(Value, TotalOrderNullNumericString) {
  Value null = Value::Null();
  Value num = Value(static_cast<int64_t>(5));
  Value str = Value("5");
  EXPECT_LT(null, num);
  EXPECT_LT(num, str);
  EXPECT_LT(null, str);
}

TEST(Value, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_GT(Value("b"), Value("aaaa"));
}

TEST(Value, ToStringRoundTripsThroughParse) {
  for (const Value& v :
       {Value(static_cast<int64_t>(-7)), Value(2.5), Value("hello"),
        Value::Null(), Value(static_cast<int64_t>(0))}) {
    EXPECT_EQ(Value::Parse(v.ToString()), v) << v.ToString();
  }
}

TEST(Value, AsNumberWidens) {
  EXPECT_DOUBLE_EQ(Value(static_cast<int64_t>(3)).AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Value("x").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().AsNumber(), 0.0);
}

class ValueOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderProperty, CompareIsAntisymmetricAndTransitive) {
  // A fixed pool of mixed-type values; every pair/triple must satisfy the
  // total-order axioms.
  std::vector<Value> pool = {
      Value::Null(),       Value(static_cast<int64_t>(-3)),
      Value(0.0),          Value(static_cast<int64_t>(0)),
      Value(7.25),         Value(static_cast<int64_t>(100)),
      Value(""),           Value("a"),
      Value("abc"),        Value("z"),
  };
  int salt = GetParam();
  std::rotate(pool.begin(), pool.begin() + salt % pool.size(), pool.end());
  for (const auto& a : pool) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const auto& b : pool) {
      int ab = a.Compare(b);
      int ba = b.Compare(a);
      EXPECT_EQ(ab > 0, ba < 0);
      EXPECT_EQ(ab == 0, ba == 0);
      if (ab == 0) EXPECT_EQ(a.Hash(), b.Hash());
      for (const auto& c : pool) {
        if (ab <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rotations, ValueOrderProperty,
                         ::testing::Range(0, 5));

TEST(Value, HashIsStableAcrossRuns) {
  // Pinned values guard against accidental hash-function changes, which
  // would silently re-partition persisted experiment data.
  EXPECT_EQ(Value("").Hash(), StableHashBytes(""));
  EXPECT_EQ(Value(static_cast<int64_t>(1)).Hash(), StableHashUint64(1));
}

}  // namespace
}  // namespace bigdansing
