#include <gtest/gtest.h>

#include <algorithm>

#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "data/csv.h"
#include "repair/blackbox.h"
#include "repair/connected_components.h"
#include "repair/equivalence_class.h"
#include "repair/hypergraph.h"
#include "repair/hypergraph_repair.h"
#include "repair/partitioner.h"
#include "repair/quality.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

Cell MakeTestCell(RowId row, size_t col, Value v) {
  Cell c;
  c.ref = CellRef{row, col};
  c.attribute = "a" + std::to_string(col);
  c.value = std::move(v);
  return c;
}

ViolationWithFixes EqViolation(RowId r1, RowId r2, size_t col, Value v1,
                               Value v2) {
  ViolationWithFixes vf;
  vf.violation.rule_name = "test";
  Cell c1 = MakeTestCell(r1, col, std::move(v1));
  Cell c2 = MakeTestCell(r2, col, std::move(v2));
  vf.violation.cells = {c1, c2};
  Fix fix;
  fix.left = c1;
  fix.op = FixOp::kEq;
  fix.right = FixTerm::MakeCell(c2);
  vf.fixes = {fix};
  return vf;
}

TEST(ConnectedComponents, UnionFindBasics) {
  auto labels = UnionFindConnectedComponents({0, 1, 2, 3, 4},
                                             {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(labels.at(0), labels.at(1));
  EXPECT_EQ(labels.at(1), labels.at(2));
  EXPECT_EQ(labels.at(3), labels.at(4));
  EXPECT_NE(labels.at(0), labels.at(3));
  EXPECT_EQ(labels.at(0), 0u);
  EXPECT_EQ(labels.at(3), 3u);
}

TEST(ConnectedComponents, BspMatchesUnionFind) {
  // A chain (worst-case diameter), a star, and isolated nodes.
  std::vector<uint64_t> nodes;
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t i = 0; i < 30; ++i) nodes.push_back(i);
  for (uint64_t i = 9; i > 0; --i) edges.emplace_back(i, i - 1);  // Chain 0-9.
  for (uint64_t i = 11; i < 20; ++i) edges.emplace_back(10, i);   // Star.
  // 20..29 isolated.
  ExecutionContext ctx(4);
  auto bsp = BspConnectedComponents(&ctx, nodes, edges);
  auto uf = UnionFindConnectedComponents(nodes, edges);
  ASSERT_EQ(bsp.size(), uf.size());
  for (const auto& [node, label] : uf) {
    EXPECT_EQ(bsp.at(node), label) << "node " << node;
  }
}

TEST(Hypergraph, GroupsEdgesByComponent) {
  std::vector<ViolationWithFixes> violations;
  violations.push_back(EqViolation(0, 1, 2, Value("a"), Value("b")));
  violations.push_back(EqViolation(1, 2, 2, Value("b"), Value("a")));
  violations.push_back(EqViolation(5, 6, 2, Value("x"), Value("y")));
  ViolationHypergraph graph(violations);
  EXPECT_EQ(graph.num_edges(), 3u);
  EXPECT_EQ(graph.num_nodes(), 5u);
  auto groups = graph.ConnectedComponentGroups();
  ASSERT_EQ(groups.size(), 2u);
  // First two violations share cell (1,2).
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
}

TEST(EquivalenceClass, MajorityWins) {
  // Cells (0,2)="LA", (1,2)="LA", (2,2)="SF" all equated.
  std::vector<ViolationWithFixes> violations;
  violations.push_back(EqViolation(0, 2, 2, Value("LA"), Value("SF")));
  violations.push_back(EqViolation(1, 2, 2, Value("LA"), Value("SF")));
  std::vector<const ViolationWithFixes*> edges;
  for (const auto& v : violations) edges.push_back(&v);
  EquivalenceClassAlgorithm ec;
  auto assignments = ec.RepairComponent(edges);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].cell, (CellRef{2, 2}));
  EXPECT_EQ(assignments[0].value, Value("LA"));
}

TEST(EquivalenceClass, ConstantFixesVote) {
  std::vector<ViolationWithFixes> violations;
  ViolationWithFixes vf;
  Cell c = MakeTestCell(0, 1, Value("bad"));
  vf.violation.cells = {c};
  Fix f1;
  f1.left = c;
  f1.op = FixOp::kEq;
  f1.right = FixTerm::MakeConstant(Value("good"));
  Fix f2 = f1;  // Same constant proposed twice: must count once.
  vf.fixes = {f1, f2};
  violations.push_back(vf);
  // A second violation adds another vote for "good" from a different fix
  // on the same component via a linked cell.
  ViolationWithFixes vf2;
  Cell c2 = MakeTestCell(1, 1, Value("good"));
  vf2.violation.cells = {c, c2};
  Fix f3;
  f3.left = c;
  f3.op = FixOp::kEq;
  f3.right = FixTerm::MakeCell(c2);
  vf2.fixes = {f3};
  violations.push_back(vf2);

  std::vector<const ViolationWithFixes*> edges;
  for (const auto& v : violations) edges.push_back(&v);
  EquivalenceClassAlgorithm ec;
  auto assignments = ec.RepairComponent(edges);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].cell, (CellRef{0, 1}));
  EXPECT_EQ(assignments[0].value, Value("good"));
}

TEST(EquivalenceClass, DistributedMatchesCentralized) {
  // Several components with clear majorities.
  std::vector<ViolationWithFixes> violations;
  violations.push_back(EqViolation(0, 1, 2, Value("NY"), Value("XX")));
  violations.push_back(EqViolation(0, 2, 2, Value("NY"), Value("NY")));
  violations.push_back(EqViolation(10, 11, 3, Value("CA"), Value("YY")));
  violations.push_back(EqViolation(10, 12, 3, Value("CA"), Value("CA")));

  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(3);
  BlackBoxOptions options;
  auto parallel = BlackBoxRepair(&ctx, violations, ec, options);
  auto distributed = DistributedEquivalenceClassRepair(&ctx, violations);

  auto sort_assignments = [](std::vector<CellAssignment> v) {
    std::sort(v.begin(), v.end(),
              [](const CellAssignment& a, const CellAssignment& b) {
                return a.cell < b.cell;
              });
    return v;
  };
  EXPECT_EQ(sort_assignments(parallel.applied),
            sort_assignments(distributed));
  EXPECT_EQ(parallel.num_components, 2u);
}

TEST(HypergraphRepair, ResolvesInequalityViolation) {
  // Violation: t0.rate(=20) > t1.rate(=10) while t0.salary < t1.salary.
  // Fixes: t0.rate <= t1.rate OR t0.salary >= t1.salary.
  ViolationWithFixes vf;
  Cell rate0 = MakeTestCell(0, 5, Value(static_cast<int64_t>(20)));
  Cell rate1 = MakeTestCell(1, 5, Value(static_cast<int64_t>(10)));
  Cell sal0 = MakeTestCell(0, 4, Value(static_cast<int64_t>(100)));
  Cell sal1 = MakeTestCell(1, 4, Value(static_cast<int64_t>(200)));
  vf.violation.cells = {rate0, rate1, sal0, sal1};
  Fix f1;
  f1.left = rate0;
  f1.op = FixOp::kLeq;
  f1.right = FixTerm::MakeCell(rate1);
  Fix f2;
  f2.left = sal0;
  f2.op = FixOp::kGeq;
  f2.right = FixTerm::MakeCell(sal1);
  vf.fixes = {f1, f2};

  HypergraphRepairAlgorithm hg;
  auto assignments = hg.RepairComponent({&vf});
  ASSERT_FALSE(assignments.empty());
  // Verify the assignment actually resolves the violation.
  std::unordered_map<CellRef, Value, CellRefHash> values = {
      {rate0.ref, rate0.value},
      {rate1.ref, rate1.value},
      {sal0.ref, sal0.value},
      {sal1.ref, sal1.value}};
  for (const auto& a : assignments) values[a.cell] = a.value;
  bool resolved = values[rate0.ref] <= values[rate1.ref] ||
                  values[sal0.ref] >= values[sal1.ref];
  EXPECT_TRUE(resolved);
}

TEST(Partitioner, BalancedAndComplete) {
  std::vector<std::vector<uint64_t>> edges;
  for (uint64_t i = 0; i < 100; ++i) {
    edges.push_back({i, i + 1, i + 2});
  }
  auto assignment = GreedyKWayPartition(edges, 4);
  ASSERT_EQ(assignment.size(), edges.size());
  std::vector<size_t> load(4, 0);
  for (size_t p : assignment) {
    ASSERT_LT(p, 4u);
    ++load[p];
  }
  for (size_t l : load) {
    EXPECT_GT(l, 0u);
    EXPECT_LT(l, 60u);  // No part hogs everything.
  }
  EXPECT_GT(CountCutNodes(edges, assignment), 0u);  // A chain must be cut.
  // Connectivity heuristic keeps the cut modest: at most one boundary per
  // part transition region (2 shared nodes each).
  EXPECT_LT(CountCutNodes(edges, assignment), 40u);
}

TEST(BlackBox, SplitComponentProtocolUndoesConflicts) {
  // One big chain component forced to split: cells 0..N linked by eq fixes.
  std::vector<ViolationWithFixes> violations;
  for (RowId i = 0; i < 40; ++i) {
    violations.push_back(
        EqViolation(i, i + 1, 0, Value("v" + std::to_string(i % 3)),
                    Value("v" + std::to_string((i + 1) % 3))));
  }
  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(4);
  BlackBoxOptions options;
  options.max_component_edges = 10;  // Force the k-way split.
  options.kway_parts = 4;
  auto result = BlackBoxRepair(&ctx, violations, ec, options);
  EXPECT_EQ(result.num_components, 1u);
  EXPECT_EQ(result.num_split_components, 1u);
  EXPECT_FALSE(result.applied.empty());
  // No applied assignment may target the same cell twice (master immunity).
  std::set<std::pair<RowId, size_t>> cells;
  for (const auto& a : result.applied) {
    EXPECT_TRUE(cells.insert({a.cell.row_id, a.cell.column}).second)
        << "cell repaired twice: " << a.cell.ToString();
  }
}

TEST(BlackBox, BspAndUnionFindComponentsAgree) {
  std::vector<ViolationWithFixes> violations;
  violations.push_back(EqViolation(0, 1, 2, Value("a"), Value("b")));
  violations.push_back(EqViolation(2, 3, 2, Value("c"), Value("d")));
  violations.push_back(EqViolation(3, 4, 2, Value("d"), Value("c")));
  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(2);
  BlackBoxOptions uf_options;
  BlackBoxOptions bsp_options;
  bsp_options.use_bsp_connected_components = true;
  auto a = BlackBoxRepair(&ctx, violations, ec, uf_options);
  auto b = BlackBoxRepair(&ctx, violations, ec, bsp_options);
  EXPECT_EQ(a.num_components, b.num_components);
  auto key = [](std::vector<CellAssignment> v) {
    std::sort(v.begin(), v.end(),
              [](const CellAssignment& x, const CellAssignment& y) {
                return x.cell < y.cell;
              });
    return v;
  };
  EXPECT_EQ(key(a.applied), key(b.applied));
}

TEST(CleanEndToEnd, FdRepairReachesCleanInstance) {
  // 90210 block: LA, LA, LA, SF — majority repairs SF to LA.
  const char* csv =
      "zipcode,city\n"
      "90210,LA\n"
      "90210,LA\n"
      "90210,LA\n"
      "90210,SF\n"
      "10011,NY\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule = ParseRule("fd: FD: zipcode -> city");
  ASSERT_TRUE(rule.ok());
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  Table working = *table;
  auto report = system.Clean(&working, {*rule});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->converged);
  EXPECT_EQ(working.row(3).value(1), Value("LA"));
  // Final state has no violations.
  RuleEngine engine(&ctx);
  auto final_check = engine.Detect(working, *rule);
  ASSERT_TRUE(final_check.ok());
  EXPECT_TRUE(final_check->violations.empty());
}

TEST(CleanEndToEnd, DistributedEcModeMatchesBlackBox) {
  const char* csv =
      "zipcode,city\n"
      "90210,LA\n"
      "90210,LA\n"
      "90210,SF\n"
      "60601,CH\n"
      "60601,CH\n"
      "60601,XX\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(table.ok());
  ExecutionContext ctx(2);
  auto rule = *ParseRule("fd: FD: zipcode -> city");

  Table a = *table;
  CleanOptions opt_a;
  BigDansing(&ctx, opt_a).Clean(&a, {rule});

  Table b = *table;
  CleanOptions opt_b;
  opt_b.repair_mode = RepairMode::kDistributedEquivalenceClass;
  BigDansing(&ctx, opt_b).Clean(&b, {rule});

  EXPECT_EQ(a, b);
  EXPECT_EQ(a.row(2).value(1), Value("LA"));
  EXPECT_EQ(a.row(5).value(1), Value("CH"));
}

TEST(Quality, PrecisionRecallComputation) {
  auto dirty = ReadCsvString("a,b\n1,x\n2,y\n3,z\n", CsvOptions{});
  auto truth = ReadCsvString("a,b\n1,X\n2,Y\n3,z\n", CsvOptions{});
  // Repair fixes row 0 correctly, row 1 wrongly, and touches row 2
  // needlessly.
  auto repaired = ReadCsvString("a,b\n1,X\n2,W\n3,q\n", CsvOptions{});
  ASSERT_TRUE(dirty.ok() && truth.ok() && repaired.ok());
  auto q = EvaluateRepair(*dirty, *repaired, *truth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->errors, 2u);
  EXPECT_EQ(q->updates, 3u);
  EXPECT_EQ(q->correct_updates, 1u);
  EXPECT_NEAR(q->precision, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(q->recall, 0.5, 1e-9);
}

}  // namespace
}  // namespace bigdansing
