// Failure-injection and edge-case tests: malformed UDF output, fixes
// pointing at missing rows, degenerate tables, and adversarial repair
// inputs must degrade gracefully (skipped work, Status errors), never
// crash or corrupt unrelated data.
#include <gtest/gtest.h>

#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "data/csv.h"
#include "repair/blackbox.h"
#include "repair/equivalence_class.h"
#include "repair/hypergraph.h"
#include "repair/hypergraph_repair.h"
#include "rules/parser.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

Cell MakeTestCell(RowId row, size_t col, Value v) {
  Cell c;
  c.ref = CellRef{row, col};
  c.attribute = "a" + std::to_string(col);
  c.value = std::move(v);
  return c;
}

TEST(Robustness, ApplyAssignmentsIgnoresMissingRowsAndColumns) {
  auto table = ReadCsvString("a,b\n1,x\n2,y\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  std::vector<CellAssignment> assignments = {
      {CellRef{99, 0}, Value("ghost")},   // No such row.
      {CellRef{0, 17}, Value("ghost")},   // No such column.
      {CellRef{1, 1}, Value("z")},        // Valid.
  };
  size_t changed = ApplyAssignments(&*table, assignments, nullptr);
  EXPECT_EQ(changed, 1u);
  EXPECT_EQ(table->row(1).value(1), Value("z"));
  EXPECT_EQ(table->row(0).value(1), Value("x"));  // Untouched.
}

TEST(Robustness, ApplyAssignmentsRespectsFrozenCells) {
  auto table = ReadCsvString("a\nx\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  std::unordered_set<CellRef, CellRefHash> frozen = {CellRef{0, 0}};
  std::vector<CellAssignment> assignments = {{CellRef{0, 0}, Value("y")}};
  EXPECT_EQ(ApplyAssignments(&*table, assignments, &frozen), 0u);
  EXPECT_EQ(table->row(0).value(0), Value("x"));
}

TEST(Robustness, ViolationWithoutFixesIsCarriedNotRepaired) {
  // A UDF rule that reports violations but proposes no fixes: the cleanse
  // loop must terminate ("violations with no possible fixes") without
  // changing the data.
  auto table = ReadCsvString("a\n1\n2\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule = std::make_shared<UdfRule>("no-fixes");
  rule->set_symmetric(true).set_detect(
      [](const Schema& schema, const Row& a, const Row& b,
         std::vector<Violation>* out) {
        Violation v;
        v.rule_name = "no-fixes";
        v.cells.push_back(UdfRule::MakeUdfCell(a, 0, schema));
        out->push_back(std::move(v));
      });
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  Table working = *table;
  auto report = system.Clean(&working, {rule});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(working, *table);
  EXPECT_LE(report->num_iterations(), 2u);
}

TEST(Robustness, EmptyViolationListFromRepairAlgorithms) {
  EquivalenceClassAlgorithm ec;
  HypergraphRepairAlgorithm hg;
  EXPECT_TRUE(ec.RepairComponent({}).empty());
  EXPECT_TRUE(hg.RepairComponent({}).empty());
  ExecutionContext ctx(2);
  auto result = BlackBoxRepair(&ctx, {}, ec, BlackBoxOptions());
  EXPECT_TRUE(result.applied.empty());
  EXPECT_EQ(result.num_components, 0u);
  EXPECT_TRUE(DistributedEquivalenceClassRepair(&ctx, {}).empty());
}

TEST(Robustness, HypergraphRepairWithContradictoryFixes) {
  // x = "a" and x = "b" simultaneously: the algorithm must terminate and
  // pick one (majority/deterministic), not loop.
  ViolationWithFixes vf;
  Cell x = MakeTestCell(0, 0, Value("dirty"));
  vf.violation.cells = {x};
  Fix f1;
  f1.left = x;
  f1.op = FixOp::kEq;
  f1.right = FixTerm::MakeConstant(Value("a"));
  Fix f2 = f1;
  f2.right = FixTerm::MakeConstant(Value("b"));
  vf.fixes = {f1, f2};
  HypergraphRepairAlgorithm hg;
  auto assignments = hg.RepairComponent({&vf});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_TRUE(assignments[0].value == Value("a") ||
              assignments[0].value == Value("b"));
}

TEST(Robustness, HypergraphRepairInfeasibleBoundsTerminates) {
  // x > 10 and x < 5 cannot both hold; repair must not loop forever.
  ViolationWithFixes vf;
  Cell x = MakeTestCell(0, 0, Value(static_cast<int64_t>(7)));
  vf.violation.cells = {x};
  Fix f1;
  f1.left = x;
  f1.op = FixOp::kGt;
  f1.right = FixTerm::MakeConstant(Value(static_cast<int64_t>(10)));
  Fix f2;
  f2.left = x;
  f2.op = FixOp::kLt;
  f2.right = FixTerm::MakeConstant(Value(static_cast<int64_t>(5)));
  ViolationWithFixes both;
  both.violation.cells = {x};
  both.fixes = {f1, f2};
  HypergraphRepairAlgorithm hg;
  auto assignments = hg.RepairComponent({&both});
  // Either fix alone satisfies the violation (fixes are alternatives), so
  // some assignment resolving it must come back.
  ASSERT_EQ(assignments.size(), 1u);
  double v = assignments[0].value.AsNumber();
  EXPECT_TRUE(v > 10 || v < 5) << v;
}

TEST(Robustness, SingleRowTableHasNoPairViolations) {
  auto table = ReadCsvString("zipcode,city\n90210,LA\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, *ParseRule("f: FD: zipcode -> city"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->violations.empty());
  EXPECT_EQ(result->detect_calls, 0u);
}

TEST(Robustness, AllNullBlockingColumnDetectsNothing) {
  auto table = ReadCsvString("zipcode,city\n,LA\n,SF\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, *ParseRule("f: FD: zipcode -> city"));
  ASSERT_TRUE(result.ok());
  // Null blocking keys exclude the rows from every block (an FD cannot be
  // witnessed through null LHS values).
  EXPECT_TRUE(result->violations.empty());
}

TEST(Robustness, RuleReferencingMissingAttributeFailsCleanly) {
  auto table = ReadCsvString("a,b\n1,2\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto result = engine.Detect(*table, *ParseRule("f: FD: nope -> b"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // Multi-rule: one bad rule fails the batch before any work.
  DetectRequest request;
  request.table = &*table;
  request.rules = {*ParseRule("g: FD: a -> b"), *ParseRule("f: FD: nope -> b")};
  auto batch = engine.Detect(request);
  EXPECT_FALSE(batch.ok());
}

TEST(Robustness, UdfDetectProducingMalformedViolationIsTolerated) {
  // A violation with zero cells: the hypergraph drops the empty hyperedge
  // and repair proceeds on the rest.
  ViolationWithFixes empty;
  empty.violation.rule_name = "weird";
  ViolationWithFixes good;
  Cell a = MakeTestCell(0, 0, Value("x"));
  Cell b = MakeTestCell(1, 0, Value("y"));
  good.violation.cells = {a, b};
  Fix fix;
  fix.left = a;
  fix.op = FixOp::kEq;
  fix.right = FixTerm::MakeCell(b);
  good.fixes = {fix};
  std::vector<ViolationWithFixes> violations = {empty, good};
  ViolationHypergraph graph(violations);
  EXPECT_EQ(graph.num_edges(), 2u);
  auto groups = graph.ConnectedComponentGroups();
  // The empty edge belongs to no component; the good one forms one.
  size_t edges_in_groups = 0;
  for (const auto& g : groups) edges_in_groups += g.size();
  EXPECT_EQ(edges_in_groups, 1u);
  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(2);
  auto result = BlackBoxRepair(&ctx, violations, ec, BlackBoxOptions());
  EXPECT_EQ(result.applied.size(), 1u);
}

TEST(Robustness, DistributedEcIgnoresNonEqualityFixes) {
  // Only inequality fixes: the distributed EC has nothing to do.
  ViolationWithFixes vf;
  Cell a = MakeTestCell(0, 0, Value(static_cast<int64_t>(1)));
  Cell b = MakeTestCell(1, 0, Value(static_cast<int64_t>(2)));
  vf.violation.cells = {a, b};
  Fix fix;
  fix.left = a;
  fix.op = FixOp::kLt;
  fix.right = FixTerm::MakeCell(b);
  vf.fixes = {fix};
  ExecutionContext ctx(2);
  EXPECT_TRUE(DistributedEquivalenceClassRepair(&ctx, {vf}).empty());
}

TEST(Robustness, CleanWithNoRulesConvergesImmediately) {
  auto table = ReadCsvString("a\n1\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  Table working = *table;
  auto report = system.Clean(&working, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_EQ(working, *table);
}

}  // namespace
}  // namespace bigdansing
