// Observability tests: the TraceRecorder span hierarchy, Chrome-trace and
// EXPLAIN exports, JSON escaping, stage-handle lifecycle across Reset(),
// task-skew quantiles, and the BD_LOG_LEVEL wiring. JSON outputs are
// checked with the shared strict mini parser (strict_json_test_util.h) so
// a malformed emitter cannot hide behind substring assertions.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "dataflow/dataset.h"
#include "rules/parser.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

/// RAII guard: enables the recorder for one test and restores the
/// disabled-and-empty state afterwards so tests stay order-independent.
struct TracingOn {
  TracingOn() {
    TraceRecorder::Instance().Clear();
    TraceRecorder::Instance().set_enabled(true);
  }
  ~TracingOn() {
    TraceRecorder::Instance().set_enabled(false);
    TraceRecorder::Instance().Clear();
  }
};

// ---------------------------------------------------------------------------
// The parser itself must be strict, or the emitter tests prove nothing.
// ---------------------------------------------------------------------------

TEST(StrictJson, AcceptsValidDocuments) {
  JsonValue v;
  EXPECT_TRUE(ParsesStrictly("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":\"x\"},"
                             "\"d\":true,\"e\":null}",
                             &v));
  ASSERT_EQ(v.kind, JsonValue::kObject);
  ASSERT_NE(v.Find("a"), nullptr);
  EXPECT_EQ(v.Find("a")->array.size(), 3u);
  EXPECT_EQ(v.Find("b")->Find("c")->str, "x");
}

TEST(StrictJson, RejectsTrailingCommasAndBadEscapes) {
  JsonValue v;
  EXPECT_FALSE(ParsesStrictly("[1,2,]", &v));
  EXPECT_FALSE(ParsesStrictly("{\"a\":1,}", &v));
  EXPECT_FALSE(ParsesStrictly("\"\\x\"", &v));
  EXPECT_FALSE(ParsesStrictly("\"\\u12g4\"", &v));
  EXPECT_FALSE(ParsesStrictly("\"unterminated", &v));
  EXPECT_FALSE(ParsesStrictly("{\"a\":1} extra", &v));
  EXPECT_FALSE(ParsesStrictly("\"raw\ncontrol\"", &v));
}

// ---------------------------------------------------------------------------
// JsonEscape (satellite: control characters, standard escapes, round-trip).
// ---------------------------------------------------------------------------

TEST(JsonEscape, StandardEscapesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("a\bb\fc"), "a\\bb\\fc");
  // Control characters without a short escape must become \u00XX, not be
  // dropped (the old Metrics escaper silently removed them).
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("nul\0!", 5)), "nul\\u0000!");
}

TEST(JsonEscape, RoundTripsThroughStrictParser) {
  const std::string original = "line1\nline2\ttab \"quoted\" \x01\x1f\\end";
  JsonValue v;
  ASSERT_TRUE(ParsesStrictly("\"" + JsonEscape(original) + "\"", &v));
  EXPECT_EQ(v.kind, JsonValue::kString);
  EXPECT_EQ(v.str, original);
}

// ---------------------------------------------------------------------------
// Metrics: handle lifecycle across Reset(), task quantiles, strict JSON.
// ---------------------------------------------------------------------------

TEST(Metrics, ResetWhileStageOpenMakesHandleStale) {
  Metrics m;
  size_t handle = m.BeginStage("doomed", 2);
  m.Reset();
  // The stale handle must neither corrupt the new epoch's reports nor leak
  // into global counters.
  TaskContext tc;
  tc.records_in = 10;
  tc.shuffled_records = 7;
  m.AccumulateTask(handle, tc, 0.5);
  m.FinishStage(handle, 1.0);
  EXPECT_EQ(m.shuffled_records(), 0u);
  EXPECT_TRUE(m.StageReports().empty());
  EXPECT_EQ(m.StageReportFor(handle).tasks, 0u);

  // A post-Reset stage with the same index must not be hit by the old
  // handle either, even though the indices collide.
  size_t fresh = m.BeginStage("fresh", 1);
  m.AccumulateTask(handle, tc, 0.5);
  m.FinishStage(handle, 9.0);
  StageReport fresh_report = m.StageReportFor(fresh);
  EXPECT_EQ(fresh_report.records_in, 0u);
  EXPECT_EQ(fresh_report.wall_seconds, 0.0);

  // The fresh handle still works normally.
  m.AccumulateTask(fresh, tc, 0.25);
  m.FinishStage(fresh, 2.0);
  fresh_report = m.StageReportFor(fresh);
  EXPECT_EQ(fresh_report.records_in, 10u);
  EXPECT_EQ(fresh_report.wall_seconds, 2.0);
  EXPECT_EQ(m.shuffled_records(), 7u);  // One valid AccumulateTask call.
}

TEST(Metrics, TaskTimeQuantilesAndStragglerRatio) {
  Metrics m;
  size_t handle = m.BeginStage("skewed", 4);
  TaskContext tc;
  m.AccumulateTask(handle, tc, 1.0);
  m.AccumulateTask(handle, tc, 3.0);
  m.AccumulateTask(handle, tc, 2.0);
  m.AccumulateTask(handle, tc, 10.0);
  m.FinishStage(handle, 10.0);
  StageReport r = m.StageReportFor(handle);
  EXPECT_DOUBLE_EQ(r.TaskMinSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(r.TaskP50Seconds(), 2.0);  // Lower median of {1,2,3,10}.
  EXPECT_DOUBLE_EQ(r.TaskMaxSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(r.StragglerRatio(), 10.0 / 4.0);  // Mean is 4.0.

  StageReport empty;
  EXPECT_DOUBLE_EQ(empty.TaskMinSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(empty.StragglerRatio(), 0.0);
}

TEST(Metrics, ToJsonIsStrictJsonWithSkewFields) {
  ExecutionContext ctx(2);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::FromVector(&ctx, data, 2);
  ds.Filter([](const int& x) { return x < 40; }).Collect();

  JsonValue doc;
  StrictJsonParser parser(ctx.metrics().ToJson());
  ASSERT_TRUE(parser.Parse(&doc)) << parser.error();
  const JsonValue* reports = doc.Find("stage_reports");
  ASSERT_NE(reports, nullptr);
  ASSERT_EQ(reports->kind, JsonValue::kArray);
  ASSERT_EQ(reports->array.size(), 1u);
  const JsonValue& stage = reports->array[0];
  EXPECT_EQ(stage.Find("name")->str, "filter");
  EXPECT_EQ(stage.Find("records_in")->number, 100.0);
  EXPECT_EQ(stage.Find("records_out")->number, 40.0);
  ASSERT_NE(stage.Find("task_seconds_min"), nullptr);
  ASSERT_NE(stage.Find("task_seconds_p50"), nullptr);
  ASSERT_NE(stage.Find("task_seconds_max"), nullptr);
  ASSERT_NE(stage.Find("straggler_ratio"), nullptr);
  EXPECT_LE(stage.Find("task_seconds_min")->number,
            stage.Find("task_seconds_p50")->number);
  EXPECT_LE(stage.Find("task_seconds_p50")->number,
            stage.Find("task_seconds_max")->number);
  // A stage name with JSON-hostile characters must still produce valid
  // output end to end.
  ctx.metrics().Reset();
  size_t handle = ctx.metrics().BeginStage("we\"ird\nstage", 1);
  ctx.metrics().FinishStage(handle, 0.0);
  StrictJsonParser hostile(ctx.metrics().ToJson());
  ASSERT_TRUE(hostile.Parse(&doc)) << hostile.error();
  EXPECT_EQ(doc.Find("stage_reports")->array[0].Find("name")->str,
            "we\"ird\nstage");
}

// ---------------------------------------------------------------------------
// TraceRecorder core behaviour.
// ---------------------------------------------------------------------------

TEST(TraceRecorder, DisabledRecorderIsInertAndFree) {
  TraceRecorder& trace = TraceRecorder::Instance();
  trace.set_enabled(false);
  trace.Clear();
  EXPECT_EQ(trace.Begin("x", "job", 0), 0u);
  {
    ScopedSpan span("y", "stage");
    EXPECT_EQ(span.id(), 0u);
    span.Annotate("k", uint64_t{1});
  }
  trace.End(0);
  trace.Annotate(0, "k", std::string("v"));
  EXPECT_EQ(trace.SpanCount(), 0u);
  EXPECT_EQ(trace.CurrentSpan(), 0u);
}

TEST(TraceRecorder, ScopedSpansNestViaThreadLocalStack) {
  TracingOn on;
  TraceRecorder& trace = TraceRecorder::Instance();
  {
    ScopedSpan job("clean", "job");
    ASSERT_NE(job.id(), 0u);
    EXPECT_EQ(trace.CurrentSpan(), job.id());
    {
      ScopedSpan rule("phi1", "rule");
      EXPECT_EQ(trace.CurrentSpan(), rule.id());
      ScopedSpan op("block", "operator");
      op.Annotate("records_in", uint64_t{42});
      auto spans = trace.Spans();
      ASSERT_EQ(spans.size(), 3u);
      EXPECT_EQ(spans[1].parent, job.id());
      EXPECT_EQ(spans[2].parent, spans[1].id);
    }
    EXPECT_EQ(trace.CurrentSpan(), job.id());
  }
  EXPECT_EQ(trace.CurrentSpan(), 0u);
  auto spans = trace.Spans();
  for (const auto& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    EXPECT_GE(s.duration_us, 0.0);
  }
  EXPECT_EQ(spans[2].args.size(), 1u);
  EXPECT_EQ(spans[2].args[0].first, "records_in");
  EXPECT_EQ(spans[2].args[0].second, "42");
}

TEST(TraceRecorder, ClearMakesOldSpanIdsStale) {
  TracingOn on;
  TraceRecorder& trace = TraceRecorder::Instance();
  uint64_t old_id = trace.Begin("stale", "stage", 0);
  ASSERT_NE(old_id, 0u);
  trace.Clear();
  uint64_t fresh = trace.Begin("fresh", "stage", 0);
  // Operations on the pre-Clear id must not touch the new span, even
  // though the underlying vector slot is reused.
  trace.Annotate(old_id, "poison", std::string("yes"));
  trace.End(old_id);
  auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "fresh");
  EXPECT_TRUE(spans[0].args.empty());
  EXPECT_TRUE(spans[0].open);
  trace.End(fresh);
}

TEST(TraceRecorder, ChromeTraceExportIsStrictJson) {
  TracingOn on;
  TraceRecorder& trace = TraceRecorder::Instance();
  {
    ScopedSpan job("detect", "job");
    ScopedSpan stage("scope|block \"x\"", "stage");
    ScopedSpan task("scope|block#0", "task", stage.id(), /*lane=*/2);
    task.Annotate("note", std::string("line1\nline2"));
  }
  JsonValue doc;
  StrictJsonParser parser(trace.ToChromeTraceJson());
  ASSERT_TRUE(parser.Parse(&doc)) << parser.error();
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  size_t metadata = 0;
  size_t complete = 0;
  bool saw_worker_lane = false;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Find("ph")->str;
    if (ph == "M") {
      ++metadata;
      if (e.Find("args")->Find("name")->str == "worker-2") {
        saw_worker_lane = true;
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("dur"), nullptr);
    EXPECT_NE(e.Find("args")->Find("span_id"), nullptr);
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_GE(metadata, 2u);  // driver + worker-2 lanes.
  EXPECT_TRUE(saw_worker_lane);
}

// ---------------------------------------------------------------------------
// End-to-end: the engine's span hierarchy and EXPLAIN reconciliation.
// ---------------------------------------------------------------------------

TEST(TraceIntegration, DetectProducesJobRuleOperatorStageTaskHierarchy) {
  TracingOn on;
  auto data = GenerateTaxA(300, 0.05, /*seed=*/11);
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto detection =
      engine.Detect(data.dirty, *ParseRule("phi1: FD: zipcode -> city"));
  ASSERT_TRUE(detection.ok());

  auto spans = TraceRecorder::Instance().Spans();
  std::map<std::string, size_t> by_category;
  for (const auto& s : spans) ++by_category[s.category];
  EXPECT_EQ(by_category["job"], 1u);
  EXPECT_EQ(by_category["rule"], 1u);
  EXPECT_GE(by_category["operator"], 1u);
  EXPECT_GE(by_category["stage"], 1u);
  EXPECT_GE(by_category["task"], 1u);

  // Every span closed, and the chain task -> stage -> ... -> job is intact.
  std::map<uint64_t, const TraceSpan*> by_id;
  for (const auto& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    by_id[s.id] = &s;
  }
  for (const auto& s : spans) {
    if (s.category == "job") {
      EXPECT_EQ(s.parent, 0u);
      continue;
    }
    ASSERT_NE(by_id.count(s.parent), 0u) << s.name << " has dangling parent";
    if (s.category == "task") {
      EXPECT_EQ(by_id[s.parent]->category, "stage") << s.name;
      EXPECT_GE(s.lane, 0) << s.name;
    }
  }

  // The Chrome export of a real run must still be strict JSON.
  JsonValue doc;
  StrictJsonParser parser(TraceRecorder::Instance().ToChromeTraceJson());
  ASSERT_TRUE(parser.Parse(&doc)) << parser.error();
}

TEST(TraceIntegration, ExplainReconcilesWithStageReports) {
  TracingOn on;
  auto data = GenerateTaxA(300, 0.05, /*seed=*/11);
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  ASSERT_TRUE(
      engine.Detect(data.dirty, *ParseRule("phi1: FD: zipcode -> city")).ok());

  // Stage spans are begun on the driver thread in execution order, so they
  // correspond 1:1, in order, with Metrics::StageReports().
  auto reports = ctx.metrics().StageReports();
  std::vector<TraceSpan> stage_spans;
  for (const auto& s : TraceRecorder::Instance().Spans()) {
    if (s.category == "stage") stage_spans.push_back(s);
  }
  ASSERT_EQ(stage_spans.size(), reports.size());
  ASSERT_FALSE(reports.empty());

  auto arg = [](const TraceSpan& s, const std::string& key) -> std::string {
    for (const auto& [k, v] : s.args) {
      if (k == key) return v;
    }
    return "<missing>";
  };
  char buf[32];
  for (size_t i = 0; i < reports.size(); ++i) {
    const StageReport& r = reports[i];
    const TraceSpan& s = stage_spans[i];
    EXPECT_EQ(s.name, r.name);
    EXPECT_EQ(arg(s, "tasks"), std::to_string(r.tasks)) << r.name;
    EXPECT_EQ(arg(s, "records_in"), std::to_string(r.records_in)) << r.name;
    EXPECT_EQ(arg(s, "records_out"), std::to_string(r.records_out)) << r.name;
    EXPECT_EQ(arg(s, "shuffled_records"), std::to_string(r.shuffled_records))
        << r.name;
    std::snprintf(buf, sizeof(buf), "%.6f", r.busy_seconds);
    EXPECT_EQ(arg(s, "busy_seconds"), buf) << r.name;
    std::snprintf(buf, sizeof(buf), "%.6f", r.StragglerRatio());
    EXPECT_EQ(arg(s, "straggler_ratio"), buf) << r.name;
  }

  // And the rendered tree carries those reconciled numbers.
  std::string tree = TraceRecorder::Instance().ExplainTree();
  EXPECT_NE(tree.find("EXPLAIN (runtime)"), std::string::npos);
  EXPECT_NE(tree.find("[job] detect"), std::string::npos);
  EXPECT_NE(tree.find("[rule] phi1"), std::string::npos);
  EXPECT_NE(tree.find("[stage] " + reports[0].name), std::string::npos);
  EXPECT_NE(tree.find("records_in=" + std::to_string(reports[0].records_in)),
            std::string::npos);
  EXPECT_EQ(tree.find("[task]"), std::string::npos)
      << "task spans must fold into their stage, not print as nodes";
}

TEST(TraceIntegration, CleanProducesPhaseSpansPerIteration) {
  TracingOn on;
  auto data = GenerateTaxA(300, 0.1, /*seed=*/3);
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok());

  size_t jobs = 0;
  size_t detect_phases = 0;
  size_t repair_phases = 0;
  uint64_t job_id = 0;
  auto spans = TraceRecorder::Instance().Spans();
  for (const auto& s : spans) {
    if (s.category == "job") {
      ++jobs;
      job_id = s.id;
      EXPECT_EQ(s.name, "clean");
    }
  }
  for (const auto& s : spans) {
    if (s.category != "phase") continue;
    EXPECT_EQ(s.parent, job_id) << s.name;
    if (s.name.rfind("detect:", 0) == 0) ++detect_phases;
    if (s.name.rfind("repair:iter", 0) == 0) ++repair_phases;
  }
  EXPECT_EQ(jobs, 1u);
  EXPECT_EQ(detect_phases, report->iterations.size());
  // Converged final iteration detects but does not repair.
  EXPECT_EQ(repair_phases, report->iterations.size() - 1);
}

// ---------------------------------------------------------------------------
// BD_LOG_LEVEL wiring (satellite).
// ---------------------------------------------------------------------------

TEST(Logging, ParseLogLevelAcceptsAllSpellings) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  level = LogLevel::kDebug;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kDebug);  // Untouched on failure.
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(Logging, InitLoggingFromEnvAppliesBdLogLevel) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.min_level();
  ::setenv("BD_LOG_LEVEL", "error", 1);
  EXPECT_TRUE(InitLoggingFromEnv());
  EXPECT_EQ(logger.min_level(), LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));

  ::setenv("BD_LOG_LEVEL", "debug", 1);
  EXPECT_TRUE(InitLoggingFromEnv());
  EXPECT_EQ(logger.min_level(), LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));

  ::setenv("BD_LOG_LEVEL", "bogus", 1);
  logger.set_min_level(LogLevel::kInfo);
  EXPECT_FALSE(InitLoggingFromEnv());
  EXPECT_EQ(logger.min_level(), LogLevel::kInfo);  // Unchanged.

  ::unsetenv("BD_LOG_LEVEL");
  EXPECT_FALSE(InitLoggingFromEnv());
  logger.set_min_level(saved);
}

}  // namespace
}  // namespace bigdansing
