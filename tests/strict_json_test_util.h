// Strict mini JSON parser shared by the observability tests (trace,
// metrics registry, lineage, bench records). Rejects trailing commas,
// unquoted keys, invalid escapes, and trailing garbage, so a malformed
// emitter cannot hide behind substring assertions. Numbers are kept as
// doubles plus raw text.
//
// Header-only (everything inline) because each *_test.cc builds into its
// own binary; the tests/ CMake glob only picks up *_test.cc, so this file
// never becomes a test target itself.
#ifndef BIGDANSING_TESTS_STRICT_JSON_TEST_UTIL_H_
#define BIGDANSING_TESTS_STRICT_JSON_TEST_UTIL_H_

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace bigdansing {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class StrictJsonParser {
 public:
  explicit StrictJsonParser(std::string text) : text_(std::move(text)) {}

  bool Parse(JsonValue* out) {
    *out = JsonValue{};
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();  // Trailing garbage is an error.
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message) {
    error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected key string");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected :");
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          return Fail("trailing comma in object");
        }
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected , or }");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          return Fail("trailing comma in array");
        }
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected , or ]");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char e = text_[pos_];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("short \\u escape");
            unsigned int code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u hex digit");
              }
            }
            pos_ += 4;
            // The emitter only produces \u00XX (control chars); decode
            // those back to bytes so round-trip tests compare equal.
            if (code > 0xFF) return Fail("unexpected wide \\u escape");
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return Fail("invalid escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Fail("bad number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    out->kind = JsonValue::kNumber;
    out->raw_number = text_.substr(start, pos_ - start);
    out->number = std::atof(out->raw_number.c_str());
    return true;
  }

  std::string text_;
  size_t pos_ = 0;
  std::string error_;
};

inline bool ParsesStrictly(const std::string& text, JsonValue* out) {
  StrictJsonParser parser(text);
  return parser.Parse(out);
}

}  // namespace bigdansing

#endif  // BIGDANSING_TESTS_STRICT_JSON_TEST_UTIL_H_
