// Repair lineage ledger tests: the disabled recorder is inert, entries
// export as strict JSON, and — the reconciliation the ledger exists for —
// a real Fig 9(a)-style FD cleanse produces per-rule and per-iteration
// applied-fix counts that exactly match the CleanReport, a JSONL file that
// re-parses line by line, and lineage-derived precision/recall identical
// to the table-diff computation.
#include "common/lineage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "repair/quality.h"
#include "rules/parser.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

/// RAII guard: enables the recorder for one test and restores the
/// disabled-and-empty state afterwards so tests stay order-independent.
struct LineageOn {
  LineageOn() {
    LineageRecorder::Instance().Clear();
    LineageRecorder::Instance().set_enabled(true);
  }
  ~LineageOn() {
    LineageRecorder::Instance().set_enabled(false);
    LineageRecorder::Instance().Clear();
  }
};

TEST(LineageRecorder, DisabledRecorderIsInert) {
  LineageRecorder& lineage = LineageRecorder::Instance();
  lineage.set_enabled(false);
  lineage.Clear();
  LineageEntry entry;
  entry.rule = "phi1";
  lineage.RecordFix(entry);
  lineage.RecordUnresolved("phi1", 3, 1);
  EXPECT_EQ(lineage.EntryCount(), 0u);
  EXPECT_TRUE(lineage.Entries().empty());
  EXPECT_TRUE(lineage.SummaryByRule().empty());
  EXPECT_EQ(lineage.ToJsonl(), "");
}

TEST(LineageEntry, ToJsonIsStrictWithTypedValues) {
  LineageEntry fix;
  fix.applied = true;
  fix.row_id = 42;
  fix.column = 3;
  fix.attribute = "ci\"ty";
  fix.old_value = Value("Old\nTown");
  fix.new_value = Value(int64_t{7});
  fix.rule = "phi1";
  fix.violation_id = 9;
  fix.iteration = 2;
  fix.strategy = "equivalence-class";
  fix.component = 5;

  JsonValue doc;
  StrictJsonParser parser(fix.ToJson());
  ASSERT_TRUE(parser.Parse(&doc)) << parser.error();
  EXPECT_EQ(doc.Find("kind")->str, "fix");
  EXPECT_EQ(doc.Find("rule")->str, "phi1");
  EXPECT_EQ(doc.Find("violation_id")->number, 9.0);
  EXPECT_EQ(doc.Find("iteration")->number, 2.0);
  EXPECT_EQ(doc.Find("row_id")->number, 42.0);
  EXPECT_EQ(doc.Find("column")->number, 3.0);
  EXPECT_EQ(doc.Find("attribute")->str, "ci\"ty");
  EXPECT_EQ(doc.Find("old_value")->str, "Old\nTown");
  // Typed values survive: the int fix value must stay a JSON number.
  EXPECT_EQ(doc.Find("new_value")->kind, JsonValue::kNumber);
  EXPECT_EQ(doc.Find("new_value")->number, 7.0);
  EXPECT_EQ(doc.Find("strategy")->str, "equivalence-class");
  EXPECT_EQ(doc.Find("component")->number, 5.0);

  LineageEntry unresolved;
  unresolved.applied = false;
  unresolved.rule = "phi2";
  unresolved.violation_id = 1;
  unresolved.iteration = 3;
  ASSERT_TRUE(ParsesStrictly(unresolved.ToJson(), &doc));
  EXPECT_EQ(doc.Find("kind")->str, "unresolved");
  // Unresolved records carry no cell fields.
  EXPECT_EQ(doc.Find("row_id"), nullptr);
  EXPECT_EQ(doc.Find("new_value"), nullptr);
}

TEST(LineageIntegration, Fig9aFdCleanseReconcilesLedgerWithReport) {
  LineageOn on;
  LineageRecorder& lineage = LineageRecorder::Instance();

  auto data = GenerateTaxA(1500, 0.1, /*seed=*/7);
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  size_t report_fixes = 0;
  for (const auto& iter : report->iterations) report_fixes += iter.applied_fixes;
  ASSERT_GT(report_fixes, 0u) << "the 10% error rate must force repairs";

  // Per-rule rollup: every applied fix in the report is a ledger entry for
  // phi1 and nothing else.
  auto by_rule = lineage.SummaryByRule();
  ASSERT_EQ(by_rule.count("phi1"), 1u);
  EXPECT_EQ(by_rule["phi1"].applied_fixes, report_fixes);
  EXPECT_EQ(by_rule.size(), 1u);

  // Per-iteration rollup matches the report's per-iteration fix counts
  // (iterations are 1-based in the ledger; iterations with no entries —
  // e.g. the converged final pass — simply have no key).
  auto by_iteration = lineage.SummaryByIteration();
  auto applied_in = [&](size_t iteration) -> uint64_t {
    auto it = by_iteration.find(iteration);
    return it == by_iteration.end() ? 0 : it->second.applied_fixes;
  };
  for (size_t i = 0; i < report->iterations.size(); ++i) {
    EXPECT_EQ(applied_in(i + 1), report->iterations[i].applied_fixes)
        << "iteration " << i + 1;
  }

  // JSONL round-trip: every line is strict JSON and the re-parsed applied
  // counts agree with the in-memory rollup.
  const std::string path = testing::TempDir() + "bd_lineage_test.jsonl";
  ASSERT_TRUE(lineage.WriteJsonl(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::map<std::string, uint64_t> parsed_fixes;
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    JsonValue doc;
    StrictJsonParser parser(line);
    ASSERT_TRUE(parser.Parse(&doc)) << parser.error() << " in: " << line;
    ASSERT_NE(doc.Find("kind"), nullptr);
    ASSERT_NE(doc.Find("rule"), nullptr);
    ASSERT_NE(doc.Find("iteration"), nullptr);
    if (doc.Find("kind")->str == "fix") {
      ++parsed_fixes[doc.Find("rule")->str];
      ASSERT_NE(doc.Find("row_id"), nullptr);
      ASSERT_NE(doc.Find("column"), nullptr);
      ASSERT_NE(doc.Find("new_value"), nullptr);
      EXPECT_EQ(doc.Find("strategy")->str, "equivalence-class");
    }
  }
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(lines, lineage.EntryCount());
  EXPECT_EQ(parsed_fixes["phi1"], report_fixes);

  // Quality computed from the ledger equals quality computed by diffing
  // the repaired table — the ledger is a faithful record of the repair.
  auto from_lineage =
      EvaluateRepairFromLineage(lineage.Entries(), data.dirty, data.clean);
  auto from_tables = EvaluateRepair(data.dirty, working, data.clean);
  ASSERT_TRUE(from_lineage.ok());
  ASSERT_TRUE(from_tables.ok());
  EXPECT_EQ(from_lineage->errors, from_tables->errors);
  EXPECT_EQ(from_lineage->updates, from_tables->updates);
  EXPECT_EQ(from_lineage->correct_updates, from_tables->correct_updates);
  EXPECT_DOUBLE_EQ(from_lineage->precision, from_tables->precision);
  EXPECT_DOUBLE_EQ(from_lineage->recall, from_tables->recall);
}

TEST(LineageIntegration, DistributedRepairRecordsItsStrategy) {
  LineageOn on;
  auto data = GenerateTaxA(800, 0.1, /*seed=*/13);
  ExecutionContext ctx(4);
  CleanOptions options;
  options.repair_mode = RepairMode::kDistributedEquivalenceClass;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  size_t fixes = 0;
  for (const auto& e : LineageRecorder::Instance().Entries()) {
    if (!e.applied) continue;
    ++fixes;
    EXPECT_EQ(e.strategy, "distributed-equivalence-class");
    EXPECT_EQ(e.rule, "phi1");
  }
  size_t report_fixes = 0;
  for (const auto& iter : report->iterations) report_fixes += iter.applied_fixes;
  EXPECT_EQ(fixes, report_fixes);
}

}  // namespace
}  // namespace bigdansing
