#include "core/job.h"

#include <gtest/gtest.h>

#include <set>

#include "data/csv.h"

namespace bigdansing {
namespace {

Table TaxTable() {
  const char* csv =
      "name,zipcode,city\n"
      "Annie,10011,NY\n"
      "Laure,90210,LA\n"
      "Mark,90210,SF\n"
      "Mary,90210,LA\n";
  return *ReadCsvString(csv, CsvOptions{});
}

/// The FD zipcode -> city written as raw job UDFs (the paper's Listings
/// 4-6 and 1-2 rolled together).
Job FdJob(const Table* table) {
  Job job("fd-job");
  job.AddInput("S", table)
      .AddScope(
          [](const Row& row) {
            // Project to (zipcode, city), keeping source columns.
            Row out(row.id(), {row.value(1), row.value(2)});
            out.set_source_columns({1, 2});
            return std::vector<Row>{out};
          },
          "S")
      .AddBlock([](const Row& row) { return row.value(0); }, "S")
      .AddIterate("M", {"S"})
      .AddDetect(
          [](const RowPair& pair, std::vector<Violation>* out) {
            if (pair.left.value(1) == pair.right.value(1)) return;
            Violation v;
            Cell c1{CellRef{pair.left.id(), pair.left.source_column(1)},
                    "city", pair.left.value(1)};
            Cell c2{CellRef{pair.right.id(), pair.right.source_column(1)},
                    "city", pair.right.value(1)};
            v.cells = {c1, c2};
            out->push_back(std::move(v));
          },
          "M")
      .AddGenFix([](const Violation& v, std::vector<Fix>* out) {
        Fix fix;
        fix.left = v.cells[0];
        fix.op = FixOp::kEq;
        fix.right = FixTerm::MakeCell(v.cells[1]);
        out->push_back(std::move(fix));
      }, "M");
  return job;
}

TEST(Job, FdJobFindsPaperViolations) {
  Table table = TaxTable();
  Job job = FdJob(&table);
  ASSERT_TRUE(job.Validate().ok()) << job.Validate().ToString();
  ExecutionContext ctx(2);
  auto result = job.Run(&ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 90210 block {Laure(LA), Mark(SF), Mary(LA)}: violations (1,2), (2,3).
  EXPECT_EQ(result->violations.size(), 2u);
  for (const auto& vf : result->violations) {
    EXPECT_EQ(vf.violation.rule_name, "fd-job");
    ASSERT_EQ(vf.fixes.size(), 1u);
    EXPECT_EQ(vf.fixes[0].op, FixOp::kEq);
    // Cells map back to the base table's city column (index 2).
    EXPECT_EQ(vf.fixes[0].left.ref.column, 2u);
  }
  // Blocking limited probing to the 3 pairs of the 90210 block.
  EXPECT_EQ(result->detect_calls, 3u);
}

TEST(Job, MissingOperatorsAreGenerated) {
  // Only Detect provided: the planner generates the Iterate (all unordered
  // pairs) and runs without Scope/Block.
  Table table = TaxTable();
  Job job("detect-only");
  job.AddInput("D", &table).AddDetect(
      [](const RowPair& pair, std::vector<Violation>* out) {
        if (pair.left.value(1) == pair.right.value(1) &&
            pair.left.value(2) != pair.right.value(2)) {
          Violation v;
          v.cells.push_back(Cell{CellRef{pair.left.id(), 2}, "city",
                                 pair.left.value(2)});
          out->push_back(std::move(v));
        }
      },
      "D");
  ExecutionContext ctx(2);
  auto result = job.Run(&ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->violations.size(), 2u);
  // All 6 unordered pairs probed (no blocking).
  EXPECT_EQ(result->detect_calls, 6u);
}

TEST(Job, TwoFlowIterateCrossesDatasets) {
  const char* left_csv = "name,city\nacme,NYC\nblue,LA\n";
  const char* right_csv = "name,city\nacme,BOS\nblue,LA\nzeta,SF\n";
  Table left = *ReadCsvString(left_csv, CsvOptions{});
  Table right = *ReadCsvString(right_csv, CsvOptions{});
  Job job("cross");
  job.AddInput("L", &left)
      .AddInput("R", &right)
      .AddBlock([](const Row& r) { return r.value(0); }, "L")
      .AddBlock([](const Row& r) { return r.value(0); }, "R")
      .AddIterate("M", {"L", "R"})
      .AddDetect(
          [](const RowPair& pair, std::vector<Violation>* out) {
            if (pair.left.value(1) != pair.right.value(1)) {
              Violation v;
              v.cells.push_back(Cell{CellRef{pair.left.id(), 1}, "city",
                                     pair.left.value(1)});
              v.cells.push_back(Cell{CellRef{pair.right.id(), 1}, "city",
                                     pair.right.value(1)});
              out->push_back(std::move(v));
            }
          },
          "M");
  ExecutionContext ctx(2);
  auto result = job.Run(&ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only acme's cities differ; co-blocking pairs acme-acme and blue-blue.
  EXPECT_EQ(result->violations.size(), 1u);
  EXPECT_EQ(result->detect_calls, 2u);
}

TEST(Job, CustomIterateControlsPairing) {
  Table table = TaxTable();
  Job job("custom-iterate");
  job.AddInput("S", &table)
      .AddIterate("M", {"S"},
                  Job::IterateFn([](const std::vector<Row>& block) {
                    // Only adjacent pairs in id order.
                    std::vector<RowPair> pairs;
                    for (size_t i = 0; i + 1 < block.size(); ++i) {
                      pairs.push_back(RowPair{block[i], block[i + 1]});
                    }
                    return pairs;
                  }))
      .AddDetect(
          [](const RowPair&, std::vector<Violation>* out) {
            out->push_back(Violation{});
          },
          "M");
  ExecutionContext ctx(1);
  auto result = job.Run(&ctx);
  ASSERT_TRUE(result.ok());
  // One global block of 4 rows -> 3 adjacent pairs.
  EXPECT_EQ(result->detect_calls, 3u);
}

TEST(Job, NullBlockKeyDropsUnit) {
  Table table = TaxTable();
  Job job("drop");
  job.AddInput("S", &table)
      .AddBlock(
          [](const Row& row) {
            // Exclude NY rows from all blocks.
            return row.value(2) == Value("NY") ? Value() : row.value(1);
          },
          "S")
      .AddDetect(
          [](const RowPair&, std::vector<Violation>* out) {
            out->push_back(Violation{});
          },
          "M");
  job.AddIterate("M", {"S"});
  ExecutionContext ctx(2);
  auto result = job.Run(&ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 90210 block of 3 rows -> 3 unordered pairs; the NY row joined nothing.
  EXPECT_EQ(result->detect_calls, 3u);
}

TEST(Job, ValidationCatchesMistakes) {
  Table table = TaxTable();
  {
    Job job("no-detect");
    job.AddInput("S", &table);
    EXPECT_FALSE(job.Validate().ok());
  }
  {
    Job job("unknown-flow");
    job.AddInput("S", &table)
        .AddBlock([](const Row& r) { return r.value(0); }, "NOPE")
        .AddDetect([](const RowPair&, std::vector<Violation>*) {}, "S");
    EXPECT_FALSE(job.Validate().ok());
  }
  {
    Job job("iterate-over-iterate");
    job.AddInput("S", &table)
        .AddIterate("M", {"S"})
        .AddIterate("V", {"M"})  // Not a unit flow.
        .AddDetect([](const RowPair&, std::vector<Violation>*) {}, "V");
    EXPECT_FALSE(job.Validate().ok());
  }
  {
    Job job("orphan-genfix");
    job.AddInput("S", &table)
        .AddDetect([](const RowPair&, std::vector<Violation>*) {}, "S")
        .AddGenFix([](const Violation&, std::vector<Fix>*) {}, "ELSEWHERE");
    EXPECT_FALSE(job.Validate().ok());
  }
  {
    Job job("null-input");
    job.AddInput("S", nullptr)
        .AddDetect([](const RowPair&, std::vector<Violation>*) {}, "S");
    EXPECT_FALSE(job.Validate().ok());
  }
  {
    Job job("three-inputs");
    job.AddInput("A", &table).AddInput("B", &table).AddInput("C", &table);
    job.AddIterate("M", {"A", "B", "C"});
    job.AddDetect([](const RowPair&, std::vector<Violation>*) {}, "M");
    EXPECT_FALSE(job.Validate().ok());
  }
}

TEST(Job, PlanDescribesChain) {
  Table table = TaxTable();
  Job job = FdJob(&table);
  auto plan = job.Plan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kScope), 1u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kBlock), 1u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kIterate), 1u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kDetect), 1u);
  EXPECT_EQ(plan->CountOps(LogicalOpKind::kGenFix), 1u);
}

TEST(Job, SameTableUnderTwoLabels) {
  // Listing 3 registers one dataset under two labels; pair the two flows.
  Table table = TaxTable();
  Job job("self-join");
  job.AddInput("S", &table)
      .AddInput("T", &table)
      .AddBlock([](const Row& r) { return r.value(1); }, "S")
      .AddBlock([](const Row& r) { return r.value(1); }, "T")
      .AddIterate("M", {"S", "T"})
      .AddDetect(
          [](const RowPair& pair, std::vector<Violation>* out) {
            if (pair.left.id() < pair.right.id() &&
                pair.left.value(2) != pair.right.value(2)) {
              out->push_back(Violation{});
            }
          },
          "M");
  ExecutionContext ctx(2);
  auto result = job.Run(&ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->violations.size(), 2u);  // Same as the FD job.
}

}  // namespace
}  // namespace bigdansing
