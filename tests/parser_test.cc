#include "rules/parser.h"

#include <gtest/gtest.h>

#include "rules/check_rule.h"
#include "rules/dc_rule.h"
#include "rules/fd_rule.h"

namespace bigdansing {
namespace {

TEST(Parser, SimpleFd) {
  auto rule = ParseRule("FD: zipcode -> city");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* fd = dynamic_cast<FdRule*>(rule->get());
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ(fd->lhs(), (std::vector<std::string>{"zipcode"}));
  EXPECT_EQ(fd->rhs(), (std::vector<std::string>{"city"}));
}

TEST(Parser, MultiAttributeFd) {
  auto rule = ParseRule("r8: FD: provider_id, measure -> city, phone");
  ASSERT_TRUE(rule.ok());
  auto* fd = dynamic_cast<FdRule*>(rule->get());
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ((*rule)->name(), "r8");
  EXPECT_EQ(fd->lhs(), (std::vector<std::string>{"provider_id", "measure"}));
  EXPECT_EQ(fd->rhs(), (std::vector<std::string>{"city", "phone"}));
}

TEST(Parser, NamedRuleKeywordCollision) {
  // A rule literally named "fd" must still parse.
  auto rule = ParseRule("fd: FD: a -> b");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ((*rule)->name(), "fd");
  EXPECT_NE(dynamic_cast<FdRule*>(rule->get()), nullptr);
}

TEST(Parser, DcWithInequalities) {
  auto rule = ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  ASSERT_TRUE(rule.ok());
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  ASSERT_NE(dc, nullptr);
  ASSERT_EQ(dc->predicates().size(), 2u);
  EXPECT_EQ(dc->predicates()[0].op, CmpOp::kGt);
  EXPECT_EQ(dc->predicates()[1].op, CmpOp::kLt);
  EXPECT_EQ(dc->OrderingConditions().size(), 2u);
  EXPECT_FALSE(dc->IsSymmetric());
}

TEST(Parser, DcWithEqualityIsSymmetricAndBlocks) {
  auto rule = ParseRule("c1: DC: t1.city = t2.city & t1.state != t2.state");
  ASSERT_TRUE(rule.ok());
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  ASSERT_NE(dc, nullptr);
  EXPECT_TRUE(dc->IsSymmetric());
  EXPECT_EQ(dc->BlockingAttributes(), (std::vector<std::string>{"city"}));
  EXPECT_TRUE(dc->OrderingConditions().empty());
}

TEST(Parser, DcWithStringConstant) {
  auto rule = ParseRule(
      "c2: DC: t1.role = \"M\" & t1.city != t2.city");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  ASSERT_NE(dc, nullptr);
  EXPECT_TRUE(dc->predicates()[0].right_is_constant);
  EXPECT_EQ(dc->predicates()[0].constant, Value("M"));
}

TEST(Parser, DcWithNumericConstant) {
  auto rule = ParseRule("c3: DC: t1.salary > 100000 & t1.rate < t2.rate");
  ASSERT_TRUE(rule.ok());
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  ASSERT_NE(dc, nullptr);
  EXPECT_TRUE(dc->predicates()[0].right_is_constant);
  EXPECT_EQ(dc->predicates()[0].constant, Value(static_cast<int64_t>(100000)));
}

TEST(Parser, SimilarityPredicateWithThreshold) {
  auto rule = ParseRule("phiU: DC: t1.name ~0.85 t2.name & t1.county = t2.county");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->predicates()[0].op, CmpOp::kSimilar);
  EXPECT_DOUBLE_EQ(dc->predicates()[0].similarity_threshold, 0.85);
}

TEST(Parser, SimilarityDefaultThreshold) {
  auto rule = ParseRule("u: DC: t1.name ~ t2.name & t1.city = t2.city");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  EXPECT_DOUBLE_EQ(dc->predicates()[0].similarity_threshold, 0.8);
}

TEST(Parser, CheckRule) {
  auto rule = ParseRule("nonneg: CHECK: t1.salary < 0");
  ASSERT_TRUE(rule.ok());
  EXPECT_NE(dynamic_cast<CheckRule*>(rule->get()), nullptr);
  EXPECT_EQ((*rule)->arity(), 1);
}

TEST(Parser, CheckRuleImplicitTuple) {
  auto rule = ParseRule("CHECK: salary < 0 & rate > 50");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ((*rule)->arity(), 1);
}

TEST(Parser, TwoCharOperators) {
  auto rule = ParseRule("x: DC: t1.a >= t2.a & t1.b <= t2.b & t1.c <> t2.c");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  ASSERT_EQ(dc->predicates().size(), 3u);
  EXPECT_EQ(dc->predicates()[0].op, CmpOp::kGeq);
  EXPECT_EQ(dc->predicates()[1].op, CmpOp::kLeq);
  EXPECT_EQ(dc->predicates()[2].op, CmpOp::kNeq);
}

TEST(Parser, DoubleEqualsAccepted) {
  auto rule = ParseRule("x: DC: t1.a == t2.a & t1.b != t2.b");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto* dc = dynamic_cast<DcRule*>(rule->get());
  EXPECT_EQ(dc->predicates()[0].op, CmpOp::kEq);
}

TEST(Parser, ErrorCases) {
  EXPECT_FALSE(ParseRule("").ok());
  EXPECT_FALSE(ParseRule("nonsense").ok());
  EXPECT_FALSE(ParseRule("FD: zipcode city").ok());        // No arrow.
  EXPECT_FALSE(ParseRule("FD: -> city").ok());             // Empty LHS.
  EXPECT_FALSE(ParseRule("DC: t1.a ? t2.a").ok());         // Bad operator.
  EXPECT_FALSE(ParseRule("DC: & t1.a = t2.a").ok());       // Empty conjunct.
  EXPECT_FALSE(ParseRule("DC: t1.a = t2.a &").ok());       // Trailing &.
  EXPECT_FALSE(ParseRule("DC: 5 = t2.a").ok());            // Constant on left.
  EXPECT_FALSE(ParseRule("DC: t1.a = \"unterminated").ok());
  EXPECT_FALSE(ParseRule("DC: t1.a = t1.b").ok());  // Single-tuple DC -> CHECK.
  EXPECT_FALSE(ParseRule("UNKNOWN: t1.a = t2.a").ok());
}

TEST(Parser, DefaultNameIsRuleText) {
  auto rule = ParseRule("FD: a -> b");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ((*rule)->name(), "FD: a -> b");
}

}  // namespace
}  // namespace bigdansing
