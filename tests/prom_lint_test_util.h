#ifndef BIGDANSING_TESTS_PROM_LINT_TEST_UTIL_H_
#define BIGDANSING_TESTS_PROM_LINT_TEST_UTIL_H_

// Minimal Prometheus text-exposition linter for tests: validates the
// subset of the format the MetricsRegistry emits. Checks, per metric
// family:
//  - every sample line is preceded by a "# TYPE <name> <kind>" line whose
//    name prefixes the sample's metric name (allowing the histogram
//    _bucket/_sum/_count suffixes);
//  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
//  - sample values parse as a number (or +Inf/-Inf/NaN);
//  - histogram `le` bucket series are cumulative (monotone non-decreasing
//    in file order), end with an le="+Inf" bucket, and that +Inf count
//    equals the family's _count sample;
//  - histograms expose _sum and _count.
// On violation, returns false and appends a message to *errors.

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace bigdansing {
namespace testing {

struct PromHistogramState {
  bool saw_inf = false;
  bool saw_sum = false;
  long long count = -1;       // from _count
  long long inf_count = -1;   // from le="+Inf"
  long long last_bucket = -1; // monotonicity cursor
};

inline bool PromNameValid(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

inline bool PromValueValid(const std::string& value) {
  if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
  if (value.empty()) return false;
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Validates `text` as Prometheus exposition output; appends one message
/// per defect to *errors and returns errors->empty().
inline bool ValidatePrometheusExposition(const std::string& text,
                                         std::vector<std::string>* errors) {
  std::map<std::string, std::string> family_type;  // name -> counter/gauge/...
  std::map<std::string, PromHistogramState> histograms;

  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    auto fail = [&](const std::string& msg) {
      errors->push_back("line " + std::to_string(line_no) + ": " + msg +
                        " [" + line + "]");
    };

    if (line[0] == '#') {
      // Only "# TYPE <name> <kind>" comments are emitted.
      if (line.rfind("# TYPE ", 0) != 0) {
        if (line.rfind("# HELP ", 0) != 0) fail("unrecognized comment");
        continue;
      }
      const std::string rest = line.substr(7);
      const size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        fail("malformed TYPE line");
        continue;
      }
      const std::string name = rest.substr(0, sp);
      const std::string kind = rest.substr(sp + 1);
      if (!PromNameValid(name)) fail("invalid metric name in TYPE");
      if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
          kind != "summary" && kind != "untyped") {
        fail("unknown metric kind '" + kind + "'");
      }
      if (family_type.count(name) != 0) fail("duplicate TYPE for " + name);
      family_type[name] = kind;
      continue;
    }

    // Sample line: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      fail("sample line without value");
      continue;
    }
    const std::string sample_name = line.substr(0, name_end);
    if (!PromNameValid(sample_name)) fail("invalid sample metric name");

    std::string labels;
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        fail("unterminated label set");
        continue;
      }
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_start = close + 1;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    const std::string value = line.substr(value_start);
    if (!PromValueValid(value)) fail("unparsable sample value '" + value + "'");

    // Resolve the family: exact name, or histogram suffixes.
    std::string family = sample_name;
    bool is_bucket = false, is_sum = false, is_count = false;
    auto strip = [&](const char* suffix, bool* flag) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          family_type.count(family.substr(0, family.size() - s.size())) !=
              0) {
        family = family.substr(0, family.size() - s.size());
        *flag = true;
      }
    };
    if (family_type.count(family) == 0) {
      strip("_bucket", &is_bucket);
      if (!is_bucket) strip("_sum", &is_sum);
      if (!is_bucket && !is_sum) strip("_count", &is_count);
    }
    auto type_it = family_type.find(family);
    if (type_it == family_type.end()) {
      fail("sample without preceding TYPE line");
      continue;
    }
    const bool is_histogram = type_it->second == "histogram";
    if ((is_bucket || is_sum || is_count) && !is_histogram) {
      fail("histogram-suffixed sample on non-histogram family");
    }
    if (is_histogram && !(is_bucket || is_sum || is_count)) {
      fail("bare sample on histogram family");
    }

    if (!is_histogram) continue;
    PromHistogramState& st = histograms[family];
    if (is_sum) st.saw_sum = true;
    if (is_count) st.count = std::atoll(value.c_str());
    if (is_bucket) {
      // Extract le="..." from the label set.
      const size_t le = labels.find("le=\"");
      if (le == std::string::npos) {
        fail("_bucket sample without le label");
        continue;
      }
      const size_t le_end = labels.find('"', le + 4);
      const std::string bound = labels.substr(le + 4, le_end - le - 4);
      const long long cumulative = std::atoll(value.c_str());
      if (bound == "+Inf") {
        st.saw_inf = true;
        st.inf_count = cumulative;
      }
      if (cumulative < st.last_bucket) {
        fail("bucket series not cumulative: " + value + " after " +
             std::to_string(st.last_bucket));
      }
      st.last_bucket = cumulative;
    }
  }

  for (const auto& [family, st] : histograms) {
    if (!st.saw_inf) {
      errors->push_back("histogram " + family + ": no le=\"+Inf\" bucket");
    }
    if (!st.saw_sum) {
      errors->push_back("histogram " + family + ": no _sum sample");
    }
    if (st.count < 0) {
      errors->push_back("histogram " + family + ": no _count sample");
    }
    if (st.saw_inf && st.count >= 0 && st.inf_count != st.count) {
      errors->push_back("histogram " + family + ": +Inf bucket (" +
                        std::to_string(st.inf_count) + ") != _count (" +
                        std::to_string(st.count) + ")");
    }
  }
  return errors->empty();
}

}  // namespace testing
}  // namespace bigdansing

#endif  // BIGDANSING_TESTS_PROM_LINT_TEST_UTIL_H_
