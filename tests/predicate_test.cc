#include "rules/predicate.h"

#include <gtest/gtest.h>

namespace bigdansing {
namespace {

Row MakeRow(RowId id, int64_t a, const char* b) {
  return Row(id, {Value(a), Value(b)});
}

Predicate TwoTuple(const char* left_attr, CmpOp op, const char* right_attr) {
  Predicate p;
  p.left_tuple = 1;
  p.left_attr = left_attr;
  p.op = op;
  p.right_is_constant = false;
  p.right_tuple = 2;
  p.right_attr = right_attr;
  return p;
}

TEST(Predicate, OpHelpers) {
  EXPECT_TRUE(IsEqualityOp(CmpOp::kEq));
  EXPECT_TRUE(IsEqualityOp(CmpOp::kNeq));
  EXPECT_TRUE(IsEqualityOp(CmpOp::kSimilar));
  EXPECT_FALSE(IsEqualityOp(CmpOp::kLt));
  EXPECT_TRUE(IsOrderingOp(CmpOp::kLt));
  EXPECT_TRUE(IsOrderingOp(CmpOp::kGeq));
  EXPECT_FALSE(IsOrderingOp(CmpOp::kEq));
}

TEST(Predicate, FlipIsInvolution) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNeq, CmpOp::kLt, CmpOp::kGt,
                   CmpOp::kLeq, CmpOp::kGeq, CmpOp::kSimilar}) {
    EXPECT_EQ(FlipOp(FlipOp(op)), op);
  }
  EXPECT_EQ(FlipOp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipOp(CmpOp::kLeq), CmpOp::kGeq);
  EXPECT_EQ(FlipOp(CmpOp::kEq), CmpOp::kEq);
}

TEST(Predicate, NegateIsInvolutionForComparable) {
  for (CmpOp op :
       {CmpOp::kEq, CmpOp::kNeq, CmpOp::kLt, CmpOp::kGt, CmpOp::kLeq,
        CmpOp::kGeq}) {
    EXPECT_EQ(NegateOp(NegateOp(op)), op);
  }
  EXPECT_EQ(NegateOp(CmpOp::kLt), CmpOp::kGeq);
  EXPECT_EQ(NegateOp(CmpOp::kEq), CmpOp::kNeq);
}

TEST(Predicate, ToStringRendering) {
  Predicate p = TwoTuple("salary", CmpOp::kGt, "salary");
  EXPECT_EQ(p.ToString(), "t1.salary > t2.salary");
  Predicate c;
  c.left_tuple = 1;
  c.left_attr = "role";
  c.op = CmpOp::kEq;
  c.right_is_constant = true;
  c.constant = Value("M");
  EXPECT_EQ(c.ToString(), "t1.role = M");
}

TEST(BoundPredicate, BindResolvesColumns) {
  Schema schema({"num", "txt"});
  auto bp = BoundPredicate::Bind(TwoTuple("num", CmpOp::kLt, "num"), schema);
  ASSERT_TRUE(bp.ok());
  EXPECT_EQ(bp->left_column(), 0u);
  EXPECT_EQ(bp->right_column(), 0u);
  auto missing =
      BoundPredicate::Bind(TwoTuple("nope", CmpOp::kLt, "num"), schema);
  EXPECT_FALSE(missing.ok());
}

class PredicateEval
    : public ::testing::TestWithParam<std::tuple<CmpOp, int64_t, int64_t, bool>> {};

TEST_P(PredicateEval, AllOperatorsOverNumbers) {
  auto [op, left, right, expected] = GetParam();
  Schema schema({"num", "txt"});
  auto bp = BoundPredicate::Bind(TwoTuple("num", op, "num"), schema);
  ASSERT_TRUE(bp.ok());
  Row t1 = MakeRow(0, left, "a");
  Row t2 = MakeRow(1, right, "b");
  EXPECT_EQ(bp->Eval(t1, t2), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredicateEval,
    ::testing::Values(
        std::make_tuple(CmpOp::kEq, 5, 5, true),
        std::make_tuple(CmpOp::kEq, 5, 6, false),
        std::make_tuple(CmpOp::kNeq, 5, 6, true),
        std::make_tuple(CmpOp::kNeq, 5, 5, false),
        std::make_tuple(CmpOp::kLt, 4, 5, true),
        std::make_tuple(CmpOp::kLt, 5, 5, false),
        std::make_tuple(CmpOp::kGt, 6, 5, true),
        std::make_tuple(CmpOp::kGt, 5, 5, false),
        std::make_tuple(CmpOp::kLeq, 5, 5, true),
        std::make_tuple(CmpOp::kLeq, 6, 5, false),
        std::make_tuple(CmpOp::kGeq, 5, 5, true),
        std::make_tuple(CmpOp::kGeq, 4, 5, false)));

TEST(BoundPredicate, NullOperandsAreNeverTrue) {
  Schema schema({"num", "txt"});
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNeq, CmpOp::kLt, CmpOp::kGeq}) {
    auto bp = BoundPredicate::Bind(TwoTuple("num", op, "num"), schema);
    ASSERT_TRUE(bp.ok());
    Row null_row(0, {Value::Null(), Value("x")});
    Row val_row(1, {Value(static_cast<int64_t>(1)), Value("y")});
    EXPECT_FALSE(bp->Eval(null_row, val_row)) << CmpOpName(op);
    EXPECT_FALSE(bp->Eval(val_row, null_row)) << CmpOpName(op);
    EXPECT_FALSE(bp->Eval(null_row, null_row)) << CmpOpName(op);
  }
}

TEST(BoundPredicate, ConstantComparison) {
  Schema schema({"num", "txt"});
  Predicate p;
  p.left_tuple = 1;
  p.left_attr = "txt";
  p.op = CmpOp::kEq;
  p.right_is_constant = true;
  p.constant = Value("M");
  auto bp = BoundPredicate::Bind(p, schema);
  ASSERT_TRUE(bp.ok());
  Row yes = MakeRow(0, 1, "M");
  Row no = MakeRow(1, 1, "F");
  EXPECT_TRUE(bp->Eval(yes, yes));
  EXPECT_FALSE(bp->Eval(no, no));
}

TEST(BoundPredicate, SimilarOperator) {
  Schema schema({"num", "txt"});
  Predicate p = TwoTuple("txt", CmpOp::kSimilar, "txt");
  p.similarity_threshold = 0.75;
  auto bp = BoundPredicate::Bind(p, schema);
  ASSERT_TRUE(bp.ok());
  Row a(0, {Value(static_cast<int64_t>(0)), Value("jonathan")});
  Row b(1, {Value(static_cast<int64_t>(0)), Value("jonathon")});
  Row c(2, {Value(static_cast<int64_t>(0)), Value("xyz")});
  EXPECT_TRUE(bp->Eval(a, b));
  EXPECT_FALSE(bp->Eval(a, c));
}

TEST(BoundPredicate, TupleSidesAreRespected) {
  // t2.num < t1.num — the left operand comes from the SECOND row argument.
  Schema schema({"num", "txt"});
  Predicate p;
  p.left_tuple = 2;
  p.left_attr = "num";
  p.op = CmpOp::kLt;
  p.right_is_constant = false;
  p.right_tuple = 1;
  p.right_attr = "num";
  auto bp = BoundPredicate::Bind(p, schema);
  ASSERT_TRUE(bp.ok());
  Row small = MakeRow(0, 1, "a");
  Row big = MakeRow(1, 9, "b");
  EXPECT_TRUE(bp->Eval(big, small));   // t2=small < t1=big.
  EXPECT_FALSE(bp->Eval(small, big));  // t2=big < t1=small is false.
}

TEST(BoundPredicate, BindAcrossTwoSchemas) {
  Schema left({"c_name", "c_city"});
  Schema right({"s_name", "s_city"});
  Predicate p;
  p.left_tuple = 1;
  p.left_attr = "c_name";
  p.op = CmpOp::kEq;
  p.right_is_constant = false;
  p.right_tuple = 2;
  p.right_attr = "s_name";
  auto bp = BoundPredicate::BindAcross(p, left, right);
  ASSERT_TRUE(bp.ok());
  Row cust(0, {Value("acme"), Value("NYC")});
  Row supp(1, {Value("acme"), Value("LA")});
  EXPECT_TRUE(bp->Eval(cust, supp));
  // Binding against a single schema would fail (s_name missing on left).
  EXPECT_FALSE(BoundPredicate::Bind(p, left).ok());
}

}  // namespace
}  // namespace bigdansing
