#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "repair/quality.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

/// Incremental re-detection through the unified request API.
Result<DetectionResult> DetectIncremental(
    const RuleEngine& engine, const Table& table, const RulePtr& rule,
    const std::unordered_set<RowId>& changed) {
  DetectRequest request;
  request.table = &table;
  request.rules = {rule};
  request.changed_rows = &changed;
  auto results = engine.Detect(request);
  if (!results.ok()) return results.status();
  return std::move(results->front());
}

std::set<std::pair<RowId, RowId>> PairSet(const DetectionResult& result) {
  std::set<std::pair<RowId, RowId>> pairs;
  for (const auto& vf : result.violations) {
    auto ids = vf.violation.RowIds();
    if (ids.size() != 2) continue;
    pairs.insert({std::min(ids[0], ids[1]), std::max(ids[0], ids[1])});
  }
  return pairs;
}

TEST(Incremental, BlockedRuleFindsExactlyTouchedViolations) {
  auto data = GenerateTaxA(3000, 0.1, 31);
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto full = engine.Detect(data.dirty, rule);
  ASSERT_TRUE(full.ok());

  // Changed rows = all rows involved in violations: the incremental pass
  // must find the same violation set.
  std::unordered_set<RowId> changed;
  for (const auto& vf : full->violations) {
    for (RowId id : vf.violation.RowIds()) changed.insert(id);
  }
  auto incremental = DetectIncremental(engine, data.dirty, rule, changed);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  EXPECT_EQ(PairSet(*incremental), PairSet(*full));
  // It visited fewer blocks than the full pass probed.
  EXPECT_LE(incremental->detect_calls, full->detect_calls);
}

TEST(Incremental, SubsetOfChangesFindsSubsetOfViolations) {
  auto data = GenerateTaxA(3000, 0.1, 32);
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto full = engine.Detect(data.dirty, rule);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->violations.empty());

  // Only one violating row marked as changed: the incremental result must
  // be a non-empty subset of the full result containing that row.
  RowId target = full->violations[0].violation.RowIds()[0];
  auto incremental = DetectIncremental(engine, data.dirty, rule, {target});
  ASSERT_TRUE(incremental.ok());
  auto inc_pairs = PairSet(*incremental);
  auto full_pairs = PairSet(*full);
  EXPECT_FALSE(inc_pairs.empty());
  for (const auto& p : inc_pairs) {
    EXPECT_TRUE(full_pairs.count(p)) << p.first << "," << p.second;
  }
}

TEST(Incremental, EmptyChangeSetFindsNothing) {
  auto data = GenerateTaxA(500, 0.1, 33);
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto incremental = DetectIncremental(engine, data.dirty, rule, {});
  ASSERT_TRUE(incremental.ok());
  EXPECT_TRUE(incremental->violations.empty());
  EXPECT_EQ(incremental->detect_calls, 0u);
}

TEST(Incremental, UnblockedDcMatchesFullOnChangedRows) {
  auto data = GenerateTaxB(800, 0.1, 34);
  auto rule = *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  ExecutionContext ctx(4);
  RuleEngine engine(&ctx);
  auto full = engine.Detect(data.dirty, rule);
  ASSERT_TRUE(full.ok());
  std::unordered_set<RowId> changed;
  for (const auto& vf : full->violations) {
    for (RowId id : vf.violation.RowIds()) changed.insert(id);
  }
  auto incremental = DetectIncremental(engine, data.dirty, rule, changed);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  EXPECT_EQ(PairSet(*incremental), PairSet(*full));
}

TEST(Incremental, NoDuplicateProbesWhenBothSidesChanged) {
  // Two changed rows violating with each other must yield exactly one
  // violation, not two.
  Table t(Schema({"salary", "rate"}));
  t.AppendRow({Value(static_cast<int64_t>(100)), Value(static_cast<int64_t>(9))});
  t.AppendRow({Value(static_cast<int64_t>(200)), Value(static_cast<int64_t>(5))});
  auto rule = *ParseRule("phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto incremental = DetectIncremental(engine, t, rule, {0, 1});
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(incremental->violations.size(), 1u);
}

TEST(Incremental, CleanLoopMatchesNonIncrementalResult) {
  auto data = GenerateHai(4000, 0.1, 35, {3, 4});
  std::vector<RulePtr> rules = {*ParseRule("phi6: FD: zipcode -> state"),
                                *ParseRule("phi7: FD: phone -> zipcode")};
  ExecutionContext ctx(4);

  Table plain = data.dirty;
  CleanOptions plain_options;
  auto plain_report = BigDansing(&ctx, plain_options).Clean(&plain, rules);
  ASSERT_TRUE(plain_report.ok());

  Table inc = data.dirty;
  CleanOptions inc_options;
  inc_options.incremental_redetection = true;
  auto inc_report = BigDansing(&ctx, inc_options).Clean(&inc, rules);
  ASSERT_TRUE(inc_report.ok());

  EXPECT_TRUE(inc_report->converged);
  EXPECT_EQ(plain, inc);  // Identical repaired instances.
}

}  // namespace
}  // namespace bigdansing
