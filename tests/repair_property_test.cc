// Property tests over randomly generated violation sets: the repair
// deployments (per-component parallel, centralized serial, natively
// distributed) must agree, and repairs must make real progress.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "dataflow/context.h"
#include "repair/blackbox.h"
#include "repair/equivalence_class.h"
#include "repair/hypergraph_repair.h"

namespace bigdansing {
namespace {

Cell MakeCell(RowId row, size_t col, Value v) {
  Cell c;
  c.ref = CellRef{row, col};
  c.attribute = "a" + std::to_string(col);
  c.value = std::move(v);
  return c;
}

/// Random equality-fix violations: pairs of cells over `num_rows` rows and
/// one column, each holding one of `num_values` values, linked by eq fixes.
std::vector<ViolationWithFixes> RandomEqViolations(size_t count,
                                                   size_t num_rows,
                                                   size_t num_values,
                                                   uint64_t seed) {
  Random rng(seed);
  // Fixed per-cell values so the same cell always carries the same value
  // (as real detection output would).
  std::map<RowId, Value> cell_values;
  auto value_of = [&](RowId r) {
    auto it = cell_values.find(r);
    if (it == cell_values.end()) {
      it = cell_values
               .emplace(r, Value("v" + std::to_string(rng.NextBounded(num_values))))
               .first;
    }
    return it->second;
  };
  std::vector<ViolationWithFixes> out;
  for (size_t i = 0; i < count; ++i) {
    RowId a = static_cast<RowId>(rng.NextBounded(num_rows));
    RowId b = static_cast<RowId>(rng.NextBounded(num_rows));
    if (a == b) b = (b + 1) % static_cast<RowId>(num_rows);
    ViolationWithFixes vf;
    Cell ca = MakeCell(a, 0, value_of(a));
    Cell cb = MakeCell(b, 0, value_of(b));
    vf.violation.rule_name = "rand";
    vf.violation.cells = {ca, cb};
    Fix fix;
    fix.left = ca;
    fix.op = FixOp::kEq;
    fix.right = FixTerm::MakeCell(cb);
    vf.fixes = {fix};
    out.push_back(std::move(vf));
  }
  return out;
}

std::vector<CellAssignment> Sorted(std::vector<CellAssignment> v) {
  std::sort(v.begin(), v.end(),
            [](const CellAssignment& a, const CellAssignment& b) {
              return a.cell < b.cell;
            });
  return v;
}

class RepairEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairEquivalence, AllThreeDeploymentsAgree) {
  auto violations = RandomEqViolations(120, 60, 4, GetParam());
  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(4);

  BlackBoxOptions parallel_options;
  auto parallel = BlackBoxRepair(&ctx, violations, ec, parallel_options);

  BlackBoxOptions serial_options;
  serial_options.parallel = false;
  auto serial = BlackBoxRepair(&ctx, violations, ec, serial_options);

  auto distributed = DistributedEquivalenceClassRepair(&ctx, violations);

  // Equivalence classes do not depend on how components are dispatched,
  // and the majority vote is deterministic — all three must agree exactly.
  EXPECT_EQ(Sorted(parallel.applied), Sorted(serial.applied));
  EXPECT_EQ(Sorted(parallel.applied), Sorted(distributed));
}

TEST_P(RepairEquivalence, EcAssignmentsUnifyEveryClass) {
  auto violations = RandomEqViolations(150, 80, 5, GetParam() + 100);
  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(4);
  auto result = BlackBoxRepair(&ctx, violations, ec, BlackBoxOptions());

  // Apply assignments over the cell-value view; afterwards every eq fix
  // must be satisfied (each class collapsed to one value).
  std::map<CellRef, Value> values;
  for (const auto& vf : violations) {
    for (const auto& c : vf.violation.cells) values[c.ref] = c.value;
  }
  for (const auto& a : result.applied) values[a.cell] = a.value;
  for (const auto& vf : violations) {
    for (const auto& fix : vf.fixes) {
      ASSERT_TRUE(fix.right.is_cell);
      EXPECT_EQ(values.at(fix.left.ref), values.at(fix.right.cell.ref));
    }
  }
}

TEST_P(RepairEquivalence, KWaySplitNeverDivergesFromUnsplit) {
  // Splitting components must preserve repair *validity* (master/slave
  // undo guarantees no contradictions), though it may repair less per
  // pass. Check: applied assignments never assign two values to one cell,
  // and every applied assignment matches some class majority computed on
  // the full component.
  auto violations = RandomEqViolations(100, 40, 3, GetParam() + 200);
  EquivalenceClassAlgorithm ec;
  ExecutionContext ctx(4);
  BlackBoxOptions split_options;
  split_options.max_component_edges = 5;
  split_options.kway_parts = 3;
  auto split = BlackBoxRepair(&ctx, violations, ec, split_options);
  std::map<CellRef, Value> seen;
  for (const auto& a : split.applied) {
    auto [it, inserted] = seen.emplace(a.cell, a.value);
    EXPECT_TRUE(inserted) << "cell assigned twice: " << a.cell.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairEquivalence,
                         ::testing::Values(1, 7, 42, 1234));

TEST(HypergraphRepairProperty, MakesProgressOnRandomNumericViolations) {
  Random rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    // Random "rate" violations: a < b demanded between random cells.
    std::map<RowId, Value> cell_values;
    for (RowId r = 0; r < 30; ++r) {
      cell_values[r] = Value(static_cast<int64_t>(rng.NextBounded(100)));
    }
    std::vector<ViolationWithFixes> violations;
    for (int i = 0; i < 25; ++i) {
      RowId a = static_cast<RowId>(rng.NextBounded(30));
      RowId b = static_cast<RowId>(rng.NextBounded(30));
      if (a == b) continue;
      if (!(cell_values[a] > cell_values[b])) continue;  // Violated: want <=.
      ViolationWithFixes vf;
      Cell ca = MakeCell(a, 0, cell_values[a]);
      Cell cb = MakeCell(b, 0, cell_values[b]);
      vf.violation.cells = {ca, cb};
      Fix fix;
      fix.left = ca;
      fix.op = FixOp::kLeq;
      fix.right = FixTerm::MakeCell(cb);
      vf.fixes = {fix};
      violations.push_back(std::move(vf));
    }
    if (violations.empty()) continue;
    HypergraphRepairAlgorithm hg;
    ExecutionContext ctx(2);
    auto result = BlackBoxRepair(&ctx, violations, hg, BlackBoxOptions());
    // Progress: the repair resolves at least one violation per component.
    std::map<CellRef, Value> values;
    for (const auto& vf : violations) {
      for (const auto& c : vf.violation.cells) values[c.ref] = c.value;
    }
    for (const auto& a : result.applied) values[a.cell] = a.value;
    size_t resolved = 0;
    for (const auto& vf : violations) {
      if (values.at(vf.fixes[0].left.ref) <=
          values.at(vf.fixes[0].right.cell.ref)) {
        ++resolved;
      }
    }
    EXPECT_GE(resolved, result.num_components)
        << "trial " << trial << ": " << resolved << " resolved across "
        << result.num_components << " components";
  }
}

}  // namespace
}  // namespace bigdansing
